//! Conventional Euclidean k-nearest-neighbour search on mean vectors.
//!
//! This is the "ordinary similarity search" of the paper's effectiveness
//! experiment (Figure 6): it ignores the uncertainty values entirely and
//! ranks database objects by the Euclidean distance between mean vectors —
//! which §3 shows retrieves the wrong object whenever uncertain features
//! dominate the distance.

use pfv::Pfv;

/// Returns the indices of the `k` database objects with the smallest
/// Euclidean distance between mean vectors, ascending by distance
/// (ties by index).
///
/// # Panics
/// Panics on dimensionality mismatch between `q` and any database object.
#[must_use]
pub fn euclidean_knn(db: &[Pfv], q: &Pfv, k: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = db
        .iter()
        .enumerate()
        .map(|(i, v)| (i, q.euclidean_mean_distance(v)))
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Vec<Pfv> {
        vec![
            Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap(),
            Pfv::new(vec![1.0, 0.0], vec![5.0, 5.0]).unwrap(),
            Pfv::new(vec![10.0, 10.0], vec![0.1, 0.1]).unwrap(),
        ]
    }

    #[test]
    fn ranks_by_distance() {
        let q = Pfv::new(vec![0.4, 0.0], vec![0.1, 0.1]).unwrap();
        let got = euclidean_knn(&db(), &q, 3);
        assert_eq!(got[0].0, 0);
        assert_eq!(got[1].0, 1);
        assert_eq!(got[2].0, 2);
        assert!((got[0].1 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ignores_uncertainty_entirely() {
        // Object 1 is closer in means but hugely uncertain; Euclidean NN
        // picks it anyway — the failure mode the paper motivates with.
        let q = Pfv::new(vec![0.9, 0.0], vec![0.1, 0.1]).unwrap();
        let got = euclidean_knn(&db(), &q, 1);
        assert_eq!(got[0].0, 1);
    }

    #[test]
    fn k_larger_than_db() {
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        assert_eq!(euclidean_knn(&db(), &q, 10).len(), 3);
    }

    #[test]
    fn k_zero() {
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        assert!(euclidean_knn(&db(), &q, 0).is_empty());
    }
}
