//! Baselines the Gauss-tree paper compares against (§6):
//!
//! * [`seqscan`] — the "general solution" of §4 executed on top of a
//!   sequential scan of an unordered pfv file: one pass for k-MLIQ, two
//!   passes for TIQ (first pass accumulates the Bayes denominator);
//! * [`rect`] + [`xtree`] — an X-tree (Berchtold, Keim, Kriegel, VLDB'96)
//!   storing the 95 %-quantile hyper-rectangle approximation of every pfv;
//!   queries filter by box intersection and refine candidates against the
//!   pfv file. This method *allows false dismissals* — exactly the caveat
//!   the paper notes;
//! * [`knn`] — conventional Euclidean k-NN on the mean vectors, used by the
//!   effectiveness experiment (Figure 6).

#![forbid(unsafe_code)]

pub mod knn;
pub mod rect;
pub mod seqscan;
pub mod xtree;

pub use knn::euclidean_knn;
pub use rect::Rect;
pub use seqscan::{PfvFile, ScanError};
pub use xtree::{XTree, XTreeConfig};
