//! Axis-aligned hyper-rectangles in the *feature* space (not the parameter
//! space) — the approximation geometry of the X-tree baseline.

use pfv::Pfv;

/// A d-dimensional axis-aligned box `[lo_i, hi_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Builds a box from corner vectors.
    ///
    /// # Panics
    /// Panics on empty input, length mismatch, reversed or non-finite bounds.
    #[must_use]
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner length mismatch");
        assert!(!lo.is_empty(), "a rect needs at least one dimension");
        for (i, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            assert!(
                l.is_finite() && h.is_finite() && l <= h,
                "invalid bounds in dim {i}: [{l}, {h}]"
            );
        }
        Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// The `coverage`-central quantile box of a pfv (the paper uses 95 %).
    #[must_use]
    pub fn quantile_box(v: &Pfv, coverage: f64) -> Self {
        let (lo, hi) = v.quantile_box(coverage);
        Self::new(lo, hi)
    }

    /// Dimensionality.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    #[must_use]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    #[must_use]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether the boxes intersect (closed intervals).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((l, h), (ol, oh))| l <= oh && ol <= h)
    }

    /// Whether `other` lies entirely inside `self`.
    #[must_use]
    pub fn contains(&self, other: &Rect) -> bool {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((l, h), (ol, oh))| l <= ol && oh <= h)
    }

    /// Smallest box containing both.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        Rect {
            lo: self
                .lo
                .iter()
                .zip(other.lo.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(other.hi.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Extends in place to cover `other`.
    pub fn extend(&mut self, other: &Rect) {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        for i in 0..self.lo.len() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Volume (product of extents). Zero-extent dimensions make it 0.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Sum of side lengths (the R\*-tree's "margin").
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Volume of the intersection (0 when disjoint).
    #[must_use]
    pub fn overlap_volume(&self, other: &Rect) -> f64 {
        assert_eq!(self.dims(), other.dims(), "dimensionality mismatch");
        let mut vol = 1.0;
        for i in 0..self.lo.len() {
            let l = self.lo[i].max(other.lo[i]);
            let h = self.hi[i].min(other.hi[i]);
            if h <= l {
                return 0.0;
            }
            vol *= h - l;
        }
        vol
    }

    /// Volume increase if extended to cover `other`.
    #[must_use]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn intersection_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        let c = r(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (closed intervals).
        let d = r(&[2.0, 0.0], &[3.0, 2.0]);
        assert!(a.intersects(&d));
    }

    #[test]
    fn containment() {
        let outer = r(&[0.0], &[10.0]);
        let inner = r(&[2.0], &[3.0]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
    }

    #[test]
    fn union_and_volume() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[2.0, 2.0], &[3.0, 4.0]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[3.0, 4.0]);
        assert_eq!(u.volume(), 12.0);
        assert_eq!(a.volume(), 1.0);
        assert_eq!(b.volume(), 2.0);
        assert_eq!(u.margin(), 7.0);
    }

    #[test]
    fn overlap_volume_cases() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.overlap_volume(&b), 1.0);
        let c = r(&[9.0, 9.0], &[10.0, 10.0]);
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn enlargement() {
        let a = r(&[0.0], &[1.0]);
        let b = r(&[3.0], &[4.0]);
        assert_eq!(a.enlargement(&b), 3.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn quantile_box_covers_mean() {
        let v = Pfv::new(vec![5.0, -3.0], vec![1.0, 0.5]).unwrap();
        let b = Rect::quantile_box(&v, 0.95);
        assert!(b.lo()[0] < 5.0 && 5.0 < b.hi()[0]);
        // width = 2·z·σ with z ≈ 1.96
        assert!((b.hi()[0] - b.lo()[0] - 2.0 * 1.959_964).abs() < 1e-4);
        assert!((b.hi()[1] - b.lo()[1] - 1.959_964).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn rejects_reversed() {
        let _ = r(&[1.0], &[0.0]);
    }
}
