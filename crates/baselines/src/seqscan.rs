//! A sequential pfv file and the scan-based query processor of paper §4.
//!
//! Page layout: `[count: u16] [entry: id u64, means d×f64, sigmas d×f64]*`.

use gauss_storage::store::{PageStore, StoreError};
use gauss_storage::{BufferPool, PageId, Reader, Writer};
use pfv::logsum::LogSumAcc;
use pfv::{combine, CombineMode, Pfv};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const PAGE_HEADER: usize = 2;

/// Errors from the sequential file.
#[derive(Debug)]
pub enum ScanError {
    /// Storage failure.
    Store(StoreError),
    /// Malformed page.
    Corrupt(&'static str),
    /// Query dimensionality does not match the file.
    DimMismatch {
        /// File dimensionality.
        expected: usize,
        /// Query dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Store(e) => write!(f, "store error: {e}"),
            ScanError::Corrupt(w) => write!(f, "corrupt pfv file: {w}"),
            ScanError::DimMismatch { expected, got } => {
                write!(f, "dimensionality mismatch: file {expected}, query {got}")
            }
        }
    }
}

impl std::error::Error for ScanError {}

impl From<StoreError> for ScanError {
    fn from(e: StoreError) -> Self {
        ScanError::Store(e)
    }
}

/// Reference to an entry inside a [`PfvFile`] (used by the X-tree's
/// refinement step to fetch candidate pfv).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryRef {
    /// Page holding the entry.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

/// An unordered, sequentially paged file of pfv — the paper's baseline
/// storage and the refinement source for the X-tree.
#[derive(Debug)]
pub struct PfvFile<S: PageStore> {
    pool: BufferPool<S>,
    dims: usize,
    pages: Vec<PageId>,
    len: u64,
    per_page: usize,
}

impl<S: PageStore> PfvFile<S> {
    /// Entry size in bytes for dimensionality `dims`.
    #[must_use]
    pub fn entry_bytes(dims: usize) -> usize {
        8 + 16 * dims
    }

    /// Builds a file from `(id, pfv)` pairs in input order.
    ///
    /// # Errors
    /// Storage errors, or a dimensionality mismatch between items.
    pub fn build(
        mut pool: BufferPool<S>,
        dims: usize,
        items: impl IntoIterator<Item = (u64, Pfv)>,
    ) -> Result<Self, ScanError> {
        assert!(dims > 0, "dimensionality must be positive");
        let page_size = pool.page_size();
        let per_page = (page_size - PAGE_HEADER) / Self::entry_bytes(dims);
        assert!(
            per_page >= 1,
            "page too small for one pfv of dimension {dims}"
        );

        let mut pages = Vec::new();
        let mut len = 0u64;
        let mut buf = vec![0u8; page_size];
        let mut in_page = 0usize;

        let flush = |pool: &mut BufferPool<S>,
                     buf: &mut [u8],
                     in_page: usize,
                     pages: &mut Vec<PageId>|
         -> Result<(), ScanError> {
            let id = pool.allocate()?;
            // lint: allow(no-panic) -- in_page is capped by the per-page entry capacity, far below u16::MAX
            buf[0..2].copy_from_slice(&u16::try_from(in_page).expect("fits").to_le_bytes());
            pool.write(id, buf)?;
            pages.push(id);
            Ok(())
        };

        for (id, v) in items {
            if v.dims() != dims {
                return Err(ScanError::DimMismatch {
                    expected: dims,
                    got: v.dims(),
                });
            }
            if in_page == per_page {
                flush(&mut pool, &mut buf, in_page, &mut pages)?;
                buf.iter_mut().for_each(|b| *b = 0);
                in_page = 0;
            }
            let off = PAGE_HEADER + in_page * Self::entry_bytes(dims);
            let mut w = Writer::new(&mut buf[off..off + Self::entry_bytes(dims)]);
            w.put_u64(id);
            w.put_f64_slice(v.means());
            w.put_f64_slice(v.sigmas());
            in_page += 1;
            len += 1;
        }
        if in_page > 0 {
            flush(&mut pool, &mut buf, in_page, &mut pages)?;
        }
        Ok(Self {
            pool,
            dims,
            pages,
            len,
            per_page,
        })
    }

    /// Number of stored pfv.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the stored pfv.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of data pages.
    #[must_use]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes a sequential scan of the file must stream: every page before
    /// the last in full (their per-page tail slack sits *between* live
    /// data, so the stream cannot skip it), plus only the used prefix of
    /// the last page. This is the byte count `DiskModel::scan_time_ms`
    /// bills — a page-granular model over-bills the scan by up to one page
    /// of trailing padding.
    #[must_use]
    pub fn data_bytes(&self) -> u64 {
        if self.pages.is_empty() {
            return 0;
        }
        let full_pages = self.pages.len() as u64 - 1;
        let last_entries = self.len - full_pages * self.per_page as u64;
        full_pages * self.pool.page_size() as u64
            + PAGE_HEADER as u64
            + last_entries * Self::entry_bytes(self.dims) as u64
    }

    /// Buffer pool access (stats, cold start).
    pub fn pool_mut(&mut self) -> &mut BufferPool<S> {
        &mut self.pool
    }

    /// Shared access statistics.
    #[must_use]
    pub fn stats(&self) -> &std::sync::Arc<gauss_storage::AccessStats> {
        self.pool.stats()
    }

    fn check_query(&self, q: &Pfv) -> Result<(), ScanError> {
        if q.dims() != self.dims {
            return Err(ScanError::DimMismatch {
                expected: self.dims,
                got: q.dims(),
            });
        }
        Ok(())
    }

    /// Visits every entry in file order.
    ///
    /// # Errors
    /// Storage errors or corrupt pages.
    pub fn for_each(&mut self, mut f: impl FnMut(EntryRef, u64, &Pfv)) -> Result<(), ScanError> {
        let dims = self.dims;
        for &page in &self.pages.clone() {
            let bytes = self.pool.page(page)?;
            let mut r = Reader::new(bytes);
            let count = r.get_u16().map_err(|_| ScanError::Corrupt("header"))? as usize;
            if count > self.per_page {
                return Err(ScanError::Corrupt("entry count exceeds capacity"));
            }
            for slot in 0..count {
                let id = r.get_u64().map_err(|_| ScanError::Corrupt("id"))?;
                let means = r
                    .get_f64_vec(dims)
                    .map_err(|_| ScanError::Corrupt("means"))?;
                let sigmas = r
                    .get_f64_vec(dims)
                    .map_err(|_| ScanError::Corrupt("sigmas"))?;
                let v = Pfv::new(means, sigmas).map_err(|_| ScanError::Corrupt("pfv"))?;
                f(
                    EntryRef {
                        page,
                        slot: slot as u16,
                    },
                    id,
                    &v,
                );
            }
        }
        Ok(())
    }

    /// Fetches a single entry by reference (one page access, possibly
    /// cached).
    ///
    /// # Errors
    /// Storage errors or an out-of-range slot.
    pub fn fetch(&mut self, at: EntryRef) -> Result<(u64, Pfv), ScanError> {
        let dims = self.dims;
        let bytes = self.pool.page(at.page)?;
        let mut r = Reader::new(bytes);
        let count = r.get_u16().map_err(|_| ScanError::Corrupt("header"))? as usize;
        if at.slot as usize >= count {
            return Err(ScanError::Corrupt("slot out of range"));
        }
        let off = PAGE_HEADER + at.slot as usize * Self::entry_bytes(dims);
        let mut r = Reader::new(&bytes[off..off + Self::entry_bytes(dims)]);
        let id = r.get_u64().map_err(|_| ScanError::Corrupt("id"))?;
        let means = r
            .get_f64_vec(dims)
            .map_err(|_| ScanError::Corrupt("means"))?;
        let sigmas = r
            .get_f64_vec(dims)
            .map_err(|_| ScanError::Corrupt("sigmas"))?;
        let v = Pfv::new(means, sigmas).map_err(|_| ScanError::Corrupt("pfv"))?;
        Ok((id, v))
    }

    /// k-MLIQ by a single sequential scan (paper §4): keeps the k densest
    /// objects seen so far in a local list.
    ///
    /// # Errors
    /// Storage errors or dimensionality mismatch.
    pub fn k_mliq(
        &mut self,
        q: &Pfv,
        k: usize,
        mode: CombineMode,
    ) -> Result<Vec<(u64, f64)>, ScanError> {
        self.check_query(q)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        // Min-heap of (log density, Reverse(id)) keeping the k best.
        let mut best: BinaryHeap<Reverse<(FloatOrd, Reverse<u64>)>> = BinaryHeap::new();
        self.for_each(|_, id, v| {
            let ld = combine::log_joint(mode, v, q);
            let key = (FloatOrd(ld), Reverse(id));
            if best.len() < k {
                best.push(Reverse(key));
            // lint: allow(no-panic) -- the else branch runs only when best.len() >= k > 0
            } else if key > best.peek().expect("non-empty").0 {
                best.pop();
                best.push(Reverse(key));
            }
        })?;
        let mut out: Vec<(u64, f64)> = best
            .into_iter()
            .map(|Reverse((FloatOrd(ld), Reverse(id)))| (id, ld))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }

    /// k-MLIQ with exact identification probabilities: one scan for
    /// candidates plus the running denominator (single pass suffices — the
    /// denominator does not depend on the candidate set).
    ///
    /// # Errors
    /// Storage errors or dimensionality mismatch.
    pub fn k_mliq_with_probability(
        &mut self,
        q: &Pfv,
        k: usize,
        mode: CombineMode,
    ) -> Result<Vec<(u64, f64, f64)>, ScanError> {
        self.check_query(q)?;
        let mut denom = LogSumAcc::new();
        let mut best: BinaryHeap<Reverse<(FloatOrd, Reverse<u64>)>> = BinaryHeap::new();
        self.for_each(|_, id, v| {
            let ld = combine::log_joint(mode, v, q);
            denom.add(ld);
            let key = (FloatOrd(ld), Reverse(id));
            if best.len() < k {
                best.push(Reverse(key));
            // lint: allow(no-panic) -- guarded by k > 0 and best.len() >= k in the condition chain
            } else if k > 0 && key > best.peek().expect("non-empty").0 {
                best.pop();
                best.push(Reverse(key));
            }
        })?;
        let d = denom.value();
        let mut out: Vec<(u64, f64, f64)> = best
            .into_iter()
            .map(|Reverse((FloatOrd(ld), Reverse(id)))| (id, ld, (ld - d).exp()))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }

    /// Threshold identification query by two sequential scans (paper §4):
    /// the first scan determines the total probability mass, the second
    /// reports every object at or above `p_theta`.
    ///
    /// # Errors
    /// Storage errors or dimensionality mismatch.
    ///
    /// # Panics
    /// Panics unless `0 < p_theta <= 1`.
    pub fn tiq(
        &mut self,
        q: &Pfv,
        p_theta: f64,
        mode: CombineMode,
    ) -> Result<Vec<(u64, f64, f64)>, ScanError> {
        assert!(
            p_theta > 0.0 && p_theta <= 1.0,
            "threshold must be in (0,1], got {p_theta}"
        );
        self.check_query(q)?;
        // Pass 1: denominator.
        let mut denom = LogSumAcc::new();
        self.for_each(|_, _, v| {
            denom.add(combine::log_joint(mode, v, q));
        })?;
        let d = denom.value();
        // Pass 2: report.
        let ln_theta = p_theta.ln();
        let mut out = Vec::new();
        self.for_each(|_, id, v| {
            let ld = combine::log_joint(mode, v, q);
            if ld - d >= ln_theta {
                out.push((id, ld, (ld - d).exp()));
            }
        })?;
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }
}

/// Total-order f64 wrapper for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FloatOrd(f64);

impl Eq for FloatOrd {}
impl PartialOrd for FloatOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FloatOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauss_storage::{AccessStats, MemStore};

    fn make_file(n: usize, dims: usize) -> (PfvFile<MemStore>, Vec<(u64, Pfv)>) {
        let items: Vec<(u64, Pfv)> = (0..n as u64)
            .map(|i| {
                let means: Vec<f64> = (0..dims)
                    .map(|d| ((i + d as u64) as f64 * 0.7).sin() * 5.0)
                    .collect();
                let sigmas: Vec<f64> = (0..dims)
                    .map(|d| 0.1 + ((i as usize + d) % 5) as f64 * 0.1)
                    .collect();
                (i, Pfv::new(means, sigmas).unwrap())
            })
            .collect();
        let pool = BufferPool::new(MemStore::new(4096), 1024, AccessStats::new_shared());
        let file = PfvFile::build(pool, dims, items.clone()).unwrap();
        (file, items)
    }

    #[test]
    fn data_bytes_excludes_only_last_page_padding() {
        let (f, _) = make_file(100, 3);
        let entry = PfvFile::<MemStore>::entry_bytes(3);
        let per_page = (4096 - PAGE_HEADER) / entry;
        assert!(
            100 % per_page != 0,
            "test needs a partially filled last page"
        );
        let bytes = f.data_bytes();
        let page_granular = f.num_pages() as u64 * 4096;
        assert!(bytes < page_granular, "trailing padding must not be billed");
        // Full pages stream in full (their tail slack sits between live
        // data); only the last page's used prefix counts.
        let full_pages = f.num_pages() as u64 - 1;
        let last_entries = 100 - full_pages * per_page as u64;
        assert_eq!(
            bytes,
            full_pages * 4096 + PAGE_HEADER as u64 + last_entries * entry as u64
        );
        // The discount is strictly less than one page.
        assert!(page_granular - bytes < 4096);
    }

    #[test]
    fn build_and_iterate() {
        let (mut f, items) = make_file(100, 3);
        assert_eq!(f.len(), 100);
        let mut got = Vec::new();
        f.for_each(|_, id, v| got.push((id, v.clone()))).unwrap();
        assert_eq!(got.len(), 100);
        for ((gid, gv), (wid, wv)) in got.iter().zip(items.iter()) {
            assert_eq!(gid, wid);
            assert_eq!(gv, wv);
        }
    }

    #[test]
    fn fetch_by_reference() {
        let (mut f, items) = make_file(50, 2);
        let mut refs = Vec::new();
        f.for_each(|r, id, _| refs.push((r, id))).unwrap();
        for (r, want_id) in refs {
            let (id, v) = f.fetch(r).unwrap();
            assert_eq!(id, want_id);
            assert_eq!(&v, &items[id as usize].1);
        }
    }

    #[test]
    fn k_mliq_matches_posteriors_ranking() {
        let (mut f, items) = make_file(80, 2);
        let db: Vec<Pfv> = items.iter().map(|(_, v)| v.clone()).collect();
        let q = Pfv::new(vec![1.0, -1.0], vec![0.3, 0.2]).unwrap();
        let got = f.k_mliq(&q, 5, CombineMode::Convolution).unwrap();
        let truth = pfv::posteriors(CombineMode::Convolution, &db, &q);
        let mut want: Vec<(u64, f64)> = truth
            .iter()
            .map(|p| (p.index as u64, p.log_density))
            .collect();
        want.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        want.truncate(5);
        assert_eq!(got.len(), 5);
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.0, w.0);
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn tiq_matches_posteriors() {
        let (mut f, items) = make_file(60, 2);
        let db: Vec<Pfv> = items.iter().map(|(_, v)| v.clone()).collect();
        let q = Pfv::new(items[7].1.means().to_vec(), vec![0.2, 0.2]).unwrap();
        let got = f.tiq(&q, 0.05, CombineMode::Convolution).unwrap();
        let truth = pfv::posteriors(CombineMode::Convolution, &db, &q);
        let mut want: Vec<u64> = truth
            .iter()
            .filter(|p| p.probability >= 0.05)
            .map(|p| p.index as u64)
            .collect();
        want.sort_unstable();
        let mut got_ids: Vec<u64> = got.iter().map(|g| g.0).collect();
        got_ids.sort_unstable();
        assert_eq!(got_ids, want);
        for (_, _, p) in &got {
            assert!(*p >= 0.05 - 1e-12);
        }
    }

    #[test]
    fn tiq_scans_file_twice() {
        let (mut f, _) = make_file(100, 2);
        f.pool_mut().clear_cache();
        f.stats().reset();
        let q = Pfv::new(vec![0.0, 0.0], vec![0.3, 0.3]).unwrap();
        let _ = f.tiq(&q, 0.5, CombineMode::Convolution).unwrap();
        let s = f.stats().snapshot();
        assert_eq!(s.logical_reads, 2 * f.num_pages() as u64);
        // Second pass is served from cache (file fits).
        assert_eq!(s.physical_reads, f.num_pages() as u64);
    }

    #[test]
    fn k_mliq_scans_once() {
        let (mut f, _) = make_file(100, 2);
        f.pool_mut().clear_cache();
        f.stats().reset();
        let q = Pfv::new(vec![0.0, 0.0], vec![0.3, 0.3]).unwrap();
        let _ = f.k_mliq(&q, 3, CombineMode::Convolution).unwrap();
        assert_eq!(f.stats().snapshot().logical_reads, f.num_pages() as u64);
    }

    #[test]
    fn empty_file() {
        let pool = BufferPool::new(MemStore::new(4096), 16, AccessStats::new_shared());
        let mut f = PfvFile::build(pool, 2, Vec::new()).unwrap();
        assert!(f.is_empty());
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        assert!(f
            .k_mliq(&q, 3, CombineMode::Convolution)
            .unwrap()
            .is_empty());
        assert!(f.tiq(&q, 0.5, CombineMode::Convolution).unwrap().is_empty());
    }

    #[test]
    fn probability_variant_matches_plain() {
        let (mut f, _) = make_file(60, 2);
        let q = Pfv::new(vec![0.5, 0.5], vec![0.2, 0.2]).unwrap();
        let plain = f.k_mliq(&q, 4, CombineMode::Convolution).unwrap();
        let withp = f
            .k_mliq_with_probability(&q, 4, CombineMode::Convolution)
            .unwrap();
        assert_eq!(plain.len(), withp.len());
        let total: f64 = withp.iter().map(|r| r.2).sum();
        assert!(total <= 1.0 + 1e-9);
        for (p, w) in plain.iter().zip(withp.iter()) {
            assert_eq!(p.0, w.0);
        }
    }

    #[test]
    fn rejects_wrong_dims() {
        let (mut f, _) = make_file(10, 3);
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        assert!(matches!(
            f.k_mliq(&q, 1, CombineMode::Convolution),
            Err(ScanError::DimMismatch { .. })
        ));
    }
}
