//! An X-tree (Berchtold, Keim, Kriegel — VLDB 1996) over hyper-rectangle
//! approximations of pfv.
//!
//! The paper's strongest baseline stores, for each pfv, the 95 %-quantile
//! box `[μᵢ − zσᵢ, μᵢ + zσᵢ]` in an X-tree; a query builds its own box, the
//! tree reports every intersecting entry, and the candidate set is refined
//! against the pfv file with the exact Lemma-1 densities. The method
//! *allows false dismissals* (an actual match can fall outside its 95 % box)
//! — the paper notes precision/recall "only slightly below" the Gauss-tree.
//!
//! The X-tree extends the R-tree with:
//!
//! * a **topological (R\*-style) split**: choose the axis with minimal
//!   margin sum, then the distribution with minimal overlap;
//! * an **overlap test**: if the best split still overlaps more than
//!   `max_overlap` of the union volume, the node is not split but grown
//!   into a **supernode** spanning multiple consecutive pages (reading a
//!   supernode costs as many page accesses as it has pages — this is what
//!   makes the X-tree degrade gracefully instead of degenerating in high
//!   dimensions).

use crate::rect::Rect;
use crate::seqscan::{EntryRef, PfvFile, ScanError};
use gauss_storage::store::{PageStore, StoreError};
use gauss_storage::{BufferPool, PageId, Reader, Writer};
use pfv::logsum::LogSumAcc;
use pfv::{combine, CombineMode, Pfv};

const KIND_LEAF: u8 = 0;
const KIND_DIR: u8 = 1;
const RUN_HEADER: usize = 8; // kind u8, n_pages u16, count u16, pad 3

/// Configuration of an [`XTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XTreeConfig {
    /// Dimensionality of the indexed boxes.
    pub dims: usize,
    /// Quantile coverage of the stored boxes (paper: 0.95).
    pub coverage: f64,
    /// Maximum tolerated overlap fraction (∩ volume / ∪ volume) of a split
    /// before a supernode is created instead. The X-tree paper uses 0.2.
    pub max_overlap: f64,
    /// Minimum fill fraction per split half (R\*: 0.4).
    pub min_fill: f64,
    /// Hard cap on supernode size, in pages; a split is forced beyond it.
    pub max_supernode_pages: usize,
}

impl XTreeConfig {
    /// Paper-faithful defaults for dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        Self {
            dims,
            coverage: 0.95,
            max_overlap: 0.2,
            min_fill: 0.4,
            max_supernode_pages: 8,
        }
    }
}

/// Leaf entry: the approximation box plus where to find the exact pfv.
#[derive(Debug, Clone, PartialEq)]
pub struct XLeafEntry {
    /// External object id.
    pub id: u64,
    /// Location of the pfv in the companion [`PfvFile`].
    pub data_ref: EntryRef,
    /// The quantile box.
    pub rect: Rect,
}

#[derive(Debug, Clone, PartialEq)]
struct XDirEntry {
    child: PageId,
    child_pages: u16,
    rect: Rect,
}

#[derive(Debug, Clone, PartialEq)]
enum XNode {
    Leaf(Vec<XLeafEntry>),
    Dir(Vec<XDirEntry>),
}

impl XNode {
    fn len(&self) -> usize {
        match self {
            XNode::Leaf(e) => e.len(),
            XNode::Dir(e) => e.len(),
        }
    }

    fn rect(&self) -> Rect {
        match self {
            XNode::Leaf(es) => {
                let mut r = es[0].rect.clone();
                for e in &es[1..] {
                    r.extend(&e.rect);
                }
                r
            }
            XNode::Dir(es) => {
                let mut r = es[0].rect.clone();
                for e in &es[1..] {
                    r.extend(&e.rect);
                }
                r
            }
        }
    }
}

/// Errors from the X-tree.
#[derive(Debug)]
pub enum XTreeError {
    /// Storage failure.
    Store(StoreError),
    /// Malformed node run.
    Corrupt(&'static str),
    /// Refinement against the pfv file failed.
    Scan(ScanError),
    /// Dimensionality mismatch.
    DimMismatch {
        /// Tree dimensionality.
        expected: usize,
        /// Query dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for XTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XTreeError::Store(e) => write!(f, "store error: {e}"),
            XTreeError::Corrupt(w) => write!(f, "corrupt X-tree: {w}"),
            XTreeError::Scan(e) => write!(f, "refinement error: {e}"),
            XTreeError::DimMismatch { expected, got } => {
                write!(f, "dimensionality mismatch: tree {expected}, query {got}")
            }
        }
    }
}

impl std::error::Error for XTreeError {}

impl From<StoreError> for XTreeError {
    fn from(e: StoreError) -> Self {
        XTreeError::Store(e)
    }
}

impl From<ScanError> for XTreeError {
    fn from(e: ScanError) -> Self {
        XTreeError::Scan(e)
    }
}

/// Reference to a node run: first page and number of consecutive pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunRef {
    first: PageId,
    pages: u16,
}

/// The X-tree index.
#[derive(Debug)]
pub struct XTree<S: PageStore> {
    pool: BufferPool<S>,
    config: XTreeConfig,
    root: RunRef,
    height: u32,
    len: u64,
    leaf_per_page: usize,
    dir_per_page: usize,
}

enum InsertResult {
    /// Node updated in place (possibly re-allocated); new run + rect.
    Updated(RunRef, Rect),
    /// Node split in two.
    Split((RunRef, Rect), (RunRef, Rect)),
}

impl<S: PageStore> XTree<S> {
    fn leaf_entry_bytes(dims: usize) -> usize {
        8 + 8 + 2 + 16 * dims
    }

    fn dir_entry_bytes(dims: usize) -> usize {
        8 + 2 + 16 * dims
    }

    /// Creates an empty X-tree.
    ///
    /// # Errors
    /// Storage errors; panics if a page cannot hold two entries.
    pub fn create(mut pool: BufferPool<S>, config: XTreeConfig) -> Result<Self, XTreeError> {
        let ps = pool.page_size();
        let leaf_per_page = (ps - RUN_HEADER) / Self::leaf_entry_bytes(config.dims);
        let dir_per_page = (ps - RUN_HEADER) / Self::dir_entry_bytes(config.dims);
        assert!(
            leaf_per_page >= 2 && dir_per_page >= 2,
            "page size {ps} too small for X-tree nodes of dimension {}",
            config.dims
        );
        let root_page = pool.allocate()?;
        let mut tree = Self {
            pool,
            config,
            root: RunRef {
                first: root_page,
                pages: 1,
            },
            height: 0,
            len: 0,
            leaf_per_page,
            dir_per_page,
        };
        let root = tree.root;
        tree.write_node(root, &XNode::Leaf(Vec::new()))?;
        Ok(tree)
    }

    /// Builds an X-tree over every entry of a pfv file, inserting the
    /// `coverage`-quantile box of each pfv.
    ///
    /// # Errors
    /// Storage/scan errors.
    pub fn build_from_file(
        pool: BufferPool<S>,
        config: XTreeConfig,
        file: &mut PfvFile<impl PageStore>,
    ) -> Result<Self, XTreeError> {
        let mut tree = Self::create(pool, config)?;
        let mut pending = Vec::with_capacity(file.len() as usize);
        file.for_each(|r, id, v| {
            pending.push((id, r, Rect::quantile_box(v, config.coverage)));
        })?;
        for (id, data_ref, rect) in pending {
            tree.insert(XLeafEntry { id, data_ref, rect })?;
        }
        Ok(tree)
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 = root is a leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Buffer pool access (stats, cold start).
    pub fn pool_mut(&mut self) -> &mut BufferPool<S> {
        &mut self.pool
    }

    /// Shared access statistics.
    #[must_use]
    pub fn stats(&self) -> &std::sync::Arc<gauss_storage::AccessStats> {
        self.pool.stats()
    }

    // ---- node I/O ----------------------------------------------------------

    fn capacity(&self, node: &XNode, pages: u16) -> usize {
        let per = match node {
            XNode::Leaf(_) => self.leaf_per_page,
            XNode::Dir(_) => self.dir_per_page,
        };
        per * pages as usize
    }

    fn read_node(&mut self, run: RunRef) -> Result<XNode, XTreeError> {
        let ps = self.pool.page_size();
        let mut bytes = Vec::with_capacity(ps * run.pages as usize);
        for i in 0..run.pages {
            let page = self.pool.page(PageId(run.first.index() + u64::from(i)))?;
            bytes.extend_from_slice(page);
        }
        let mut r = Reader::new(&bytes);
        let kind = r.get_u8().map_err(|_| XTreeError::Corrupt("header"))?;
        let n_pages = r.get_u16().map_err(|_| XTreeError::Corrupt("header"))?;
        let count = r.get_u16().map_err(|_| XTreeError::Corrupt("header"))? as usize;
        if n_pages != run.pages {
            return Err(XTreeError::Corrupt("run length mismatch"));
        }
        for _ in 0..(RUN_HEADER - 5) {
            let _ = r.get_u8().map_err(|_| XTreeError::Corrupt("header"))?;
        }
        let dims = self.config.dims;
        match kind {
            KIND_LEAF => {
                let mut es = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = r.get_u64().map_err(|_| XTreeError::Corrupt("entry"))?;
                    let page = PageId(r.get_u64().map_err(|_| XTreeError::Corrupt("entry"))?);
                    let slot = r.get_u16().map_err(|_| XTreeError::Corrupt("entry"))?;
                    let lo = r
                        .get_f64_vec(dims)
                        .map_err(|_| XTreeError::Corrupt("entry"))?;
                    let hi = r
                        .get_f64_vec(dims)
                        .map_err(|_| XTreeError::Corrupt("entry"))?;
                    es.push(XLeafEntry {
                        id,
                        data_ref: EntryRef { page, slot },
                        rect: Rect::new(lo, hi),
                    });
                }
                Ok(XNode::Leaf(es))
            }
            KIND_DIR => {
                let mut es = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = PageId(r.get_u64().map_err(|_| XTreeError::Corrupt("entry"))?);
                    let child_pages = r.get_u16().map_err(|_| XTreeError::Corrupt("entry"))?;
                    let lo = r
                        .get_f64_vec(dims)
                        .map_err(|_| XTreeError::Corrupt("entry"))?;
                    let hi = r
                        .get_f64_vec(dims)
                        .map_err(|_| XTreeError::Corrupt("entry"))?;
                    es.push(XDirEntry {
                        child,
                        child_pages,
                        rect: Rect::new(lo, hi),
                    });
                }
                Ok(XNode::Dir(es))
            }
            _ => Err(XTreeError::Corrupt("unknown kind")),
        }
    }

    /// Serialises `node` into the run (the run must be large enough).
    fn write_node(&mut self, run: RunRef, node: &XNode) -> Result<(), XTreeError> {
        let ps = self.pool.page_size();
        let mut bytes = vec![0u8; ps * run.pages as usize];
        {
            let mut w = Writer::new(&mut bytes);
            let (kind, count) = match node {
                XNode::Leaf(es) => (KIND_LEAF, es.len()),
                XNode::Dir(es) => (KIND_DIR, es.len()),
            };
            w.put_u8(kind);
            w.put_u16(run.pages);
            // lint: allow(no-panic) -- entry counts are capped by the supernode run capacity, below u16::MAX
            w.put_u16(u16::try_from(count).expect("entry count fits u16"));
            for _ in 0..(RUN_HEADER - 5) {
                w.put_u8(0);
            }
            match node {
                XNode::Leaf(es) => {
                    for e in es {
                        w.put_u64(e.id);
                        w.put_u64(e.data_ref.page.index());
                        w.put_u16(e.data_ref.slot);
                        w.put_f64_slice(e.rect.lo());
                        w.put_f64_slice(e.rect.hi());
                    }
                }
                XNode::Dir(es) => {
                    for e in es {
                        w.put_u64(e.child.index());
                        w.put_u16(e.child_pages);
                        w.put_f64_slice(e.rect.lo());
                        w.put_f64_slice(e.rect.hi());
                    }
                }
            }
        }
        for i in 0..run.pages {
            self.pool.write(
                PageId(run.first.index() + u64::from(i)),
                &bytes[i as usize * ps..(i as usize + 1) * ps],
            )?;
        }
        Ok(())
    }

    /// Allocates a run of `pages` consecutive pages.
    fn allocate_run(&mut self, pages: u16) -> Result<RunRef, XTreeError> {
        let first = self.pool.allocate()?;
        for i in 1..u64::from(pages) {
            let next = self.pool.allocate()?;
            // Both stores allocate densely, so runs are contiguous.
            debug_assert_eq!(next.index(), first.index() + i, "non-contiguous run");
        }
        Ok(RunRef { first, pages })
    }

    // ---- insertion ---------------------------------------------------------

    /// Inserts a pre-built leaf entry.
    ///
    /// # Errors
    /// Storage errors or dimensionality mismatch.
    pub fn insert(&mut self, entry: XLeafEntry) -> Result<(), XTreeError> {
        if entry.rect.dims() != self.config.dims {
            return Err(XTreeError::DimMismatch {
                expected: self.config.dims,
                got: entry.rect.dims(),
            });
        }
        let root = self.root;
        match self.insert_rec(root, self.height, entry)? {
            InsertResult::Updated(run, _) => {
                self.root = run;
            }
            InsertResult::Split((left_run, left_rect), (right_run, right_rect)) => {
                let node = XNode::Dir(vec![
                    XDirEntry {
                        child: left_run.first,
                        child_pages: left_run.pages,
                        rect: left_rect,
                    },
                    XDirEntry {
                        child: right_run.first,
                        child_pages: right_run.pages,
                        rect: right_rect,
                    },
                ]);
                let run = self.allocate_run(1)?;
                self.write_node(run, &node)?;
                self.root = run;
                self.height += 1;
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        run: RunRef,
        level: u32,
        entry: XLeafEntry,
    ) -> Result<InsertResult, XTreeError> {
        let node = self.read_node(run)?;
        if level == 0 {
            let XNode::Leaf(mut es) = node else {
                return Err(XTreeError::Corrupt("expected leaf"));
            };
            es.push(entry);
            self.finish_overflow(run, XNode::Leaf(es))
        } else {
            let XNode::Dir(mut es) = node else {
                return Err(XTreeError::Corrupt("expected dir"));
            };
            if es.is_empty() {
                return Err(XTreeError::Corrupt("empty dir node"));
            }
            // R*-lite choose-subtree: minimal volume enlargement, then
            // minimal volume.
            let mut best = (f64::INFINITY, f64::INFINITY, 0usize);
            for (i, e) in es.iter().enumerate() {
                let enl = e.rect.enlargement(&entry.rect);
                let vol = e.rect.volume();
                if enl < best.0 || (enl == best.0 && vol < best.1) {
                    best = (enl, vol, i);
                }
            }
            let idx = best.2;
            let child_run = RunRef {
                first: es[idx].child,
                pages: es[idx].child_pages,
            };
            match self.insert_rec(child_run, level - 1, entry)? {
                InsertResult::Updated(new_run, rect) => {
                    es[idx] = XDirEntry {
                        child: new_run.first,
                        child_pages: new_run.pages,
                        rect,
                    };
                }
                InsertResult::Split((lr, lrect), (rr, rrect)) => {
                    es[idx] = XDirEntry {
                        child: lr.first,
                        child_pages: lr.pages,
                        rect: lrect,
                    };
                    es.push(XDirEntry {
                        child: rr.first,
                        child_pages: rr.pages,
                        rect: rrect,
                    });
                }
            }
            self.finish_overflow(run, XNode::Dir(es))
        }
    }

    /// Writes a possibly-overflowing node back: in place if it fits, split
    /// if a good split exists, supernode otherwise.
    fn finish_overflow(&mut self, run: RunRef, node: XNode) -> Result<InsertResult, XTreeError> {
        if node.len() <= self.capacity(&node, run.pages) {
            let rect = node.rect();
            self.write_node(run, &node)?;
            return Ok(InsertResult::Updated(run, rect));
        }
        // Overflow: attempt a topological split.
        let split = self.try_split(&node);
        match split {
            Some((left, right)) => {
                let left_run = self.run_for(&left, run)?;
                let right_pages = self.pages_needed(&right);
                let right_run = self.allocate_run(right_pages)?;
                let lrect = left.rect();
                let rrect = right.rect();
                self.write_node(left_run, &left)?;
                self.write_node(right_run, &right)?;
                Ok(InsertResult::Split((left_run, lrect), (right_run, rrect)))
            }
            None => {
                // Grow into (or extend) a supernode.
                let pages = self.pages_needed(&node);
                let new_run = if pages == run.pages {
                    run
                } else {
                    self.allocate_run(pages)?
                };
                let rect = node.rect();
                self.write_node(new_run, &node)?;
                Ok(InsertResult::Updated(new_run, rect))
            }
        }
    }

    fn pages_needed(&self, node: &XNode) -> u16 {
        let per = match node {
            XNode::Leaf(_) => self.leaf_per_page,
            XNode::Dir(_) => self.dir_per_page,
        };
        // lint: allow(no-panic) -- page runs are capped by the supernode limit, far below u16::MAX
        u16::try_from(node.len().div_ceil(per).max(1)).expect("page run fits u16")
    }

    /// Left half reuses the original run when it shrank to fit, otherwise a
    /// fresh, right-sized run.
    fn run_for(&mut self, node: &XNode, old: RunRef) -> Result<RunRef, XTreeError> {
        let pages = self.pages_needed(node);
        if pages == old.pages {
            Ok(old)
        } else {
            self.allocate_run(pages)
        }
    }

    /// R\*-style topological split; `None` if every distribution overlaps
    /// too much and the supernode cap is not yet reached (the X-tree's
    /// defining decision).
    fn try_split(&self, node: &XNode) -> Option<(XNode, XNode)> {
        let rects: Vec<Rect> = match node {
            XNode::Leaf(es) => es.iter().map(|e| e.rect.clone()).collect(),
            XNode::Dir(es) => es.iter().map(|e| e.rect.clone()).collect(),
        };
        let n = rects.len();
        let m = ((self.config.min_fill * n as f64).ceil() as usize).clamp(1, n / 2);
        let dims = self.config.dims;

        let mut best: Option<(f64, f64, Vec<usize>, usize)> = None; // (overlap_frac, margin, order, split_at)
        for axis in 0..dims {
            for by_upper in [false, true] {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    let ka = if by_upper {
                        rects[a].hi()[axis]
                    } else {
                        rects[a].lo()[axis]
                    };
                    let kb = if by_upper {
                        rects[b].hi()[axis]
                    } else {
                        rects[b].lo()[axis]
                    };
                    ka.total_cmp(&kb)
                });
                for split_at in m..=(n - m) {
                    let (ra, rb) = group_rects(&rects, &order, split_at);
                    let overlap = ra.overlap_volume(&rb);
                    let union = ra.union(&rb).volume();
                    let frac = if union > 0.0 { overlap / union } else { 0.0 };
                    let margin = ra.margin() + rb.margin();
                    let better = match &best {
                        None => true,
                        Some((bf, bm, ..)) => frac < *bf || (frac == *bf && margin < *bm),
                    };
                    if better {
                        best = Some((frac, margin, order.clone(), split_at));
                    }
                }
            }
        }
        let (frac, _, order, split_at) = best?;
        let current_pages = self.pages_needed(node);
        if frac > self.config.max_overlap
            && (current_pages as usize) < self.config.max_supernode_pages
        {
            return None; // become/grow a supernode instead
        }
        Some(split_node(node, &order, split_at))
    }

    // ---- queries -----------------------------------------------------------

    /// Every leaf entry whose box intersects `qbox` (the filter step).
    ///
    /// # Errors
    /// Storage errors or dimensionality mismatch.
    pub fn candidates(&mut self, qbox: &Rect) -> Result<Vec<XLeafEntry>, XTreeError> {
        if qbox.dims() != self.config.dims {
            return Err(XTreeError::DimMismatch {
                expected: self.config.dims,
                got: qbox.dims(),
            });
        }
        let mut out = Vec::new();
        if self.is_empty() {
            return Ok(out);
        }
        let mut stack = vec![self.root];
        while let Some(run) = stack.pop() {
            match self.read_node(run)? {
                XNode::Leaf(es) => {
                    for e in es {
                        if e.rect.intersects(qbox) {
                            out.push(e);
                        }
                    }
                }
                XNode::Dir(es) => {
                    for e in es {
                        if e.rect.intersects(qbox) {
                            stack.push(RunRef {
                                first: e.child,
                                pages: e.child_pages,
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The paper's X-tree MLIQ: filter by box intersection, refine the
    /// candidates against the pfv file with exact Lemma-1 densities, return
    /// the k best. *Approximate* — false dismissals are possible.
    ///
    /// # Errors
    /// Storage/scan errors or dimensionality mismatch.
    pub fn k_mliq(
        &mut self,
        file: &mut PfvFile<impl PageStore>,
        q: &Pfv,
        k: usize,
        mode: CombineMode,
    ) -> Result<Vec<(u64, f64)>, XTreeError> {
        let qbox = Rect::quantile_box(q, self.config.coverage);
        let cands = self.candidates(&qbox)?;
        let mut scored = Vec::with_capacity(cands.len());
        for c in cands {
            let (id, v) = file.fetch(c.data_ref)?;
            debug_assert_eq!(id, c.id);
            scored.push((id, combine::log_joint(mode, &v, q)));
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        Ok(scored)
    }

    /// The X-tree TIQ: filter, refine, and normalise by the candidate-set
    /// density sum. The denominator misses every non-candidate, so reported
    /// probabilities are *over*estimates — another reason the method is
    /// approximate.
    ///
    /// # Errors
    /// Storage/scan errors or dimensionality mismatch.
    ///
    /// # Panics
    /// Panics unless `0 < p_theta <= 1`.
    pub fn tiq(
        &mut self,
        file: &mut PfvFile<impl PageStore>,
        q: &Pfv,
        p_theta: f64,
        mode: CombineMode,
    ) -> Result<Vec<(u64, f64, f64)>, XTreeError> {
        assert!(
            p_theta > 0.0 && p_theta <= 1.0,
            "threshold must be in (0,1], got {p_theta}"
        );
        let qbox = Rect::quantile_box(q, self.config.coverage);
        let cands = self.candidates(&qbox)?;
        let mut scored = Vec::with_capacity(cands.len());
        let mut denom = LogSumAcc::new();
        for c in cands {
            let (id, v) = file.fetch(c.data_ref)?;
            let ld = combine::log_joint(mode, &v, q);
            denom.add(ld);
            scored.push((id, ld));
        }
        let d = denom.value();
        let ln_theta = p_theta.ln();
        let mut out: Vec<(u64, f64, f64)> = scored
            .into_iter()
            .filter(|&(_, ld)| ld - d >= ln_theta)
            .map(|(id, ld)| (id, ld, (ld - d).exp()))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(out)
    }

    /// Walks the whole tree and reports `(leaf nodes, dir nodes, supernodes,
    /// total pages)` — used by tests and diagnostics.
    ///
    /// # Errors
    /// Storage errors.
    pub fn shape(&mut self) -> Result<(usize, usize, usize, u64), XTreeError> {
        let mut leaves = 0;
        let mut dirs = 0;
        let mut supers = 0;
        let mut pages = 0u64;
        let mut stack = vec![self.root];
        while let Some(run) = stack.pop() {
            pages += u64::from(run.pages);
            if run.pages > 1 {
                supers += 1;
            }
            match self.read_node(run)? {
                XNode::Leaf(_) => leaves += 1,
                XNode::Dir(es) => {
                    dirs += 1;
                    for e in es {
                        stack.push(RunRef {
                            first: e.child,
                            pages: e.child_pages,
                        });
                    }
                }
            }
        }
        Ok((leaves, dirs, supers, pages))
    }
}

fn group_rects(rects: &[Rect], order: &[usize], split_at: usize) -> (Rect, Rect) {
    let mut a = rects[order[0]].clone();
    for &i in &order[1..split_at] {
        a.extend(&rects[i]);
    }
    let mut b = rects[order[split_at]].clone();
    for &i in &order[split_at + 1..] {
        b.extend(&rects[i]);
    }
    (a, b)
}

fn split_node(node: &XNode, order: &[usize], split_at: usize) -> (XNode, XNode) {
    match node {
        XNode::Leaf(es) => {
            let left = order[..split_at].iter().map(|&i| es[i].clone()).collect();
            let right = order[split_at..].iter().map(|&i| es[i].clone()).collect();
            (XNode::Leaf(left), XNode::Leaf(right))
        }
        XNode::Dir(es) => {
            let left = order[..split_at].iter().map(|&i| es[i].clone()).collect();
            let right = order[split_at..].iter().map(|&i| es[i].clone()).collect();
            (XNode::Dir(left), XNode::Dir(right))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauss_storage::{AccessStats, MemStore};

    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn make_db(n: usize, dims: usize, seed: u64) -> Vec<(u64, Pfv)> {
        let mut rng = Rng(seed | 1);
        (0..n as u64)
            .map(|id| {
                let means: Vec<f64> = (0..dims).map(|_| rng.next_f64() * 10.0).collect();
                let sigmas: Vec<f64> = (0..dims).map(|_| 0.05 + rng.next_f64() * 0.3).collect();
                (id, Pfv::new(means, sigmas).unwrap())
            })
            .collect()
    }

    fn build(items: &[(u64, Pfv)], dims: usize) -> (XTree<MemStore>, PfvFile<MemStore>) {
        let file_pool = BufferPool::new(MemStore::new(4096), 4096, AccessStats::new_shared());
        let mut file = PfvFile::build(file_pool, dims, items.to_vec()).unwrap();
        let tree_pool = BufferPool::new(MemStore::new(4096), 4096, AccessStats::new_shared());
        let tree = XTree::build_from_file(tree_pool, XTreeConfig::new(dims), &mut file).unwrap();
        (tree, file)
    }

    #[test]
    fn build_and_count() {
        let items = make_db(300, 2, 11);
        let (mut tree, _) = build(&items, 2);
        assert_eq!(tree.len(), 300);
        let (leaves, _, _, _) = tree.shape().unwrap();
        assert!(leaves > 1, "300 entries must span multiple leaves");
    }

    #[test]
    fn candidates_match_brute_force_filter() {
        let items = make_db(400, 2, 77);
        let (mut tree, _) = build(&items, 2);
        let q = Pfv::new(vec![5.0, 5.0], vec![0.3, 0.3]).unwrap();
        let qbox = Rect::quantile_box(&q, 0.95);
        let got: std::collections::HashSet<u64> = tree
            .candidates(&qbox)
            .unwrap()
            .iter()
            .map(|e| e.id)
            .collect();
        let want: std::collections::HashSet<u64> = items
            .iter()
            .filter(|(_, v)| Rect::quantile_box(v, 0.95).intersects(&qbox))
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_mliq_refinement_ranks_candidates_exactly() {
        let items = make_db(300, 2, 5);
        let (mut tree, mut file) = build(&items, 2);
        let q = Pfv::new(items[42].1.means().to_vec(), vec![0.2, 0.2]).unwrap();
        let got = tree
            .k_mliq(&mut file, &q, 3, CombineMode::Convolution)
            .unwrap();
        // Refined scores must equal the exact joint densities, and the
        // ranking must match a brute-force ranking restricted to the
        // candidate set.
        let qbox = Rect::quantile_box(&q, 0.95);
        let mut want: Vec<(u64, f64)> = items
            .iter()
            .filter(|(_, v)| Rect::quantile_box(v, 0.95).intersects(&qbox))
            .map(|(id, v)| (*id, combine::log_joint(CombineMode::Convolution, v, &q)))
            .collect();
        want.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        want.truncate(3);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.0, w.0);
            assert!((g.1 - w.1).abs() < 1e-12);
        }
        // The query's source object must at least be among the candidates.
        assert!(
            want.iter().any(|&(id, _)| id == 42) || {
                // unless its observation fell outside the 95% box — verify.
                !Rect::quantile_box(&items[42].1, 0.95).intersects(&qbox)
            }
        );
    }

    #[test]
    fn supernodes_appear_under_heavy_overlap() {
        // Boxes that all overlap each other force the X-tree to give up on
        // splitting and create supernodes.
        let dims = 4;
        let mut items = Vec::new();
        let mut rng = Rng(3);
        for id in 0..600u64 {
            // Huge sigmas => huge, mutually overlapping boxes.
            let means: Vec<f64> = (0..dims).map(|_| rng.next_f64()).collect();
            let sigmas: Vec<f64> = (0..dims).map(|_| 5.0 + rng.next_f64()).collect();
            items.push((id, Pfv::new(means, sigmas).unwrap()));
        }
        let (mut tree, _) = build(&items, dims);
        let (_, _, supers, _) = tree.shape().unwrap();
        assert!(supers > 0, "expected supernodes under total overlap");
    }

    #[test]
    fn no_supernodes_for_well_separated_data() {
        let dims = 2;
        let mut items = Vec::new();
        for id in 0..400u64 {
            let cell = id as f64;
            items.push((
                id,
                Pfv::new(vec![cell * 10.0, cell * 10.0], vec![0.01, 0.01]).unwrap(),
            ));
        }
        let (mut tree, _) = build(&items, dims);
        let (_, _, supers, _) = tree.shape().unwrap();
        assert_eq!(supers, 0, "well-separated boxes should split cleanly");
    }

    #[test]
    fn tiq_returns_high_probability_candidates() {
        let items = make_db(200, 2, 123);
        let (mut tree, mut file) = build(&items, 2);
        let q = Pfv::new(items[10].1.means().to_vec(), vec![0.1, 0.1]).unwrap();
        let got = tree
            .tiq(&mut file, &q, 0.2, CombineMode::Convolution)
            .unwrap();
        assert!(!got.is_empty());
        assert!(got.iter().any(|r| r.0 == 10));
        for (_, _, p) in &got {
            assert!(*p >= 0.2);
        }
    }

    #[test]
    fn empty_tree_queries() {
        let pool = BufferPool::new(MemStore::new(4096), 64, AccessStats::new_shared());
        let mut tree = XTree::create(pool, XTreeConfig::new(2)).unwrap();
        let qbox = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(tree.candidates(&qbox).unwrap().is_empty());
    }

    #[test]
    fn dimensionality_mismatch_rejected() {
        let items = make_db(10, 2, 9);
        let (mut tree, _) = build(&items, 2);
        let qbox = Rect::new(vec![0.0], vec![1.0]);
        assert!(matches!(
            tree.candidates(&qbox),
            Err(XTreeError::DimMismatch { .. })
        ));
    }
}
