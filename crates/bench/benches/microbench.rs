//! Criterion microbenchmarks for the core operations on the query path:
//! hull-bound evaluation (Lemma 2/3), Lemma-1 combination, node splits,
//! incremental insert, and end-to-end k-MLIQ / TIQ on a mid-sized tree.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gauss_baselines::PfvFile;
use gauss_storage::{AccessStats, BufferPool, MemStore, DEFAULT_PAGE_SIZE};
use gauss_tree::ReadView;
use gauss_tree::{GaussTree, SplitStrategy, TreeConfig};
use gauss_workloads::{generate_queries, uniform_dataset, SigmaSpec};
use pfv::hull::{DimBounds, ParamRect};
use pfv::{combine, CombineMode, Pfv};
use std::hint::black_box;

fn bench_hull(c: &mut Criterion) {
    let b = DimBounds::new(3.0, 4.0, 0.6, 0.9);
    c.bench_function("hull/log_upper", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += b.log_upper(black_box(2.0 + i as f64 * 0.04));
            }
            acc
        })
    });
    c.bench_function("hull/log_lower", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += b.log_lower(black_box(2.0 + i as f64 * 0.04));
            }
            acc
        })
    });
    c.bench_function("hull/integral_closed_form", |bench| {
        bench.iter(|| black_box(&b).hull_integral())
    });

    let rect = ParamRect::from_dims(
        (0..27)
            .map(|i| DimBounds::new(i as f64, i as f64 + 1.0, 0.1, 0.5))
            .collect(),
    );
    let q = Pfv::new(
        (0..27).map(|i| i as f64 + 0.3).collect::<Vec<_>>(),
        vec![0.2; 27],
    )
    .unwrap();
    c.bench_function("hull/27d_query_upper", |bench| {
        bench.iter(|| rect.log_upper_for_query(black_box(&q), CombineMode::Convolution))
    });
}

fn bench_combine(c: &mut Criterion) {
    let v = Pfv::new(vec![0.5; 27], vec![0.1; 27]).unwrap();
    let q = Pfv::new(vec![0.52; 27], vec![0.15; 27]).unwrap();
    c.bench_function("combine/log_joint_27d", |bench| {
        bench.iter(|| combine::log_joint(CombineMode::Convolution, black_box(&v), black_box(&q)))
    });
}

fn bench_split(c: &mut Criterion) {
    use gauss_tree::split::split_items;
    let entries: Vec<gauss_tree::node::LeafEntry> = (0..40)
        .map(|i| gauss_tree::node::LeafEntry {
            id: i,
            pfv: Pfv::new(
                vec![
                    (i as f64 * 0.37).sin() * 10.0,
                    (i as f64 * 0.7).cos() * 10.0,
                ],
                vec![0.05 + (i % 7) as f64 * 0.1, 0.05 + (i % 3) as f64 * 0.2],
            )
            .unwrap(),
        })
        .collect();
    let mut group = c.benchmark_group("split");
    for strategy in [
        SplitStrategy::HullIntegral,
        SplitStrategy::WidestMu,
        SplitStrategy::MinVolume,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |bench, &strategy| {
                bench.iter_batched(
                    || entries.clone(),
                    |es| split_items(strategy, es),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("tree/insert_1000_x_5d", |bench| {
        bench.iter_batched(
            || {
                let pool = BufferPool::new(
                    MemStore::new(DEFAULT_PAGE_SIZE),
                    4096,
                    AccessStats::new_shared(),
                );
                GaussTree::create(pool, TreeConfig::new(5)).unwrap()
            },
            |mut tree| {
                for i in 0..1000u64 {
                    let means: Vec<f64> = (0..5)
                        .map(|d| ((i + d) as f64 * 0.61).sin() * 10.0)
                        .collect();
                    let sigmas: Vec<f64> =
                        (0..5).map(|d| 0.05 + ((i + d) % 5) as f64 * 0.1).collect();
                    tree.insert(i, &Pfv::new(means, sigmas).unwrap()).unwrap();
                }
                tree.len()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_queries(c: &mut Criterion) {
    let dataset = uniform_dataset(10_000, 10, SigmaSpec::uniform(0.02, 0.25), 7);
    let queries = generate_queries(&dataset, 16, SigmaSpec::uniform(0.02, 0.25), 9);
    let pool = BufferPool::new(
        MemStore::new(DEFAULT_PAGE_SIZE),
        1 << 14,
        AccessStats::new_shared(),
    );
    let tree = GaussTree::bulk_load(pool, TreeConfig::new(10), dataset.items()).unwrap();
    let pool = BufferPool::new(
        MemStore::new(DEFAULT_PAGE_SIZE),
        1 << 14,
        AccessStats::new_shared(),
    );
    let mut file = PfvFile::build(pool, 10, dataset.items()).unwrap();

    let mut qi = 0usize;
    c.bench_function("query/gauss_tree_1mliq_10k", |bench| {
        bench.iter(|| {
            qi = (qi + 1) % queries.len();
            tree.k_mliq(&queries[qi].query, 1).unwrap()
        })
    });
    c.bench_function("query/gauss_tree_tiq02_10k", |bench| {
        bench.iter(|| {
            qi = (qi + 1) % queries.len();
            tree.tiq(&queries[qi].query, 0.2, 1e-3).unwrap()
        })
    });
    c.bench_function("query/seq_scan_1mliq_10k", |bench| {
        bench.iter(|| {
            qi = (qi + 1) % queries.len();
            file.k_mliq(&queries[qi].query, 1, CombineMode::Convolution)
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    // Trimmed sampling: the harness runs on a single core and the
    // operations are deterministic.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hull, bench_combine, bench_split, bench_insert, bench_queries
}
criterion_main!(benches);
