//! Ablation A2: Lemma-1 combination mode — exact convolution
//! (`√(σv²+σq²)`) versus the paper's literal additive σ (`σv+σq`).
//! Compares the Figure-1 example probabilities and the Figure-6 recall.
//!
//! Run: `cargo run --release -p gauss-bench --bin ablation_combine [-- --quick]`

use gauss_baselines::PfvFile;
use gauss_bench::{build_pfv_file, has_flag, ExperimentSpec};
use gauss_storage::MemStore;
use gauss_workloads::figure1;
use gauss_workloads::metrics::{precision_recall_sweep, rank_of};
use pfv::CombineMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");

    println!("Ablation A2 — Lemma-1 combination mode");
    println!();
    println!("Figure-1 example posteriors:");
    println!(
        "{:<14} {:>8} {:>8} {:>8}",
        "mode", "P(O1)%", "P(O2)%", "P(O3)%"
    );
    for (name, mode) in [
        ("convolution", CombineMode::Convolution),
        ("additive-σ", CombineMode::AdditiveSigma),
    ] {
        let p = figure1::posteriors(mode);
        println!(
            "{:<14} {:>8.1} {:>8.1} {:>8.1}",
            name,
            100.0 * p[0],
            100.0 * p[1],
            100.0 * p[2]
        );
    }

    let spec = ExperimentSpec::dataset1(quick);
    let dataset = spec.dataset();
    let queries = spec.queries(&dataset);
    let mut file: PfvFile<MemStore> = build_pfv_file(&dataset);

    println!();
    println!(
        "Data set 1 identification quality ({} objects, {} queries):",
        spec.n, spec.queries
    );
    println!("{:<14} {:>14} {:>14}", "mode", "recall@3 %", "recall@1 %");
    for (name, mode) in [
        ("convolution", CombineMode::Convolution),
        ("additive-σ", CombineMode::AdditiveSigma),
    ] {
        let mut ranks = Vec::new();
        for q in &queries {
            let res = file.k_mliq(&q.query, 3, mode).expect("scan mliq");
            let ids: Vec<u64> = res.iter().map(|r| r.0).collect();
            ranks.push(rank_of(&ids, q.truth as u64));
        }
        let curve = precision_recall_sweep(&ranks, 1, 3);
        println!(
            "{:<14} {:>14.1} {:>14.1}",
            name,
            100.0 * curve.recall[2],
            100.0 * curve.recall[0]
        );
    }
    println!();
    println!("Expectation: both modes rank nearly identically (the denominator is");
    println!("shared and the σ transform is monotone); absolute probabilities differ.");
}
