//! Ablation A5: page size (node capacity) effect on Gauss-tree pruning.
//!
//! Smaller pages give tighter per-node bounds (fewer entries per node ⇒
//! narrower parameter rectangles) but more pages overall; larger pages
//! amortise header overhead but dilute selectivity. Sweeps 2–32 KiB.
//!
//! Run: `cargo run --release -p gauss-bench --bin ablation_pagesize [-- --quick]`

use gauss_bench::{has_flag, ExperimentSpec, CACHE_BYTES};
use gauss_storage::{AccessStats, BufferPool, MemStore};
use gauss_tree::ReadView;
use gauss_tree::{GaussTree, TreeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let spec = ExperimentSpec::dataset1(quick);
    let dataset = spec.dataset();
    let queries = spec.queries(&dataset);

    println!(
        "Ablation A5 — page size sweep, data set 1 ({} objects, {} queries)",
        spec.n, spec.queries
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>16} {:>14}",
        "page KiB", "leaf cap", "tree pages", "height", "MLIQ pages/q", "MLIQ KiB/q"
    );

    for page_size in [2048usize, 4096, 8192, 16384, 32768] {
        let config = TreeConfig::new(dataset.dims());
        let pool = BufferPool::with_byte_budget(
            MemStore::new(page_size),
            CACHE_BYTES,
            AccessStats::new_shared(),
        );
        let tree = GaussTree::bulk_load(pool, config, dataset.items()).expect("bulk load");
        let total_pages = tree.pool().num_pages();

        let mut pages = 0u64;
        for q in &queries {
            tree.cold_start();
            let before = tree.stats().snapshot();
            let _ = tree.k_mliq(&q.query, 1).expect("mliq");
            pages += tree.stats().snapshot().since(&before).physical_reads;
        }
        let per_query = pages as f64 / queries.len() as f64;
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>16.1} {:>14.1}",
            page_size / 1024,
            tree.leaf_capacity(),
            total_pages,
            tree.height(),
            per_query,
            per_query * page_size as f64 / 1024.0,
        );
    }
    println!();
    println!("Expectation: page count drops with page size while bytes-per-query");
    println!("grows — selectivity is lost as nodes widen. The sweet spot for this");
    println!("workload sits near the classic 4-8 KiB DBMS block.");
}
