//! Ablation A3: Φ implementation used when integrating hull functions —
//! the erf-based Φ versus the paper's degree-5 polynomial sigmoid
//! approximation — and their effect on the split cost metric.
//!
//! Run: `cargo run --release -p gauss-bench --bin ablation_phi`

use pfv::hull::DimBounds;
use pfv::phi::{phi, phi_poly5, PhiImpl};
use pfv::quadrature::integrate_adaptive;

fn main() {
    println!("Ablation A3 — Φ implementations");
    println!();
    println!("Pointwise |Φ_impl − Φ_ref| (Φ_ref by adaptive quadrature of the pdf):");
    println!("{:>6} {:>14} {:>14}", "x", "erf-based", "poly5 (paper)");
    let mut max_erf = 0.0f64;
    let mut max_poly = 0.0f64;
    for i in 0..=16 {
        let x = -4.0 + i as f64 * 0.5;
        let reference = 0.5
            + integrate_adaptive(
                |t| pfv::gaussian::pdf(0.0, 1.0, t),
                0.0_f64.min(x),
                0.0_f64.max(x),
                1e-14,
            ) * x.signum();
        let e = (phi(x) - reference).abs();
        let p = (phi_poly5(x) - reference).abs();
        max_erf = max_erf.max(e);
        max_poly = max_poly.max(p);
        println!("{x:>6.1} {e:>14.2e} {p:>14.2e}");
    }
    println!("max abs error: erf {max_erf:.2e}, poly5 {max_poly:.2e}");

    println!();
    println!("Hull-integral values under each Φ (split cost inputs):");
    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "bounds", "closed form", "erf pieces", "poly5 pieces"
    );
    for b in [
        DimBounds::new(3.0, 4.0, 0.6, 0.9),
        DimBounds::new(0.0, 0.1, 0.05, 0.5),
        DimBounds::new(-2.0, 7.0, 0.1, 3.0),
    ] {
        println!(
            "{:<34} {:>12.6} {:>12.6} {:>12.6}",
            format!(
                "μ∈[{},{}], σ∈[{},{}]",
                b.mu_lo, b.mu_hi, b.sigma_lo, b.sigma_hi
            ),
            b.hull_integral(),
            b.hull_integral_with_phi(PhiImpl::Erf),
            b.hull_integral_with_phi(PhiImpl::Poly5),
        );
    }
    println!();
    println!("Expectation: differences are ≤1e-5 — the paper's degree-5 sigmoid");
    println!("approximation is more than accurate enough for split decisions, and");
    println!("the closed form removes the need for any Φ on the split path.");
}
