//! Ablation A1: the paper's hull-integral split strategy versus a
//! conventional widest-μ median split and an R\*-style volume split.
//! Reports page accesses per 1-MLIQ and TIQ query for each strategy.
//!
//! Run: `cargo run --release -p gauss-bench --bin ablation_split [-- --quick]`

use gauss_bench::{build_gauss_tree, has_flag, ExperimentSpec};
use gauss_tree::ReadView;
use gauss_tree::{SplitStrategy, TreeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let spec = ExperimentSpec::dataset1(quick);
    println!(
        "Ablation A1 — split strategy, data set 1 ({} objects, {} queries)",
        spec.n, spec.queries
    );
    let dataset = spec.dataset();
    let queries = spec.queries(&dataset);

    println!(
        "{:<16} {:>16} {:>16} {:>14}",
        "strategy", "MLIQ pages/q", "TIQ(0.2) pages/q", "tree pages"
    );
    for (name, strategy) in [
        ("hull-integral", SplitStrategy::HullIntegral),
        ("widest-mu", SplitStrategy::WidestMu),
        ("min-volume", SplitStrategy::MinVolume),
    ] {
        let config = TreeConfig::new(dataset.dims()).with_split(strategy);
        let tree = build_gauss_tree(&dataset, config);
        let total_pages = tree.pool().num_pages();

        let mut mliq_pages = 0u64;
        let mut tiq_pages = 0u64;
        for q in &queries {
            tree.cold_start();
            let before = tree.stats().snapshot();
            let _ = tree.k_mliq(&q.query, 1).expect("mliq");
            mliq_pages += tree.stats().snapshot().since(&before).physical_reads;

            tree.cold_start();
            let before = tree.stats().snapshot();
            let _ = tree.tiq(&q.query, 0.2, 1e-3).expect("tiq");
            tiq_pages += tree.stats().snapshot().since(&before).physical_reads;
        }
        println!(
            "{:<16} {:>16.1} {:>16.1} {:>14}",
            name,
            mliq_pages as f64 / queries.len() as f64,
            tiq_pages as f64 / queries.len() as f64,
            total_pages
        );
    }
    println!();
    println!("Expectation: the hull-integral strategy accesses the fewest pages —");
    println!("it is the only objective aware that low-σ nodes are the selective ones (§5.3).");
}
