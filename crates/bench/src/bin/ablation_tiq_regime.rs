//! Ablation A4: TIQ pruning regimes.
//!
//! The paper reports TIQ page-access factors of 35–43× over the scan on
//! data set 2. That magnitude arises in the *diffuse-posterior* regime:
//! when uncertainties are broad relative to object spacing, no object's
//! identification probability reaches the threshold, and the Gauss-tree can
//! prove the empty result near the root because `n·Ň ≤ Σ ≤ n·N̂` converges
//! without opening leaves. This binary sweeps the σ scale from peaked to
//! diffuse and reports TIQ(0.8) pages, result sizes, and the top-1
//! identification probability.
//!
//! Run: `cargo run --release -p gauss-bench --bin ablation_tiq_regime [-- --quick]`

use gauss_bench::{build_gauss_tree, build_pfv_file, has_flag};
use gauss_tree::ReadView;
use gauss_tree::TreeConfig;
use gauss_workloads::{generate_queries, uniform_dataset, SigmaSpec};
use pfv::CombineMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let n = if quick { 10_000 } else { 50_000 };
    let n_queries = if quick { 20 } else { 50 };

    println!("Ablation A4 — TIQ pruning regime sweep (uniform 10-d, n={n})");
    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "σ range", "scan pages/q", "tree pages/q", "speedup", "avg |result|", "avg top-1 P"
    );

    for (lo, hi) in [
        (0.005, 0.05),
        (0.02, 0.1),
        (0.05, 0.2),
        (0.1, 0.3),
        (0.2, 0.4),
    ] {
        let sigma = SigmaSpec::uniform(lo, hi);
        let dataset = uniform_dataset(n, 10, sigma, 1234);
        let queries = generate_queries(&dataset, n_queries, sigma, 77);
        let mut file = build_pfv_file(&dataset);
        let tree = build_gauss_tree(&dataset, TreeConfig::new(10));

        let mut scan_pages = 0u64;
        let mut tree_pages = 0u64;
        let mut result_size = 0usize;
        let mut top_p = 0.0f64;
        for q in &queries {
            file.pool_mut().clear_cache_and_stats();
            let b = file.stats().snapshot();
            let res = file
                .tiq(&q.query, 0.8, CombineMode::Convolution)
                .expect("scan");
            scan_pages += file.stats().snapshot().since(&b).logical_reads;
            result_size += res.len();

            let posterior = file
                .k_mliq_with_probability(&q.query, 1, CombineMode::Convolution)
                .expect("posterior");
            if let Some(r) = posterior.first() {
                top_p += r.2;
            }

            tree.cold_start();
            let b = tree.stats().snapshot();
            let _ = tree.tiq_anytime(&q.query, 0.8).expect("tree");
            tree_pages += tree.stats().snapshot().since(&b).logical_reads;
        }
        let nq = queries.len() as f64;
        println!(
            "{:>12} {:>14.1} {:>14.1} {:>11.1}x {:>12.2} {:>12.3}",
            format!("[{lo},{hi}]"),
            scan_pages as f64 / nq,
            tree_pages as f64 / nq,
            scan_pages as f64 / tree_pages.max(1) as f64,
            result_size as f64 / nq,
            top_p / nq,
        );
    }
    println!();
    println!("Expectation: as σ grows the posteriors flatten (top-1 P → 0), the");
    println!("result set empties, and the TIQ speedup explodes — the regime behind");
    println!("the paper's 35-43x factors. Peaked regimes still give solid gains.");
}
