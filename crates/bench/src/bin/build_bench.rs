//! Ingest throughput of the bulk-load pipeline: objects/s, write calls,
//! peak residency.
//!
//! The tentpole measurement for the out-of-core build path. One fixed-seed
//! uniform workload is built four ways —
//!
//! * **serial / per-node writes**: one thread, fully resident, one write
//!   call per node page (the pre-pipeline behaviour);
//! * **serial / batched writes**: same build, node pages group-committed
//!   through [`gauss_storage::WriteBatch`] as coalesced sequential runs;
//! * **parallel**: partitioning fanned across `--threads` workers;
//! * **spilled**: a `--mem-budget` entry budget forces the streaming front
//!   end to spill runs and split externally.
//!
//! All four stores are asserted **byte-identical** before anything is
//! timed (like `kernel_bench` does for the query kernels). Reported:
//! objects/s serial vs parallel (best of `--rounds`), physical write calls
//! per-node vs batched plus the [`DiskModel`] time both patterns would
//! cost, and the spilled build's peak resident entries.
//!
//! Run: `cargo run --release -p gauss_bench --bin build_bench`
//! Flags: `--n N` (default 20000), `--dims D` (default 10), `--threads T`
//! (default 2), `--rounds R` (default 3), `--mem-budget ENTRIES` (spill
//! run budget, default n/4), `--json PATH` (CI perf-gate fragment),
//! `--scenario million` (the 1M-object bounded-memory ingest; file-backed,
//! skips the JSON gate).

use gauss_bench::{arg_value, JsonObj};
use gauss_storage::{
    AccessStats, BufferPool, DiskModel, Durability, FileStore, MemStore, PageId, PageStore,
    StatsSnapshot, DEFAULT_PAGE_SIZE,
};
use gauss_tree::{BulkLoadOptions, GaussTree, SpillKind, TreeConfig};
use gauss_workloads::{uniform_dataset, SigmaSpec};
use pfv::Pfv;
use std::time::Instant;

const CACHE_BYTES: usize = 50 * 1024 * 1024;

fn pool() -> BufferPool<MemStore> {
    BufferPool::with_byte_budget(
        MemStore::new(DEFAULT_PAGE_SIZE),
        CACHE_BYTES,
        AccessStats::new_shared(),
    )
}

/// FNV-1a digest over every page of a tree's store — cheap byte-identity.
fn store_digest<S: PageStore>(tree: &GaussTree<S>) -> (u64, u64) {
    let pool = tree.pool();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..pool.num_pages() {
        for &b in pool.page(PageId(i)).expect("page readable").iter() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    (h, pool.num_pages())
}

fn build(
    items: &[(u64, Pfv)],
    dims: usize,
    opts: &BulkLoadOptions,
) -> (GaussTree<MemStore>, gauss_tree::BulkLoadReport, f64) {
    let t0 = Instant::now();
    let (tree, report) =
        GaussTree::bulk_load_with(pool(), TreeConfig::new(dims), items.to_vec(), opts)
            .expect("bulk load");
    (tree, report, t0.elapsed().as_secs_f64())
}

/// The durability datapoint: the same workload built into a real file
/// under `Durability::None` vs `Durability::Fsync`, so the fsync cost of
/// the crash-safe commit protocol is tracked next to the fast path.
/// Returns `(none objs/s, fsync objs/s, fsync count)` (best of `rounds`).
fn durability_datapoint(items: &[(u64, Pfv)], dims: usize, rounds: usize) -> (f64, f64, u64) {
    let dir = std::env::temp_dir().join(format!("gauss-build-dur-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut best = [f64::INFINITY; 2];
    let mut fsyncs = 0u64;
    for round in 0..rounds {
        for (i, durability) in [Durability::None, Durability::Fsync]
            .into_iter()
            .enumerate()
        {
            let path = dir.join(format!("dur-{i}-{round}.gtree"));
            let store = FileStore::create(&path, DEFAULT_PAGE_SIZE).expect("store");
            let fpool = BufferPool::with_byte_budget(store, CACHE_BYTES, AccessStats::new_shared());
            let opts = BulkLoadOptions::default().with_durability(durability);
            let t0 = Instant::now();
            let (tree, _) =
                GaussTree::bulk_load_with(fpool, TreeConfig::new(dims), items.to_vec(), &opts)
                    .expect("durability build");
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
            if durability == Durability::Fsync {
                fsyncs = tree.stats().snapshot().syncs;
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    (
        items.len() as f64 / best[0],
        items.len() as f64 / best[1],
        fsyncs,
    )
}

fn scenario_million(threads: usize) {
    // The bounded-memory headline scenario: 1M objects, d=10, the loader
    // capped at a 64 MiB resident-entry budget, spilling runs through a
    // temp file and writing the tree to disk.
    let (n, dims) = (1_000_000usize, 10usize);
    let budget = gauss_tree::bulk::entries_for_byte_budget(64 * 1024 * 1024, dims);
    eprintln!("generating {n} objects (d={dims})…");
    let sigma = SigmaSpec::log_uniform(0.005, 0.3).with_object_scale(0.5, 3.0);
    let dataset = uniform_dataset(n, dims, sigma, 20060404);
    let dir = std::env::temp_dir().join(format!("gauss-build-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("million.gtree");
    let store = gauss_storage::FileStore::create(&path, DEFAULT_PAGE_SIZE).expect("store");
    let fpool = BufferPool::with_byte_budget(store, CACHE_BYTES, AccessStats::new_shared());
    let opts = BulkLoadOptions::default()
        .with_threads(threads)
        .with_mem_budget(budget)
        .with_spill(SpillKind::TempFile);
    let t0 = Instant::now();
    let (tree, report) =
        GaussTree::bulk_load_with(fpool, TreeConfig::new(dims), dataset.items(), &opts)
            .expect("million build");
    let wall = t0.elapsed().as_secs_f64();
    let snap = tree.stats().snapshot();
    println!(
        "million-object ingest: {n} objects in {wall:.1}s ({:.0} objects/s)",
        n as f64 / wall
    );
    println!(
        "  budget {budget} entries; peak resident {}, spilled {}, {} external splits, {} rewritten",
        report.peak_resident_entries,
        report.spilled_entries,
        report.external_splits,
        report.rewritten_entries
    );
    println!(
        "  {} pages in {} write calls ({:.1}x coalescing), height {}",
        snap.physical_writes,
        snap.write_calls,
        snap.physical_writes as f64 / snap.write_calls as f64,
        tree.height()
    );
    assert!(
        report.peak_resident_entries <= budget,
        "budget violated: {} > {budget}",
        report.peak_resident_entries
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = arg_value(&args, "--threads")
        .map(|v| v.parse().expect("--threads"))
        .unwrap_or(2)
        .max(1);
    if arg_value(&args, "--scenario").as_deref() == Some("million") {
        scenario_million(threads);
        return;
    }
    let n: usize = arg_value(&args, "--n")
        .map(|v| v.parse().expect("--n"))
        .unwrap_or(20_000);
    let dims: usize = arg_value(&args, "--dims")
        .map(|v| v.parse().expect("--dims"))
        .unwrap_or(10);
    let rounds: usize = arg_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds"))
        .unwrap_or(3)
        .max(1);
    let budget: usize = arg_value(&args, "--mem-budget")
        .map(|v| v.parse().expect("--mem-budget"))
        .unwrap_or(n / 4)
        .max(1);
    let json_path = arg_value(&args, "--json");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let sigma = SigmaSpec::log_uniform(0.005, 0.3).with_object_scale(0.5, 3.0);
    let dataset = uniform_dataset(n, dims, sigma, 20060404);
    let items = dataset.items();
    println!("build_bench — {n} objects, {dims} dims, {threads} threads, best of {rounds}");

    // Correctness gate before any timing: per-node, batched, parallel and
    // spilled builds must all produce byte-identical stores.
    let serial_opts = BulkLoadOptions::default();
    let per_node_opts = BulkLoadOptions::default().with_batched_writes(false);
    let parallel_opts = BulkLoadOptions::default().with_threads(threads);
    let spill_opts = BulkLoadOptions::default()
        .with_mem_budget(budget)
        .with_spill(SpillKind::TempFile);

    let (serial_tree, _, _) = build(&items, dims, &serial_opts);
    let reference = store_digest(&serial_tree);
    let batched_writes: StatsSnapshot = serial_tree.stats().snapshot();

    let (per_node_tree, _, _) = build(&items, dims, &per_node_opts);
    assert_eq!(
        store_digest(&per_node_tree),
        reference,
        "batched writes diverged from per-node writes"
    );
    let per_node_writes: StatsSnapshot = per_node_tree.stats().snapshot();
    drop(per_node_tree);

    let (parallel_tree, _, _) = build(&items, dims, &parallel_opts);
    assert_eq!(
        store_digest(&parallel_tree),
        reference,
        "parallel build diverged from serial build"
    );
    drop(parallel_tree);

    let (spill_tree, spill_report, _) = build(&items, dims, &spill_opts);
    assert_eq!(
        store_digest(&spill_tree),
        reference,
        "spilled build diverged from resident build"
    );
    drop(spill_tree);
    drop(serial_tree);
    println!("(byte-identity verified: per-node, batched, parallel and spilled builds agree)");

    // Timing: best-of-rounds objects/s, serial vs parallel (both batched).
    let mut serial_s = f64::INFINITY;
    let mut parallel_s = f64::INFINITY;
    for _ in 0..rounds {
        let (_, _, s) = build(&items, dims, &serial_opts);
        serial_s = serial_s.min(s);
        let (_, _, p) = build(&items, dims, &parallel_opts);
        parallel_s = parallel_s.min(p);
    }
    let serial_ops = n as f64 / serial_s;
    let parallel_ops = n as f64 / parallel_s;

    let disk = DiskModel::hdd_2006(DEFAULT_PAGE_SIZE);
    let model_per_node = disk.random_write_s(per_node_writes.physical_writes);
    let model_batched = disk.batched_write_s(
        batched_writes.write_calls,
        batched_writes.physical_writes * DEFAULT_PAGE_SIZE as u64,
    );
    let reduction = per_node_writes.write_calls as f64 / batched_writes.write_calls as f64;

    println!("  ingest    serial : {serial_ops:>10.0} objects/s");
    println!(
        "  ingest    parallel: {parallel_ops:>10.0} objects/s  ({:.2}x, {threads} threads, {cores} cores)",
        parallel_ops / serial_ops
    );
    println!(
        "  writes    per-node: {:>6} calls for {} pages (modelled {:.2}s on 2006 hdd)",
        per_node_writes.write_calls, per_node_writes.physical_writes, model_per_node
    );
    println!(
        "  writes    batched : {:>6} calls for {} pages (modelled {:.2}s, {reduction:.1}x fewer calls)",
        batched_writes.write_calls, batched_writes.physical_writes, model_batched
    );
    println!(
        "  spill     budget {budget}: peak {} resident, {} spilled, {} external splits",
        spill_report.peak_resident_entries,
        spill_report.spilled_entries,
        spill_report.external_splits
    );

    // Durability cost: file-backed ingest, fast path vs fsync'd commits.
    let (dur_none_ops, dur_fsync_ops, fsyncs) = durability_datapoint(&items, dims, rounds);
    println!("  durability none  : {dur_none_ops:>10.0} objects/s (file-backed)");
    println!(
        "  durability fsync : {dur_fsync_ops:>10.0} objects/s ({fsyncs} fsyncs, modelled +{:.3}s on 2006 hdd)",
        disk.fsync_s(fsyncs)
    );

    if let Some(path) = json_path {
        let j = JsonObj::new().obj(
            "build_bench",
            JsonObj::new()
                .int("n", n as u64)
                .int("dims", dims as u64)
                .int("cores", cores as u64)
                .int("threads_max", threads as u64)
                .num("serial_objs_per_s", serial_ops)
                .num("parallel_objs_per_s", parallel_ops)
                .num("parallel_speedup", parallel_ops / serial_ops)
                .int("write_calls_per_node", per_node_writes.write_calls)
                .int("write_calls_batched", batched_writes.write_calls)
                .num("write_call_reduction", reduction)
                .int("pages_written", batched_writes.physical_writes)
                .num("model_write_s_per_node", model_per_node)
                .num("model_write_s_batched", model_batched)
                .int(
                    "peak_resident_entries",
                    spill_report.peak_resident_entries as u64,
                )
                .int("spill_budget_entries", budget as u64)
                .int("spilled_entries", spill_report.spilled_entries)
                .num("durability_none_objs_per_s", dur_none_ops)
                .num("durability_fsync_objs_per_s", dur_fsync_ops)
                .int("fsync_calls", fsyncs)
                .num("model_fsync_s", disk.fsync_s(fsyncs)),
        );
        j.write_to(&path).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
