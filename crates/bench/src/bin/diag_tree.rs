//! Diagnostic: Gauss-tree shape and per-query access behaviour on data
//! set 1. Compares bulk-loaded against incrementally inserted trees and
//! prints node statistics that explain pruning quality.
//!
//! Run: `cargo run --release -p gauss-bench --bin diag_tree [-- --quick]`

use gauss_bench::{build_gauss_tree, has_flag, ExperimentSpec, CACHE_BYTES};
use gauss_storage::{AccessStats, BufferPool, MemStore, DEFAULT_PAGE_SIZE};
use gauss_tree::ReadView;
use gauss_tree::{GaussTree, TreeConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let spec = ExperimentSpec::dataset1(quick);
    let dataset = spec.dataset();
    let queries = spec.queries(&dataset);

    println!("diag — {} objects, {} dims", spec.n, spec.dims);

    let mut bulk = build_gauss_tree(&dataset, TreeConfig::new(dataset.dims()));
    report("bulk-loaded", &mut bulk, &queries);

    let pool = BufferPool::with_byte_budget(
        MemStore::new(DEFAULT_PAGE_SIZE),
        CACHE_BYTES,
        AccessStats::new_shared(),
    );
    let mut incr = GaussTree::create(pool, TreeConfig::new(dataset.dims())).expect("create");
    for (id, v) in dataset.items() {
        incr.insert(id, &v).expect("insert");
    }
    report("incremental", &mut incr, &queries);
}

fn report(
    label: &str,
    tree: &mut GaussTree<MemStore>,
    queries: &[gauss_workloads::IdentificationQuery],
) {
    let total_pages = tree.pool().num_pages();
    let mut pages = 0u64;
    for q in queries {
        tree.cold_start();
        let before = tree.stats().snapshot();
        let _ = tree.k_mliq(&q.query, 1).expect("mliq");
        pages += tree.stats().snapshot().since(&before).physical_reads;
    }
    println!(
        "{label:<12} height={} pages={} mliq pages/query={:.1} ({:.1}% of tree)",
        tree.height(),
        total_pages,
        pages as f64 / queries.len() as f64,
        100.0 * pages as f64 / queries.len() as f64 / total_pages as f64,
    );
}
