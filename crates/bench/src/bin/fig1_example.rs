//! Reproduces the running example of paper §3 (Figure 1): three facial
//! images and one query. Prints the Euclidean distances and identification
//! probabilities next to the paper's numbers.
//!
//! Run: `cargo run --release -p gauss-bench --bin fig1_example`

use gauss_workloads::figure1;
use pfv::CombineMode;

fn main() {
    let paper_dist = [1.53, 1.97, 1.74];
    let paper_prob = [0.10, 0.13, 0.77];

    println!("Figure 1 / §3 example — 3 database objects, 1 query");
    println!();
    let db = figure1::database();
    let q = figure1::query();
    println!("query: {q}");
    for (name, v) in figure1::OBJECT_NAMES.iter().zip(db.iter()) {
        println!("{name}:    {v}");
    }
    println!();

    let d = figure1::euclidean_distances();
    let p = figure1::posteriors(CombineMode::Convolution);
    let p_add = figure1::posteriors(CombineMode::AdditiveSigma);

    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>12} {:>16}",
        "object", "dist (ours)", "dist (paper)", "P(v|q) ours", "P paper", "P additive-mode"
    );
    for i in 0..3 {
        println!(
            "{:<6} {:>12.2} {:>12.2} {:>13.1}% {:>11.0}% {:>15.1}%",
            figure1::OBJECT_NAMES[i],
            d[i],
            paper_dist[i],
            100.0 * p[i],
            100.0 * paper_prob[i],
            100.0 * p_add[i],
        );
    }
    println!();

    let nn = (0..3).min_by(|&a, &b| d[a].total_cmp(&d[b])).unwrap();
    let ml = (0..3).max_by(|&a, &b| p[a].total_cmp(&p[b])).unwrap();
    println!(
        "Euclidean NN picks {} (wrong); 1-MLIQ picks {} (correct).",
        figure1::OBJECT_NAMES[nn],
        figure1::OBJECT_NAMES[ml]
    );
    let tiq: Vec<&str> = (0..3)
        .filter(|&i| p[i] >= 0.12)
        .map(|i| figure1::OBJECT_NAMES[i])
        .collect();
    println!("TIQ(Pθ = 12%) reports: {}", tiq.join(", "));
}
