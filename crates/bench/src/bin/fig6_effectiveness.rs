//! Reproduces Figure 6: precision and recall of conventional 3-NN on the
//! mean vectors versus 3-MLIQ on probabilistic feature vectors, with the
//! result-set size scaled ×1…×9.
//!
//! Run: `cargo run --release -p gauss-bench --bin fig6_effectiveness -- --dataset 1`
//! Flags: `--dataset 1|2` (default 1), `--quick` for a reduced size.

use gauss_baselines::euclidean_knn;
use gauss_bench::{
    arg_value, build_gauss_tree, build_pfv_file, build_xtree, has_flag, ExperimentSpec,
};
use gauss_tree::ReadView;
use gauss_tree::TreeConfig;
use gauss_workloads::metrics::{precision_recall_sweep, rank_of};
use pfv::CombineMode;

const BASE_K: usize = 3;
const MAX_SCALE: usize = 9;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let which = arg_value(&args, "--dataset").unwrap_or_else(|| "1".into());
    let spec = match which.as_str() {
        "2" => ExperimentSpec::dataset2(quick),
        _ => ExperimentSpec::dataset1(quick),
    };

    println!(
        "Figure 6 ({}) — data set {}: {} objects, {} dims, {} queries",
        if quick { "quick" } else { "full" },
        spec.id,
        spec.n,
        spec.dims,
        spec.queries
    );

    let dataset = spec.dataset();
    let queries = spec.queries(&dataset);
    let tree = build_gauss_tree(&dataset, TreeConfig::new(dataset.dims()));
    let mut file = build_pfv_file(&dataset);
    let mut xtree = build_xtree(&dataset, &mut file);

    let top = BASE_K * MAX_SCALE;
    let mut mliq_ranks = Vec::with_capacity(queries.len());
    let mut nn_ranks = Vec::with_capacity(queries.len());
    let mut xtree_ranks = Vec::with_capacity(queries.len());
    for q in &queries {
        let results = tree.k_mliq(&q.query, top).expect("k-MLIQ");
        let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        mliq_ranks.push(rank_of(&ids, q.truth as u64));

        let nn = euclidean_knn(&dataset.objects, &q.query, top);
        let ids: Vec<u64> = nn.iter().map(|(i, _)| *i as u64).collect();
        nn_ranks.push(rank_of(&ids, q.truth as u64));

        // The approximate X-tree filter+refine MLIQ — the paper notes its
        // quality is "only slightly below" the Gauss-tree's (false
        // dismissals are possible).
        let xres = xtree
            .k_mliq(&mut file, &q.query, top, CombineMode::Convolution)
            .expect("x-mliq");
        let ids: Vec<u64> = xres.iter().map(|r| r.0).collect();
        xtree_ranks.push(rank_of(&ids, q.truth as u64));
    }

    let mliq = precision_recall_sweep(&mliq_ranks, BASE_K, MAX_SCALE);
    let nn = precision_recall_sweep(&nn_ranks, BASE_K, MAX_SCALE);
    let xq = precision_recall_sweep(&xtree_ranks, BASE_K, MAX_SCALE);

    println!();
    println!(
        "{:<4} {:>12} {:>12} {:>14} {:>14} {:>15} {:>15}",
        "x",
        "NN recall%",
        "NN prec%",
        "MLIQ recall%",
        "MLIQ prec%",
        "X-MLIQ recall%",
        "X-MLIQ prec%"
    );
    for x in 0..MAX_SCALE {
        println!(
            "x{:<3} {:>12.1} {:>12.1} {:>14.1} {:>14.1} {:>15.1} {:>15.1}",
            x + 1,
            100.0 * nn.recall[x],
            100.0 * nn.precision[x],
            100.0 * mliq.recall[x],
            100.0 * mliq.precision[x],
            100.0 * xq.recall[x],
            100.0 * xq.precision[x],
        );
    }
    println!();
    println!(
        "Paper (data set {}): MLIQ precision/recall ≈ {}% at x1; NN ≈ {}% at x1{}",
        spec.id,
        if spec.id == 1 { 98 } else { 99 },
        if spec.id == 1 { 42 } else { 61 },
        if spec.id == 1 {
            "; NN recall only ~60% even at x9"
        } else {
            "; NN recall ~97% at x6+ with precision ~18%"
        }
    );
}
