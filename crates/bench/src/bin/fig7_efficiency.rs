//! Reproduces Figure 7: page accesses, CPU time, and overall time of
//! 1-MLIQ, TIQ(Pθ=0.8) and TIQ(Pθ=0.2) for the sequential scan, the X-tree
//! over 95 %-quantile boxes, and the Gauss-tree — all normalised to the
//! sequential scan (=100 %).
//!
//! Run: `cargo run --release -p gauss-bench --bin fig7_efficiency -- --dataset 1`
//! Flags: `--dataset 1|2` (default 1), `--quick`.

use gauss_bench::{
    arg_value, build_gauss_tree, build_pfv_file, build_xtree, fmt_row, has_flag, measure_queries,
    ExperimentSpec, Measurement,
};
use gauss_storage::{DiskModel, DEFAULT_PAGE_SIZE};
use gauss_tree::ReadView;
use gauss_tree::TreeConfig;
use pfv::CombineMode;

#[derive(Clone, Copy)]
enum QueryKind {
    Mliq1,
    Tiq(f64),
}

impl QueryKind {
    fn label(self) -> String {
        match self {
            QueryKind::Mliq1 => "1-MLIQ".into(),
            QueryKind::Tiq(t) => format!("TIQ (P={t})"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let which = arg_value(&args, "--dataset").unwrap_or_else(|| "1".into());
    let spec = match which.as_str() {
        "2" => ExperimentSpec::dataset2(quick),
        _ => ExperimentSpec::dataset1(quick),
    };
    let mode = CombineMode::Convolution;

    println!(
        "Figure 7 ({}) — data set {}: {} objects, {} dims, {} queries, 50 MB cache cold-started per experiment",
        if quick { "quick" } else { "full" },
        spec.id,
        spec.n,
        spec.dims,
        spec.queries
    );

    let dataset = spec.dataset();
    let queries = spec.queries(&dataset);

    eprintln!("building sequential file…");
    let mut file = build_pfv_file(&dataset);
    eprintln!("building Gauss-tree (bulk load)…");
    let gtree = build_gauss_tree(&dataset, TreeConfig::new(dataset.dims()));
    eprintln!("building X-tree…");
    let mut xtree = build_xtree(&dataset, &mut file);
    eprintln!(
        "built: file {} pages, gauss-tree h={}, xtree h={}",
        file.num_pages(),
        gtree.height(),
        xtree.height()
    );

    let kinds = [QueryKind::Mliq1, QueryKind::Tiq(0.8), QueryKind::Tiq(0.2)];
    let mut seq = Vec::new();
    let mut xt = Vec::new();
    let mut gt = Vec::new();

    for kind in kinds {
        eprintln!("measuring seq scan {}…", kind.label());
        let m = {
            file.pool_mut().clear_cache_and_stats();
            let stats = file.stats().clone();
            measure_queries(
                &queries,
                true,
                || stats.snapshot(),
                |q| {
                    let t0 = std::time::Instant::now();
                    match kind {
                        QueryKind::Mliq1 => {
                            let _ = file.k_mliq(&q.query, 1, mode).expect("scan mliq");
                        }
                        QueryKind::Tiq(t) => {
                            let _ = file.tiq(&q.query, t, mode).expect("scan tiq");
                        }
                    }
                    t0.elapsed().as_secs_f64()
                },
            )
        };
        // Byte-accurate sequential billing: whole-file passes cost their
        // exact payload, so the padding of a partial last page is free.
        let m = m.with_scan_bytes(gauss_bench::scan_bytes_for_faults(
            m.faults,
            file.num_pages() as u64,
            file.data_bytes(),
            gauss_storage::DEFAULT_PAGE_SIZE,
        ));
        seq.push(m);

        eprintln!("measuring X-tree {}…", kind.label());
        let m = {
            xtree.pool_mut().clear_cache_and_stats();
            file.pool_mut().clear_cache_and_stats();
            let xstats = xtree.stats().clone();
            let fstats = file.stats().clone();
            // Sum both pools: index pages + refinement fetches.
            measure_queries(
                &queries,
                false,
                || {
                    let a = xstats.snapshot();
                    let b = fstats.snapshot();
                    gauss_storage::StatsSnapshot {
                        logical_reads: a.logical_reads + b.logical_reads,
                        physical_reads: a.physical_reads + b.physical_reads,
                        physical_writes: a.physical_writes + b.physical_writes,
                        write_calls: a.write_calls + b.write_calls,
                        syncs: a.syncs + b.syncs,
                        evictions: a.evictions + b.evictions,
                    }
                },
                |q| {
                    let t0 = std::time::Instant::now();
                    match kind {
                        QueryKind::Mliq1 => {
                            let _ = xtree.k_mliq(&mut file, &q.query, 1, mode).expect("x mliq");
                        }
                        QueryKind::Tiq(t) => {
                            let _ = xtree.tiq(&mut file, &q.query, t, mode).expect("x tiq");
                        }
                    }
                    t0.elapsed().as_secs_f64()
                },
            )
        };
        xt.push(m);

        eprintln!("measuring Gauss-tree {}…", kind.label());
        let m = {
            gtree.cold_start();
            let stats = gtree.stats().clone();
            measure_queries(
                &queries,
                false,
                || stats.snapshot(),
                |q| {
                    let t0 = std::time::Instant::now();
                    match kind {
                        QueryKind::Mliq1 => {
                            let _ = gtree.k_mliq(&q.query, 1).expect("g mliq");
                        }
                        QueryKind::Tiq(t) => {
                            let _ = gtree.tiq_anytime(&q.query, t).expect("g tiq");
                        }
                    }
                    t0.elapsed().as_secs_f64()
                },
            )
        };
        gt.push(m);
    }

    print_tables(&kinds, &seq, &xt, &gt, spec.queries);
}

fn overall_table(
    title: &str,
    disk: &DiskModel,
    kinds: &[QueryKind],
    seq: &[Measurement],
    xt: &[Measurement],
    gt: &[Measurement],
) {
    println!();
    println!("Overall time, % of seq scan ({title}):");
    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "", "Seq.File", "X-Tree", "G-Tree"
    );
    for (i, kind) in kinds.iter().enumerate() {
        let base = seq[i].overall_s(disk);
        println!(
            "{}",
            fmt_row(
                &kind.label(),
                &[
                    100.0,
                    100.0 * xt[i].overall_s(disk) / base,
                    100.0 * gt[i].overall_s(disk) / base,
                ]
            )
        );
    }
}

fn print_tables(
    kinds: &[QueryKind],
    seq: &[Measurement],
    xt: &[Measurement],
    gt: &[Measurement],
    n_queries: usize,
) {
    println!();
    println!("Absolute per-query numbers:");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "", "Seq.File", "X-Tree", "G-Tree"
    );
    for (i, kind) in kinds.iter().enumerate() {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>12.1}",
            format!("{} pages/query", kind.label()),
            seq[i].pages as f64 / n_queries as f64,
            xt[i].pages as f64 / n_queries as f64,
            gt[i].pages as f64 / n_queries as f64,
        );
        println!(
            "{:<28} {:>12.3} {:>12.3} {:>12.3}",
            format!("{} cpu ms/query", kind.label()),
            1e3 * seq[i].cpu_s / n_queries as f64,
            1e3 * xt[i].cpu_s / n_queries as f64,
            1e3 * gt[i].cpu_s / n_queries as f64,
        );
    }

    println!();
    println!("Page accesses, % of seq scan:");
    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "", "Seq.File", "X-Tree", "G-Tree"
    );
    for (i, kind) in kinds.iter().enumerate() {
        let base = seq[i].pages.max(1) as f64;
        println!(
            "{}",
            fmt_row(
                &kind.label(),
                &[
                    100.0,
                    100.0 * xt[i].pages as f64 / base,
                    100.0 * gt[i].pages as f64 / base,
                ]
            )
        );
    }

    println!();
    println!("CPU time, % of seq scan:");
    println!(
        "{:<28} {:>9} {:>9} {:>9}",
        "", "Seq.File", "X-Tree", "G-Tree"
    );
    for (i, kind) in kinds.iter().enumerate() {
        let base = seq[i].cpu_s.max(1e-12);
        println!(
            "{}",
            fmt_row(
                &kind.label(),
                &[
                    100.0,
                    100.0 * xt[i].cpu_s / base,
                    100.0 * gt[i].cpu_s / base,
                ]
            )
        );
    }

    overall_table(
        "NVMe-class device, preserves the paper's CPU:I/O balance",
        &DiskModel::nvme(DEFAULT_PAGE_SIZE),
        kinds,
        seq,
        xt,
        gt,
    );
    overall_table(
        "2006 HDD, 8 ms seeks — shows why random access hurt in 2006",
        &DiskModel::hdd_2006(DEFAULT_PAGE_SIZE),
        kinds,
        seq,
        xt,
        gt,
    );
    println!();
    println!("Paper shapes to compare against (Fig 7):");
    println!("  - G-tree ≈ 4x fewer page accesses than scan for MLIQ (both sets)");
    println!("  - G-tree TIQ on data set 2: pages better by >30x, CPU by >10x");
    println!("    (those magnitudes need the peaked/diffuse posterior regimes —");
    println!("     see `ablation_tiq_regime`, which reproduces 37x-140x)");
    println!("  - X-tree: no MLIQ speedup; modest TIQ overall-time gains (~17-23%)");
    println!("  - Overall-time gains < page-access gains (random seeks vs streaming)");
}
