//! Leaf-evaluation kernel tiers across a dimensionality sweep: ns/entry.
//!
//! For every swept dimensionality (default `2,10,27` — toy, data set 2,
//! data set 1) the bench builds fixed-seed leaves at realistic occupancy
//! and times four kernels over every (query, leaf) pair:
//!
//! * **scalar**: the pre-refactor per-entry path, `combine::log_joint`
//!   over each stored [`Pfv`] (two boxed slices per entry, σ·σ recomputed
//!   per evaluation);
//! * **batched**: [`pfv::batch::log_densities`] over the same leaves in
//!   [`ColumnarLeaf`] struct-of-arrays form with precomputed σ² columns —
//!   the exact refine tier, bit-identical to scalar;
//! * **fast**: [`pfv::batch::log_densities_upper`] — the aligned
//!   fixed-width screen tier over padded lane blocks with the polynomial
//!   `fast_ln`, producing conservative upper bounds;
//! * **quantised**: the batched kernel over leaves whose parameters went
//!   through the `pfv::quant` ingest rounding (what a
//!   `LeafFormat::Quantised` tree evaluates after decode).
//!
//! Before any timing, every dimensionality is gated on bit-identity:
//! batched vs scalar on every entry, `log_density_one` vs the batched
//! sweep, the fast-tier bound never below the exact value — and all of it
//! again on *ragged* leaves whose length is not a lane multiple, so the
//! padded tail lanes are proven not to contribute. The inner-node side is
//! measured too: fused hull pricing (`ParamRect::log_bounds_for_query`)
//! versus the split upper+lower calls.
//!
//! A Figure-7-style datapoint closes the loop on the compressed tier: two
//! trees are bulk-loaded from the same pre-rounded data — one
//! `LeafFormat::Exact`, one `LeafFormat::Quantised` — k-MLIQ and TIQ
//! answers are asserted identical (same stored parameters, bit-identical
//! densities), and the physical page reads of both are reported under a
//! deliberately small buffer pool. The quantised tree's ~2x leaf fan-out
//! must show up as fewer physical reads.
//!
//! Run: `cargo run --release -p gauss_bench --bin kernel_bench`
//! Flags: `--dims D1,D2,…` (default `2,10,27`), `--entries E` (per leaf,
//! default 48 — the 8 KB-page capacity at d=10), `--leaves L` (default
//! 64), `--queries Q` (default 32), `--rounds R` (default 15, best-of),
//! `--json PATH` (write machine-readable results).

use gauss_bench::{arg_value, JsonObj};
use gauss_storage::{AccessStats, BufferPool, MemStore, DEFAULT_PAGE_SIZE};
use gauss_tree::{GaussTree, LeafFormat, ReadView, TreeConfig};
use pfv::batch::{
    log_densities, log_densities_upper, log_density_one, ColumnarLeaf, FastScratch, LANE_WIDTH,
};
use pfv::{combine, quant, CombineMode, ParamRect, Pfv};
use std::time::Instant;

/// Deterministic xorshift so the workload needs no external RNG.
struct Rng(u64);
impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn random_pfv(rng: &mut Rng, dims: usize) -> Pfv {
    let means: Vec<f64> = (0..dims).map(|_| rng.next_f64() * 10.0).collect();
    let sigmas: Vec<f64> = (0..dims).map(|_| 0.005 + rng.next_f64() * 0.3).collect();
    Pfv::new(means, sigmas).unwrap()
}

/// Rounds a pfv through the checked ingest quantisers — the stored
/// parameters of a `LeafFormat::Quantised` tree. The workload generator
/// stays far inside f32 range, so the helpers cannot reject.
fn quantised_pfv(v: &Pfv) -> Pfv {
    let means: Vec<f64> = v
        .means()
        .iter()
        .map(|&m| f64::from(quant::quantise_mu(m).expect("bench mean in f32 range")))
        .collect();
    let sigmas: Vec<f64> = v
        .sigmas()
        .iter()
        .map(|&s| f64::from(quant::quantise_sigma(s).expect("bench sigma in f32 range")))
        .collect();
    Pfv::new(means, sigmas).unwrap()
}

/// Best-of-`rounds` wall time of `f`, in seconds.
fn best_of(rounds: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for _ in 0..rounds {
        let t0 = Instant::now();
        sink += f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, sink)
}

/// ns/entry of the four leaf kernels at one dimensionality.
struct DimTimings {
    dims: usize,
    scalar_ns: f64,
    batched_ns: f64,
    fast_ns: f64,
    quantised_ns: f64,
}

/// Bit-identity and conservativeness gates for one set of leaves: the
/// batched kernel must reproduce the scalar path bit-for-bit on every
/// entry, `log_density_one` must match the batched sweep, and the fast
/// tier must never bound below the exact value (NaN allowed — it fails
/// every `<` screen, so such an entry is refined, never skipped).
fn assert_kernel_contracts(
    mode: CombineMode,
    qs: &[Pfv],
    scalar_leaves: &[Vec<Pfv>],
    columnar: &[ColumnarLeaf],
) {
    let mut fast = FastScratch::new();
    for q in qs {
        for (sl, cl) in scalar_leaves.iter().zip(columnar.iter()) {
            let mut out = vec![f64::NAN; cl.len()];
            log_densities(mode, q, cl, &mut out);
            log_densities_upper(mode, q, cl, &mut fast);
            for (e, (v, &got)) in sl.iter().zip(out.iter()).enumerate() {
                let want = combine::log_joint(mode, v, q);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "batched kernel diverged from scalar path (d={})",
                    cl.dims()
                );
                let one = log_density_one(mode, q, cl, e);
                assert_eq!(
                    one.to_bits(),
                    want.to_bits(),
                    "refine-tier log_density_one diverged (d={})",
                    cl.dims()
                );
                let hi = fast.upper()[e];
                assert!(
                    hi.is_nan() || hi >= want,
                    "fast tier bounded below exact: {hi} < {want} (d={})",
                    cl.dims()
                );
            }
        }
    }
}

/// Gates and times the leaf kernels at one dimensionality.
fn sweep_dim(
    rng: &mut Rng,
    dims: usize,
    entries: usize,
    leaves: usize,
    queries: usize,
    rounds: usize,
    mode: CombineMode,
) -> DimTimings {
    let scalar_leaves: Vec<Vec<Pfv>> = (0..leaves)
        .map(|_| (0..entries).map(|_| random_pfv(rng, dims)).collect())
        .collect();
    let columnar: Vec<ColumnarLeaf> = scalar_leaves
        .iter()
        .map(|l| ColumnarLeaf::from_pfvs(dims, l.iter()))
        .collect();
    let quant_leaves: Vec<Vec<Pfv>> = scalar_leaves
        .iter()
        .map(|l| l.iter().map(quantised_pfv).collect())
        .collect();
    let quant_columnar: Vec<ColumnarLeaf> = quant_leaves
        .iter()
        .map(|l| ColumnarLeaf::from_pfvs(dims, l.iter()))
        .collect();
    let qs: Vec<Pfv> = (0..queries).map(|_| random_pfv(rng, dims)).collect();

    // Correctness gates before any timing, at this dimensionality.
    assert_kernel_contracts(mode, &qs, &scalar_leaves, &columnar);
    assert_kernel_contracts(mode, &qs, &quant_leaves, &quant_columnar);

    // The same gates over ragged leaves (len not a lane multiple): the
    // padded block layout must keep tail lanes from contributing — any
    // leakage into a real entry breaks bit-identity here.
    let ragged_n = (1..=entries)
        .rev()
        .find(|n| n % LANE_WIDTH != 0)
        .expect("some length below `entries` is not a lane multiple");
    let ragged_leaves: Vec<Vec<Pfv>> = scalar_leaves
        .iter()
        .map(|l| l[..ragged_n].to_vec())
        .collect();
    let ragged_columnar: Vec<ColumnarLeaf> = ragged_leaves
        .iter()
        .map(|l| ColumnarLeaf::from_pfvs(dims, l.iter()))
        .collect();
    for cl in &ragged_columnar {
        assert!(
            cl.padded_len() > cl.len(),
            "ragged leaf must actually have tail lanes"
        );
    }
    assert_kernel_contracts(mode, &qs, &ragged_leaves, &ragged_columnar);

    let evals = (queries * leaves * entries) as f64;
    let mut out = vec![0.0f64; entries];
    let mut fast = FastScratch::new();

    let (scalar_s, sink_a) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for leaf in &scalar_leaves {
                for v in leaf {
                    acc += combine::log_joint(mode, v, q);
                }
            }
        }
        acc
    });
    let (batched_s, sink_b) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for leaf in &columnar {
                log_densities(mode, q, leaf, &mut out);
                acc += out.iter().sum::<f64>();
            }
        }
        acc
    });
    let (fast_s, sink_c) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for leaf in &columnar {
                log_densities_upper(mode, q, leaf, &mut fast);
                acc += fast.upper().iter().sum::<f64>();
            }
        }
        acc
    });
    let (quant_s, sink_d) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for leaf in &quant_columnar {
                log_densities(mode, q, leaf, &mut out);
                acc += out.iter().sum::<f64>();
            }
        }
        acc
    });
    // Keep the accumulators alive so the measured loops cannot be elided.
    assert!((sink_a + sink_b + sink_c + sink_d).is_finite());

    let scalar_ns = scalar_s * 1e9 / evals;
    let batched_ns = batched_s * 1e9 / evals;
    let fast_ns = fast_s * 1e9 / evals;
    let quantised_ns = quant_s * 1e9 / evals;
    println!("  d={dims:<3} leaf densities");
    println!("    scalar   : {scalar_ns:>8.2} ns/entry");
    println!(
        "    batched  : {batched_ns:>8.2} ns/entry  ({:.2}x vs scalar)",
        scalar_ns / batched_ns
    );
    println!(
        "    fast     : {fast_ns:>8.2} ns/entry  ({:.2}x vs batched, screen tier)",
        batched_ns / fast_ns
    );
    println!("    quantised: {quantised_ns:>8.2} ns/entry  (batched kernel, rounded params)");
    DimTimings {
        dims,
        scalar_ns,
        batched_ns,
        fast_ns,
        quantised_ns,
    }
}

/// Physical page reads of the Figure-7 datapoint: exact vs quantised tree.
struct Fig7Reads {
    exact: u64,
    quantised: u64,
}

/// Pages the small datapoint pool may cache — far below either tree's
/// page count, so per-query leaf fetches hit the (simulated) disk and the
/// quantised tree's doubled fan-out shows up as fewer physical reads.
const FIG7_CACHE_PAGES: usize = 32;

/// Builds one exact and one quantised tree from identical **pre-rounded**
/// data, asserts k-MLIQ and TIQ answer identity (both trees store the
/// same parameters, so the exact refine tier returns bit-identical
/// densities), and measures the physical reads of the same workload on
/// each under a small cache.
fn fig7_datapoint(rng: &mut Rng) -> Fig7Reads {
    let dims = 10;
    let n = 4000u64;
    let n_queries = 32;
    let k = 3;
    let p_theta = 0.2;
    // Pre-rounding makes the comparison answer-identical by construction:
    // the quantised encode/decode is a lossless fixpoint on f32-exact
    // parameters, so both trees index the very same stored values and
    // differ only in leaf bytes.
    let items: Vec<(u64, Pfv)> = (0..n)
        .map(|id| (id, quantised_pfv(&random_pfv(rng, dims))))
        .collect();
    let qs: Vec<Pfv> = (0..n_queries).map(|_| random_pfv(rng, dims)).collect();

    let build = |format: LeafFormat| {
        let pool = BufferPool::new(
            MemStore::new(DEFAULT_PAGE_SIZE),
            FIG7_CACHE_PAGES,
            AccessStats::new_shared(),
        );
        let config = TreeConfig::new(dims).with_leaf_format(format);
        // lint: allow(no-panic) -- bench fixture setup; a broken build must abort the benchmark loudly
        GaussTree::bulk_load(pool, config, items.iter().cloned()).expect("fig7 tree build")
    };
    let exact = build(LeafFormat::Exact);
    let quantised = build(LeafFormat::Quantised);

    for q in &qs {
        let a = exact.k_mliq(q, k).expect("exact k-MLIQ");
        let b = quantised.k_mliq(q, k).expect("quantised k-MLIQ");
        assert_eq!(a.len(), b.len(), "k-MLIQ cardinality diverged");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id, "k-MLIQ ids diverged between leaf formats");
            assert_eq!(
                x.log_density.to_bits(),
                y.log_density.to_bits(),
                "k-MLIQ densities diverged between leaf formats"
            );
        }
        let mut ta: Vec<u64> = exact
            .tiq_anytime(q, p_theta)
            .expect("exact TIQ")
            .iter()
            .map(|r| r.id)
            .collect();
        let mut tb: Vec<u64> = quantised
            .tiq_anytime(q, p_theta)
            .expect("quantised TIQ")
            .iter()
            .map(|r| r.id)
            .collect();
        ta.sort_unstable();
        tb.sort_unstable();
        assert_eq!(ta, tb, "TIQ id sets diverged between leaf formats");
    }

    let measure = |tree: &GaussTree<MemStore>| {
        tree.cold_start();
        let before = tree.stats().snapshot();
        for q in &qs {
            let _ = tree.k_mliq(q, k).expect("k-MLIQ");
            let _ = tree.tiq_anytime(q, p_theta).expect("TIQ");
        }
        tree.stats().snapshot().since(&before).physical_reads
    };
    let reads = Fig7Reads {
        exact: measure(&exact),
        quantised: measure(&quantised),
    };
    println!(
        "  fig7 datapoint — {n} objects, d={dims}, {n_queries} queries (k-MLIQ k={k} + TIQ Pθ={p_theta}), {FIG7_CACHE_PAGES}-page cache:"
    );
    println!("    exact leaves    : {:>6} physical reads", reads.exact);
    println!(
        "    quantised leaves: {:>6} physical reads  ({:.2}x fewer, identical answers)",
        reads.quantised,
        reads.exact as f64 / reads.quantised.max(1) as f64
    );
    reads
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dims_list: Vec<usize> = arg_value(&args, "--dims")
        .unwrap_or_else(|| "2,10,27".to_string())
        .split(',')
        .map(|v| v.trim().parse().expect("--dims"))
        .collect();
    assert!(!dims_list.is_empty(), "--dims must name at least one value");
    let entries: usize = arg_value(&args, "--entries")
        .map(|v| v.parse().expect("--entries"))
        .unwrap_or(48);
    let leaves: usize = arg_value(&args, "--leaves")
        .map(|v| v.parse().expect("--leaves"))
        .unwrap_or(64);
    let queries: usize = arg_value(&args, "--queries")
        .map(|v| v.parse().expect("--queries"))
        .unwrap_or(32);
    let rounds: usize = arg_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds"))
        .unwrap_or(15);
    let json_path = arg_value(&args, "--json");
    let mode = CombineMode::Convolution;

    let mut rng = Rng(0x1CDE_2006);
    println!(
        "kernel_bench — {leaves} leaves x {entries} entries, dims {dims_list:?}, {queries} queries, best of {rounds}"
    );

    let timings: Vec<DimTimings> = dims_list
        .iter()
        .map(|&dims| sweep_dim(&mut rng, dims, entries, leaves, queries, rounds, mode))
        .collect();
    // The top-level JSON keys (and the hull section) report the paper's
    // data-set-2 dimensionality when swept, else the first dimensionality.
    let lead = timings.iter().find(|t| t.dims == 10).unwrap_or(&timings[0]);

    // Inner-node hull pricing: split upper+lower vs the fused sweep.
    let hull_dims = lead.dims;
    let children_per_node = 32usize;
    let rects: Vec<Vec<ParamRect>> = (0..leaves)
        .map(|_| {
            (0..children_per_node)
                .map(|_| {
                    let a = random_pfv(&mut rng, hull_dims);
                    let b = random_pfv(&mut rng, hull_dims);
                    let mut r = ParamRect::from_pfv(&a);
                    r.extend_pfv(&b);
                    r
                })
                .collect()
        })
        .collect();
    let qs: Vec<Pfv> = (0..queries)
        .map(|_| random_pfv(&mut rng, hull_dims))
        .collect();
    for q in &qs {
        for node in &rects {
            for r in node {
                let (up, lo) = r.log_bounds_for_query(q, mode);
                assert_eq!(up.to_bits(), r.log_upper_for_query(q, mode).to_bits());
                assert_eq!(lo.to_bits(), r.log_lower_for_query(q, mode).to_bits());
            }
        }
    }
    let hull_evals = (queries * leaves * children_per_node) as f64;
    let (split_s, sink_a) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for node in &rects {
                for r in node {
                    acc += r.log_upper_for_query(q, mode) + r.log_lower_for_query(q, mode);
                }
            }
        }
        acc
    });
    let (fused_s, sink_b) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for node in &rects {
                for r in node {
                    let (up, lo) = r.log_bounds_for_query(q, mode);
                    acc += up + lo;
                }
            }
        }
        acc
    });
    assert!((sink_a + sink_b).is_finite());
    let split_ns = split_s * 1e9 / hull_evals;
    let fused_ns = fused_s * 1e9 / hull_evals;
    println!("  hull bounds (d={hull_dims})");
    println!("    split    : {split_ns:>8.2} ns/child");
    println!(
        "    fused    : {fused_ns:>8.2} ns/child  ({:.2}x)",
        split_ns / fused_ns
    );

    let reads = fig7_datapoint(&mut rng);

    let exact_bytes = TreeConfig::new(lead.dims).leaf_entry_bytes();
    let quant_bytes = TreeConfig::new(lead.dims)
        .with_leaf_format(LeafFormat::Quantised)
        .leaf_entry_bytes();
    println!(
        "  leaf bytes/entry (d={}): exact {exact_bytes}, quantised {quant_bytes}",
        lead.dims
    );
    println!();
    println!("(bit-identity verified per dimensionality — batched, refine-one and");
    println!(" ragged padded-tail leaves — plus fast-tier conservativeness and the");
    println!(" exact-vs-quantised tree answer identity on the fig7 workload)");

    if let Some(path) = json_path {
        let mut kb = JsonObj::new()
            .int("dims", lead.dims as u64)
            .int("entries_per_leaf", entries as u64)
            .int("leaves", leaves as u64)
            .int("queries", queries as u64)
            .num("scalar_ns_per_entry", lead.scalar_ns)
            .num("batched_ns_per_entry", lead.batched_ns)
            .num("batched_speedup", lead.scalar_ns / lead.batched_ns)
            .num("fast_ns_per_entry", lead.fast_ns)
            .num("fast_speedup_vs_batched", lead.batched_ns / lead.fast_ns)
            .num("quantised_ns_per_entry", lead.quantised_ns)
            .int("leaf_bytes_per_entry", quant_bytes as u64)
            .int("exact_leaf_bytes_per_entry", exact_bytes as u64)
            .int("exact_physical_reads", reads.exact)
            .int("quantised_physical_reads", reads.quantised)
            .num("hull_split_ns_per_child", split_ns)
            .num("hull_fused_ns_per_child", fused_ns)
            .num("hull_fused_speedup", split_ns / fused_ns);
        for t in &timings {
            kb = kb.obj(
                &format!("d{}", t.dims),
                JsonObj::new()
                    .num("scalar_ns_per_entry", t.scalar_ns)
                    .num("batched_ns_per_entry", t.batched_ns)
                    .num("fast_ns_per_entry", t.fast_ns)
                    .num("quantised_ns_per_entry", t.quantised_ns),
            );
        }
        let j = JsonObj::new().obj("kernel_bench", kb);
        j.write_to(&path).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
