//! Scalar vs batched leaf-evaluation kernels: ns per entry.
//!
//! The tentpole measurement for the columnar read path: build a set of
//! fixed-seed leaves at realistic occupancy, then evaluate every leaf
//! against every query twice —
//!
//! * **scalar**: the pre-refactor per-entry path, `combine::log_joint`
//!   over each stored [`Pfv`] (two boxed slices per entry, σ·σ recomputed
//!   per evaluation);
//! * **batched**: [`pfv::batch::log_densities`] over the same leaves in
//!   [`ColumnarLeaf`] struct-of-arrays form with precomputed σ² columns.
//!
//! Both paths are asserted **bit-identical** before timing; the batched
//! kernel must then win on ns/entry. The inner-node side is measured too:
//! fused hull pricing (`ParamRect::log_bounds_for_query`, one Lemma-1
//! σ-mapping per dimension) versus the split upper+lower calls.
//!
//! Run: `cargo run --release -p gauss_bench --bin kernel_bench`
//! Flags: `--dims D` (default 10), `--entries E` (per leaf, default 48 —
//! the 8 KB-page capacity at d=10), `--leaves L` (default 64),
//! `--queries Q` (default 32), `--rounds R` (default 15, best-of),
//! `--json PATH` (write machine-readable results).

use gauss_bench::{arg_value, JsonObj};
use pfv::batch::{log_densities, ColumnarLeaf};
use pfv::{combine, CombineMode, ParamRect, Pfv};
use std::time::Instant;

/// Deterministic xorshift so the workload needs no external RNG.
struct Rng(u64);
impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn random_pfv(rng: &mut Rng, dims: usize) -> Pfv {
    let means: Vec<f64> = (0..dims).map(|_| rng.next_f64() * 10.0).collect();
    let sigmas: Vec<f64> = (0..dims).map(|_| 0.005 + rng.next_f64() * 0.3).collect();
    Pfv::new(means, sigmas).unwrap()
}

/// Best-of-`rounds` wall time of `f`, in seconds.
fn best_of(rounds: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for _ in 0..rounds {
        let t0 = Instant::now();
        sink += f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, sink)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dims: usize = arg_value(&args, "--dims")
        .map(|v| v.parse().expect("--dims"))
        .unwrap_or(10);
    let entries: usize = arg_value(&args, "--entries")
        .map(|v| v.parse().expect("--entries"))
        .unwrap_or(48);
    let leaves: usize = arg_value(&args, "--leaves")
        .map(|v| v.parse().expect("--leaves"))
        .unwrap_or(64);
    let queries: usize = arg_value(&args, "--queries")
        .map(|v| v.parse().expect("--queries"))
        .unwrap_or(32);
    let rounds: usize = arg_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds"))
        .unwrap_or(15);
    let json_path = arg_value(&args, "--json");
    let mode = CombineMode::Convolution;

    let mut rng = Rng(0x1CDE_2006);
    let scalar_leaves: Vec<Vec<Pfv>> = (0..leaves)
        .map(|_| (0..entries).map(|_| random_pfv(&mut rng, dims)).collect())
        .collect();
    let columnar: Vec<ColumnarLeaf> = scalar_leaves
        .iter()
        .map(|l| ColumnarLeaf::from_pfvs(dims, l.iter()))
        .collect();
    let qs: Vec<Pfv> = (0..queries).map(|_| random_pfv(&mut rng, dims)).collect();

    // Correctness gate before any timing: the batched kernel must agree
    // bit-for-bit with the scalar path on every (query, leaf, entry).
    let mut out = vec![0.0f64; entries];
    for q in &qs {
        for (sl, cl) in scalar_leaves.iter().zip(columnar.iter()) {
            log_densities(mode, q, cl, &mut out);
            for (v, &got) in sl.iter().zip(out.iter()) {
                let want = combine::log_joint(mode, v, q);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "batched kernel diverged from scalar path"
                );
            }
        }
    }

    let evals = (queries * leaves * entries) as f64;
    println!(
        "kernel_bench — {leaves} leaves x {entries} entries, {dims} dims, {queries} queries, best of {rounds}"
    );

    let (scalar_s, sink_a) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for leaf in &scalar_leaves {
                for v in leaf {
                    acc += combine::log_joint(mode, v, q);
                }
            }
        }
        acc
    });
    let (batched_s, sink_b) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for leaf in &columnar {
                log_densities(mode, q, leaf, &mut out);
                acc += out.iter().sum::<f64>();
            }
        }
        acc
    });
    let scalar_ns = scalar_s * 1e9 / evals;
    let batched_ns = batched_s * 1e9 / evals;
    println!("  leaf densities  scalar : {scalar_ns:>8.2} ns/entry");
    println!(
        "  leaf densities  batched: {batched_ns:>8.2} ns/entry  ({:.2}x)",
        scalar_ns / batched_ns
    );

    // Inner-node hull pricing: split upper+lower vs the fused sweep.
    let children_per_node = 32usize;
    let rects: Vec<Vec<ParamRect>> = (0..leaves)
        .map(|_| {
            (0..children_per_node)
                .map(|_| {
                    let a = random_pfv(&mut rng, dims);
                    let b = random_pfv(&mut rng, dims);
                    let mut r = ParamRect::from_pfv(&a);
                    r.extend_pfv(&b);
                    r
                })
                .collect()
        })
        .collect();
    for q in &qs {
        for node in &rects {
            for r in node {
                let (up, lo) = r.log_bounds_for_query(q, mode);
                assert_eq!(up.to_bits(), r.log_upper_for_query(q, mode).to_bits());
                assert_eq!(lo.to_bits(), r.log_lower_for_query(q, mode).to_bits());
            }
        }
    }
    let hull_evals = (queries * leaves * children_per_node) as f64;
    let (split_s, sink_c) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for node in &rects {
                for r in node {
                    acc += r.log_upper_for_query(q, mode) + r.log_lower_for_query(q, mode);
                }
            }
        }
        acc
    });
    let (fused_s, sink_d) = best_of(rounds, || {
        let mut acc = 0.0;
        for q in &qs {
            for node in &rects {
                for r in node {
                    let (up, lo) = r.log_bounds_for_query(q, mode);
                    acc += up + lo;
                }
            }
        }
        acc
    });
    let split_ns = split_s * 1e9 / hull_evals;
    let fused_ns = fused_s * 1e9 / hull_evals;
    println!("  hull bounds     split  : {split_ns:>8.2} ns/child");
    println!(
        "  hull bounds     fused  : {fused_ns:>8.2} ns/child  ({:.2}x)",
        split_ns / fused_ns
    );
    println!();
    println!("(bit-identity verified on every entry and every child bound)");
    // Keep the accumulators alive so the measured loops cannot be elided.
    assert!((sink_a + sink_b + sink_c + sink_d).is_finite());

    if let Some(path) = json_path {
        let j = JsonObj::new().obj(
            "kernel_bench",
            JsonObj::new()
                .int("dims", dims as u64)
                .int("entries_per_leaf", entries as u64)
                .int("leaves", leaves as u64)
                .int("queries", queries as u64)
                .num("scalar_ns_per_entry", scalar_ns)
                .num("batched_ns_per_entry", batched_ns)
                .num("batched_speedup", scalar_ns / batched_ns)
                .num("hull_split_ns_per_child", split_ns)
                .num("hull_fused_ns_per_child", fused_ns)
                .num("hull_fused_speedup", split_ns / fused_ns),
        );
        j.write_to(&path).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
