//! Scaling study S1 (extension; not in the paper): Gauss-tree page accesses
//! and speedup versus the sequential scan as functions of database size,
//! dimensionality, and k.
//!
//! Run: `cargo run --release -p gauss-bench --bin scaling [-- --quick]`

use gauss_bench::{build_gauss_tree, build_pfv_file, has_flag};
use gauss_tree::ReadView;
use gauss_tree::TreeConfig;
use gauss_workloads::{generate_queries, uniform_dataset, SigmaSpec};
use pfv::CombineMode;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let sigma = SigmaSpec::log_uniform(0.005, 0.3).with_object_scale(0.5, 3.0);
    let n_queries = if quick { 15 } else { 50 };

    println!("Scaling S1 — Gauss-tree vs sequential scan (uniform data)");
    println!();
    println!("(a) database size (10-d, 1-MLIQ):");
    println!(
        "{:>9} {:>14} {:>14} {:>9}",
        "n", "scan pages/q", "tree pages/q", "speedup"
    );
    let sizes: &[usize] = if quick {
        &[2_000, 8_000]
    } else {
        &[5_000, 20_000, 50_000, 100_000]
    };
    for &n in sizes {
        let (scan, tree) = run_point(n, 10, 1, n_queries, sigma);
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>8.1}x",
            n,
            scan,
            tree,
            scan / tree
        );
    }

    println!();
    println!("(b) dimensionality (n=20 000, 1-MLIQ):");
    println!(
        "{:>9} {:>14} {:>14} {:>9}",
        "dims", "scan pages/q", "tree pages/q", "speedup"
    );
    let dims_list: &[usize] = if quick { &[4, 10] } else { &[2, 5, 10, 20, 27] };
    for &d in dims_list {
        let (scan, tree) = run_point(if quick { 5_000 } else { 20_000 }, d, 1, n_queries, sigma);
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>8.1}x",
            d,
            scan,
            tree,
            scan / tree
        );
    }

    println!();
    println!("(c) k (n=20 000, 10-d, k-MLIQ):");
    println!(
        "{:>9} {:>14} {:>14} {:>9}",
        "k", "scan pages/q", "tree pages/q", "speedup"
    );
    let ks: &[usize] = if quick {
        &[1, 10]
    } else {
        &[1, 3, 10, 30, 100]
    };
    for &k in ks {
        let (scan, tree) = run_point(if quick { 5_000 } else { 20_000 }, 10, k, n_queries, sigma);
        println!(
            "{:>9} {:>14.1} {:>14.1} {:>8.1}x",
            k,
            scan,
            tree,
            scan / tree
        );
    }
    println!();
    println!("Expectation: speedup grows with n (sublinear node accesses), shrinks");
    println!("with dimensionality (weaker hull bounds — the curse the paper's §2");
    println!("survey discusses), and shrinks moderately with k.");
}

/// Returns (scan pages/query, tree pages/query).
fn run_point(n: usize, dims: usize, k: usize, n_queries: usize, sigma: SigmaSpec) -> (f64, f64) {
    let dataset = uniform_dataset(n, dims, sigma, 97 + n as u64 + dims as u64);
    let queries = generate_queries(&dataset, n_queries.min(n), sigma, 3);
    let mut file = build_pfv_file(&dataset);
    let tree = build_gauss_tree(&dataset, TreeConfig::new(dims));

    let mut scan_pages = 0u64;
    let mut tree_pages = 0u64;
    for q in &queries {
        file.pool_mut().clear_cache_and_stats();
        let b = file.stats().snapshot();
        let _ = file
            .k_mliq(&q.query, k, CombineMode::Convolution)
            .expect("scan");
        scan_pages += file.stats().snapshot().since(&b).physical_reads;

        tree.cold_start();
        let b = tree.stats().snapshot();
        let _ = tree.k_mliq(&q.query, k).expect("tree");
        tree_pages += tree.stats().snapshot().since(&b).physical_reads;
    }
    (
        scan_pages as f64 / queries.len() as f64,
        tree_pages as f64 / queries.len() as f64,
    )
}
