//! Sustained mixed-workload ingest: Gauss-forest vs single-tree writes.
//!
//! The tentpole measurement for the LSM-style write path. One fixed-seed
//! drifting-sensor stream (upserts, fresh sensors and deletes from
//! [`gauss_workloads::drift`]) is applied twice, file-backed both times:
//!
//! * **single tree**: the paper's index mutated in place — an upsert is a
//!   read-modify-write (`delete` of the old parameters + `insert`), with
//!   a `flush` commit every `--memtable` operations so both sides pay the
//!   same commit cadence;
//! * **forest**: the same ops through [`GaussForest`]'s memtable/flush
//!   write path, with `maintain()` merges driven inside the timed region
//!   (write amplification is *not* hidden from the clock).
//!
//! While the forest ingests, every `--probe-every` events a snapshot is
//! pinned and a k-MLIQ runs on it; those latencies produce the reported
//! p99, demonstrating reads stay serviceable mid-ingest. After both runs
//! the stream's live set is bulk-loaded into a fresh reference tree and
//! the forest's k-MLIQ answers are asserted **bit-identical** to it
//! (ids, order and `log_density` bits).
//!
//! Run: `cargo run --release -p gauss_bench --bin sustained_ingest`
//! Flags: `--events N` (default 60000), `--dims D` (default 8),
//! `--memtable M` (default 4096), `--sensors S` (default 1024),
//! `--probe-every P` (default 2000), `--json PATH`.

use gauss_bench::{arg_value, JsonObj};
use gauss_storage::forest::DirComponentStores;
use gauss_storage::{AccessStats, BufferPool, FileStore, DEFAULT_PAGE_SIZE};
use gauss_tree::{ForestOptions, GaussForest, GaussTree, ReadView, TreeConfig, TreeOptions};
use gauss_workloads::{DriftConfig, DriftStream, SigmaSpec, StreamOp};
use pfv::Pfv;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

const CACHE_BYTES: usize = 50 * 1024 * 1024;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let d = std::env::temp_dir().join(format!("gauss-sustained-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).expect("temp dir");
        Self(d)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Replays `ops` against a plain map — the ground-truth live set.
fn live_set(ops: &[StreamOp]) -> Vec<(u64, Pfv)> {
    let mut live: HashMap<u64, Pfv> = HashMap::new();
    for op in ops {
        match op {
            StreamOp::Upsert(id, v) => {
                live.insert(*id, v.clone());
            }
            StreamOp::Delete(id) => {
                live.remove(id);
            }
        }
    }
    let mut items: Vec<(u64, Pfv)> = live.into_iter().collect();
    items.sort_by_key(|(id, _)| *id);
    items
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let events: usize =
        arg_value(&args, "--events").map_or(60_000, |v| v.parse().expect("--events"));
    let dims: usize = arg_value(&args, "--dims").map_or(8, |v| v.parse().expect("--dims"));
    let memtable: usize =
        arg_value(&args, "--memtable").map_or(4096, |v| v.parse().expect("--memtable"));
    let sensors: usize =
        arg_value(&args, "--sensors").map_or(1024, |v| v.parse().expect("--sensors"));
    let probe_every: usize =
        arg_value(&args, "--probe-every").map_or(2000, |v| v.parse().expect("--probe-every"));
    let json_path = arg_value(&args, "--json");
    let k = 10usize;

    let drift = DriftConfig {
        initial_sensors: sensors,
        dims,
        sigma: SigmaSpec::uniform(0.05, 0.4),
        update_fraction: 0.55,
        delete_fraction: 0.05,
        ..DriftConfig::default()
    };
    let ops: Vec<StreamOp> = DriftStream::new(drift, 42).take(events).collect();
    let queries: Vec<Pfv> = DriftStream::new(drift, 7)
        .filter_map(|op| match op {
            StreamOp::Upsert(_, v) => Some(v),
            StreamOp::Delete(_) => None,
        })
        .take(16)
        .collect();
    println!("sustained_ingest: {events} events, {dims} dims, memtable {memtable}");

    // --- single tree: in-place read-modify-write ingest -----------------
    let tree_dir = TempDir::new("tree");
    let store = FileStore::create(tree_dir.0.join("single.gtree"), DEFAULT_PAGE_SIZE)
        .expect("create single-tree file");
    let pool = BufferPool::with_byte_budget(store, CACHE_BYTES, AccessStats::new_shared());
    let mut tree = GaussTree::create_with(pool, TreeConfig::new(dims), &TreeOptions::new())
        .expect("create tree");
    let mut current: HashMap<u64, Pfv> = HashMap::new();
    let t0 = Instant::now();
    for (i, op) in ops.iter().enumerate() {
        match op {
            StreamOp::Upsert(id, v) => {
                if let Some(old) = current.insert(*id, v.clone()) {
                    tree.delete(*id, &old).expect("delete old version");
                }
                tree.insert(*id, v).expect("insert");
            }
            StreamOp::Delete(id) => {
                // Initial sensors may be retired before their first
                // observation reaches the stream — nothing to delete then.
                if let Some(old) = current.remove(id) {
                    tree.delete(*id, &old).expect("delete");
                }
            }
        }
        if (i + 1) % memtable == 0 {
            tree.flush().expect("flush");
        }
    }
    tree.flush().expect("flush");
    let single_s = t0.elapsed().as_secs_f64();
    let single_ops = events as f64 / single_s;
    println!(
        "  single tree : {single_ops:>10.0} ops/s ({single_s:.2}s, {} live)",
        tree.len()
    );

    // --- forest: memtable/flush/merge ingest with query probes ----------
    let forest_dir = TempDir::new("forest");
    let backend =
        DirComponentStores::new(&forest_dir.0, DEFAULT_PAGE_SIZE).expect("forest backend");
    let mut forest = GaussForest::create(
        backend,
        TreeConfig::new(dims),
        ForestOptions::new().memtable_capacity(memtable),
    )
    .expect("create forest");
    let mut probe_us: Vec<f64> = Vec::new();
    let t0 = Instant::now();
    for (i, op) in ops.iter().enumerate() {
        match op {
            StreamOp::Upsert(id, v) => forest.insert(*id, v).expect("insert"),
            StreamOp::Delete(id) => {
                forest.delete(*id).expect("delete");
            }
        }
        if (i + 1) % (4 * memtable) == 0 {
            forest.maintain().expect("maintain");
        }
        if (i + 1) % probe_every == 0 {
            // A pinned snapshot mid-ingest must answer immediately.
            let q0 = Instant::now();
            let snap = forest.snapshot().expect("snapshot");
            let hits = snap.k_mliq(&queries[(i / probe_every) % queries.len()], k);
            let dt = q0.elapsed().as_secs_f64() * 1e6;
            assert!(!hits.expect("probe query").is_empty());
            probe_us.push(dt);
        }
    }
    forest.flush().expect("flush");
    forest.maintain().expect("maintain");
    let forest_s = t0.elapsed().as_secs_f64();
    let forest_ops = events as f64 / forest_s;
    let speedup = forest_ops / single_ops;
    probe_us.sort_by(f64::total_cmp);
    let p99 = probe_us[((probe_us.len() as f64 * 0.99) as usize).min(probe_us.len() - 1)];
    println!(
        "  forest      : {forest_ops:>10.0} ops/s ({forest_s:.2}s, {} live)",
        forest.len()
    );
    println!("  speedup     : {speedup:>10.2}x");
    println!(
        "  probes      : {} snapshots, p99 k-MLIQ {p99:.0} us mid-ingest",
        probe_us.len()
    );

    // --- bit-identity: forest answers == fresh bulk-loaded reference ----
    let items = live_set(&ops);
    assert_eq!(items.len() as u64, forest.len(), "live-set divergence");
    assert_eq!(
        items.len() as u64,
        tree.len(),
        "single-tree live-set divergence"
    );
    let ref_pool = BufferPool::with_byte_budget(
        gauss_storage::MemStore::new(DEFAULT_PAGE_SIZE),
        CACHE_BYTES,
        AccessStats::new_shared(),
    );
    let reference =
        GaussTree::bulk_load(ref_pool, TreeConfig::new(dims), items).expect("reference tree");
    let snap = forest.snapshot().expect("snapshot");
    let mut identical = true;
    for q in &queries {
        let a = snap.k_mliq(q, k).expect("forest k-mliq");
        let b = reference.k_mliq(q, k).expect("reference k-mliq");
        let c = tree.k_mliq(q, k).expect("single-tree k-mliq");
        if a != b || a != c {
            identical = false;
        }
    }
    assert!(
        identical,
        "forest k-MLIQ diverged from the reference tree over the same live set"
    );
    println!("  bit-identity: ok ({} queries, k={k})", queries.len());

    if let Some(path) = json_path {
        let j = JsonObj::new().obj(
            "sustained_ingest",
            JsonObj::new()
                .int("events", events as u64)
                .int("dims", dims as u64)
                .int("memtable", memtable as u64)
                .num("forest_objs_per_s", forest_ops)
                .num("single_objs_per_s", single_ops)
                .num("forest_speedup", speedup)
                .num("p99_query_us", p99)
                .int("bit_identical", u64::from(identical)),
        );
        j.write_to(&path).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
