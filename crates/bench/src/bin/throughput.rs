//! Batch-query throughput versus thread count over one shared Gauss-tree.
//!
//! The tentpole measurement for the concurrent read path: bulk-load the
//! 100 k-object uniform 10-d workload (the paper's data set 2 scale), warm
//! the 50 MB cache once, then fan a fixed batch of k-MLIQ queries across
//! 1/2/4/8 executor threads and report queries/sec and speedup over the
//! single-threaded run. Results are asserted bit-identical across thread
//! counts and the warmed cache must serve every read without a physical
//! fault — the executor parallelises, it does not approximate.
//!
//! A final datapoint measures the MVCC read path: `qps_during_ingest` is
//! the k-MLIQ rate over a pinned [`Snapshot`](gauss_tree::Snapshot) while a
//! writer thread concurrently extends and commits new epochs — the
//! snapshot results are asserted bit-identical to the quiesced pre-ingest
//! batch.
//!
//! Run: `cargo run --release -p gauss_bench --bin throughput [-- --quick]`
//! Flags: `--n N` (objects, default 100000), `--dims D` (default 10),
//! `--queries Q` (batch size, default 1000), `--k K` (default 1),
//! `--threads 1,2,4,8`, `--quick` (n=10000, 200 queries),
//! `--rounds R` (best-of rounds per thread count, default 3 — qps noise on
//! shared CI runners would otherwise trip the regression gate),
//! `--json PATH` (write qps/page-read results for the CI perf gate).

use gauss_bench::{arg_value, build_gauss_tree, has_flag, JsonObj};
use gauss_storage::LOCK_TRACKING;
use gauss_tree::ReadView;
use gauss_tree::TreeConfig;
use gauss_workloads::{generate_query_batch, uniform_dataset, SigmaSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let n: usize = arg_value(&args, "--n")
        .map(|v| v.parse().expect("--n"))
        .unwrap_or(if quick { 10_000 } else { 100_000 });
    let dims: usize = arg_value(&args, "--dims")
        .map(|v| v.parse().expect("--dims"))
        .unwrap_or(10);
    let n_queries: usize = arg_value(&args, "--queries")
        .map(|v| v.parse().expect("--queries"))
        .unwrap_or(if quick { 200 } else { 1000 });
    let k: usize = arg_value(&args, "--k")
        .map(|v| v.parse().expect("--k"))
        .unwrap_or(1);
    let thread_counts: Vec<usize> = arg_value(&args, "--threads")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|t| t.trim().parse().expect("--threads"))
        .collect();
    let rounds: usize = arg_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds"))
        .unwrap_or(3)
        .max(1);
    let json_path = arg_value(&args, "--json");

    let sigma = SigmaSpec::log_uniform(0.005, 0.3).with_object_scale(0.5, 3.0);
    println!("throughput — {n} objects, {dims} dims, {n_queries}-query batch, k={k}");
    if LOCK_TRACKING {
        eprintln!(
            "warning: lock-order tracking is compiled in; \
             numbers are not comparable to a release baseline"
        );
    }

    eprintln!("building Gauss-tree (bulk load)…");
    let dataset = uniform_dataset(n, dims, sigma, 20060404);
    let mut tree = build_gauss_tree(&dataset, TreeConfig::new(dims));
    let queries = generate_query_batch(&dataset, n_queries, sigma, 0xBA7C4);
    eprintln!(
        "built: height {}, {} pages; warming cache…",
        tree.height(),
        tree.pool().num_pages()
    );

    // Warm the cache once so every configuration measures pure in-memory
    // query throughput (the serving steady state), not first-touch faults.
    let warm = tree.batch(1).k_mliq(&queries, k).expect("warm-up run");
    let total_hits: usize = warm.iter().map(Vec::len).sum();
    let tree_fits_in_cache = tree.pool().num_pages() <= tree.pool().capacity() as u64;
    if !tree_fits_in_cache {
        eprintln!("note: tree exceeds the cache; physical faults will occur and vary");
    }

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>14} {:>10}",
        "threads", "wall ms", "queries/s", "speedup", "logical reads", "faults"
    );
    let mut base_qps = 0.0f64;
    let mut qps_fields = JsonObj::new();
    let mut last_reads = (0u64, 0u64);
    for &threads in &thread_counts {
        // Best-of-`rounds` wall time: one noisy scheduler hiccup on a busy
        // CI runner must not read as a throughput regression.
        let mut wall = f64::INFINITY;
        let mut snap = tree.stats().snapshot();
        for _ in 0..rounds {
            tree.stats().reset();
            let t0 = std::time::Instant::now();
            let results = tree.batch(threads).k_mliq(&queries, k).expect("batch run");
            wall = wall.min(t0.elapsed().as_secs_f64());
            snap = tree.stats().snapshot();
            assert_eq!(results, warm, "parallel results must equal serial results");
        }
        // The accounting check that can actually fail: a warmed cache big
        // enough for the tree must serve every read without a physical
        // fault, on any thread count — misses resolve under the shard lock.
        if tree_fits_in_cache {
            assert_eq!(
                snap.physical_reads, 0,
                "warm cache must not fault (threads={threads})"
            );
        }

        let qps = n_queries as f64 / wall;
        if base_qps == 0.0 {
            base_qps = qps;
        }
        println!(
            "{threads:>8} {:>12.1} {:>12.0} {:>9.2}x {:>14} {:>10}",
            1e3 * wall,
            qps,
            qps / base_qps,
            snap.logical_reads,
            snap.physical_reads
        );
        qps_fields = qps_fields.num(&format!("qps_t{threads}"), qps);
        last_reads = (snap.logical_reads, snap.physical_reads);
    }
    println!();
    println!("({total_hits} total hits; results bit-identical across all thread counts)");

    // MVCC datapoint: query throughput over a pinned snapshot while a
    // writer thread concurrently ingests and commits new epochs. Every
    // snapshot batch must stay bit-identical to the quiesced warm run —
    // the reader sees one frozen epoch, not the writer's progress.
    eprintln!("measuring snapshot qps during ingest…");
    tree.flush().expect("pre-snapshot commit");
    let snap = tree.snapshot().expect("pin committed epoch");
    let ingest = uniform_dataset(if quick { 2_000 } else { 20_000 }, dims, sigma, 0x1D_6E57);
    let ingest_items: Vec<_> = ingest
        .items()
        .into_iter()
        .map(|(id, v)| (n as u64 + id, v))
        .collect();
    let epoch0 = snap.epoch();
    let (answered, reader_wall) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for chunk in ingest_items.chunks(1024) {
                tree.extend(chunk.to_vec()).expect("ingest extend");
                tree.flush().expect("ingest commit");
            }
        });
        let t0 = std::time::Instant::now();
        let mut answered = 0usize;
        loop {
            let finished = writer.is_finished();
            let results = snap.batch(2).k_mliq(&queries, k).expect("snapshot batch");
            assert_eq!(results, warm, "snapshot read diverged during ingest");
            answered += n_queries;
            if finished {
                break;
            }
        }
        writer.join().expect("writer thread");
        (answered, t0.elapsed().as_secs_f64())
    });
    let qps_during_ingest = answered as f64 / reader_wall;
    assert!(
        tree.epoch() > epoch0,
        "ingest must have committed new epochs"
    );
    println!(
        "snapshot qps during ingest: {qps_during_ingest:.0} \
         ({answered} queries over {} committed epochs, bit-identical throughout)",
        tree.epoch() - epoch0
    );

    if let Some(path) = json_path {
        let j = JsonObj::new().obj(
            "throughput",
            JsonObj::new()
                .int("n", n as u64)
                .int("dims", dims as u64)
                .int("queries", n_queries as u64)
                .int("k", k as u64)
                .obj("qps", qps_fields)
                .num("qps_during_ingest", qps_during_ingest)
                .int("logical_reads", last_reads.0)
                .int("physical_reads", last_reads.1)
                .int("total_hits", total_hits as u64)
                // 0/1 so bench_compare.py can refuse a baseline produced
                // with the detector compiled in (it costs a per-lock probe).
                .int("lock_tracking", u64::from(LOCK_TRACKING)),
        );
        j.write_to(&path).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
