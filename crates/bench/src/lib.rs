//! Shared harness code for the figure-reproduction binaries.
//!
//! The per-figure binaries (`fig1_example`, `fig6_effectiveness`,
//! `fig7_efficiency`, `ablation_*`, `scaling`) assemble their experiments
//! from the helpers here: canonical data-set configurations, index builders
//! over all three evaluated access methods, and measurement utilities that
//! report the paper's three metrics (page accesses, CPU time, overall time
//! including modelled I/O).

#![forbid(unsafe_code)]

use gauss_baselines::{PfvFile, XTree, XTreeConfig};
use gauss_storage::{AccessStats, BufferPool, DiskModel, MemStore, DEFAULT_PAGE_SIZE};
use gauss_tree::{GaussTree, TreeConfig};
use gauss_workloads::{
    generate_queries, histogram_dataset, uniform_dataset, Dataset, IdentificationQuery, SigmaSpec,
};

/// Canonical experiment configuration for one of the paper's data sets.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Which paper data set this mirrors (1 or 2).
    pub id: u8,
    /// Number of database objects.
    pub n: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Number of queries.
    pub queries: usize,
    /// σ distribution of database objects.
    pub db_sigma: SigmaSpec,
    /// σ distribution of query objects.
    pub query_sigma: SigmaSpec,
    /// RNG seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// Data set 1: 10 987 27-dimensional colour histograms, 100 queries
    /// (paper §6). `quick` shrinks it for smoke tests.
    #[must_use]
    pub fn dataset1(quick: bool) -> Self {
        let (n, queries) = if quick { (1500, 30) } else { (10_987, 100) };
        Self {
            id: 1,
            n,
            dims: 27,
            queries,
            db_sigma: SigmaSpec::log_uniform(0.05, 0.9)
                .with_object_scale(0.5, 2.0)
                .relative_to_value(0.01),
            query_sigma: SigmaSpec::log_uniform(0.05, 0.9)
                .with_object_scale(0.5, 1.5)
                .relative_to_value(0.01),
            seed: 20060403,
        }
    }

    /// Data set 2: 100 000 uniformly distributed 10-dimensional vectors,
    /// 500 queries (paper §6).
    #[must_use]
    pub fn dataset2(quick: bool) -> Self {
        let (n, queries) = if quick { (8_000, 50) } else { (100_000, 500) };
        Self {
            id: 2,
            n,
            dims: 10,
            queries,
            db_sigma: SigmaSpec::log_uniform(0.005, 0.3).with_object_scale(0.5, 3.0),
            query_sigma: SigmaSpec::log_uniform(0.005, 0.3).with_object_scale(0.5, 1.5),
            seed: 20060404,
        }
    }

    /// Generates the data set.
    #[must_use]
    pub fn dataset(&self) -> Dataset {
        match self.id {
            1 => histogram_dataset(self.n, self.dims, self.db_sigma, self.seed),
            _ => uniform_dataset(self.n, self.dims, self.db_sigma, self.seed),
        }
    }

    /// Generates the query workload with ground truth.
    #[must_use]
    pub fn queries(&self, dataset: &Dataset) -> Vec<IdentificationQuery> {
        generate_queries(dataset, self.queries, self.query_sigma, self.seed ^ 0xABCD)
    }
}

/// Cache budget used by every experiment (the paper's 50 MB).
pub const CACHE_BYTES: usize = 50 * 1024 * 1024;

/// Builds the sequential pfv file for a data set.
///
/// # Panics
/// Panics on builder errors (in-memory store cannot fail).
#[must_use]
pub fn build_pfv_file(dataset: &Dataset) -> PfvFile<MemStore> {
    let pool = BufferPool::with_byte_budget(
        MemStore::new(DEFAULT_PAGE_SIZE),
        CACHE_BYTES,
        AccessStats::new_shared(),
    );
    // lint: allow(no-panic) -- bench fixture setup; a broken build must abort the benchmark loudly
    PfvFile::build(pool, dataset.dims(), dataset.items()).expect("pfv file build")
}

/// Bulk-loads the Gauss-tree for a data set.
///
/// # Panics
/// Panics on builder errors.
#[must_use]
pub fn build_gauss_tree(dataset: &Dataset, config: TreeConfig) -> GaussTree<MemStore> {
    let pool = BufferPool::with_byte_budget(
        MemStore::new(DEFAULT_PAGE_SIZE),
        CACHE_BYTES,
        AccessStats::new_shared(),
    );
    // lint: allow(no-panic) -- bench fixture setup; a broken build must abort the benchmark loudly
    GaussTree::bulk_load(pool, config, dataset.items()).expect("gauss tree build")
}

/// Builds the X-tree over a pfv file.
///
/// # Panics
/// Panics on builder errors.
#[must_use]
pub fn build_xtree(dataset: &Dataset, file: &mut PfvFile<MemStore>) -> XTree<MemStore> {
    let pool = BufferPool::with_byte_budget(
        MemStore::new(DEFAULT_PAGE_SIZE),
        CACHE_BYTES,
        AccessStats::new_shared(),
    );
    // lint: allow(no-panic) -- bench fixture setup; a broken build must abort the benchmark loudly
    XTree::build_from_file(pool, XTreeConfig::new(dataset.dims()), file).expect("xtree build")
}

/// One measured query workload: totals over all queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Logical page accesses (buffer requests) — the paper's "page
    /// accesses" metric; independent of cache state.
    pub pages: u64,
    /// Physical page reads under the 50 MB cache cold-started once per
    /// experiment — what actually hits the (modelled) disk.
    pub faults: u64,
    /// Whether this workload reads sequentially (scan) or randomly (index).
    pub sequential: bool,
    /// Exact payload bytes a sequential workload transferred, when the
    /// caller knows them (see [`Measurement::with_scan_bytes`]). `None`
    /// falls back to page-granular billing of `faults`.
    pub scan_bytes: Option<u64>,
    /// Measured CPU (wall) time in seconds.
    pub cpu_s: f64,
}

impl Measurement {
    /// Attaches the exact byte count a sequential scan transferred, so the
    /// disk model bills `DiskModel::sequential_scan_s(bytes)` instead of
    /// charging every faulted page in full — a file whose last page is
    /// half-empty is then no longer over-billed for the padding.
    #[must_use]
    pub fn with_scan_bytes(mut self, bytes: u64) -> Self {
        self.scan_bytes = Some(bytes);
        self
    }

    /// Modelled I/O time under a disk model, in seconds.
    #[must_use]
    pub fn io_s(&self, disk: &DiskModel) -> f64 {
        if self.sequential {
            match self.scan_bytes {
                Some(bytes) => disk.sequential_scan_s(bytes),
                None => disk.sequential_io_s(self.faults),
            }
        } else {
            disk.random_io_s(self.faults)
        }
    }

    /// Overall time = measured CPU + modelled I/O (paper's "overall time").
    #[must_use]
    pub fn overall_s(&self, disk: &DiskModel) -> f64 {
        self.cpu_s + self.io_s(disk)
    }
}

/// Measures a query workload under the paper's methodology: the 50 MB cache
/// is cold-started once per experiment (the caller clears it before this
/// call), *page accesses* are logical buffer requests, and *overall time*
/// combines measured CPU with disk time modelled from the physical faults
/// that actually occurred against the cold cache.
pub fn measure_queries(
    queries: &[IdentificationQuery],
    sequential: bool,
    mut stats: impl FnMut() -> gauss_storage::StatsSnapshot,
    mut run: impl FnMut(&IdentificationQuery) -> f64,
) -> Measurement {
    let mut pages = 0u64;
    let mut faults = 0u64;
    let mut cpu_s = 0.0f64;
    for q in queries {
        let before = stats();
        cpu_s += run(q);
        let delta = stats().since(&before);
        pages += delta.logical_reads;
        faults += delta.physical_reads;
    }
    Measurement {
        pages,
        faults,
        sequential,
        scan_bytes: None,
        cpu_s,
    }
}

/// Exact bytes transferred by `faults` sequential page reads over a file of
/// `file_pages` pages and `file_bytes` payload bytes: whole-file passes are
/// billed their true payload size (no padding for the partial last page),
/// any remainder of pages at full page size.
#[must_use]
pub fn scan_bytes_for_faults(
    faults: u64,
    file_pages: u64,
    file_bytes: u64,
    page_size: usize,
) -> u64 {
    if file_pages == 0 {
        return 0;
    }
    let full_scans = faults / file_pages;
    let rem_pages = faults % file_pages;
    full_scans * file_bytes + rem_pages * page_size as u64
}

/// Minimal JSON object builder for the bench bins' machine-readable output
/// (`BENCH_*.json` — consumed by `scripts/bench_compare.py`). Supports the
/// small subset the perf pipeline needs: string/integer/float fields and
/// one level of nested objects, insertion-ordered, no external deps.
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a float field (non-finite values are emitted as `null` so the
    /// output stays strict JSON).
    #[must_use]
    pub fn num(self, key: &str, v: f64) -> Self {
        let r = if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        };
        self.push(key, r)
    }

    /// Adds an integer field.
    #[must_use]
    pub fn int(self, key: &str, v: u64) -> Self {
        self.push(key, format!("{v}"))
    }

    /// Adds a string field (keys and values must not need escaping beyond
    /// quotes/backslashes, which are handled).
    #[must_use]
    pub fn str(self, key: &str, v: &str) -> Self {
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        self.push(key, format!("\"{escaped}\""))
    }

    /// Adds a nested object field.
    #[must_use]
    pub fn obj(self, key: &str, v: JsonObj) -> Self {
        let r = v.render();
        self.push(key, r)
    }

    /// Renders the object as a JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push('}');
        s
    }

    /// Writes the rendered object (plus a trailing newline) to `path`.
    ///
    /// # Errors
    /// I/O errors from the filesystem.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render() + "\n")
    }
}

/// Simple `--flag value` argument scraper for the harness binaries.
#[must_use]
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare flag is present.
#[must_use]
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Formats a percentage table row.
#[must_use]
pub fn fmt_row(label: &str, cells: &[f64]) -> String {
    let mut s = format!("{label:<28}");
    for c in cells {
        s.push_str(&format!(" {c:>9.1}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauss_tree::TreeConfig;

    #[test]
    fn quick_specs_generate() {
        let spec = ExperimentSpec::dataset1(true);
        let ds = spec.dataset();
        assert_eq!(ds.len(), spec.n);
        assert_eq!(ds.dims(), 27);
        let qs = spec.queries(&ds);
        assert_eq!(qs.len(), spec.queries);
    }

    #[test]
    fn builders_produce_consistent_sizes() {
        let spec = ExperimentSpec {
            n: 500,
            queries: 5,
            ..ExperimentSpec::dataset2(true)
        };
        let ds = spec.dataset();
        let mut file = build_pfv_file(&ds);
        assert_eq!(file.len(), 500);
        let tree = build_gauss_tree(&ds, TreeConfig::new(ds.dims()));
        assert_eq!(tree.len(), 500);
        let xt = build_xtree(&ds, &mut file);
        assert_eq!(xt.len(), 500);
    }

    #[test]
    fn measurement_percentages() {
        let disk = DiskModel::hdd_2006(8192);
        let base = Measurement {
            pages: 100,
            faults: 100,
            sequential: true,
            scan_bytes: None,
            cpu_s: 2.0,
        };
        let m = Measurement {
            pages: 25,
            faults: 10,
            sequential: false,
            scan_bytes: None,
            cpu_s: 0.5,
        };
        // Sequential base streams; random access pays a seek per fault.
        assert!(base.io_s(&disk) < m.io_s(&disk) * 2.0);
        assert!(m.overall_s(&disk) > m.cpu_s);
    }

    #[test]
    fn json_obj_renders_strict_json() {
        let j = JsonObj::new()
            .str("name", "kernel \"bench\"")
            .int("entries", 48)
            .num("ns", 12.5)
            .num("bad", f64::NAN)
            .obj("nested", JsonObj::new().num("qps", 1000.0));
        assert_eq!(
            j.render(),
            r#"{"name":"kernel \"bench\"","entries":48,"ns":12.5,"bad":null,"nested":{"qps":1000}}"#
        );
    }

    #[test]
    fn scan_byte_accounting_discounts_partial_last_page() {
        // File: 3 pages, 2.5 pages' worth of payload.
        let (pages, bytes, page) = (3u64, 8192 * 2 + 4096, 8192usize);
        // One full cold scan: billed the exact payload.
        assert_eq!(scan_bytes_for_faults(3, pages, bytes, page), bytes);
        // Two full scans.
        assert_eq!(scan_bytes_for_faults(6, pages, bytes, page), 2 * bytes);
        // A partial pass bills whole pages (we cannot know which).
        assert_eq!(scan_bytes_for_faults(4, pages, bytes, page), bytes + 8192);
        assert_eq!(scan_bytes_for_faults(5, 0, bytes, page), 0);
        // The byte-accurate sequential bill undercuts page-granular billing.
        let disk = DiskModel::hdd_2006(page);
        let m = Measurement {
            pages: 3,
            faults: 3,
            sequential: true,
            scan_bytes: None,
            cpu_s: 0.0,
        };
        let exact = m.with_scan_bytes(bytes);
        assert!(exact.io_s(&disk) < m.io_s(&disk));
    }

    #[test]
    fn arg_helpers() {
        let args: Vec<String> = ["--dataset", "2", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--dataset").as_deref(), Some("2"));
        assert!(has_flag(&args, "--quick"));
        assert!(!has_flag(&args, "--verbose"));
    }
}
