//! Minimal flag parsing and pfv literal parsing (no external arg crates).

use pfv::Pfv;
use std::fmt;

/// A parsing/validation error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl From<String> for ArgError {
    fn from(s: String) -> Self {
        ArgError(s)
    }
}

/// Parsed `--flag value` pairs plus positional words.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (after the subcommand) into flag/value pairs.
    ///
    /// # Errors
    /// A dangling `--flag` without a value is an error unless it is a known
    /// boolean switch (none currently).
    pub fn parse(argv: &[String]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let Some(value) = argv.get(i + 1) else {
                    return Err(ArgError(format!("flag --{name} needs a value")));
                };
                out.pairs.push((name.to_string(), value.clone()));
                i += 2;
            } else if let Some(name) = a.strip_prefix('-') {
                let Some(value) = argv.get(i + 1) else {
                    return Err(ArgError(format!("flag -{name} needs a value")));
                };
                out.pairs.push((name.to_string(), value.clone()));
                i += 2;
            } else {
                out.flags.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Raw string value of a flag.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable flag, in order of appearance
    /// (e.g. `--query a --query b` for a batch).
    #[must_use]
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Required string value.
    ///
    /// # Errors
    /// Missing flag.
    pub fn required(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Parsed numeric value with default.
    ///
    /// # Errors
    /// Unparseable value.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse '{v}'"))),
        }
    }

    /// Required parsed numeric value.
    ///
    /// # Errors
    /// Missing flag or unparseable value.
    pub fn num_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self.required(name)?;
        v.parse()
            .map_err(|_| ArgError(format!("--{name}: cannot parse '{v}'")))
    }
}

/// Parses a pfv literal `m1,m2,...;s1,s2,...`.
///
/// # Errors
/// Malformed literal or invalid components.
pub fn parse_pfv(s: &str) -> Result<Pfv, ArgError> {
    let (means_str, sigmas_str) = s
        .split_once(';')
        .ok_or_else(|| ArgError(format!("query '{s}' must be 'means;sigmas'")))?;
    let means = parse_vec(means_str)?;
    let sigmas = parse_vec(sigmas_str)?;
    Pfv::new(means, sigmas).map_err(|e| ArgError(format!("invalid pfv: {e}")))
}

/// Parses a comma-separated float vector.
///
/// # Errors
/// Empty input or unparseable components.
pub fn parse_vec(s: &str) -> Result<Vec<f64>, ArgError> {
    let parts: Result<Vec<f64>, _> = s.split(',').map(|p| p.trim().parse::<f64>()).collect();
    let v = parts.map_err(|_| ArgError(format!("cannot parse vector '{s}'")))?;
    if v.is_empty() {
        return Err(ArgError("empty vector".into()));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_values() {
        let a = Args::parse(&argv(&["--index", "x.gt", "-k", "5"])).unwrap();
        assert_eq!(a.get("index"), Some("x.gt"));
        assert_eq!(a.num::<usize>("k", 1).unwrap(), 5);
        assert_eq!(a.num::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn later_flags_win() {
        let a = Args::parse(&argv(&["--n", "1", "--n", "2"])).unwrap();
        assert_eq!(a.num::<usize>("n", 0).unwrap(), 2);
    }

    #[test]
    fn get_all_returns_every_occurrence_in_order() {
        let a = Args::parse(&argv(&["--query", "a", "--k", "3", "--query", "b"])).unwrap();
        assert_eq!(a.get_all("query"), vec!["a", "b"]);
        assert_eq!(a.get_all("missing"), Vec::<&str>::new());
    }

    #[test]
    fn dangling_flag_is_error() {
        assert!(Args::parse(&argv(&["--index"])).is_err());
    }

    #[test]
    fn missing_required_reports_name() {
        let a = Args::parse(&argv(&[])).unwrap();
        let err = a.required("index").unwrap_err();
        assert!(err.0.contains("--index"));
    }

    #[test]
    fn parses_pfv_literal() {
        let v = parse_pfv("1.0, 2.5;0.1,0.2").unwrap();
        assert_eq!(v.means(), &[1.0, 2.5]);
        assert_eq!(v.sigmas(), &[0.1, 0.2]);
    }

    #[test]
    fn rejects_bad_pfv_literals() {
        assert!(parse_pfv("1.0,2.5").is_err()); // no sigmas
        assert!(parse_pfv("1.0;0.1,0.2").is_err()); // length mismatch
        assert!(parse_pfv("a;b").is_err());
        assert!(parse_pfv("1.0;-0.5").is_err()); // negative sigma
    }
}
