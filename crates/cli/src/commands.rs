//! Subcommand implementations.

use crate::args::{parse_pfv, parse_vec, ArgError, Args};
use crate::csvio;
use gauss_storage::forest::DirComponentStores;
use gauss_storage::{AccessStats, BufferPool, Durability, FileStore, DEFAULT_PAGE_SIZE};
use gauss_tree::{
    BulkLoadOptions, DeleteOutcome, ForestOptions, GaussForest, GaussTree, LeafFormat, ReadView,
    SpillKind, SplitStrategy, TreeConfig, TreeOptions,
};
use gauss_workloads::{
    histogram_dataset, uniform_dataset, DriftConfig, DriftStream, SigmaSpec, StreamOp,
};
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "usage:
  gauss-cli generate --out FILE --kind histogram|uniform --n N --dims D
                     [--seed S] [--sigma-min X] [--sigma-max Y]
  gauss-cli build    --data FILE.csv --index FILE.gtree
                     [--page-size BYTES] [--split hull|mu|volume] [--bulk true|false]
                     [--threads N] [--mem-budget BYTES] [--append true|false]
                     [--durability none|flush|fsync] [--leaf-format exact|quantised]
                     [--forest true]  (then --index is a forest DIRECTORY;
                      also [--memtable N] [--merge-factor F])
  gauss-cli ingest   --index DIR (--data FILE.csv | --events N [--sensors S]
                     [--dims D] [--seed X] [--update-frac U] [--delete-frac V])
                     [--maintain true]
  gauss-cli compact  --index DIR
  gauss-cli info     --index FILE.gtree|DIR [--check true] [--recover true]
  gauss-cli mliq     --index FILE.gtree|DIR --query 'm1,..;s1,..' [--query ...]
                     [-k K] [--accuracy A] [--threads N] [--pin-snapshot true]
  gauss-cli tiq      --index FILE.gtree|DIR --query 'm1,..;s1,..' [--query ...]
                     --theta T [--accuracy A] [--threads N] [--pin-snapshot true]
  gauss-cli boxq     --index FILE.gtree|DIR --lo a,b,.. --hi c,d,.. --tau T
  gauss-cli delete   --index FILE.gtree --id N --query 'm1,..;s1,..'
                     (forests delete through ingest streams)";

/// Dispatches a full argv (subcommand first).
///
/// # Errors
/// Any parse, I/O or index error, as a displayable message.
pub fn dispatch(argv: &[String]) -> Result<(), ArgError> {
    let Some(cmd) = argv.first() else {
        return Err(ArgError("no subcommand given".into()));
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "generate" => generate(&args),
        "build" => build(&args),
        "ingest" => ingest(&args),
        "compact" => compact(&args),
        "info" => info(&args),
        "mliq" => mliq(&args),
        "tiq" => tiq(&args),
        "boxq" => boxq(&args),
        "delete" => delete(&args),
        other => Err(ArgError(format!("unknown subcommand '{other}'"))),
    }
}

fn generate(args: &Args) -> Result<(), ArgError> {
    let out = args.required("out")?;
    let kind = args.get("kind").unwrap_or("uniform");
    let n: usize = args.num("n", 1000)?;
    let dims: usize = args.num("dims", 10)?;
    let seed: u64 = args.num("seed", 42)?;
    let smin: f64 = args.num("sigma-min", 0.01)?;
    let smax: f64 = args.num("sigma-max", 0.3)?;
    if smin <= 0.0 || smin > smax {
        return Err(ArgError(format!("bad sigma range [{smin}, {smax}]")));
    }
    let sigma = SigmaSpec::log_uniform(smin, smax);
    let dataset = match kind {
        "histogram" => histogram_dataset(n, dims, sigma, seed),
        "uniform" => uniform_dataset(n, dims, sigma, seed),
        other => return Err(ArgError(format!("unknown kind '{other}'"))),
    };
    csvio::write_csv(Path::new(out), &dataset.items())?;
    println!("wrote {} objects ({dims} dims) to {out}", dataset.len());
    Ok(())
}

/// Opens the `--index` file behind the standard 50 MiB buffer pool.
fn open_pool(args: &Args) -> Result<BufferPool<FileStore>, ArgError> {
    let index = args.required("index")?;
    let page_size: usize = args.num("page-size", DEFAULT_PAGE_SIZE)?;
    let store = FileStore::open(index, page_size)
        .map_err(|e| ArgError(format!("cannot open {index}: {e}")))?;
    Ok(BufferPool::with_byte_budget(
        store,
        50 * 1024 * 1024,
        AccessStats::new_shared(),
    ))
}

fn open_tree(args: &Args) -> Result<GaussTree<FileStore>, ArgError> {
    let pool = open_pool(args)?;
    GaussTree::open(pool).map_err(|e| ArgError(format!("cannot open index: {e}")))
}

/// Parses the `--durability` flag (default `none`).
fn parse_durability(args: &Args) -> Result<Durability, ArgError> {
    match args.get("durability").unwrap_or("none") {
        "none" => Ok(Durability::None),
        "flush" => Ok(Durability::Flush),
        "fsync" => Ok(Durability::Fsync),
        other => Err(ArgError(format!(
            "unknown durability level '{other}' (none|flush|fsync)"
        ))),
    }
}

/// Whether `--index` names a Gauss-forest directory (vs a single-tree
/// file). Forests live in directories; trees in flat files.
fn is_forest_index(index: &str) -> bool {
    Path::new(index).is_dir()
}

/// Parses the forest tuning flags shared by `build --forest`, `ingest`
/// and `compact`.
fn forest_opts(args: &Args) -> Result<ForestOptions, ArgError> {
    let memtable: usize = args.num("memtable", 4096)?;
    let merge_factor: usize = args.num("merge-factor", 2)?;
    let threads: usize = args.num("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    if merge_factor < 2 {
        return Err(ArgError("--merge-factor must be at least 2".into()));
    }
    Ok(ForestOptions::new()
        .memtable_capacity(memtable)
        .merge_factor(merge_factor)
        .threads(threads)
        .durability(parse_durability(args)?))
}

/// Opens the forest directory named by `--index`.
fn open_forest(args: &Args) -> Result<GaussForest<DirComponentStores>, ArgError> {
    let index = args.required("index")?;
    let page_size: usize = args.num("page-size", DEFAULT_PAGE_SIZE)?;
    let backend = DirComponentStores::new(index, page_size)
        .map_err(|e| ArgError(format!("cannot open {index}: {e}")))?;
    GaussForest::open(backend, forest_opts(args)?)
        .map_err(|e| ArgError(format!("cannot open forest {index}: {e}")))
}

fn print_forest_stats(forest: &GaussForest<DirComponentStores>) {
    println!("objects:        {}", forest.len());
    println!("dimensionality: {}", forest.config().dims);
    println!("epoch:          {}", forest.epoch());
    println!("memtable:       {} records", forest.memtable_len());
    let comps = forest.component_stats();
    println!("components:     {}", comps.len());
    for c in comps {
        println!(
            "  c{:<5} level {:<2} {:>8} entries, {} tombstones",
            c.id, c.level, c.len, c.tombstones
        );
    }
}

fn build(args: &Args) -> Result<(), ArgError> {
    if args.num("forest", false)? {
        return build_forest(args);
    }
    let data = args.required("data")?;
    let index = args.required("index")?;
    let page_size: usize = args.num("page-size", DEFAULT_PAGE_SIZE)?;
    let bulk: bool = args.num("bulk", true)?;
    let append: bool = args.num("append", false)?;
    let durability = parse_durability(args)?;
    let threads: usize = args.num("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    let mem_budget: u64 = args.num("mem-budget", 0)?;
    let split = match args.get("split").unwrap_or("hull") {
        "hull" => SplitStrategy::HullIntegral,
        "mu" => SplitStrategy::WidestMu,
        "volume" => SplitStrategy::MinVolume,
        other => return Err(ArgError(format!("unknown split strategy '{other}'"))),
    };
    let leaf_format = match args.get("leaf-format").unwrap_or("exact") {
        "exact" => LeafFormat::Exact,
        "quantised" | "quantized" => LeafFormat::Quantised,
        other => {
            return Err(ArgError(format!(
                "unknown leaf format '{other}' (exact|quantised)"
            )))
        }
    };

    let items = csvio::read_csv(Path::new(data))?;
    if items.is_empty() {
        return Err(ArgError("data file holds no objects".into()));
    }
    let dims = items[0].1.dims();

    if append {
        // Merge the run into an existing index instead of rebuilding it.
        let pool = open_pool(args)?;
        let mut tree = GaussTree::open_with(pool, &TreeOptions::new().durability(durability))
            .map_err(|e| ArgError(format!("cannot open index: {e}")))?;
        let t0 = std::time::Instant::now();
        let added = tree.extend(items).map_err(|e| ArgError(e.to_string()))?;
        tree.flush().map_err(|e| ArgError(e.to_string()))?;
        println!(
            "appended {added} objects to {index}: {} total, height {}, {} pages, {:.2}s",
            tree.len(),
            tree.height(),
            tree.pool().num_pages(),
            t0.elapsed().as_secs_f64()
        );
        return Ok(());
    }

    let config = TreeConfig::new(dims)
        .with_split(split)
        .with_leaf_format(leaf_format);
    let store = FileStore::create(index, page_size)
        .map_err(|e| ArgError(format!("cannot create {index}: {e}")))?;
    let pool = BufferPool::with_byte_budget(store, 50 * 1024 * 1024, AccessStats::new_shared());

    let t0 = std::time::Instant::now();
    let mut tree = if bulk {
        let mut opts = BulkLoadOptions::default()
            .with_threads(threads)
            .with_spill(SpillKind::TempFile)
            .with_durability(durability);
        if mem_budget > 0 {
            opts =
                opts.with_mem_budget(gauss_tree::bulk::entries_for_byte_budget(mem_budget, dims));
        }
        let (tree, report) = GaussTree::bulk_load_with(pool, config, items, &opts)
            .map_err(|e| ArgError(e.to_string()))?;
        let writes = tree.stats().snapshot();
        eprintln!(
            "(ingest: peak {} resident entries, {} spilled, {} pages in {} write calls)",
            report.peak_resident_entries,
            report.spilled_entries,
            writes.physical_writes,
            writes.write_calls
        );
        tree
    } else {
        let mut tree =
            GaussTree::create_with(pool, config, &TreeOptions::new().durability(durability))
                .map_err(|e| ArgError(e.to_string()))?;
        for (id, v) in items {
            tree.insert(id, &v).map_err(|e| ArgError(e.to_string()))?;
        }
        tree
    };
    tree.flush().map_err(|e| ArgError(e.to_string()))?;
    println!(
        "built {index}: {} objects, {} dims, height {}, {} pages, {:.2}s",
        tree.len(),
        tree.dims(),
        tree.height(),
        tree.pool().num_pages(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `build --forest true`: seed a new forest directory from a CSV, through
/// the memtable/flush write path rather than a monolithic bulk load.
fn build_forest(args: &Args) -> Result<(), ArgError> {
    let data = args.required("data")?;
    let index = args.required("index")?;
    let page_size: usize = args.num("page-size", DEFAULT_PAGE_SIZE)?;
    let split = match args.get("split").unwrap_or("hull") {
        "hull" => SplitStrategy::HullIntegral,
        "mu" => SplitStrategy::WidestMu,
        "volume" => SplitStrategy::MinVolume,
        other => return Err(ArgError(format!("unknown split strategy '{other}'"))),
    };
    let leaf_format = match args.get("leaf-format").unwrap_or("exact") {
        "exact" => LeafFormat::Exact,
        "quantised" | "quantized" => LeafFormat::Quantised,
        other => {
            return Err(ArgError(format!(
                "unknown leaf format '{other}' (exact|quantised)"
            )))
        }
    };
    let items = csvio::read_csv(Path::new(data))?;
    if items.is_empty() {
        return Err(ArgError("data file holds no objects".into()));
    }
    let dims = items[0].1.dims();
    let config = TreeConfig::new(dims)
        .with_split(split)
        .with_leaf_format(leaf_format);
    let backend = DirComponentStores::new(index, page_size)
        .map_err(|e| ArgError(format!("cannot create {index}: {e}")))?;
    let mut forest = GaussForest::create(backend, config, forest_opts(args)?)
        .map_err(|e| ArgError(format!("cannot create forest {index}: {e}")))?;
    let t0 = std::time::Instant::now();
    let n = items.len();
    for (id, v) in items {
        forest.insert(id, &v).map_err(|e| ArgError(e.to_string()))?;
    }
    forest.flush().map_err(|e| ArgError(e.to_string()))?;
    let report = forest.maintain().map_err(|e| ArgError(e.to_string()))?;
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "built forest {index}: {} objects in {dt:.2}s ({:.0} objs/s), {} merges",
        forest.len(),
        n as f64 / dt.max(1e-9),
        report.merges
    );
    print_forest_stats(&forest);
    Ok(())
}

/// `ingest`: stream upserts/deletes into an existing forest — either every
/// row of a CSV (as upserts) or `--events N` drawn from the drifting-sensor
/// generator (which mixes updates, fresh sensors and deletes).
fn ingest(args: &Args) -> Result<(), ArgError> {
    let mut forest = open_forest(args)?;
    let t0 = std::time::Instant::now();
    let mut upserts = 0u64;
    let mut deletes = 0u64;
    if let Some(data) = args.get("data") {
        for (id, v) in csvio::read_csv(Path::new(data))? {
            forest.insert(id, &v).map_err(|e| ArgError(e.to_string()))?;
            upserts += 1;
        }
    } else {
        let events: u64 = args.num_required("events")?;
        let drift = DriftConfig {
            initial_sensors: args.num("sensors", 64)?,
            dims: forest.config().dims,
            update_fraction: args.num("update-frac", 0.6)?,
            delete_fraction: args.num("delete-frac", 0.05)?,
            ..DriftConfig::default()
        };
        let seed: u64 = args.num("seed", 42)?;
        for op in DriftStream::new(drift, seed).take(events as usize) {
            match op {
                StreamOp::Upsert(id, v) => {
                    forest.insert(id, &v).map_err(|e| ArgError(e.to_string()))?;
                    upserts += 1;
                }
                StreamOp::Delete(id) => {
                    forest.delete(id).map_err(|e| ArgError(e.to_string()))?;
                    deletes += 1;
                }
            }
        }
    }
    forest.flush().map_err(|e| ArgError(e.to_string()))?;
    if args.num("maintain", false)? {
        forest.maintain().map_err(|e| ArgError(e.to_string()))?;
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "ingested {upserts} upserts + {deletes} deletes in {dt:.2}s ({:.0} ops/s); {} live objects, epoch {}",
        (upserts + deletes) as f64 / dt.max(1e-9),
        forest.len(),
        forest.epoch()
    );
    Ok(())
}

/// `compact`: flush the memtable and run merges until every level is
/// below the merge factor.
fn compact(args: &Args) -> Result<(), ArgError> {
    let mut forest = open_forest(args)?;
    forest.flush().map_err(|e| ArgError(e.to_string()))?;
    let report = forest.maintain().map_err(|e| ArgError(e.to_string()))?;
    println!(
        "compacted: {} merges over {} components, {} entries rewritten, {} tombstones dropped",
        report.merges,
        report.components_merged,
        report.entries_rewritten,
        report.tombstones_dropped
    );
    print_forest_stats(&forest);
    Ok(())
}

fn info(args: &Args) -> Result<(), ArgError> {
    if is_forest_index(args.required("index")?) {
        let forest = open_forest(args)?;
        print_forest_stats(&forest);
        println!("memtable cap:   {}", forest.memtable_capacity());
        println!("merge factor:   {}", forest.merge_factor());
        println!("combine mode:   {:?}", forest.config().combine);
        println!("split strategy: {:?}", forest.config().split);
        println!("leaf format:    {:?}", forest.config().leaf_format);
        return Ok(());
    }
    let recover: bool = args.num("recover", false)?;
    let tree = if recover {
        // Verified open: checks invariants and falls back across meta
        // slots — the post-crash path.
        let pool = open_pool(args)?;
        let (tree, report) = GaussTree::open_with_recovery(pool)
            .map_err(|e| ArgError(format!("cannot recover index: {e}")))?;
        println!(
            "recovery:       epoch {}{}{}, {} orphaned pages reclaimed",
            report.epoch,
            if report.fell_back { " (fell back)" } else { "" },
            if report.legacy {
                " (legacy format)"
            } else {
                ""
            },
            report.orphaned_pages
        );
        tree
    } else {
        open_tree(args)?
    };
    println!("objects:        {}", tree.len());
    println!("dimensionality: {}", tree.dims());
    println!("height:         {}", tree.height());
    println!("pages:          {}", tree.pool().num_pages());
    println!("leaf capacity:  {}", tree.leaf_capacity());
    println!("inner capacity: {}", tree.inner_capacity());
    println!("combine mode:   {:?}", tree.config().combine);
    println!("split strategy: {:?}", tree.config().split);
    println!("leaf format:    {:?}", tree.config().leaf_format);
    println!("epoch:          {}", tree.epoch());
    println!("pinned snaps:   {}", tree.pinned_snapshots());
    let check: bool = args.num("check", false)?;
    if check {
        let errors = tree
            .check_invariants(false)
            .map_err(|e| ArgError(e.to_string()))?;
        if errors.is_empty() {
            println!("invariants:     ok");
        } else {
            println!("invariants:     {} violations", errors.len());
            for e in errors.iter().take(10) {
                println!("  - {e}");
            }
            return Err(ArgError("invariant check failed".into()));
        }
    }
    Ok(())
}

/// Parses the repeatable `--query` flag (at least one) and the `--threads`
/// worker count for the batch executor.
fn parse_batch(args: &Args) -> Result<(Vec<pfv::Pfv>, usize), ArgError> {
    let literals = args.get_all("query");
    if literals.is_empty() {
        return Err(ArgError("missing required flag --query".into()));
    }
    let queries = literals
        .into_iter()
        .map(parse_pfv)
        .collect::<Result<Vec<_>, _>>()?;
    let threads: usize = args.num("threads", 1)?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    Ok((queries, threads))
}

/// Parses `--pin-snapshot true|false` (default `false`): run the queries on
/// a pinned committed-epoch [`gauss_tree::Snapshot`] instead of the writer's
/// working state.
fn parse_pin(args: &Args) -> Result<bool, ArgError> {
    args.num("pin-snapshot", false)
}

fn mliq(args: &Args) -> Result<(), ArgError> {
    let (queries, threads) = parse_batch(args)?;
    let k: usize = args.num("k", 1)?;
    let accuracy: f64 = args.num("accuracy", 1e-4)?;
    if accuracy.is_nan() || accuracy <= 0.0 {
        return Err(ArgError(format!(
            "--accuracy must be positive, got {accuracy}"
        )));
    }
    if is_forest_index(args.required("index")?) {
        // Forest queries always run on a pinned snapshot — that *is* the
        // forest's read plane.
        let forest = open_forest(args)?;
        let snap = forest.snapshot().map_err(|e| ArgError(e.to_string()))?;
        eprintln!("(forest snapshot of epoch {})", snap.epoch());
        let t0 = std::time::Instant::now();
        let batches = snap
            .batch(threads)
            .k_mliq_refined(&queries, k, accuracy)
            .map_err(|e| ArgError(e.to_string()))?;
        return print_mliq(&batches, threads, t0.elapsed(), forest.stats());
    }
    let tree = open_tree(args)?;
    let pin = parse_pin(args)?;
    let t0 = std::time::Instant::now();
    let batches = if pin {
        let snap = tree.snapshot().map_err(|e| ArgError(e.to_string()))?;
        eprintln!("(pinned snapshot of committed epoch {})", snap.epoch());
        snap.batch(threads).k_mliq_refined(&queries, k, accuracy)
    } else {
        tree.batch(threads).k_mliq_refined(&queries, k, accuracy)
    }
    .map_err(|e| ArgError(e.to_string()))?;
    print_mliq(&batches, threads, t0.elapsed(), tree.stats())
}

/// Shared k-MLIQ result printer for trees and forests.
fn print_mliq(
    batches: &[Vec<gauss_tree::RefinedResult>],
    threads: usize,
    elapsed: std::time::Duration,
    stats: &std::sync::Arc<AccessStats>,
) -> Result<(), ArgError> {
    let mut total = 0usize;
    for (qi, hits) in batches.iter().enumerate() {
        let prefix = if batches.len() > 1 {
            format!("q{qi} ")
        } else {
            String::new()
        };
        for h in hits {
            println!(
                "{prefix}id={} P={:.4} [{:.4}, {:.4}] log_density={:.4}",
                h.id, h.probability, h.prob_lo, h.prob_hi, h.log_density
            );
        }
        total += hits.len();
    }
    let snap = stats.snapshot();
    eprintln!(
        "({total} results over {} queries, {threads} threads, {:.2} ms, {} page reads)",
        batches.len(),
        1e3 * elapsed.as_secs_f64(),
        snap.logical_reads
    );
    Ok(())
}

fn tiq(args: &Args) -> Result<(), ArgError> {
    let (queries, threads) = parse_batch(args)?;
    let theta: f64 = args.num_required("theta")?;
    if !(theta > 0.0 && theta <= 1.0) {
        return Err(ArgError(format!(
            "--theta must be a probability in (0, 1], got {theta}"
        )));
    }
    let accuracy: f64 = args.num("accuracy", 1e-4)?;
    if accuracy.is_nan() || accuracy <= 0.0 {
        return Err(ArgError(format!(
            "--accuracy must be positive, got {accuracy}"
        )));
    }
    let batches = if is_forest_index(args.required("index")?) {
        let forest = open_forest(args)?;
        let snap = forest.snapshot().map_err(|e| ArgError(e.to_string()))?;
        eprintln!("(forest snapshot of epoch {})", snap.epoch());
        snap.batch(threads).tiq(&queries, theta, accuracy)
    } else {
        let tree = open_tree(args)?;
        if parse_pin(args)? {
            let snap = tree.snapshot().map_err(|e| ArgError(e.to_string()))?;
            eprintln!("(pinned snapshot of committed epoch {})", snap.epoch());
            snap.batch(threads).tiq(&queries, theta, accuracy)
        } else {
            tree.batch(threads).tiq(&queries, theta, accuracy)
        }
    }
    .map_err(|e| ArgError(e.to_string()))?;
    let mut total = 0usize;
    for (qi, hits) in batches.iter().enumerate() {
        let prefix = if batches.len() > 1 {
            format!("q{qi} ")
        } else {
            String::new()
        };
        for h in hits {
            println!(
                "{prefix}id={} P={:.4} [{:.4}, {:.4}]",
                h.id, h.probability, h.prob_lo, h.prob_hi
            );
        }
        total += hits.len();
    }
    eprintln!("({total} results over {} queries)", batches.len());
    Ok(())
}

fn boxq(args: &Args) -> Result<(), ArgError> {
    let lo = parse_vec(args.required("lo")?)?;
    let hi = parse_vec(args.required("hi")?)?;
    let tau: f64 = args.num_required("tau")?;
    let hits = if is_forest_index(args.required("index")?) {
        let forest = open_forest(args)?;
        let snap = forest.snapshot().map_err(|e| ArgError(e.to_string()))?;
        snap.probabilistic_box_query(&lo, &hi, tau)
    } else {
        open_tree(args)?.probabilistic_box_query(&lo, &hi, tau)
    }
    .map_err(|e| ArgError(e.to_string()))?;
    for h in &hits {
        println!("id={} P={:.4}", h.id, h.probability);
    }
    eprintln!("({} results)", hits.len());
    Ok(())
}

fn delete(args: &Args) -> Result<(), ArgError> {
    let mut tree = open_tree(args)?;
    let id: u64 = args.num_required("id")?;
    let v = parse_pfv(args.required("query")?)?;
    match tree.delete(id, &v).map_err(|e| ArgError(e.to_string()))? {
        DeleteOutcome::Deleted => {
            tree.flush().map_err(|e| ArgError(e.to_string()))?;
            println!("deleted id={id}; {} objects remain", tree.len());
            Ok(())
        }
        DeleteOutcome::NotFound => Err(ArgError(format!(
            "no entry with id={id} and the given parameters"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new() -> Self {
            let d = std::env::temp_dir().join(format!(
                "gauss-cli-cmd-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&d).unwrap();
            Self(d)
        }
        fn p(&self, n: &str) -> String {
            self.0.join(n).to_string_lossy().into_owned()
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn run(args: &[&str]) -> Result<(), ArgError> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    #[test]
    fn full_cli_lifecycle() {
        let tmp = TempDir::new();
        let csv = tmp.p("data.csv");
        let idx = tmp.p("data.gtree");

        run(&[
            "generate", "--out", &csv, "--kind", "uniform", "--n", "300", "--dims", "3",
        ])
        .unwrap();
        run(&["build", "--data", &csv, "--index", &idx]).unwrap();
        run(&["info", "--index", &idx, "--check", "true"]).unwrap();
        run(&[
            "mliq",
            "--index",
            &idx,
            "--query",
            "0.5,0.5,0.5;0.1,0.1,0.1",
            "-k",
            "3",
        ])
        .unwrap();
        run(&[
            "tiq",
            "--index",
            &idx,
            "--query",
            "0.5,0.5,0.5;0.1,0.1,0.1",
            "--theta",
            "0.01",
        ])
        .unwrap();
        run(&[
            "boxq", "--index", &idx, "--lo", "0,0,0", "--hi", "1,1,1", "--tau", "0.5",
        ])
        .unwrap();
    }

    #[test]
    fn batch_queries_with_threads() {
        let tmp = TempDir::new();
        let csv = tmp.p("batch.csv");
        let idx = tmp.p("batch.gtree");
        run(&[
            "generate", "--out", &csv, "--kind", "uniform", "--n", "200", "--dims", "2",
        ])
        .unwrap();
        run(&["build", "--data", &csv, "--index", &idx]).unwrap();
        run(&[
            "mliq",
            "--index",
            &idx,
            "--query",
            "0.2,0.2;0.1,0.1",
            "--query",
            "0.8,0.8;0.1,0.1",
            "--query",
            "0.5,0.1;0.2,0.2",
            "-k",
            "2",
            "--threads",
            "3",
        ])
        .unwrap();
        run(&[
            "tiq",
            "--index",
            &idx,
            "--query",
            "0.4,0.6;0.1,0.1",
            "--query",
            "0.6,0.4;0.1,0.1",
            "--theta",
            "0.01",
            "--threads",
            "2",
        ])
        .unwrap();
        // --threads 0 is rejected.
        assert!(run(&[
            "mliq",
            "--index",
            &idx,
            "--query",
            "0.2,0.2;0.1,0.1",
            "--threads",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn incremental_build_and_delete() {
        let tmp = TempDir::new();
        let csv = tmp.p("d.csv");
        let idx = tmp.p("d.gtree");
        run(&[
            "generate", "--out", &csv, "--n", "50", "--dims", "2", "--seed", "9",
        ])
        .unwrap();
        run(&["build", "--data", &csv, "--index", &idx, "--bulk", "false"]).unwrap();

        // Read back the csv to learn object 0's exact parameters.
        let rows = csvio::read_csv(std::path::Path::new(&csv)).unwrap();
        let (id, v) = &rows[0];
        let lit = format!(
            "{};{}",
            v.means()
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(","),
            v.sigmas()
                .iter()
                .map(f64::to_string)
                .collect::<Vec<_>>()
                .join(","),
        );
        run(&[
            "delete",
            "--index",
            &idx,
            "--id",
            &id.to_string(),
            "--query",
            &lit,
        ])
        .unwrap();
        // Deleting again fails cleanly.
        assert!(run(&[
            "delete",
            "--index",
            &idx,
            "--id",
            &id.to_string(),
            "--query",
            &lit
        ])
        .is_err());
    }

    #[test]
    fn parallel_budgeted_build_and_append() {
        let tmp = TempDir::new();
        let csv = tmp.p("base.csv");
        let more = tmp.p("more.csv");
        let idx = tmp.p("base.gtree");
        run(&[
            "generate", "--out", &csv, "--kind", "uniform", "--n", "400", "--dims", "3", "--seed",
            "7",
        ])
        .unwrap();
        // Tiny memory budget forces the spill path; two threads exercise
        // the parallel partitioner.
        run(&[
            "build",
            "--data",
            &csv,
            "--index",
            &idx,
            "--threads",
            "2",
            "--mem-budget",
            "16384",
        ])
        .unwrap();
        run(&["info", "--index", &idx, "--check", "true"]).unwrap();

        // Append a second CSV without a rebuild; the index keeps both runs.
        run(&[
            "generate", "--out", &more, "--kind", "uniform", "--n", "150", "--dims", "3", "--seed",
            "8",
        ])
        .unwrap();
        run(&[
            "build", "--data", &more, "--index", &idx, "--append", "true",
        ])
        .unwrap();
        run(&["info", "--index", &idx, "--check", "true"]).unwrap();

        // --threads 0 rejected; appending to a missing index fails cleanly.
        assert!(run(&["build", "--data", &csv, "--index", &idx, "--threads", "0"]).is_err());
        let missing = tmp.p("missing.gtree");
        assert!(run(&["build", "--data", &more, "--index", &missing, "--append", "true"]).is_err());
    }

    #[test]
    fn durable_build_append_and_recover() {
        let tmp = TempDir::new();
        let csv = tmp.p("dur.csv");
        let more = tmp.p("dur-more.csv");
        let idx = tmp.p("dur.gtree");
        run(&[
            "generate", "--out", &csv, "--kind", "uniform", "--n", "120", "--dims", "2", "--seed",
            "4",
        ])
        .unwrap();
        run(&[
            "build",
            "--data",
            &csv,
            "--index",
            &idx,
            "--durability",
            "fsync",
        ])
        .unwrap();
        run(&["info", "--index", &idx, "--check", "true"]).unwrap();

        // Durable append onto the existing index.
        run(&[
            "generate", "--out", &more, "--kind", "uniform", "--n", "40", "--dims", "2", "--seed",
            "5",
        ])
        .unwrap();
        run(&[
            "build",
            "--data",
            &more,
            "--index",
            &idx,
            "--append",
            "true",
            "--durability",
            "flush",
        ])
        .unwrap();
        // Verified (recovery) open passes and the tree checks out.
        run(&[
            "info",
            "--index",
            &idx,
            "--recover",
            "true",
            "--check",
            "true",
        ])
        .unwrap();
        // Incremental durable build works too, and bad levels are caught.
        let idx2 = tmp.p("dur2.gtree");
        run(&[
            "build",
            "--data",
            &csv,
            "--index",
            &idx2,
            "--bulk",
            "false",
            "--durability",
            "flush",
        ])
        .unwrap();
        assert!(run(&[
            "build",
            "--data",
            &csv,
            "--index",
            &idx2,
            "--durability",
            "paranoid"
        ])
        .is_err());
    }

    #[test]
    fn quantised_build_and_query() {
        let tmp = TempDir::new();
        let csv = tmp.p("q.csv");
        let idx = tmp.p("q.gtree");
        run(&[
            "generate", "--out", &csv, "--n", "250", "--dims", "2", "--seed", "11",
        ])
        .unwrap();
        run(&[
            "build",
            "--data",
            &csv,
            "--index",
            &idx,
            "--leaf-format",
            "quantised",
        ])
        .unwrap();
        // The invariant check includes quantise-stability for this format.
        run(&["info", "--index", &idx, "--check", "true"]).unwrap();
        run(&[
            "mliq",
            "--index",
            &idx,
            "--query",
            "0.5,0.5;0.1,0.1",
            "-k",
            "3",
        ])
        .unwrap();
        run(&[
            "tiq",
            "--index",
            &idx,
            "--query",
            "0.5,0.5;0.1,0.1",
            "--theta",
            "0.01",
        ])
        .unwrap();
        // Unknown formats are rejected.
        let bad = tmp.p("bad.gtree");
        assert!(run(&[
            "build",
            "--data",
            &csv,
            "--index",
            &bad,
            "--leaf-format",
            "half"
        ])
        .is_err());
    }

    #[test]
    fn forest_lifecycle() {
        let tmp = TempDir::new();
        let csv = tmp.p("f.csv");
        let dir = tmp.p("forest");

        run(&[
            "generate", "--out", &csv, "--kind", "uniform", "--n", "400", "--dims", "3", "--seed",
            "2",
        ])
        .unwrap();
        run(&[
            "build",
            "--forest",
            "true",
            "--data",
            &csv,
            "--index",
            &dir,
            "--memtable",
            "64",
        ])
        .unwrap();
        run(&["info", "--index", &dir]).unwrap();
        // Stream drift events (upserts + deletes) into the forest.
        run(&[
            "ingest",
            "--index",
            &dir,
            "--events",
            "500",
            "--sensors",
            "32",
            "--seed",
            "3",
        ])
        .unwrap();
        run(&["compact", "--index", &dir]).unwrap();
        run(&[
            "mliq",
            "--index",
            &dir,
            "--query",
            "0.5,0.5,0.5;0.1,0.1,0.1",
            "-k",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        run(&[
            "tiq",
            "--index",
            &dir,
            "--query",
            "0.5,0.5,0.5;0.1,0.1,0.1",
            "--theta",
            "0.001",
        ])
        .unwrap();
        run(&[
            "boxq", "--index", &dir, "--lo", "0,0,0", "--hi", "1,1,1", "--tau", "0.1",
        ])
        .unwrap();
        // CSV ingest (pure upserts) also lands.
        run(&["ingest", "--index", &dir, "--data", &csv]).unwrap();
        run(&["info", "--index", &dir]).unwrap();
        // Building a forest over an existing one is refused.
        assert!(run(&["build", "--forest", "true", "--data", &csv, "--index", &dir]).is_err());
    }

    #[test]
    fn unknown_subcommand_is_reported() {
        let err = run(&["frobnicate"]).unwrap_err();
        assert!(err.0.contains("frobnicate"));
    }

    #[test]
    fn build_rejects_missing_file() {
        assert!(run(&[
            "build",
            "--data",
            "/nonexistent.csv",
            "--index",
            "/tmp/x.gt"
        ])
        .is_err());
    }
}
