//! CSV import/export of pfv data sets.
//!
//! Format: a header `id,m0..m{d-1},s0..s{d-1}` followed by one row per
//! object. Plain `std` parsing — the format is fully under our control.

use crate::args::ArgError;
use pfv::Pfv;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Writes `(id, pfv)` rows to `path`.
///
/// # Errors
/// I/O errors.
pub fn write_csv(path: &Path, items: &[(u64, Pfv)]) -> Result<(), ArgError> {
    let file = std::fs::File::create(path)
        .map_err(|e| ArgError(format!("cannot create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    let dims = items.first().map_or(0, |(_, v)| v.dims());
    let mut header = String::from("id");
    for i in 0..dims {
        header.push_str(&format!(",m{i}"));
    }
    for i in 0..dims {
        header.push_str(&format!(",s{i}"));
    }
    writeln!(w, "{header}").map_err(|e| ArgError(e.to_string()))?;
    for (id, v) in items {
        let mut row = id.to_string();
        for m in v.means() {
            row.push_str(&format!(",{m}"));
        }
        for s in v.sigmas() {
            row.push_str(&format!(",{s}"));
        }
        writeln!(w, "{row}").map_err(|e| ArgError(e.to_string()))?;
    }
    w.flush().map_err(|e| ArgError(e.to_string()))?;
    Ok(())
}

/// Reads `(id, pfv)` rows from `path`.
///
/// # Errors
/// I/O errors or malformed rows.
pub fn read_csv(path: &Path) -> Result<Vec<(u64, Pfv)>, ArgError> {
    let file = std::fs::File::open(path)
        .map_err(|e| ArgError(format!("cannot open {}: {e}", path.display())))?;
    let mut lines = std::io::BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| ArgError("empty csv".into()))?
        .map_err(|e| ArgError(e.to_string()))?;
    let cols = header.split(',').count();
    if cols < 3 || (cols - 1) % 2 != 0 {
        return Err(ArgError(format!(
            "header has {cols} columns; expected id + d means + d sigmas"
        )));
    }
    let dims = (cols - 1) / 2;

    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| ArgError(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let id: u64 = parts
            .next()
            .unwrap_or_default()
            .trim()
            .parse()
            .map_err(|_| ArgError(format!("row {}: bad id", lineno + 2)))?;
        let values: Result<Vec<f64>, _> = parts.map(|p| p.trim().parse::<f64>()).collect();
        let values = values.map_err(|_| ArgError(format!("row {}: bad number", lineno + 2)))?;
        if values.len() != 2 * dims {
            return Err(ArgError(format!(
                "row {}: {} values, expected {}",
                lineno + 2,
                values.len(),
                2 * dims
            )));
        }
        let (means, sigmas) = values.split_at(dims);
        let v = Pfv::new(means.to_vec(), sigmas.to_vec())
            .map_err(|e| ArgError(format!("row {}: {e}", lineno + 2)))?;
        out.push((id, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gauss-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip() {
        let items = vec![
            (0u64, Pfv::new(vec![1.0, 2.0], vec![0.1, 0.2]).unwrap()),
            (7, Pfv::new(vec![-3.5, 0.25], vec![0.4, 1.5]).unwrap()),
        ];
        let p = tmp("roundtrip.csv");
        write_csv(&p, &items).unwrap();
        let back = read_csv(&p).unwrap();
        assert_eq!(back, items);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_malformed_rows() {
        let p = tmp("bad.csv");
        std::fs::write(&p, "id,m0,s0\n1,2.0\n").unwrap();
        assert!(read_csv(&p).is_err());
        std::fs::write(&p, "id,m0,s0\nx,2.0,0.1\n").unwrap();
        assert!(read_csv(&p).is_err());
        std::fs::write(&p, "id,m0\n").unwrap();
        assert!(read_csv(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn skips_blank_lines() {
        let p = tmp("blank.csv");
        std::fs::write(&p, "id,m0,s0\n1,2.0,0.1\n\n2,3.0,0.2\n").unwrap();
        let rows = read_csv(&p).unwrap();
        assert_eq!(rows.len(), 2);
        std::fs::remove_file(&p).ok();
    }
}
