//! `gauss-cli` — build, inspect and query persistent Gauss-tree indexes.
//!
//! ```text
//! gauss-cli generate --out data.csv --kind histogram --n 5000 --dims 27
//! gauss-cli build    --data data.csv --index faces.gtree
//! gauss-cli info     --index faces.gtree
//! gauss-cli mliq     --index faces.gtree --query "1.0,2.0;0.1,0.2" -k 5
//! gauss-cli tiq      --index faces.gtree --query "1.0,2.0;0.1,0.2" --theta 0.1
//! gauss-cli boxq     --index faces.gtree --lo 0,0 --hi 1,1 --tau 0.5
//! gauss-cli delete   --index faces.gtree --id 7 --query "1.0,2.0;0.1,0.2"
//!
//! # write-optimized Gauss-forest (index is a directory)
//! gauss-cli build    --forest true --data data.csv --index sensors/
//! gauss-cli ingest   --index sensors/ --events 100000 --sensors 512
//! gauss-cli compact  --index sensors/
//! gauss-cli mliq     --index sensors/ --query "1.0,2.0;0.1,0.2" -k 5
//! ```
//!
//! Queries are written `means;sigmas` with comma-separated components.

#![forbid(unsafe_code)]

mod args;
mod commands;
mod csvio;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
