//! The parallel out-of-core bulk-load pipeline behind
//! [`GaussTree::bulk_load_with`].
//!
//! Ingestion runs in three stages:
//!
//! 1. **Streaming front end** — the item iterator is consumed in bounded
//!    chunks. While the resident buffer stays within
//!    [`BulkLoadOptions::mem_budget_entries`] nothing touches disk; the
//!    moment the budget is exceeded, buffered runs are encoded and spilled
//!    through a [`gauss_storage::PageStore`]-backed spill file
//!    (an in-memory store for tests, an unlinked-on-drop temp file for real
//!    builds), so peak decoded residency is bounded by the budget, not the
//!    input size.
//! 2. **Partitioning** — the STR-style recursion of
//!    [`crate::split::partition_groups`] descends into *independent*
//!    sub-ranges after every split, so in-memory ranges fan out across
//!    [`std::thread::scope`] workers (same work-stealing scheme as the
//!    query `BatchExecutor`). Ranges larger than the budget are split
//!    **externally**: per candidate axis, one streaming pass extracts the
//!    axis keys (a plain `Vec<f64>` — the only thing held in memory), a
//!    stable argsort fixes the exact same stable-median split the
//!    in-memory recursion would take, one more streaming pass prices both
//!    sides' parameter rectangles, and the winning axis redistributes the
//!    range into two sorted child runs with budget-sized gather windows.
//! 3. **Batched page writes** — node pages are staged in a
//!    [`gauss_storage::WriteBatch`] and group-committed as coalesced runs
//!    of consecutive pages ([`SharedBufferPool::write_batch`]), collapsing
//!    the per-node write storm into a few sequential multi-page transfers
//!    (`AccessStats::write_calls` vs `physical_writes` measures the
//!    coalescing factor).
//!
//! Every stage is deterministic: the produced tree is **byte-identical**
//! to the serial, fully-resident, per-node-write build for any thread
//! count, chunk size, memory budget and write mode. (The only theoretical
//! exception is inputs containing IEEE negative zero, where min/max union
//! order could differ; finite datasets in practice never hit it.)
//!
//! [`SharedBufferPool::write_batch`]: gauss_storage::SharedBufferPool::write_batch
//! [`AccessStats::write_calls`]: gauss_storage::StatsSnapshot

use crate::config::SplitStrategy;
use crate::node::{InnerEntry, LeafEntry, Node};
use crate::split::{
    candidate_axes, group_rect, log_add, node_cost, partition_into_n_parallel, Axis,
};
use crate::tree::{GaussTree, TreeError};
use gauss_storage::store::{Durability, PageStore};
use gauss_storage::{FileStore, MemStore, PageId, WriteBatch};
use pfv::{DimBounds, ParamRect, Pfv};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pages staged in the write batch before an intermediate group commit, so
/// a huge level does not buffer the whole tree in memory.
const FLUSH_PAGES: usize = 256;

/// Spill page size: big pages amortise positioning, and entries are packed
/// with a fixed stride so single entries are addressable without decoding
/// their page.
const SPILL_PAGE_BYTES: usize = 64 * 1024;

/// Encoded bytes of one spilled entry: `id` (u64) plus the μ and σ columns.
#[must_use]
pub fn entry_stride_bytes(dims: usize) -> usize {
    8 + 16 * dims
}

/// Approximate resident bytes of one *decoded* entry: the encoded stride
/// plus `LeafEntry`/`Pfv` container overhead (two boxed slices and an id).
/// The single conversion factor between a byte budget and
/// [`BulkLoadOptions::mem_budget_entries`] — keep every byte→entries
/// translation (CLI `--mem-budget`, bench scenarios) on this helper.
#[must_use]
pub fn resident_entry_footprint_bytes(dims: usize) -> usize {
    entry_stride_bytes(dims) + 64
}

/// Entries a byte budget affords (at least 1).
#[must_use]
pub fn entries_for_byte_budget(bytes: u64, dims: usize) -> usize {
    usize::try_from(bytes / resident_entry_footprint_bytes(dims) as u64)
        .unwrap_or(usize::MAX)
        .max(1)
}

/// Where spilled runs live when the memory budget overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillKind {
    /// A heap-backed page store — deterministic tests, no filesystem.
    Memory,
    /// A temp file (removed on drop) — the actual out-of-core mode.
    #[default]
    TempFile,
}

/// Knobs of the bulk-load pipeline. All combinations produce byte-identical
/// trees; they only trade memory, parallelism and write patterns.
#[derive(Debug, Clone)]
pub struct BulkLoadOptions {
    /// Worker threads for the partitioning fan-out (clamped to ≥ 1).
    pub threads: usize,
    /// Maximum decoded entries resident at once; `None` keeps everything
    /// in memory. Clamped upward so a single leaf group always fits.
    pub mem_budget_entries: Option<usize>,
    /// Streaming ingest granularity once spilling has started.
    pub chunk_entries: usize,
    /// Stage node pages in a [`WriteBatch`] (group commit) instead of one
    /// write call per node.
    pub batched_writes: bool,
    /// Spill backend used when the budget overflows.
    pub spill: SpillKind,
    /// Crash-safety policy of the produced tree (see
    /// [`crate::tree::TreeOptions::durability`]). Under `Flush`/`Fsync` a crash
    /// mid-load recovers to the committed empty tree; the final flush
    /// commits the loaded tree atomically.
    pub durability: Durability,
}

impl Default for BulkLoadOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            mem_budget_entries: None,
            chunk_entries: 8192,
            batched_writes: true,
            spill: SpillKind::TempFile,
            durability: Durability::None,
        }
    }
}

impl BulkLoadOptions {
    /// Sets the partitioning thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the resident-entry budget.
    #[must_use]
    pub fn with_mem_budget(mut self, entries: usize) -> Self {
        self.mem_budget_entries = Some(entries);
        self
    }

    /// Sets the spill backend.
    #[must_use]
    pub fn with_spill(mut self, spill: SpillKind) -> Self {
        self.spill = spill;
        self
    }

    /// Enables or disables batched page writes.
    #[must_use]
    pub fn with_batched_writes(mut self, batched: bool) -> Self {
        self.batched_writes = batched;
        self
    }

    /// Sets the crash-safety policy of the produced tree.
    #[must_use]
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }
}

/// What one bulk load did — the ingest metrics `build_bench` tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkLoadReport {
    /// Items loaded into the tree.
    pub total_entries: u64,
    /// High-water mark of decoded entries resident at once.
    pub peak_resident_entries: usize,
    /// Entries spilled by the streaming front end (0 = fully resident).
    pub spilled_entries: u64,
    /// Entries rewritten by external redistribution passes.
    pub rewritten_entries: u64,
    /// External (out-of-core) split steps performed.
    pub external_splits: u64,
}

impl BulkLoadReport {
    fn observe_resident(&mut self, n: usize) {
        if n > self.peak_resident_entries {
            self.peak_resident_entries = n;
        }
    }
}

/// Stages node pages for group commit, or writes them through one by one —
/// the two write modes whose byte-for-byte equality `build_bench` asserts.
struct NodeEmitter {
    batch: WriteBatch,
    batched: bool,
}

impl NodeEmitter {
    fn new(batched: bool) -> Self {
        Self {
            batch: WriteBatch::new(),
            batched,
        }
    }

    fn emit<S: PageStore>(
        &mut self,
        tree: &mut GaussTree<S>,
        page: PageId,
        node: &Node,
    ) -> Result<(), TreeError> {
        if self.batched {
            tree.stage_node(&mut self.batch, page, node);
            if self.batch.len() >= FLUSH_PAGES {
                tree.commit_batch(&mut self.batch)?;
            }
            Ok(())
        } else {
            tree.write_node_pub(page, node)
        }
    }

    fn finish<S: PageStore>(&mut self, tree: &GaussTree<S>) -> Result<(), TreeError> {
        tree.commit_batch(&mut self.batch)
    }
}

/// Immutable context of the leaf-level build.
struct LeafCtx {
    strategy: SplitStrategy,
    dims: usize,
    threads: usize,
    /// Effective resident-entry budget (usize::MAX when unbounded).
    budget: usize,
    /// Page of group 0 (the reused root page).
    first_page: PageId,
    /// First page of groups 1.. (consecutive), INVALID for a single group.
    extra_base: PageId,
}

impl LeafCtx {
    fn page_for(&self, group: usize) -> PageId {
        if group == 0 {
            self.first_page
        } else {
            PageId(self.extra_base.index() + (group as u64 - 1))
        }
    }
}

/// Runs the pipeline over a freshly created tree. Called by
/// [`GaussTree::bulk_load_with`].
pub(crate) fn run<S: PageStore>(
    tree: &mut GaussTree<S>,
    items: impl IntoIterator<Item = (u64, Pfv)>,
    opts: &BulkLoadOptions,
) -> Result<BulkLoadReport, TreeError> {
    let dims = tree.dims();
    let strategy = tree.config().split;
    let leaf_target = tree.bulk_leaf_target();
    let inner_target = tree.bulk_inner_target();
    let threads = opts.threads.max(1);
    // A budget below one leaf group could never materialise a group.
    let budget = opts.mem_budget_entries.map(|b| b.max(leaf_target).max(16));
    let mut report = BulkLoadReport::default();

    // Stage 1: streaming ingest under the budget.
    let mut resident: Vec<LeafEntry> = Vec::new();
    let mut spill: Option<SpillFile> = None;
    let chunk = opts.chunk_entries.max(1);
    let mut flush_at = budget.unwrap_or(usize::MAX);
    for (id, pfv) in items {
        if pfv.dims() != dims {
            return Err(TreeError::DimMismatch {
                expected: dims,
                got: pfv.dims(),
            });
        }
        resident.push(LeafEntry { id, pfv });
        report.observe_resident(resident.len());
        if resident.len() >= flush_at {
            let sp = match spill.as_mut() {
                Some(sp) => sp,
                None => spill.insert(SpillFile::new(opts.spill, dims)?),
            };
            for e in resident.drain(..) {
                sp.append(&e)?;
            }
            flush_at = chunk.min(budget.unwrap_or(usize::MAX));
        }
    }
    if let Some(sp) = spill.as_mut() {
        for e in resident.drain(..) {
            sp.append(&e)?;
        }
        report.spilled_entries = sp.len();
    }

    let total = spill.as_ref().map_or(resident.len() as u64, SpillFile::len);
    if total == 0 {
        return Ok(report);
    }
    report.total_entries = total;
    tree.set_len(total);

    // Stage 2+3: leaf level. Group 0 reuses the root page created by
    // `create()` — except under shadow paging, where that page belongs to
    // the committed empty tree and must survive a crash mid-load, so a
    // fresh page is used and the old root deferred to the free list. The
    // rest of the level is allocated in one consecutive run up front, so
    // page ids do not depend on write order.
    let first_page = if tree.is_shadowing() {
        let old_root = tree.root_page();
        let fresh = tree.alloc_page()?;
        tree.free_page(old_root)?;
        fresh
    } else {
        tree.root_page()
    };
    // lint: allow(no-panic) -- u64 entry count to usize; the documented assumption is a 64-bit build
    let n = usize::try_from(total).expect("entry count fits usize");
    let n_groups = n.div_ceil(leaf_target);
    let extra_base = if n_groups > 1 {
        tree.pool().allocate_many(n_groups as u64 - 1)?
    } else {
        PageId::INVALID
    };
    let ctx = LeafCtx {
        strategy,
        dims,
        threads,
        budget: budget.unwrap_or(usize::MAX),
        first_page,
        extra_base,
    };
    let mut emitter = NodeEmitter::new(opts.batched_writes);
    let mut slots: Vec<Option<InnerEntry>> = (0..n_groups).map(|_| None).collect();
    match spill {
        None => emit_leaf_groups(
            tree,
            &mut emitter,
            &ctx,
            resident,
            n_groups,
            0,
            &mut slots,
            &mut report,
        )?,
        Some(mut sp) => build_leaves_external(
            tree,
            &mut emitter,
            &ctx,
            &mut sp,
            0..total,
            n_groups,
            0,
            &mut slots,
            &mut report,
        )?,
    }
    let level: Vec<InnerEntry> = slots
        .into_iter()
        // lint: allow(no-panic) -- the scope above joined every builder thread and each filled its own slot
        .map(|s| s.expect("every leaf slot filled"))
        .collect();

    let (root, height) =
        build_upper_levels(tree, &mut emitter, strategy, inner_target, threads, level)?;
    emitter.finish(tree)?;
    tree.set_root(root, height);
    tree.flush()?;
    Ok(report)
}

/// Partitions an in-memory range into its `n_groups` leaf groups (fanned
/// across workers) and emits each group to its preassigned page.
#[allow(clippy::too_many_arguments)]
fn emit_leaf_groups<S: PageStore>(
    tree: &mut GaussTree<S>,
    emitter: &mut NodeEmitter,
    ctx: &LeafCtx,
    entries: Vec<LeafEntry>,
    n_groups: usize,
    group_offset: usize,
    slots: &mut [Option<InnerEntry>],
    report: &mut BulkLoadReport,
) -> Result<(), TreeError> {
    report.observe_resident(entries.len());
    let groups = partition_into_n_parallel(ctx.strategy, entries, n_groups, ctx.threads);
    for (i, g) in groups.into_iter().enumerate() {
        let page = ctx.page_for(group_offset + i);
        let rect = group_rect(&g);
        let count = g.len() as u64;
        emitter.emit(tree, page, &Node::Leaf(g))?;
        slots[group_offset + i] = Some(InnerEntry {
            child: page,
            count,
            rect,
        });
    }
    Ok(())
}

/// The out-of-core leaf recursion: ranges within the budget load and run
/// the (parallel) in-memory partitioner; larger ranges split externally.
#[allow(clippy::too_many_arguments)]
fn build_leaves_external<S: PageStore>(
    tree: &mut GaussTree<S>,
    emitter: &mut NodeEmitter,
    ctx: &LeafCtx,
    sp: &mut SpillFile,
    range: Range<u64>,
    n_groups: usize,
    group_offset: usize,
    slots: &mut [Option<InnerEntry>],
    report: &mut BulkLoadReport,
) -> Result<(), TreeError> {
    // lint: allow(no-panic) -- u64 range length to usize; the documented assumption is a 64-bit build
    let len = usize::try_from(range.end - range.start).expect("range fits usize");
    if n_groups <= 1 || len <= ctx.budget {
        let entries = sp.decode_range(range)?;
        return emit_leaf_groups(
            tree,
            emitter,
            ctx,
            entries,
            n_groups,
            group_offset,
            slots,
            report,
        );
    }
    report.external_splits += 1;
    let g_left = n_groups / 2;
    let split_at = len * g_left / n_groups;
    let (left, right) = external_split(sp, ctx, range, split_at, report)?;
    build_leaves_external(
        tree,
        emitter,
        ctx,
        sp,
        left,
        g_left,
        group_offset,
        slots,
        report,
    )?;
    build_leaves_external(
        tree,
        emitter,
        ctx,
        sp,
        right,
        n_groups - g_left,
        group_offset + g_left,
        slots,
        report,
    )
}

/// One external split: reproduce exactly the stable-median axis decision of
/// the in-memory recursion, holding only axis keys, index permutations and
/// side bitmaps in memory, then rewrite the range into two sorted child
/// runs with budget-sized gather windows.
fn external_split(
    sp: &mut SpillFile,
    ctx: &LeafCtx,
    range: Range<u64>,
    split_at: usize,
    report: &mut BulkLoadReport,
) -> Result<(Range<u64>, Range<u64>), TreeError> {
    // lint: allow(no-panic) -- u64 range length to usize; the documented assumption is a 64-bit build
    let n = usize::try_from(range.end - range.start).expect("range fits usize");
    assert!(
        u32::try_from(n).is_ok(),
        "external range exceeds u32 indices"
    );
    let axes = match ctx.strategy {
        SplitStrategy::WidestMu => {
            let rect = sp.range_rect(range.clone())?;
            candidate_axes(ctx.strategy, ctx.dims, || rect)
        }
        _ => candidate_axes(ctx.strategy, ctx.dims, || {
            unreachable!("cost strategies need no covering rect")
        }),
    };

    // Pass 1 per axis: stable argsort of the keys fixes which entries land
    // left of the split (ties broken by current run order, exactly like
    // the stable in-memory sort).
    let mut bitmaps: Vec<Bitmap> = Vec::with_capacity(axes.len());
    for &axis in &axes {
        let keys = sp.axis_keys(range.clone(), axis)?;
        let perm = stable_argsort(&keys);
        let mut bm = Bitmap::new(n);
        for &i in &perm[..split_at] {
            bm.set(i as usize);
        }
        bitmaps.push(bm);
    }

    // Pass 2 (one streaming sweep): both sides' parameter rectangles for
    // every candidate axis at once.
    let mut sides: Vec<SideRects> = (0..axes.len()).map(|_| SideRects::new(ctx.dims)).collect();
    let mut means = vec![0.0f64; ctx.dims];
    let mut sigmas = vec![0.0f64; ctx.dims];
    for i in 0..n {
        sp.read_components(range.start + i as u64, &mut means, &mut sigmas)?;
        for (bm, side) in bitmaps.iter().zip(sides.iter_mut()) {
            side.extend(bm.get(i), &means, &sigmas);
        }
    }

    let mut best: Option<(f64, usize)> = None;
    for (a, side) in sides.iter().enumerate() {
        let cost = log_add(
            node_cost(ctx.strategy, &side.left_rect()),
            node_cost(ctx.strategy, &side.right_rect()),
        );
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, a));
        }
    }
    // lint: allow(no-panic) -- dims >= 1 is a TreeConfig invariant, so the candidate loop ran at least once
    let (_, winner) = best.expect("at least one candidate axis");

    // Redistribute along the winning axis in stable sorted order.
    let keys = sp.axis_keys(range.clone(), axes[winner])?;
    let perm = stable_argsort(&keys);
    let left = sp.rewrite(range.start, &perm[..split_at], ctx.budget, report)?;
    let right = sp.rewrite(range.start, &perm[split_at..], ctx.budget, report)?;
    Ok((left, right))
}

/// Builds the inner levels bottom-up until one root remains; returns
/// `(root page, height)`. Identical page-id sequence to the serial loader:
/// every level's pages are allocated in group order before the next
/// level's.
fn build_upper_levels<S: PageStore>(
    tree: &mut GaussTree<S>,
    emitter: &mut NodeEmitter,
    strategy: SplitStrategy,
    inner_target: usize,
    threads: usize,
    mut level: Vec<InnerEntry>,
) -> Result<(PageId, u32), TreeError> {
    let mut height = 0u32;
    while level.len() > 1 {
        height += 1;
        if level.len() <= tree.inner_capacity() {
            let page = tree.pool().allocate()?;
            emitter.emit(tree, page, &Node::Inner(level))?;
            return Ok((page, height));
        }
        let n_groups = level.len().div_ceil(inner_target);
        let base = tree.pool().allocate_many(n_groups as u64)?;
        let groups = partition_into_n_parallel(strategy, level, n_groups, threads);
        let mut next = Vec::with_capacity(groups.len());
        for (i, g) in groups.into_iter().enumerate() {
            let page = PageId(base.index() + i as u64);
            let rect = group_rect(&g);
            let count = g.iter().map(|e| e.count).sum();
            emitter.emit(tree, page, &Node::Inner(g))?;
            next.push(InnerEntry {
                child: page,
                count,
                rect,
            });
        }
        level = next;
    }
    Ok((level[0].child, 0))
}

/// Stable argsort: the permutation that stable-sorts `keys` ascending.
fn stable_argsort(keys: &[f64]) -> Vec<u32> {
    // lint: allow(no-panic) -- node fan-out is capped far below u32::MAX
    let mut perm: Vec<u32> = (0..u32::try_from(keys.len()).expect("fits u32")).collect();
    perm.sort_by(|&a, &b| keys[a as usize].total_cmp(&keys[b as usize]));
    perm
}

/// A plain bit set over `n` entry indices.
struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }
}

/// Streaming accumulator of the left/right parameter rectangles of one
/// candidate split.
struct SideRects {
    left: Option<Vec<DimBounds>>,
    right: Option<Vec<DimBounds>>,
}

impl SideRects {
    fn new(_dims: usize) -> Self {
        Self {
            left: None,
            right: None,
        }
    }

    fn extend(&mut self, left_side: bool, means: &[f64], sigmas: &[f64]) {
        let acc = if left_side {
            &mut self.left
        } else {
            &mut self.right
        };
        match acc {
            None => {
                *acc = Some(
                    means
                        .iter()
                        .zip(sigmas)
                        .map(|(&m, &s)| DimBounds::point(m, s))
                        .collect(),
                );
            }
            Some(ds) => {
                for (d, b) in ds.iter_mut().enumerate() {
                    *b = b.union(&DimBounds::point(means[d], sigmas[d]));
                }
            }
        }
    }

    fn left_rect(&self) -> ParamRect {
        // lint: allow(no-panic) -- the splitter only builds states with a non-empty left side
        ParamRect::from_dims(self.left.clone().expect("left side non-empty"))
    }

    fn right_rect(&self) -> ParamRect {
        // lint: allow(no-panic) -- the splitter only builds states with a non-empty right side
        ParamRect::from_dims(self.right.clone().expect("right side non-empty"))
    }
}

/// Fixed-stride encoded `(id, μ*, σ*)` runs packed into the pages of a
/// private [`PageStore`] — the spill area of the streaming front end.
/// Child runs produced by redistribution are appended after their parent
/// range (the parent's pages become garbage; the spill area is transient
/// and dropped whole after the build).
struct SpillFile {
    backend: SpillBackend,
    dims: usize,
    stride: usize,
    per_page: usize,
    /// Entries ever appended (global index space; ranges address into it).
    len: u64,
    full_pages: u64,
    tail: Vec<u8>,
    tail_count: usize,
    cache_page: Option<u64>,
    cache_buf: Vec<u8>,
}

enum SpillBackend {
    Mem(MemStore),
    File { store: FileStore, path: PathBuf },
}

impl SpillBackend {
    fn store_mut(&mut self) -> &mut dyn PageStore {
        match self {
            SpillBackend::Mem(s) => s,
            SpillBackend::File { store, .. } => store,
        }
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let SpillBackend::File { path, .. } = &self.backend {
            std::fs::remove_file(path).ok();
        }
    }
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SpillFile {
    fn new(kind: SpillKind, dims: usize) -> Result<Self, TreeError> {
        let stride = entry_stride_bytes(dims);
        let page_size = SPILL_PAGE_BYTES.max(stride);
        let backend = match kind {
            SpillKind::Memory => SpillBackend::Mem(MemStore::new(page_size)),
            SpillKind::TempFile => {
                let path = std::env::temp_dir().join(format!(
                    "gauss-bulk-spill-{}-{}.run",
                    std::process::id(),
                    SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                let store = FileStore::create(&path, page_size)?;
                SpillBackend::File { store, path }
            }
        };
        Ok(Self {
            backend,
            dims,
            stride,
            per_page: page_size / stride,
            len: 0,
            full_pages: 0,
            tail: vec![0u8; page_size],
            tail_count: 0,
            cache_page: None,
            cache_buf: vec![0u8; page_size],
        })
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn append(&mut self, e: &LeafEntry) -> Result<(), TreeError> {
        let off = self.tail_count * self.stride;
        let buf = &mut self.tail[off..off + self.stride];
        buf[..8].copy_from_slice(&e.id.to_le_bytes());
        for (d, &m) in e.pfv.means().iter().enumerate() {
            buf[8 + d * 8..16 + d * 8].copy_from_slice(&m.to_le_bytes());
        }
        let sig_base = 8 + self.dims * 8;
        for (d, &s) in e.pfv.sigmas().iter().enumerate() {
            buf[sig_base + d * 8..sig_base + 8 + d * 8].copy_from_slice(&s.to_le_bytes());
        }
        self.tail_count += 1;
        self.len += 1;
        if self.tail_count == self.per_page {
            let id = self.backend.store_mut().allocate()?;
            debug_assert_eq!(id.index(), self.full_pages);
            self.backend.store_mut().write_page(id, &self.tail)?;
            self.full_pages += 1;
            self.tail_count = 0;
            self.tail.fill(0);
        }
        Ok(())
    }

    /// Raw bytes of entry `idx`, served from the tail buffer or a one-page
    /// read cache (sequential and sorted access patterns hit it almost
    /// always).
    fn entry_bytes(&mut self, idx: u64) -> Result<&[u8], TreeError> {
        debug_assert!(idx < self.len);
        let pid = idx / self.per_page as u64;
        // lint: allow(no-panic) -- idx % per_page < per_page which is a small usize
        let off = usize::try_from(idx % self.per_page as u64).expect("offset fits") * self.stride;
        if pid == self.full_pages {
            return Ok(&self.tail[off..off + self.stride]);
        }
        if self.cache_page != Some(pid) {
            self.backend
                .store_mut()
                .read_page(PageId(pid), &mut self.cache_buf)?;
            self.cache_page = Some(pid);
        }
        Ok(&self.cache_buf[off..off + self.stride])
    }

    /// Copies entry `idx`'s feature columns into the scratch slices.
    fn read_components(
        &mut self,
        idx: u64,
        means: &mut [f64],
        sigmas: &mut [f64],
    ) -> Result<(), TreeError> {
        let dims = self.dims;
        let bytes = self.entry_bytes(idx)?;
        for d in 0..dims {
            means[d] =
                // lint: allow(no-panic) -- the 8-byte subslice makes the array conversion infallible
                f64::from_le_bytes(bytes[8 + d * 8..16 + d * 8].try_into().expect("8 bytes"));
            let sb = 8 + dims * 8 + d * 8;
            // lint: allow(no-panic) -- the 8-byte subslice makes the array conversion infallible
            sigmas[d] = f64::from_le_bytes(bytes[sb..sb + 8].try_into().expect("8 bytes"));
        }
        Ok(())
    }

    fn decode_entry(&mut self, idx: u64) -> Result<LeafEntry, TreeError> {
        let dims = self.dims;
        let bytes = self.entry_bytes(idx)?;
        // lint: allow(no-panic) -- the 8-byte subslice makes the array conversion infallible
        let id = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let mut means = Vec::with_capacity(dims);
        let mut sigmas = Vec::with_capacity(dims);
        for d in 0..dims {
            means.push(f64::from_le_bytes(
                // lint: allow(no-panic) -- the 8-byte subslice makes the array conversion infallible
                bytes[8 + d * 8..16 + d * 8].try_into().expect("8 bytes"),
            ));
            let sb = 8 + dims * 8 + d * 8;
            sigmas.push(f64::from_le_bytes(
                // lint: allow(no-panic) -- the 8-byte subslice makes the array conversion infallible
                bytes[sb..sb + 8].try_into().expect("8 bytes"),
            ));
        }
        let pfv = Pfv::new(means, sigmas).map_err(|_| TreeError::Corrupt("invalid spilled pfv"))?;
        Ok(LeafEntry { id, pfv })
    }

    fn decode_range(&mut self, range: Range<u64>) -> Result<Vec<LeafEntry>, TreeError> {
        let mut out =
            // lint: allow(no-panic) -- u64 range length to usize; the documented assumption is a 64-bit build
            Vec::with_capacity(usize::try_from(range.end - range.start).expect("fits usize"));
        for idx in range {
            out.push(self.decode_entry(idx)?);
        }
        Ok(out)
    }

    /// The axis keys of a range, in run order — one sequential pass.
    fn axis_keys(&mut self, range: Range<u64>, axis: Axis) -> Result<Vec<f64>, TreeError> {
        let off = match axis {
            Axis::Mu(i) => 8 + i * 8,
            Axis::Sigma(i) => 8 + (self.dims + i) * 8,
        };
        let mut keys =
            // lint: allow(no-panic) -- u64 range length to usize; the documented assumption is a 64-bit build
            Vec::with_capacity(usize::try_from(range.end - range.start).expect("fits usize"));
        for idx in range {
            let bytes = self.entry_bytes(idx)?;
            keys.push(f64::from_le_bytes(
                // lint: allow(no-panic) -- the 8-byte subslice makes the array conversion infallible
                bytes[off..off + 8].try_into().expect("8 bytes"),
            ));
        }
        Ok(keys)
    }

    /// Covering rectangle of a range (for the widest-μ baseline's axis
    /// choice), folded in run order like `group_rect`.
    fn range_rect(&mut self, range: Range<u64>) -> Result<ParamRect, TreeError> {
        let dims = self.dims;
        let mut means = vec![0.0f64; dims];
        let mut sigmas = vec![0.0f64; dims];
        let mut ds: Option<Vec<DimBounds>> = None;
        for idx in range {
            self.read_components(idx, &mut means, &mut sigmas)?;
            match &mut ds {
                None => {
                    ds = Some(
                        means
                            .iter()
                            .zip(&sigmas)
                            .map(|(&m, &s)| DimBounds::point(m, s))
                            .collect(),
                    );
                }
                Some(ds) => {
                    for (d, b) in ds.iter_mut().enumerate() {
                        *b = b.union(&DimBounds::point(means[d], sigmas[d]));
                    }
                }
            }
        }
        // lint: allow(no-panic) -- the caller checked the range is non-empty, so ds was set in the loop
        Ok(ParamRect::from_dims(ds.expect("non-empty range")))
    }

    /// Appends the entries `base + perm[..]` in permutation order as a new
    /// run, gathering at most `window` entries at a time (each window's
    /// sources are visited in ascending index order, so the one-page cache
    /// turns the gather into near-sequential reads).
    fn rewrite(
        &mut self,
        base: u64,
        perm: &[u32],
        window: usize,
        report: &mut BulkLoadReport,
    ) -> Result<Range<u64>, TreeError> {
        let start = self.len;
        let window = window.max(1);
        let mut buf: Vec<Option<LeafEntry>> = Vec::new();
        for chunk in perm.chunks(window) {
            let mut order: Vec<(u32, usize)> = chunk
                .iter()
                .enumerate()
                .map(|(rank, &src)| (src, rank))
                .collect();
            order.sort_unstable_by_key(|&(src, _)| src);
            buf.clear();
            buf.resize_with(chunk.len(), || None);
            for (src, rank) in order {
                buf[rank] = Some(self.decode_entry(base + u64::from(src))?);
            }
            report.observe_resident(chunk.len());
            for e in buf.drain(..) {
                // lint: allow(no-panic) -- the gather loop above stored a value for every rank in the chunk
                self.append(&e.expect("every rank gathered"))?;
            }
        }
        report.rewritten_entries += perm.len() as u64;
        Ok(start..self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use gauss_storage::{AccessStats, BufferPool};

    fn items(n: u64, dims: usize) -> Vec<(u64, Pfv)> {
        (0..n)
            .map(|i| {
                let means: Vec<f64> = (0..dims)
                    .map(|d| ((i * 13 + d as u64) as f64 * 0.29).sin() * 25.0)
                    .collect();
                let sigmas: Vec<f64> = (0..dims)
                    .map(|d| 0.03 + ((i * 5 + d as u64) % 11) as f64 * 0.08)
                    .collect();
                (i, Pfv::new(means, sigmas).unwrap())
            })
            .collect()
    }

    fn pool() -> BufferPool<MemStore> {
        BufferPool::new(MemStore::new(4096), 4096, AccessStats::new_shared())
    }

    /// Byte image of every page in a tree's store.
    fn store_image<S: PageStore>(tree: &GaussTree<S>) -> Vec<u8> {
        let pool = tree.pool();
        let mut out = Vec::new();
        for i in 0..pool.num_pages() {
            out.extend_from_slice(&pool.page(PageId(i)).unwrap());
        }
        out
    }

    #[test]
    fn spill_file_round_trips_entries() {
        let data = items(500, 3);
        let mut sp = SpillFile::new(SpillKind::Memory, 3).unwrap();
        for (id, pfv) in &data {
            sp.append(&LeafEntry {
                id: *id,
                pfv: pfv.clone(),
            })
            .unwrap();
        }
        assert_eq!(sp.len(), 500);
        // Random-access decode agrees with the source, including entries
        // still in the tail buffer.
        for idx in [0u64, 1, 17, 250, 499] {
            let e = sp.decode_entry(idx).unwrap();
            assert_eq!(e.id, data[idx as usize].0);
            assert_eq!(e.pfv, data[idx as usize].1);
        }
        // Axis keys match the decoded components.
        let keys = sp.axis_keys(0..500, Axis::Sigma(2)).unwrap();
        for (idx, k) in keys.iter().enumerate() {
            assert_eq!(*k, data[idx].1.sigmas()[2]);
        }
    }

    #[test]
    fn spilled_build_is_byte_identical_to_resident_build() {
        let data = items(1200, 2);
        let config = TreeConfig::new(2).with_capacities(8, 6);
        let reference = GaussTree::bulk_load(pool(), config, data.clone()).unwrap();
        let ref_image = store_image(&reference);

        for budget in [40usize, 97, 300, 5000] {
            let opts = BulkLoadOptions::default()
                .with_mem_budget(budget)
                .with_spill(SpillKind::Memory);
            let (tree, report) =
                GaussTree::bulk_load_with(pool(), config, data.clone(), &opts).unwrap();
            assert_eq!(store_image(&tree), ref_image, "budget {budget}");
            assert_eq!(report.total_entries, 1200);
            if budget < 1200 {
                assert_eq!(report.spilled_entries, 1200, "budget {budget}");
                assert!(
                    report.peak_resident_entries <= budget.max(tree.bulk_leaf_target()).max(16),
                    "budget {budget}: peak {}",
                    report.peak_resident_entries
                );
            }
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let data = items(3000, 3);
        let config = TreeConfig::new(3).with_capacities(10, 8);
        let reference = GaussTree::bulk_load(pool(), config, data.clone()).unwrap();
        let ref_image = store_image(&reference);
        for threads in [2usize, 4, 7] {
            let opts = BulkLoadOptions::default().with_threads(threads);
            let (tree, _) = GaussTree::bulk_load_with(pool(), config, data.clone(), &opts).unwrap();
            assert_eq!(store_image(&tree), ref_image, "threads {threads}");
        }
    }

    #[test]
    fn per_node_and_batched_writes_produce_identical_stores_with_fewer_calls() {
        let data = items(2000, 2);
        let config = TreeConfig::new(2).with_capacities(8, 6);
        let (batched, _) =
            GaussTree::bulk_load_with(pool(), config, data.clone(), &BulkLoadOptions::default())
                .unwrap();
        let (per_node, _) = GaussTree::bulk_load_with(
            pool(),
            config,
            data,
            &BulkLoadOptions::default().with_batched_writes(false),
        )
        .unwrap();
        assert_eq!(store_image(&batched), store_image(&per_node));
        let b = batched.stats().snapshot();
        let p = per_node.stats().snapshot();
        assert_eq!(b.physical_writes, p.physical_writes, "same pages written");
        assert!(
            b.write_calls * 4 <= p.write_calls,
            "batched {} vs per-node {} write calls",
            b.write_calls,
            p.write_calls
        );
    }

    #[test]
    fn temp_file_spill_builds_and_cleans_up() {
        let data = items(800, 2);
        let config = TreeConfig::new(2).with_capacities(8, 6);
        let reference = GaussTree::bulk_load(pool(), config, data.clone()).unwrap();
        let opts = BulkLoadOptions::default()
            .with_mem_budget(100)
            .with_spill(SpillKind::TempFile);
        let (tree, report) = GaussTree::bulk_load_with(pool(), config, data, &opts).unwrap();
        assert_eq!(store_image(&tree), store_image(&reference));
        assert!(report.spilled_entries > 0);
        assert!(report.external_splits > 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let opts = BulkLoadOptions::default()
            .with_threads(4)
            .with_mem_budget(16)
            .with_spill(SpillKind::Memory);
        let (tree, report) = GaussTree::bulk_load_with(pool(), config, Vec::new(), &opts).unwrap();
        assert!(tree.is_empty());
        assert_eq!(report.total_entries, 0);

        let two = vec![
            (1u64, Pfv::new(vec![0.0], vec![0.1]).unwrap()),
            (2, Pfv::new(vec![1.0], vec![0.2]).unwrap()),
        ];
        let (tree, _) = GaussTree::bulk_load_with(pool(), config, two, &opts).unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.height(), 0);
    }
}
