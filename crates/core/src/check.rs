//! Structural invariant checking (Definition 4 of the paper).
//!
//! Verifies, for a whole tree:
//!
//! * every leaf is at the same level (balance);
//! * fanout bounds: inner nodes hold between `⌈M/2⌉` and `M` entries and
//!   leaves between `M` and `2M` (the root is exempt from the lower bounds);
//! * parent rectangles contain their children's rectangles / pfv and are
//!   **tight** (equal to the union of the children);
//! * subtree counts add up and match the tree's `len()`.
//!
//! Incremental insertion keeps these exactly; the bulk loader targets a 75 %
//! fill, which still satisfies the bounds for the default capacities.

use crate::node::Node;
use crate::tree::{GaussTree, TreeError};
use crate::view::Plane;
use gauss_storage::store::PageStore;
use gauss_storage::PageId;
use pfv::ParamRect;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantError {
    /// A leaf was found at the wrong depth.
    UnbalancedLeaf {
        /// Page of the offending leaf.
        page: u64,
        /// Depth where the leaf was found.
        depth: u32,
        /// Tree height (expected leaf depth).
        expected: u32,
    },
    /// Node fanout outside the permitted interval.
    FanoutViolation {
        /// Offending page.
        page: u64,
        /// Entry count found.
        len: usize,
        /// Minimum allowed.
        min: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A child's bounds leak out of its parent entry's rectangle.
    ChildNotContained {
        /// Parent page.
        parent: u64,
        /// Child page.
        child: u64,
    },
    /// A parent entry's rectangle is bigger than the union of its child.
    RectNotTight {
        /// Parent page.
        parent: u64,
        /// Child page.
        child: u64,
    },
    /// A parent entry's subtree count disagrees with the child.
    CountMismatch {
        /// Parent page.
        parent: u64,
        /// Child page.
        child: u64,
        /// Count recorded in the parent entry.
        recorded: u64,
        /// Count found in the subtree.
        actual: u64,
    },
    /// The tree's `len()` disagrees with the stored entries.
    LenMismatch {
        /// `len()` reported by the metadata.
        meta: u64,
        /// Entries actually stored.
        actual: u64,
    },
    /// Allocated pages are neither reachable from the root, nor metadata
    /// pages, nor on the free list — the store is leaking pages.
    PageLeak {
        /// Pages allocated in the store.
        allocated: u64,
        /// Node pages reachable from the root (excluding metadata pages).
        reachable: u64,
        /// Pages parked on the free list.
        freed: u64,
        /// Pages owned by the tree's metadata (1 legacy slot or 2
        /// versioned slots).
        meta: u64,
    },
    /// A page on the free list is still reachable from the root (a reuse
    /// of it would corrupt the tree).
    FreedPageReachable {
        /// The doubly-owned page.
        page: u64,
    },
    /// A leaf of a [`crate::LeafFormat::Quantised`] tree stores a value
    /// that is not exactly `f32`-representable. Ingest rounds every
    /// parameter (see `pfv::quant`), so an unquantised stored value means
    /// some write path skipped quantisation — and the next leaf encode
    /// would silently perturb it.
    UnquantisedLeafValue {
        /// Page of the offending leaf.
        page: u64,
        /// Object id of the offending entry.
        id: u64,
        /// Dimension of the offending parameter.
        dim: usize,
    },
}

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantError::UnbalancedLeaf {
                page,
                depth,
                expected,
            } => write!(f, "leaf page {page} at depth {depth}, expected {expected}"),
            InvariantError::FanoutViolation {
                page,
                len,
                min,
                max,
            } => write!(f, "page {page} has {len} entries, allowed [{min}, {max}]"),
            InvariantError::ChildNotContained { parent, child } => {
                write!(f, "child {child} not contained in parent {parent}")
            }
            InvariantError::RectNotTight { parent, child } => {
                write!(f, "rect for child {child} in parent {parent} not tight")
            }
            InvariantError::CountMismatch {
                parent,
                child,
                recorded,
                actual,
            } => write!(
                f,
                "count for child {child} in parent {parent}: recorded {recorded}, actual {actual}"
            ),
            InvariantError::LenMismatch { meta, actual } => {
                write!(f, "metadata says {meta} entries, tree holds {actual}")
            }
            InvariantError::PageLeak {
                allocated,
                reachable,
                freed,
                meta,
            } => write!(
                f,
                "page leak: {allocated} allocated, {reachable} reachable + {meta} meta + {freed} freed"
            ),
            InvariantError::FreedPageReachable { page } => {
                write!(f, "freed page {page} is still reachable from the root")
            }
            InvariantError::UnquantisedLeafValue { page, id, dim } => {
                write!(
                    f,
                    "leaf page {page}, entry {id}, dimension {dim}: stored value is not f32-exact in a quantised tree"
                )
            }
        }
    }
}

impl std::error::Error for InvariantError {}

impl<S: PageStore> GaussTree<S> {
    /// Verifies all structural invariants; returns every violation found.
    ///
    /// An empty vector means the tree is structurally sound. `strict_fanout`
    /// additionally enforces the minimum fill of non-root nodes (disable it
    /// for bulk-loaded trees with unusual capacities).
    ///
    /// # Errors
    /// Storage/codec errors while traversing.
    pub fn check_invariants(&self, strict_fanout: bool) -> Result<Vec<InvariantError>, TreeError> {
        let (mut errors, reachable) = self.working_plane().check_structure(strict_fanout)?;
        self.check_page_accounting(&reachable, &mut errors);
        Ok(errors)
    }

    /// Allocation-leak assertion: every page of the store is either the
    /// meta page, reachable from the root, or parked on the free list —
    /// nothing more, nothing less. Bulk loading, insertion, batch merges
    /// and deletion (which returns dissolved pages to the free list) all
    /// preserve this; a violation means some code path dropped or
    /// double-owned a page.
    fn check_page_accounting(&self, reachable: &[u64], errors: &mut Vec<InvariantError>) {
        let reachable_set: std::collections::HashSet<u64> = reachable.iter().copied().collect();
        let freed = self.free_pages();
        for p in &freed {
            if reachable_set.contains(&p.index()) {
                errors.push(InvariantError::FreedPageReachable { page: p.index() });
            }
        }
        let meta = self.meta_page_count();
        let allocated = self.pool().num_pages();
        let accounted = meta + reachable_set.len() as u64 + freed.len() as u64;
        if accounted != allocated {
            errors.push(InvariantError::PageLeak {
                allocated,
                reachable: reachable_set.len() as u64,
                freed: freed.len() as u64,
                meta,
            });
        }
    }
}

impl<S: PageStore> Plane<'_, S> {
    /// Structural half of the invariant check: balance, fanout bounds,
    /// rectangle containment/tightness and count consistency — everything
    /// that can be verified from one frozen root, so both the writer's
    /// working state and a pinned snapshot can run it. Returns the
    /// violations plus every page reachable from the root (the writer's
    /// [`GaussTree::check_invariants`] feeds the latter into its page
    /// accounting, which needs the free lists only the writer knows).
    pub(crate) fn check_structure(
        &self,
        strict_fanout: bool,
    ) -> Result<(Vec<InvariantError>, Vec<u64>), TreeError> {
        let mut errors = Vec::new();
        let mut reachable: Vec<u64> = Vec::new();
        if self.is_empty() {
            // The empty tree still owns its root leaf — which must decode
            // and actually be empty, so a clobbered root page cannot hide
            // behind `len == 0` (crash recovery relies on this check).
            reachable.push(self.root_page().index());
            let root = self.read_node(self.root_page())?;
            if !root.is_empty() {
                errors.push(InvariantError::LenMismatch {
                    meta: 0,
                    actual: root.subtree_count(),
                });
            }
        } else {
            let root = self.root_page();
            let height = self.height();
            let total = self
                .check_node(
                    root,
                    0,
                    height,
                    true,
                    strict_fanout,
                    &mut errors,
                    &mut reachable,
                )?
                .0;
            if total != self.len() {
                errors.push(InvariantError::LenMismatch {
                    meta: self.len(),
                    actual: total,
                });
            }
        }
        Ok((errors, reachable))
    }

    /// Returns `(subtree count, subtree rect)`.
    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        page: PageId,
        depth: u32,
        height: u32,
        is_root: bool,
        strict_fanout: bool,
        errors: &mut Vec<InvariantError>,
        reachable: &mut Vec<u64>,
    ) -> Result<(u64, ParamRect), TreeError> {
        reachable.push(page.index());
        let node = self.read_node(page)?;
        match node {
            Node::Leaf(es) => {
                if depth != height {
                    errors.push(InvariantError::UnbalancedLeaf {
                        page: page.index(),
                        depth,
                        expected: height,
                    });
                }
                let max = self.leaf_capacity();
                let min = if is_root {
                    1
                } else if strict_fanout {
                    max / 2
                } else {
                    1
                };
                if es.len() < min || es.len() > max {
                    errors.push(InvariantError::FanoutViolation {
                        page: page.index(),
                        len: es.len(),
                        min,
                        max,
                    });
                }
                if es.is_empty() {
                    return Err(TreeError::Corrupt("empty leaf in non-empty tree"));
                }
                if self.config.leaf_format == crate::config::LeafFormat::Quantised {
                    // Quantise-stability: every stored parameter must be the
                    // widened value of an f32 (f32 -> f64 is lossless), or
                    // the next encode of this leaf would change the data.
                    for e in &es {
                        let values = e.pfv.means().iter().chain(e.pfv.sigmas());
                        for (dim, &v) in values.enumerate() {
                            if !pfv::quant::is_f32_exact(v) {
                                errors.push(InvariantError::UnquantisedLeafValue {
                                    page: page.index(),
                                    id: e.id,
                                    dim: dim % e.pfv.dims(),
                                });
                            }
                        }
                    }
                }
                let rect = ParamRect::covering(es.iter().map(|e| &e.pfv));
                Ok((es.len() as u64, rect))
            }
            Node::Inner(es) => {
                let max = self.inner_capacity();
                let min = if is_root {
                    2
                } else if strict_fanout {
                    max / 2
                } else {
                    1
                };
                if es.len() < min || es.len() > max {
                    errors.push(InvariantError::FanoutViolation {
                        page: page.index(),
                        len: es.len(),
                        min,
                        max,
                    });
                }
                let mut total = 0u64;
                let mut rect: Option<ParamRect> = None;
                for e in &es {
                    let (count, child_rect) = self.check_node(
                        e.child,
                        depth + 1,
                        height,
                        false,
                        strict_fanout,
                        errors,
                        reachable,
                    )?;
                    if count != e.count {
                        errors.push(InvariantError::CountMismatch {
                            parent: page.index(),
                            child: e.child.index(),
                            recorded: e.count,
                            actual: count,
                        });
                    }
                    if !e.rect.contains_rect(&child_rect) {
                        errors.push(InvariantError::ChildNotContained {
                            parent: page.index(),
                            child: e.child.index(),
                        });
                    } else if !child_rect.contains_rect(&e.rect) {
                        // contained but strictly larger => not tight
                        errors.push(InvariantError::RectNotTight {
                            parent: page.index(),
                            child: e.child.index(),
                        });
                    }
                    total += count;
                    match &mut rect {
                        None => rect = Some(child_rect),
                        Some(r) => r.extend_rect(&child_rect),
                    }
                }
                Ok((total, rect.ok_or(TreeError::Corrupt("empty inner node"))?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use gauss_storage::{AccessStats, BufferPool, MemStore};
    use pfv::Pfv;

    fn pfv2(a: f64, b: f64, s: f64) -> Pfv {
        Pfv::new(vec![a, b], vec![s, s * 2.0]).unwrap()
    }

    #[test]
    fn fresh_tree_is_sound() {
        let config = TreeConfig::new(2).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(8192), 256, AccessStats::new_shared());
        let tree = GaussTree::create(pool, config).unwrap();
        assert!(tree.check_invariants(true).unwrap().is_empty());
    }

    #[test]
    fn incrementally_built_tree_is_sound() {
        let config = TreeConfig::new(2).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, config).unwrap();
        for i in 0..500u64 {
            let x = (i as f64 * 0.37).sin() * 20.0;
            let y = (i as f64 * 0.11).cos() * 20.0;
            tree.insert(i, &pfv2(x, y, 0.05 + (i % 9) as f64 * 0.1))
                .unwrap();
            if i % 97 == 0 {
                let errs = tree.check_invariants(true).unwrap();
                assert!(errs.is_empty(), "violations after {i} inserts: {errs:?}");
            }
        }
        let errs = tree.check_invariants(true).unwrap();
        assert!(errs.is_empty(), "violations: {errs:?}");
    }

    #[test]
    fn bulk_loaded_tree_is_sound() {
        let items: Vec<(u64, Pfv)> = (0..1000u64)
            .map(|i| {
                let x = (i as f64 * 0.61).sin() * 30.0;
                (i, pfv2(x, -x * 0.5, 0.1 + (i % 5) as f64 * 0.07))
            })
            .collect();
        let config = TreeConfig::new(2).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let tree = GaussTree::bulk_load(pool, config, items).unwrap();
        let errs = tree.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations: {errs:?}");
    }

    #[test]
    fn page_leak_is_detected() {
        // Build a sound tree, then allocate a page nobody references: the
        // accounting check must flag exactly one leak.
        let config = TreeConfig::new(2).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, config).unwrap();
        for i in 0..80u64 {
            tree.insert(i, &pfv2(i as f64, -(i as f64), 0.1)).unwrap();
        }
        assert!(tree.check_invariants(true).unwrap().is_empty());
        let _orphan = tree.pool().allocate().unwrap();
        let errs = tree.check_invariants(true).unwrap();
        assert!(
            errs.iter()
                .any(|e| matches!(e, InvariantError::PageLeak { .. })),
            "expected a PageLeak violation, got {errs:?}"
        );
    }

    #[test]
    fn deletion_keeps_page_accounting_exact() {
        let config = TreeConfig::new(2).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, config).unwrap();
        let items: Vec<(u64, Pfv)> = (0..300u64)
            .map(|i| {
                (
                    i,
                    pfv2(
                        (i as f64 * 0.73).sin() * 15.0,
                        (i as f64 * 0.41).cos() * 15.0,
                        0.05 + (i % 7) as f64 * 0.1,
                    ),
                )
            })
            .collect();
        for (id, v) in &items {
            tree.insert(*id, v).unwrap();
        }
        // Mass deletion dissolves nodes and collapses the root; every
        // dropped page must land on the free list, not leak.
        for (id, v) in items.iter().take(280) {
            tree.delete(*id, v).unwrap();
        }
        let errs = tree.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations after deletes: {errs:?}");
        assert!(tree.free_page_count() > 0, "deletes must free pages");
        // Reinsertion reuses freed pages before growing the store.
        let pages_before = tree.pool().num_pages();
        for (id, v) in items.iter().take(40) {
            tree.insert(*id, v).unwrap();
        }
        assert_eq!(
            tree.pool().num_pages(),
            pages_before,
            "freed pages must be reused before the store grows"
        );
        assert!(tree.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn default_page_capacities_stay_sound() {
        // Same but with realistic page-derived capacities and 27 dims.
        let config = TreeConfig::new(5);
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, config).unwrap();
        for i in 0..2000u64 {
            let means: Vec<f64> = (0..5)
                .map(|d| ((i + d) as f64 * 0.31).sin() * 10.0)
                .collect();
            let sigmas: Vec<f64> = (0..5)
                .map(|d| 0.05 + ((i * 3 + d) % 7) as f64 * 0.05)
                .collect();
            tree.insert(i, &Pfv::new(means, sigmas).unwrap()).unwrap();
        }
        let errs = tree.check_invariants(true).unwrap();
        assert!(errs.is_empty(), "violations: {errs:?}");
    }
}
