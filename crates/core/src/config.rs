//! Tree configuration: dimensionality, capacities, strategies.

use pfv::CombineMode;

/// Split strategies for node overflow (paper §5.3 plus two ablation
/// baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// The paper's strategy: tentative median splits in every μ- and
    /// σ-dimension; keep the split minimising the summed hull integrals
    /// `∫ N̂(x) dx` of the two children.
    #[default]
    HullIntegral,
    /// R-tree-style baseline: median split along the μ-dimension with the
    /// widest extent, ignoring σ (what a conventional index would do).
    WidestMu,
    /// R\*-style baseline: tentative median splits on all 2d axes, cost =
    /// sum of the children's parameter-space volumes.
    MinVolume,
}

impl SplitStrategy {
    /// Stable on-disk tag.
    #[must_use]
    pub fn to_tag(self) -> u8 {
        match self {
            SplitStrategy::HullIntegral => 0,
            SplitStrategy::WidestMu => 1,
            SplitStrategy::MinVolume => 2,
        }
    }

    /// Parses an on-disk tag.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SplitStrategy::HullIntegral),
            1 => Some(SplitStrategy::WidestMu),
            2 => Some(SplitStrategy::MinVolume),
            _ => None,
        }
    }
}

/// On-disk representation of leaf entries.
///
/// [`LeafFormat::Quantised`] stores every `μ` and `σ` as an `f32`
/// (entry layout `id + 4d + 4d` bytes instead of `id + 8d + 8d`), roughly
/// doubling leaf fan-out — fewer leaf pages, fewer physical reads (the
/// paper's Figure-7 metric). Parameters are quantised **once at ingest**
/// (see `pfv::quant`): the tree stores the widened `f64` of each rounded
/// `f32`, so encode/decode is a lossless fixpoint and every query remains
/// exact — and bit-identical between a working tree and a reopened one —
/// *over the stored parameters*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafFormat {
    /// Full-precision `f64` leaf entries (the classic format).
    #[default]
    Exact,
    /// `f32`-quantised leaf entries (~2x leaf fan-out).
    Quantised,
}

impl LeafFormat {
    /// Stable on-disk tag (persisted in the meta page, format v3).
    #[must_use]
    pub fn to_tag(self) -> u8 {
        match self {
            LeafFormat::Exact => 0,
            LeafFormat::Quantised => 1,
        }
    }

    /// Parses an on-disk tag.
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(LeafFormat::Exact),
            1 => Some(LeafFormat::Quantised),
            _ => None,
        }
    }
}

/// Configuration of a [`crate::GaussTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Dimensionality `d` of the indexed pfv.
    pub dims: usize,
    /// Lemma-1 combination mode used by all queries.
    pub combine: CombineMode,
    /// Node split strategy.
    pub split: SplitStrategy,
    /// On-disk leaf entry representation.
    pub leaf_format: LeafFormat,
    /// Optional cap on leaf entries (defaults to what fits in a page).
    pub max_leaf_entries: Option<usize>,
    /// Optional cap on inner entries (defaults to what fits in a page).
    pub max_inner_entries: Option<usize>,
}

impl TreeConfig {
    /// Default configuration for dimensionality `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        Self {
            dims,
            combine: CombineMode::default(),
            split: SplitStrategy::default(),
            leaf_format: LeafFormat::default(),
            max_leaf_entries: None,
            max_inner_entries: None,
        }
    }

    /// Sets the Lemma-1 combination mode.
    #[must_use]
    pub fn with_combine(mut self, mode: CombineMode) -> Self {
        self.combine = mode;
        self
    }

    /// Sets the split strategy.
    #[must_use]
    pub fn with_split(mut self, split: SplitStrategy) -> Self {
        self.split = split;
        self
    }

    /// Sets the on-disk leaf entry representation.
    #[must_use]
    pub fn with_leaf_format(mut self, format: LeafFormat) -> Self {
        self.leaf_format = format;
        self
    }

    /// Caps node capacities (mainly for tests that want tiny nodes).
    #[must_use]
    pub fn with_capacities(mut self, leaf: usize, inner: usize) -> Self {
        assert!(leaf >= 2 && inner >= 2, "capacities must be at least 2");
        self.max_leaf_entries = Some(leaf);
        self.max_inner_entries = Some(inner);
        self
    }

    /// Bytes of one serialised leaf entry: object id + `d` means + `d` σs
    /// (8 bytes per value in the exact format, 4 in the quantised one).
    #[must_use]
    pub fn leaf_entry_bytes(&self) -> usize {
        match self.leaf_format {
            LeafFormat::Exact => 8 + 16 * self.dims,
            LeafFormat::Quantised => 8 + 8 * self.dims,
        }
    }

    /// Bytes of one serialised inner entry: child page + subtree count +
    /// `4d` bounds.
    #[must_use]
    pub fn inner_entry_bytes(&self) -> usize {
        16 + 32 * self.dims
    }

    /// Maximum leaf entries for a given page size (paper: `2M`).
    ///
    /// # Panics
    /// Panics if the page cannot hold at least two entries.
    #[must_use]
    pub fn leaf_capacity(&self, page_size: usize) -> usize {
        let cap = (page_size - crate::node::NODE_HEADER_BYTES) / self.leaf_entry_bytes();
        let cap = self.max_leaf_entries.map_or(cap, |m| m.min(cap));
        assert!(
            cap >= 2,
            "page size {page_size} too small for 2 leaf entries of dimension {}",
            self.dims
        );
        cap
    }

    /// Maximum inner entries for a given page size (paper: `M`).
    ///
    /// # Panics
    /// Panics if the page cannot hold at least two entries.
    #[must_use]
    pub fn inner_capacity(&self, page_size: usize) -> usize {
        let cap = (page_size - crate::node::NODE_HEADER_BYTES) / self.inner_entry_bytes();
        let cap = self.max_inner_entries.map_or(cap, |m| m.min(cap));
        assert!(
            cap >= 2,
            "page size {page_size} too small for 2 inner entries of dimension {}",
            self.dims
        );
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_scale_with_page_size() {
        let c = TreeConfig::new(27);
        // entry: 8 + 16*27 = 440 bytes; 8 KiB page minus header.
        let leaf = c.leaf_capacity(8192);
        assert_eq!(leaf, (8192 - crate::node::NODE_HEADER_BYTES) / 440);
        assert!(leaf >= 18);
        // inner: 16 + 32*27 = 880 bytes
        let inner = c.inner_capacity(8192);
        assert_eq!(inner, (8192 - crate::node::NODE_HEADER_BYTES) / 880);
        // The paper's M / 2M relation holds approximately by construction.
        assert!(leaf >= 2 * inner - 1);
    }

    #[test]
    fn explicit_caps_win_when_smaller() {
        let c = TreeConfig::new(2).with_capacities(4, 3);
        assert_eq!(c.leaf_capacity(8192), 4);
        assert_eq!(c.inner_capacity(8192), 3);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_pages_are_rejected() {
        let c = TreeConfig::new(27);
        let _ = c.leaf_capacity(256);
    }

    #[test]
    fn quantised_leaves_roughly_double_fanout() {
        let exact = TreeConfig::new(10);
        let quant = TreeConfig::new(10).with_leaf_format(LeafFormat::Quantised);
        assert_eq!(exact.leaf_entry_bytes(), 168);
        assert_eq!(quant.leaf_entry_bytes(), 88);
        let (le, lq) = (exact.leaf_capacity(4096), quant.leaf_capacity(4096));
        assert!(lq as f64 >= 1.8 * le as f64, "{lq} vs {le}");
        // Inner nodes are unaffected by the leaf format.
        assert_eq!(exact.inner_capacity(4096), quant.inner_capacity(4096));
    }

    #[test]
    fn leaf_format_tags_round_trip() {
        for f in [LeafFormat::Exact, LeafFormat::Quantised] {
            assert_eq!(LeafFormat::from_tag(f.to_tag()), Some(f));
        }
        assert_eq!(LeafFormat::from_tag(9), None);
    }

    #[test]
    fn split_strategy_tags_round_trip() {
        for s in [
            SplitStrategy::HullIntegral,
            SplitStrategy::WidestMu,
            SplitStrategy::MinVolume,
        ] {
            assert_eq!(SplitStrategy::from_tag(s.to_tag()), Some(s));
        }
        assert_eq!(SplitStrategy::from_tag(99), None);
    }
}
