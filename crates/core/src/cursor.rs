//! Incremental ranking cursor (extension).
//!
//! `k_mliq` answers a fixed-k query; many applications instead consume
//! matches lazily until some application-defined condition holds ("until a
//! human operator confirms", "until cumulative probability exceeds 99 %").
//! [`RankingCursor`] wraps the same Hjaltason–Samet best-first traversal and
//! yields objects one at a time in non-increasing density order, reading
//! only the pages needed so far. Expanded leaves are evaluated through the
//! batched columnar kernel ([`pfv::batch::log_densities`]), so the cursor's
//! per-hit densities are bit-identical to the scalar per-entry path.
//!
//! Over a [`crate::ForestSnapshot`] the same frontier simply spans every
//! component: memtable entries enter as ready objects, each component
//! contributes its root, and node bounds carry their component index so
//! expansion reads the right tree (shadowed ids are skipped). Because
//! emission is ordered by exact density, the ranking equals the
//! single-tree ranking over the live set.

use crate::node::CachedNode;
use crate::query::MliqResult;
use crate::tree::TreeError;
use crate::view::{Plane, ViewPlane};
use gauss_storage::store::PageStore;
use gauss_storage::PageId;
use pfv::{batch, combine, Pfv};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An element of the traversal frontier: either an unexpanded node (tagged
/// with the component it belongs to; 0 for a single tree) or a concrete
/// object, ordered by its (bound on the) log density.
#[derive(Debug, Clone, Copy)]
enum Frontier {
    NodeBound {
        log_upper: f64,
        comp: usize,
        page: PageId,
    },
    Object {
        log_density: f64,
        id: u64,
    },
}

impl Frontier {
    fn key(&self) -> f64 {
        match self {
            Frontier::NodeBound { log_upper, .. } => *log_upper,
            Frontier::Object { log_density, .. } => *log_density,
        }
    }
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on the key. On exact key ties node bounds win, so a
        // node whose upper bound equals a ready object's density is
        // expanded *before* that object is emitted — it may hide an
        // equal-density entry with a smaller id, which the (density desc,
        // id asc) contract must rank first. Tied objects then emit in
        // ascending id order. Together this is a strict total order, so
        // emission is independent of heap arrival order — and over a
        // forest, of component order.
        self.key()
            .total_cmp(&other.key())
            .then_with(|| match (self, other) {
                (Frontier::NodeBound { .. }, Frontier::Object { .. }) => Ordering::Greater,
                (Frontier::Object { .. }, Frontier::NodeBound { .. }) => Ordering::Less,
                (Frontier::Object { id: a, .. }, Frontier::Object { id: b, .. }) => b.cmp(a),
                (Frontier::NodeBound { .. }, Frontier::NodeBound { .. }) => Ordering::Equal,
            })
    }
}

/// Lazy best-first ranking over one view state.
///
/// Created by [`ReadView::ranking_cursor`] — on a
/// [`GaussTree`](crate::tree::GaussTree) (working state), a pinned
/// [`Snapshot`](crate::tree::Snapshot) (committed epoch) or a
/// [`ForestSnapshot`](crate::ForestSnapshot) (committed forest manifest);
/// call [`RankingCursor::next_hit`] repeatedly. Holds the query and
/// frontier; borrows the view *shared*, so several cursors (even on
/// different threads) can rank over one tree at once.
///
/// [`ReadView::ranking_cursor`]: crate::view::ReadView::ranking_cursor
pub struct RankingCursor<'t, S: PageStore> {
    view: ViewPlane<'t, S>,
    query: Pfv,
    heap: BinaryHeap<Frontier>,
    emitted: u64,
    /// Scratch buffer for the batched leaf kernel, reused across leaves.
    dens: Vec<f64>,
}

impl<S: PageStore> std::fmt::Debug for RankingCursor<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankingCursor")
            .field("emitted", &self.emitted)
            .field("frontier", &self.heap.len())
            .finish_non_exhaustive()
    }
}

impl<'t, S: PageStore> RankingCursor<'t, S> {
    /// Number of objects emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The component plane and shadow set behind frontier entry `comp`.
    fn comp_plane(
        &self,
        comp: usize,
    ) -> (Plane<'t, S>, Option<&'t std::collections::HashSet<u64>>) {
        match &self.view {
            ViewPlane::Tree(plane) => (*plane, None),
            ViewPlane::Forest(fp) => {
                let c = &fp.comps()[comp];
                (
                    c.snap.tree_plane(),
                    (!c.hidden.is_empty()).then_some(&c.hidden),
                )
            }
        }
    }

    /// Returns the next-most-likely object, or `None` when the database is
    /// exhausted.
    ///
    /// # Errors
    /// Storage / codec errors while expanding nodes.
    pub fn next_hit(&mut self) -> Result<Option<MliqResult>, TreeError> {
        let mode = self.view.config().combine;
        while let Some(top) = self.heap.pop() {
            match top {
                Frontier::Object { log_density, id } => {
                    self.emitted += 1;
                    return Ok(Some(MliqResult { id, log_density }));
                }
                Frontier::NodeBound { comp, page, .. } => {
                    let (plane, hidden) = self.comp_plane(comp);
                    match &*plane.read_node_cached(page)? {
                        CachedNode::Leaf(leaf) => {
                            self.dens.resize(leaf.columns.len(), 0.0);
                            batch::log_densities(mode, &self.query, &leaf.columns, &mut self.dens);
                            for (&id, &log_density) in leaf.ids.iter().zip(self.dens.iter()) {
                                if hidden.is_some_and(|h| h.contains(&id)) {
                                    continue;
                                }
                                self.heap.push(Frontier::Object { log_density, id });
                            }
                        }
                        CachedNode::Inner(es) => {
                            // The cursor only orders by the upper bound, so no
                            // fused lower-bound evaluation is needed here.
                            for e in es {
                                self.heap.push(Frontier::NodeBound {
                                    log_upper: e.rect.log_upper_for_query(&self.query, mode),
                                    comp,
                                    page: e.child,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Drains hits until the closure returns `false` (inclusive of the last
    /// inspected hit).
    ///
    /// # Errors
    /// Storage / codec errors.
    pub fn take_while(
        &mut self,
        mut keep_going: impl FnMut(&MliqResult) -> bool,
    ) -> Result<Vec<MliqResult>, TreeError> {
        let mut out = Vec::new();
        while let Some(hit) = self.next_hit()? {
            let more = keep_going(&hit);
            out.push(hit);
            if !more {
                break;
            }
        }
        Ok(out)
    }
}

impl<'t, S: PageStore> ViewPlane<'t, S> {
    /// Starts a lazy best-first ranking for `q` — the constructor behind
    /// [`crate::view::ReadView::ranking_cursor`].
    pub(crate) fn ranking_cursor(self, q: &Pfv) -> Result<RankingCursor<'t, S>, TreeError> {
        self.check_dims(q.dims())?;
        let mut heap = BinaryHeap::new();
        match &self {
            ViewPlane::Tree(plane) => {
                if !plane.is_empty() {
                    heap.push(Frontier::NodeBound {
                        log_upper: f64::INFINITY,
                        comp: 0,
                        page: plane.root_page(),
                    });
                }
            }
            ViewPlane::Forest(fp) => {
                let mode = fp.config().combine;
                for (id, v) in fp.mem() {
                    heap.push(Frontier::Object {
                        log_density: combine::log_joint(mode, v, q),
                        id: *id,
                    });
                }
                for (ci, c) in fp.comps().iter().enumerate() {
                    let plane = c.snap.tree_plane();
                    if !plane.is_empty() {
                        heap.push(Frontier::NodeBound {
                            log_upper: f64::INFINITY,
                            comp: ci,
                            page: plane.root_page(),
                        });
                    }
                }
            }
        }
        Ok(RankingCursor {
            view: self,
            query: q.clone(),
            heap,
            emitted: 0,
            dens: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::tree::GaussTree;
    use crate::view::ReadView;
    use gauss_storage::{AccessStats, BufferPool, MemStore};
    use pfv::CombineMode;

    fn build(n: u64) -> (GaussTree<MemStore>, Vec<Pfv>) {
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, TreeConfig::new(2).with_capacities(5, 4)).unwrap();
        let mut db = Vec::new();
        for i in 0..n {
            let v = Pfv::new(
                vec![
                    (i as f64 * 0.71).sin() * 10.0,
                    (i as f64 * 0.37).cos() * 10.0,
                ],
                vec![0.1 + (i % 4) as f64 * 0.2, 0.15],
            )
            .unwrap();
            tree.insert(i, &v).unwrap();
            db.push(v);
        }
        (tree, db)
    }

    #[test]
    fn cursor_yields_full_ranking_in_order() {
        let (tree, db) = build(120);
        let q = Pfv::new(vec![2.0, -1.0], vec![0.3, 0.3]).unwrap();
        let mut cursor = tree.ranking_cursor(&q).unwrap();
        let mut got = Vec::new();
        while let Some(hit) = cursor.next_hit().unwrap() {
            got.push(hit);
        }
        assert_eq!(got.len(), 120);
        // Non-increasing densities.
        for w in got.windows(2) {
            assert!(w[0].log_density >= w[1].log_density - 1e-12);
        }
        // Matches brute force exactly.
        let mut want: Vec<f64> = db
            .iter()
            .map(|v| combine::log_joint(CombineMode::Convolution, v, &q))
            .collect();
        want.sort_by(|a, b| b.total_cmp(a));
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.log_density - w).abs() < 1e-9);
        }
    }

    #[test]
    fn cursor_prefix_equals_k_mliq() {
        let (tree, _) = build(200);
        let q = Pfv::new(vec![0.0, 5.0], vec![0.2, 0.4]).unwrap();
        let fixed = tree.k_mliq(&q, 7).unwrap();
        let mut cursor = tree.ranking_cursor(&q).unwrap();
        for want in &fixed {
            let got = cursor.next_hit().unwrap().unwrap();
            assert!((got.log_density - want.log_density).abs() < 1e-12);
        }
        assert_eq!(cursor.emitted(), 7);
    }

    #[test]
    fn lazy_cursor_reads_fewer_pages_than_full_ranking() {
        let (tree, _) = build(2000);
        let q = Pfv::new(vec![2.0, -1.0], vec![0.05, 0.05]).unwrap();
        tree.cold_start();
        {
            let mut cursor = tree.ranking_cursor(&q).unwrap();
            let _ = cursor.next_hit().unwrap().unwrap();
        }
        let lazy = tree.stats().snapshot().physical_reads;
        let total = tree.pool().num_pages();
        assert!(
            lazy * 3 < total,
            "first hit read {lazy} of {total} pages — not lazy"
        );
    }

    #[test]
    fn take_while_cumulative_probability() {
        let (tree, db) = build(50);
        let q = Pfv::new(db[13].means().to_vec(), vec![0.1, 0.1]).unwrap();
        // First collect the denominator for normalisation.
        let posteriors = pfv::posteriors(CombineMode::Convolution, &db, &q);
        let denom: f64 =
            pfv::log_sum_exp(&posteriors.iter().map(|p| p.log_density).collect::<Vec<_>>());
        let mut cum = 0.0;
        let mut cursor = tree.ranking_cursor(&q).unwrap();
        let hits = cursor
            .take_while(|h| {
                cum += (h.log_density - denom).exp();
                cum < 0.99
            })
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.len() < 50, "0.99 mass should need few objects");
        assert_eq!(hits[0].id, 13);
    }

    #[test]
    fn empty_tree_cursor() {
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        let tree = GaussTree::create(pool, TreeConfig::new(2).with_capacities(4, 3)).unwrap();
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        let mut cursor = tree.ranking_cursor(&q).unwrap();
        assert!(cursor.next_hit().unwrap().is_none());
    }
}
