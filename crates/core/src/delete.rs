//! Deletion (extension — the paper does not describe one).
//!
//! Standard R-tree deletion adapted to the parameter space: descend into
//! every subtree whose rectangle contains the deleted pfv's parameters,
//! remove the entry from its leaf, and handle underflow by dissolving the
//! underfull node and re-inserting its orphaned entries (Guttman's
//! `CondenseTree`). The root collapses when it has a single child.

use crate::node::{LeafEntry, Node};
use crate::tree::{GaussTree, TreeError};
use gauss_storage::store::PageStore;
use gauss_storage::PageId;
use pfv::Pfv;

/// Result of a delete call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// The entry was found and removed.
    Deleted,
    /// No entry with this id and parameter vector exists.
    NotFound,
}

enum Removal {
    NotFound,
    /// Entry removed; node rewritten (possibly relocated by shadow
    /// paging — `page` is where it lives now).
    Done {
        underflow: bool,
        page: PageId,
    },
}

impl<S: PageStore> GaussTree<S> {
    /// Removes the entry with external id `id` and parameters `v`.
    ///
    /// Both the id and the pfv are required, like in classic R-tree
    /// deletion: the pfv guides the descent (only subtrees whose rectangle
    /// contains the parameters can hold the entry), the id disambiguates.
    ///
    /// # Errors
    /// Dimensionality mismatch or storage errors.
    pub fn delete(&mut self, id: u64, v: &Pfv) -> Result<DeleteOutcome, TreeError> {
        if v.dims() != self.dims() {
            return Err(TreeError::DimMismatch {
                expected: self.dims(),
                got: v.dims(),
            });
        }
        if self.is_empty() {
            return Ok(DeleteOutcome::NotFound);
        }
        let mut orphans: Vec<LeafEntry> = Vec::new();
        let root = self.root_page();
        let height = self.height();
        match self.delete_rec(root, height, id, v, &mut orphans)? {
            Removal::NotFound => return Ok(DeleteOutcome::NotFound),
            // Shadow paging may have relocated the root.
            Removal::Done { page, .. } => self.set_root(page, height),
        }
        self.set_len(self.len() - 1);

        // Root adjustments: collapse an inner root with a single child
        // (the abandoned root page goes back to the free list).
        loop {
            let root = self.root_page();
            match self.read_node(root)? {
                Node::Inner(es) if es.len() == 1 => {
                    let only = es[0].child;
                    self.set_root(only, self.height() - 1);
                    self.free_page(root)?;
                }
                _ => break,
            }
        }

        // Re-insert orphans from dissolved nodes.
        let mut reinserted = 0u64;
        for e in orphans {
            self.insert(e.id, &e.pfv)?;
            reinserted += 1;
        }
        // insert() bumped len for each orphan; undo the double count.
        self.set_len(self.len() - reinserted);
        Ok(DeleteOutcome::Deleted)
    }

    fn delete_rec(
        &mut self,
        page: PageId,
        level: u32,
        id: u64,
        v: &Pfv,
        orphans: &mut Vec<LeafEntry>,
    ) -> Result<Removal, TreeError> {
        let node = self.read_node(page)?;
        if level == 0 {
            let Node::Leaf(mut entries) = node else {
                return Err(TreeError::Corrupt("expected leaf at level 0"));
            };
            let Some(pos) = entries.iter().position(|e| e.id == id && &e.pfv == v) else {
                return Ok(Removal::NotFound);
            };
            entries.remove(pos);
            let underflow = entries.len() < self.leaf_min_fill();
            let page = self.write_node_shadow(page, &Node::Leaf(entries))?;
            Ok(Removal::Done { underflow, page })
        } else {
            let Node::Inner(mut entries) = node else {
                return Err(TreeError::Corrupt("expected inner node above level 0"));
            };
            // Try every child whose rectangle contains the parameters.
            let candidates: Vec<usize> = (0..entries.len())
                .filter(|&i| entries[i].rect.contains_pfv(v))
                .collect();
            for idx in candidates {
                let child = entries[idx].child;
                match self.delete_rec(child, level - 1, id, v, orphans)? {
                    Removal::NotFound => continue,
                    Removal::Done {
                        underflow,
                        page: child_page,
                    } => {
                        if underflow && entries.len() > 1 {
                            // Dissolve the child: collect every entry below
                            // it for re-insertion, free the branch's pages
                            // and drop it from the parent.
                            self.collect_subtree(child_page, level - 1, orphans)?;
                            entries.remove(idx);
                        } else {
                            // Refresh rect and count from the child.
                            let child_node = self.read_node(child_page)?;
                            if child_node.is_empty() {
                                entries.remove(idx);
                                self.free_page(child_page)?;
                            } else {
                                entries[idx].child = child_page;
                                entries[idx].rect = child_node.bounding_rect();
                                entries[idx].count = child_node.subtree_count();
                            }
                        }
                        let underflow = entries.len() < self.inner_min_fill();
                        let page = self.write_node_shadow(page, &Node::Inner(entries))?;
                        return Ok(Removal::Done { underflow, page });
                    }
                }
            }
            Ok(Removal::NotFound)
        }
    }

    /// Gathers every leaf entry below `page` into `out` (for orphan
    /// re-insertion after a node is dissolved) and frees the dissolved
    /// pages so later allocations reuse them instead of leaking them.
    fn collect_subtree(
        &mut self,
        page: PageId,
        level: u32,
        out: &mut Vec<LeafEntry>,
    ) -> Result<(), TreeError> {
        match self.read_node(page)? {
            Node::Leaf(es) => out.extend(es),
            Node::Inner(es) => {
                if level == 0 {
                    return Err(TreeError::Corrupt("inner node at leaf level"));
                }
                for e in es {
                    self.collect_subtree(e.child, level - 1, out)?;
                }
            }
        }
        self.free_page(page)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::view::ReadView;
    use gauss_storage::{AccessStats, BufferPool, MemStore};
    use pfv::CombineMode;

    fn pfv2(a: f64, b: f64) -> Pfv {
        Pfv::new(vec![a, b], vec![0.1 + (a.abs() % 0.5), 0.2]).unwrap()
    }

    fn build(n: u64) -> (GaussTree<MemStore>, Vec<(u64, Pfv)>) {
        let items: Vec<(u64, Pfv)> = (0..n)
            .map(|i| {
                (
                    i,
                    pfv2(
                        (i as f64 * 0.61).sin() * 20.0,
                        (i as f64 * 0.23).cos() * 20.0,
                    ),
                )
            })
            .collect();
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, TreeConfig::new(2).with_capacities(6, 4)).unwrap();
        for (id, v) in &items {
            tree.insert(*id, v).unwrap();
        }
        (tree, items)
    }

    #[test]
    fn delete_removes_exactly_one_entry() {
        let (mut tree, items) = build(50);
        assert_eq!(tree.delete(7, &items[7].1).unwrap(), DeleteOutcome::Deleted);
        assert_eq!(tree.len(), 49);
        let mut ids = Vec::new();
        tree.for_each_entry(|id, _| ids.push(id)).unwrap();
        ids.sort_unstable();
        assert!(!ids.contains(&7));
        assert_eq!(ids.len(), 49);
    }

    #[test]
    fn delete_missing_returns_not_found() {
        let (mut tree, items) = build(20);
        // Right pfv, wrong id.
        assert_eq!(
            tree.delete(999, &items[3].1).unwrap(),
            DeleteOutcome::NotFound
        );
        // Right id, wrong pfv.
        let other = pfv2(123.0, -55.0);
        assert_eq!(tree.delete(3, &other).unwrap(), DeleteOutcome::NotFound);
        assert_eq!(tree.len(), 20);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let (mut tree, items) = build(60);
        for (id, v) in &items {
            assert_eq!(tree.delete(*id, v).unwrap(), DeleteOutcome::Deleted);
        }
        assert!(tree.is_empty());
        let mut n = 0;
        tree.for_each_entry(|_, _| n += 1).unwrap();
        assert_eq!(n, 0);
        // The tree must be fully usable again.
        for (id, v) in &items {
            tree.insert(*id, v).unwrap();
        }
        assert_eq!(tree.len(), 60);
        let errs = tree.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn invariants_hold_under_interleaved_insert_delete() {
        let (mut tree, items) = build(120);
        // Delete every third entry.
        for (id, v) in items.iter().filter(|(id, _)| id % 3 == 0) {
            tree.delete(*id, v).unwrap();
        }
        let errs = tree.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations after deletes: {errs:?}");

        // Queries agree with a brute-force over the survivors.
        let survivors: Vec<Pfv> = items
            .iter()
            .filter(|(id, _)| id % 3 != 0)
            .map(|(_, v)| v.clone())
            .collect();
        let q = Pfv::new(vec![5.0, -3.0], vec![0.3, 0.3]).unwrap();
        let got = tree.k_mliq(&q, 5).unwrap();
        let mut want: Vec<f64> = survivors
            .iter()
            .map(|v| pfv::combine::log_joint(CombineMode::Convolution, v, &q))
            .collect();
        want.sort_by(|a, b| b.total_cmp(a));
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.log_density - w).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_parameter_vectors_disambiguated_by_id() {
        let pool = BufferPool::new(MemStore::new(8192), 256, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, TreeConfig::new(2).with_capacities(4, 3)).unwrap();
        let v = pfv2(1.0, 2.0);
        for id in 0..10u64 {
            tree.insert(id, &v).unwrap();
        }
        assert_eq!(tree.delete(4, &v).unwrap(), DeleteOutcome::Deleted);
        let mut ids = Vec::new();
        tree.for_each_entry(|id, _| ids.push(id)).unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn root_collapses_after_mass_deletion() {
        let (mut tree, items) = build(200);
        let initial_height = tree.height();
        assert!(initial_height >= 2);
        for (id, v) in items.iter().take(195) {
            tree.delete(*id, v).unwrap();
        }
        assert_eq!(tree.len(), 5);
        assert!(
            tree.height() < initial_height,
            "height should shrink: {} -> {}",
            initial_height,
            tree.height()
        );
        let errs = tree.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "{errs:?}");
    }
}
