//! Multi-threaded batch-query execution over one shared read view — a
//! [`GaussTree`](crate::tree::GaussTree) or a pinned
//! [`Snapshot`](crate::tree::Snapshot).
//!
//! The storage layer's [`gauss_storage::SharedBufferPool`] makes every
//! read-only tree operation `&self`, so a batch of queries can fan out
//! across [`std::thread::scope`] workers over a *single* tree instance —
//! no cloning, no per-thread pools, one shared cache and one shared set of
//! access counters.
//!
//! Work distribution is a simple atomic work-stealing counter: each worker
//! claims the next unprocessed query index until the batch is drained, so
//! skewed per-query costs (a diffuse TIQ next to a peaked 1-MLIQ) cannot
//! idle a thread. Results are returned **in input order** regardless of
//! which worker answered which query, and every individual query computes
//! exactly what its serial counterpart would — the executor adds
//! parallelism, not approximation.
//!
//! Each worker's refinement loop runs the columnar leaf path: visited
//! leaves come from the tree's shared decoded-node cache and are evaluated
//! with the batched Lemma-1 kernel ([`pfv::batch::log_densities`]), so the
//! threads share one set of columnar leaves instead of re-decoding pages,
//! and results stay bit-identical to the scalar serial path
//! (`tests/concurrency.rs` pins this down).
//!
//! ```
//! use gauss_storage::{AccessStats, BufferPool, MemStore};
//! use gauss_tree::{BatchExecutor, GaussTree, TreeConfig};
//! use pfv::Pfv;
//!
//! let pool = BufferPool::new(MemStore::new(4096), 64, AccessStats::new_shared());
//! let mut tree = GaussTree::create(pool, TreeConfig::new(1)).unwrap();
//! for i in 0..100u64 {
//!     tree.insert(i, &Pfv::new(vec![i as f64], vec![0.2]).unwrap()).unwrap();
//! }
//! let queries: Vec<Pfv> = (0..8)
//!     .map(|i| Pfv::new(vec![i as f64 * 10.0], vec![0.3]).unwrap())
//!     .collect();
//! let results = BatchExecutor::new(&tree, 4).k_mliq(&queries, 3).unwrap();
//! assert_eq!(results.len(), queries.len()); // in input order
//! ```

use crate::query::{MliqResult, RefinedResult, TiqResult};
use crate::tree::TreeError;
use crate::view::ReadView;
use gauss_storage::store::PageStore;
use gauss_storage::sync::{LockRank, TrackedMutex};
use pfv::Pfv;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Fans batches of queries across worker threads over one shared view —
/// either a [`GaussTree`](crate::tree::GaussTree) borrowed shared or a
/// pinned [`Snapshot`](crate::tree::Snapshot).
///
/// Created by [`BatchExecutor::new`] or [`ReadView::batch`].
#[derive(Debug)]
pub struct BatchExecutor<'t, S: PageStore, V: ReadView<S>> {
    view: &'t V,
    threads: usize,
    _store: PhantomData<fn() -> S>,
}

impl<'t, S: PageStore + Send, V: ReadView<S> + Sync> BatchExecutor<'t, S, V> {
    /// Creates an executor running `threads` workers (clamped to ≥ 1; a
    /// single worker degenerates to an in-place serial loop).
    #[must_use]
    pub fn new(view: &'t V, threads: usize) -> Self {
        Self {
            view,
            threads: threads.max(1),
            _store: PhantomData,
        }
    }

    /// Number of worker threads this executor uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Batch [`ReadView::k_mliq`]: one result vector per query, in input
    /// order.
    ///
    /// # Errors
    /// The first error any worker hits (remaining work is abandoned).
    pub fn k_mliq(&self, queries: &[Pfv], k: usize) -> Result<Vec<Vec<MliqResult>>, TreeError> {
        self.run(queries, |q| self.view.k_mliq(q, k))
    }

    /// Batch [`ReadView::k_mliq_refined`].
    ///
    /// # Errors
    /// The first error any worker hits.
    ///
    /// # Panics
    /// Panics if `accuracy <= 0`.
    pub fn k_mliq_refined(
        &self,
        queries: &[Pfv],
        k: usize,
        accuracy: f64,
    ) -> Result<Vec<Vec<RefinedResult>>, TreeError> {
        self.run(queries, |q| self.view.k_mliq_refined(q, k, accuracy))
    }

    /// Batch [`ReadView::tiq`].
    ///
    /// # Errors
    /// The first error any worker hits.
    ///
    /// # Panics
    /// Panics unless `0 < p_theta <= 1` and `accuracy > 0`.
    pub fn tiq(
        &self,
        queries: &[Pfv],
        p_theta: f64,
        accuracy: f64,
    ) -> Result<Vec<Vec<TiqResult>>, TreeError> {
        self.run(queries, |q| self.view.tiq(q, p_theta, accuracy))
    }

    /// Batch [`ReadView::tiq_anytime`].
    ///
    /// # Errors
    /// The first error any worker hits.
    ///
    /// # Panics
    /// Panics unless `0 < p_theta <= 1`.
    pub fn tiq_anytime(
        &self,
        queries: &[Pfv],
        p_theta: f64,
    ) -> Result<Vec<Vec<TiqResult>>, TreeError> {
        self.run(queries, |q| self.view.tiq_anytime(q, p_theta))
    }

    /// Runs `f` over every query, claiming indices from a shared atomic
    /// counter, and reassembles results in input order.
    fn run<R: Send>(
        &self,
        queries: &[Pfv],
        f: impl Fn(&Pfv) -> Result<R, TreeError> + Sync,
    ) -> Result<Vec<R>, TreeError> {
        let workers = self.threads.min(queries.len());
        if workers <= 1 {
            return queries.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        // Both executor locks sit at the innermost rank: a worker only
        // touches them after its query (and thus every storage lock it
        // took) is finished, and never holds one while taking the other.
        let first_error: TrackedMutex<Option<TreeError>> =
            TrackedMutex::new(None, LockRank::ResultSlot, 0, "executor-error");
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let slots_mutex = TrackedMutex::new(slots, LockRank::ResultSlot, 1, "executor-slots");

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Answer locally, publish in one batch at the end, so the
                    // slots mutex is touched once per worker, not per query.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        match f(&queries[i]) {
                            Ok(r) => local.push((i, r)),
                            Err(e) => {
                                failed.store(true, Ordering::Relaxed);
                                let mut slot = first_error.lock();
                                slot.get_or_insert(e);
                                break;
                            }
                        }
                    }
                    let mut slots = slots_mutex.lock();
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                });
            }
        });

        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        Ok(slots_mutex
            .into_inner()
            .into_iter()
            // lint: allow(no-panic) -- every index below `next` was claimed by exactly one joined worker, which either filled the slot or set first_error (returned above)
            .map(|r| r.expect("every claimed index produced a result"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::tree::GaussTree;
    use gauss_storage::{AccessStats, BufferPool, MemStore};

    fn build(n: u64) -> GaussTree<MemStore> {
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, TreeConfig::new(2).with_capacities(6, 4)).unwrap();
        for i in 0..n {
            let v = Pfv::new(
                vec![
                    (i as f64 * 0.71).sin() * 10.0,
                    (i as f64 * 0.37).cos() * 10.0,
                ],
                vec![0.1 + (i % 4) as f64 * 0.2, 0.15],
            )
            .unwrap();
            tree.insert(i, &v).unwrap();
        }
        tree
    }

    fn queries(n: usize) -> Vec<Pfv> {
        (0..n)
            .map(|i| {
                Pfv::new(
                    vec![(i as f64 * 1.3).sin() * 10.0, (i as f64 * 0.9).cos() * 10.0],
                    vec![0.2, 0.3],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn results_are_in_input_order_and_match_serial() {
        let tree = build(400);
        let qs = queries(40);
        let serial: Vec<_> = qs.iter().map(|q| tree.k_mliq(q, 5).unwrap()).collect();
        for threads in [1, 2, 4, 8] {
            let par = tree.batch(threads).k_mliq(&qs, 5).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn refined_and_tiq_batches_match_serial() {
        let tree = build(300);
        let qs = queries(24);
        let refined_serial: Vec<_> = qs
            .iter()
            .map(|q| tree.k_mliq_refined(q, 3, 1e-6).unwrap())
            .collect();
        assert_eq!(
            tree.batch(4).k_mliq_refined(&qs, 3, 1e-6).unwrap(),
            refined_serial
        );
        let tiq_serial: Vec<_> = qs.iter().map(|q| tree.tiq(q, 0.1, 1e-6).unwrap()).collect();
        assert_eq!(tree.batch(4).tiq(&qs, 0.1, 1e-6).unwrap(), tiq_serial);
    }

    #[test]
    fn errors_propagate() {
        let tree = build(50);
        let mut qs = queries(10);
        qs.push(Pfv::new(vec![0.0], vec![0.1]).unwrap()); // wrong dims
        let err = tree.batch(4).k_mliq(&qs, 1).unwrap_err();
        assert!(matches!(err, TreeError::DimMismatch { .. }));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let tree = build(20);
        let exec = tree.batch(0);
        assert_eq!(exec.threads(), 1);
        assert_eq!(exec.k_mliq(&queries(3), 2).unwrap().len(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let tree = build(20);
        assert!(tree.batch(4).k_mliq(&[], 2).unwrap().is_empty());
    }
}
