//! The forest manifest: an epoch-tagged component list committed through
//! the same dual-slot checksummed protocol the single tree uses for its
//! meta pages.
//!
//! Two fixed slots alternate by epoch parity. A commit writes the slot
//! `epoch % 2` *after* a data barrier on every component's pages, so a
//! crash at any point leaves at least one slot describing a fully
//! durable forest. On open both slots are parsed and the valid one with
//! the higher epoch wins — exactly the recovery rule of
//! [`crate::GaussTree`]'s meta slots, lifted from pages inside one file
//! to files inside one directory.

use crate::config::{LeafFormat, SplitStrategy, TreeConfig};
use gauss_storage::{fnv1a64, Reader, Writer};
use pfv::CombineMode;

/// Magic number identifying a forest manifest slot ("GFor").
const MANIFEST_MAGIC: u32 = 0x4746_6F72;
/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;
/// Byte offset of the checksum field (after magic + version).
const CHECKSUM_OFFSET: usize = 8;

/// One immutable component as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ManifestComponent {
    /// Backend component id (names the underlying store).
    pub id: u64,
    /// LSM level; level `l + 1` components are merge products of level
    /// `l` runs and therefore older and larger.
    pub level: u32,
    /// Number of entries stored in the component's tree.
    pub len: u64,
    /// Ids whose deletion this component records: they shadow any entry
    /// with the same id in an *older* component.
    pub tombstones: Vec<u64>,
}

/// The decoded manifest: forest-wide config plus the component list in
/// newest-first order.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ForestManifest {
    /// Commit epoch; strictly increasing, the higher valid slot wins.
    pub epoch: u64,
    /// Tree configuration shared by every component.
    pub config: TreeConfig,
    /// Memtable flush threshold (records, including tombstones).
    pub memtable_capacity: u64,
    /// Components per level that trigger a merge in `maintain`.
    pub merge_factor: u32,
    /// Next component id the forest will allocate.
    pub next_component_id: u64,
    /// Components, newest first.
    pub components: Vec<ManifestComponent>,
}

impl ForestManifest {
    /// Serialises the manifest with its checksum patched in.
    pub fn encode(&self) -> Vec<u8> {
        let fixed = 4 + 4 + 8 + 8 + 4 + 4 + 8 + 4 + 8 + 4;
        let per_comp: usize = self
            .components
            .iter()
            .map(|c| 8 + 4 + 8 + 4 + 8 * c.tombstones.len())
            .sum();
        let mut buf = vec![0u8; fixed + per_comp];
        let mut w = Writer::new(&mut buf);
        w.put_u32(MANIFEST_MAGIC);
        w.put_u32(MANIFEST_VERSION);
        w.put_u64(0); // checksum, patched below
        w.put_u64(self.epoch);
        w.put_u32(u32::try_from(self.config.dims).unwrap_or(u32::MAX));
        w.put_u8(match self.config.combine {
            CombineMode::Convolution => 0,
            CombineMode::AdditiveSigma => 1,
        });
        w.put_u8(self.config.split.to_tag());
        w.put_u8(self.config.leaf_format.to_tag());
        w.put_u8(0); // reserved
        w.put_u64(self.memtable_capacity);
        w.put_u32(self.merge_factor);
        w.put_u64(self.next_component_id);
        w.put_u32(u32::try_from(self.components.len()).unwrap_or(u32::MAX));
        for c in &self.components {
            w.put_u64(c.id);
            w.put_u32(c.level);
            w.put_u64(c.len);
            w.put_u32(u32::try_from(c.tombstones.len()).unwrap_or(u32::MAX));
            for t in &c.tombstones {
                w.put_u64(*t);
            }
        }
        debug_assert_eq!(w.remaining(), 0, "manifest size mis-computed");
        let sum = fnv1a64(&buf);
        buf[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Parses one slot image. Any validation failure — bad magic,
    /// version, checksum, or tag — returns `None` so the caller can
    /// fall back to the other slot.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.get_u32().ok()? != MANIFEST_MAGIC || r.get_u32().ok()? != MANIFEST_VERSION {
            return None;
        }
        let stored_sum = r.get_u64().ok()?;
        let mut image = bytes.to_vec();
        image[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
        if fnv1a64(&image) != stored_sum {
            return None;
        }
        let epoch = r.get_u64().ok()?;
        let dims = r.get_u32().ok()? as usize;
        let combine = match r.get_u8().ok()? {
            0 => CombineMode::Convolution,
            1 => CombineMode::AdditiveSigma,
            _ => return None,
        };
        let split = SplitStrategy::from_tag(r.get_u8().ok()?)?;
        let leaf_format = LeafFormat::from_tag(r.get_u8().ok()?)?;
        let _reserved = r.get_u8().ok()?;
        let memtable_capacity = r.get_u64().ok()?;
        let merge_factor = r.get_u32().ok()?;
        let next_component_id = r.get_u64().ok()?;
        let n_comps = r.get_u32().ok()? as usize;
        if epoch == 0 || dims == 0 || merge_factor < 2 {
            return None;
        }
        let mut components = Vec::with_capacity(n_comps.min(1024));
        for _ in 0..n_comps {
            let id = r.get_u64().ok()?;
            let level = r.get_u32().ok()?;
            let len = r.get_u64().ok()?;
            let n_tombs = r.get_u32().ok()? as usize;
            let mut tombstones = Vec::with_capacity(n_tombs.min(1024));
            for _ in 0..n_tombs {
                tombstones.push(r.get_u64().ok()?);
            }
            if id >= next_component_id {
                return None;
            }
            components.push(ManifestComponent {
                id,
                level,
                len,
                tombstones,
            });
        }
        // Newest-first means levels never decrease down the list.
        if components.windows(2).any(|w| w[0].level > w[1].level) {
            return None;
        }
        let config = TreeConfig::new(dims)
            .with_combine(combine)
            .with_split(split)
            .with_leaf_format(leaf_format);
        Some(Self {
            epoch,
            config,
            memtable_capacity,
            merge_factor,
            next_component_id,
            components,
        })
    }

    /// Picks the winning manifest from the two slot images: valid slots
    /// only, higher epoch wins.
    pub fn choose(slots: [Option<&[u8]>; 2]) -> Option<Self> {
        let mut best: Option<Self> = None;
        for bytes in slots.into_iter().flatten() {
            if let Some(m) = Self::decode(bytes) {
                if best.as_ref().is_none_or(|b| m.epoch > b.epoch) {
                    best = Some(m);
                }
            }
        }
        best
    }

    /// The slot index the *next* commit of `epoch` writes to.
    pub fn slot_for(epoch: u64) -> usize {
        (epoch % 2) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ForestManifest {
        ForestManifest {
            epoch: 7,
            config: TreeConfig::new(3)
                .with_combine(CombineMode::AdditiveSigma)
                .with_leaf_format(LeafFormat::Quantised),
            memtable_capacity: 512,
            merge_factor: 2,
            next_component_id: 5,
            components: vec![
                ManifestComponent {
                    id: 4,
                    level: 0,
                    len: 512,
                    tombstones: vec![9, 11],
                },
                ManifestComponent {
                    id: 3,
                    level: 1,
                    len: 1024,
                    tombstones: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.encode();
        let back = ForestManifest::decode(&bytes).expect("decodes");
        assert_eq!(back, m);
    }

    #[test]
    fn corruption_rejected() {
        let m = sample();
        let bytes = m.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let got = ForestManifest::decode(&bad);
            assert!(
                got.is_none() || got == Some(m.clone()),
                "flipped byte {i} produced a different valid manifest"
            );
        }
        assert!(ForestManifest::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(ForestManifest::decode(&[]).is_none());
    }

    #[test]
    fn choose_prefers_higher_epoch() {
        let mut a = sample();
        let mut b = sample();
        a.epoch = 3;
        b.epoch = 4;
        let (ea, eb) = (a.encode(), b.encode());
        let got = ForestManifest::choose([Some(&ea), Some(&eb)]).expect("one wins");
        assert_eq!(got.epoch, 4);
        let got = ForestManifest::choose([Some(&ea), None]).expect("one valid");
        assert_eq!(got.epoch, 3);
        assert!(ForestManifest::choose([None, None]).is_none());
        // A corrupt higher slot must lose to a valid lower one.
        let mut bad = eb.clone();
        bad[20] ^= 1;
        let got = ForestManifest::choose([Some(&ea), Some(&bad)]).expect("valid slot wins");
        assert_eq!(got.epoch, 3);
    }

    #[test]
    fn order_violations_rejected() {
        let mut m = sample();
        m.components.swap(0, 1); // level 1 before level 0
        assert!(ForestManifest::decode(&m.encode()).is_none());
        let mut m = sample();
        m.components[0].id = 99; // >= next_component_id
        assert!(ForestManifest::decode(&m.encode()).is_none());
    }
}
