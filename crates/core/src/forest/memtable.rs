//! The forest's in-memory write buffer.
//!
//! A sorted map from object id to the *latest* mutation: `Some(pfv)` for
//! an upsert, `None` for a tombstone. Values are quantised at insert
//! time (when the forest's leaf format calls for it), so the density a
//! memtable entry contributes to a query is bit-identical to what the
//! same entry contributes after it is flushed into a component tree.

use pfv::Pfv;
use std::collections::BTreeMap;

/// Latest per-id mutation buffered in memory. `None` is a tombstone.
#[derive(Debug, Clone, Default)]
pub(crate) struct Memtable {
    records: BTreeMap<u64, Option<Pfv>>,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered records, tombstones included — this is what
    /// the flush threshold compares against.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records a mutation, returning the previous one for the same id.
    pub fn put(&mut self, id: u64, value: Option<Pfv>) -> Option<Option<Pfv>> {
        self.records.insert(id, value)
    }

    /// The buffered mutation for `id`: `None` (nothing buffered),
    /// `Some(None)` (tombstone) or `Some(Some(_))` (live value).
    pub fn get(&self, id: u64) -> Option<&Option<Pfv>> {
        self.records.get(&id)
    }

    /// Live entries in ascending id order — the flush input.
    pub fn live_entries(&self) -> Vec<(u64, Pfv)> {
        self.records
            .iter()
            .filter_map(|(id, v)| v.as_ref().map(|p| (*id, p.clone())))
            .collect()
    }

    /// Ids with a buffered tombstone, ascending.
    pub fn tombstones(&self) -> Vec<u64> {
        self.records
            .iter()
            .filter_map(|(id, v)| v.is_none().then_some(*id))
            .collect()
    }

    /// All buffered ids (live and tombstoned), ascending.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.records.keys().copied()
    }

    /// Drops every buffered record, e.g. after a flush.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(mu: f64) -> Pfv {
        Pfv::new(vec![mu], vec![1.0]).unwrap()
    }

    #[test]
    fn latest_mutation_wins() {
        let mut m = Memtable::new();
        assert!(m.is_empty());
        m.put(1, Some(v(1.0)));
        m.put(2, None);
        m.put(1, None);
        m.put(3, Some(v(3.0)));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(1), Some(&None));
        assert!(m.get(9).is_none());
        assert_eq!(m.live_entries().len(), 1);
        assert_eq!(m.live_entries()[0].0, 3);
        assert_eq!(m.tombstones(), vec![1, 2]);
        assert_eq!(m.ids().collect::<Vec<_>>(), vec![1, 2, 3]);
        m.clear();
        assert!(m.is_empty());
    }
}
