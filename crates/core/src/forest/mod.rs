//! The Gauss-forest: an LSM-style write-optimized store of Gauss-trees.
//!
//! The paper's Gauss-tree is bulk-built and read-optimized; per-object
//! inserts pay a full descent plus shadow page writes each, so sustained
//! ingest can never approach the bulk loader's throughput. The forest
//! closes that gap the way LSM-trees (O'Neil et al.) and bkd-style
//! stores layer writes over a static spatial index:
//!
//! * **Memtable** — an in-memory buffer absorbs [`GaussForest::insert`]
//!   and [`GaussForest::delete`] (deletes as tombstones). Values are
//!   quantised on entry when the leaf format calls for it, so memtable
//!   densities match post-flush densities bit for bit.
//! * **Flush** — at [`ForestOptions::memtable_capacity`] records the
//!   buffer is bulk-loaded (through the parallel pipeline of
//!   [`crate::bulk`]) into a fresh *immutable* level-0 component tree.
//! * **Merge** — [`GaussForest::maintain`] merges every level holding at
//!   least [`ForestOptions::merge_factor`] components into one component
//!   a level deeper, rewriting the union newest-wins and compacting
//!   tombstones away; with the default factor 2 component sizes double
//!   per level, bounding both component count and write amplification.
//! * **Manifest** — the component list is committed through dual
//!   checksummed slots with a data barrier first (the single tree's meta
//!   protocol lifted to the directory level), so a crash at any point
//!   recovers to the last committed forest.
//!
//! Newer data shadows older: a component's entry or tombstone for id `x`
//! hides any entry for `x` in an older component, and the memtable hides
//! everything. Queries run on [`ForestSnapshot`]s — epoch-pinned views
//! implementing [`crate::ReadView`] that fan k-MLIQ/TIQ out across the
//! memtable and every component, merge candidate sets through one shared
//! heap and aggregate the Bayes denominator from per-component partial
//! sums. k-MLIQ, ranking and box-query answers are **bit-identical** to
//! a single Gauss-tree holding the same live set (see `ForestPlane` in
//! the private `query` module).

pub(crate) mod manifest;
pub(crate) mod memtable;
pub(crate) mod query;

use crate::bulk::BulkLoadOptions;
use crate::config::TreeConfig;
use crate::tree::{GaussTree, Snapshot, TreeError, TreeOptions};
use crate::view::ReadView;
use gauss_storage::forest::ComponentStores;
use gauss_storage::store::{Durability, PageStore};
use gauss_storage::{AccessStats, BufferPool};
use manifest::{ForestManifest, ManifestComponent};
use memtable::Memtable;
use pfv::Pfv;
use std::collections::HashSet;
use std::sync::Arc;

/// Tuning knobs for a [`GaussForest`], builder-style like
/// [`TreeOptions`].
#[derive(Debug, Clone, Copy)]
pub struct ForestOptions {
    pub(crate) memtable_capacity: usize,
    pub(crate) merge_factor: usize,
    pub(crate) durability: Durability,
    pub(crate) pool_frames: usize,
    pub(crate) threads: usize,
}

impl Default for ForestOptions {
    fn default() -> Self {
        Self {
            memtable_capacity: 4096,
            merge_factor: 2,
            durability: Durability::None,
            pool_frames: 2048,
            threads: 1,
        }
    }
}

impl ForestOptions {
    /// The defaults, ready for builder-style overrides.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Memtable records (tombstones included) that trigger an automatic
    /// flush. Persisted in the manifest; ignored by `open`.
    #[must_use]
    pub fn memtable_capacity(mut self, records: usize) -> Self {
        self.memtable_capacity = records.max(1);
        self
    }

    /// Components per level that trigger a merge in
    /// [`GaussForest::maintain`] (≥ 2; 2 doubles sizes per level).
    /// Persisted in the manifest; ignored by `open`.
    #[must_use]
    pub fn merge_factor(mut self, factor: usize) -> Self {
        self.merge_factor = factor.max(2);
        self
    }

    /// Durability policy for component builds and manifest commits.
    #[must_use]
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Buffer-pool frames per component tree.
    #[must_use]
    pub fn pool_frames(mut self, frames: usize) -> Self {
        self.pool_frames = frames.max(8);
        self
    }

    /// Worker threads for flush/merge bulk builds.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// One immutable component: a bulk-built Gauss-tree plus the shadowing
/// metadata the forest keeps in memory.
struct Component<S: PageStore> {
    id: u64,
    level: u32,
    tree: GaussTree<S>,
    /// Ids stored in `tree` — shadow same-id entries in older components.
    ids: HashSet<u64>,
    /// Deleted ids this component records against older components.
    tombstones: HashSet<u64>,
}

/// Per-component statistics reported by [`GaussForest::component_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentInfo {
    /// Backend component id.
    pub id: u64,
    /// LSM level (0 = freshest flush).
    pub level: u32,
    /// Entries stored in the component's tree.
    pub len: u64,
    /// Tombstones the component carries.
    pub tombstones: usize,
}

/// What one [`GaussForest::maintain`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainReport {
    /// Level merges performed.
    pub merges: usize,
    /// Source components consumed by those merges.
    pub components_merged: usize,
    /// Entries rewritten into merged components.
    pub entries_rewritten: u64,
    /// Tombstones compacted away (shadowed, redundant or bottomed-out).
    pub tombstones_dropped: usize,
}

/// The write-optimized forest store. See the [module docs](self).
pub struct GaussForest<B: ComponentStores> {
    backend: B,
    config: TreeConfig,
    stats: Arc<AccessStats>,
    mem: Memtable,
    /// Immutable components, newest first; levels ascend down the list
    /// and equal levels are contiguous.
    comps: Vec<Component<B::Store>>,
    epoch: u64,
    next_component_id: u64,
    /// Live objects visible across memtable + components.
    live: u64,
    memtable_capacity: usize,
    merge_factor: usize,
    durability: Durability,
    pool_frames: usize,
    threads: usize,
}

impl<B: ComponentStores> GaussForest<B> {
    /// Creates an empty forest on `backend` and commits its first
    /// manifest (epoch 1).
    ///
    /// # Errors
    /// Fails if the backend already holds a valid forest manifest, or on
    /// store errors.
    pub fn create(backend: B, config: TreeConfig, opts: ForestOptions) -> Result<Self, TreeError> {
        for slot in 0..gauss_storage::MANIFEST_SLOTS {
            if let Some(bytes) = backend.read_manifest_slot(slot)? {
                if ForestManifest::decode(&bytes).is_some() {
                    return Err(TreeError::Corrupt("backend already holds a forest"));
                }
            }
        }
        // Stray components with no manifest are debris of an aborted
        // create; clear them so ids can be reused.
        for cid in backend.list_components()? {
            backend.remove_component(cid)?;
        }
        let mut forest = Self {
            backend,
            config,
            stats: AccessStats::new_shared(),
            mem: Memtable::new(),
            comps: Vec::new(),
            epoch: 0,
            next_component_id: 0,
            live: 0,
            memtable_capacity: opts.memtable_capacity,
            merge_factor: opts.merge_factor,
            durability: opts.durability,
            pool_frames: opts.pool_frames,
            threads: opts.threads,
        };
        forest.commit_manifest()?;
        Ok(forest)
    }

    /// Opens the forest committed on `backend`. Runtime knobs
    /// (durability, pool size, threads) come from `opts`; the persisted
    /// manifest supplies config, memtable capacity and merge factor.
    /// Components present on the backend but absent from the winning
    /// manifest — debris of a crashed flush or merge — are removed.
    ///
    /// # Errors
    /// [`TreeError::NotAGaussTree`] if neither manifest slot is valid;
    /// [`TreeError::Corrupt`] if a component disagrees with the
    /// manifest; store errors otherwise.
    pub fn open(backend: B, opts: ForestOptions) -> Result<Self, TreeError> {
        let slot0 = backend.read_manifest_slot(0)?;
        let slot1 = backend.read_manifest_slot(1)?;
        let m = ForestManifest::choose([slot0.as_deref(), slot1.as_deref()])
            .ok_or(TreeError::NotAGaussTree)?;
        let manifest_ids: HashSet<u64> = m.components.iter().map(|c| c.id).collect();
        for cid in backend.list_components()? {
            if !manifest_ids.contains(&cid) {
                backend.remove_component(cid)?;
            }
        }
        let stats = AccessStats::new_shared();
        let topts = TreeOptions::new().durability(opts.durability);
        let mut comps = Vec::with_capacity(m.components.len());
        for mc in &m.components {
            let store = backend.open_component(mc.id)?;
            let pool = BufferPool::new(store, opts.pool_frames, Arc::clone(&stats));
            let tree = GaussTree::open_with(pool, &topts)?;
            if tree.len() != mc.len || tree.config().dims != m.config.dims {
                return Err(TreeError::Corrupt("component disagrees with manifest"));
            }
            let mut ids = HashSet::with_capacity(mc.len as usize);
            tree.for_each_entry(|id, _| {
                ids.insert(id);
            })?;
            comps.push(Component {
                id: mc.id,
                level: mc.level,
                tree,
                ids,
                tombstones: mc.tombstones.iter().copied().collect(),
            });
        }
        let mut newer: HashSet<u64> = HashSet::new();
        let mut live = 0u64;
        for c in &comps {
            live += c.ids.iter().filter(|id| !newer.contains(id)).count() as u64;
            newer.extend(c.ids.iter().copied());
            newer.extend(c.tombstones.iter().copied());
        }
        Ok(Self {
            backend,
            config: m.config,
            stats,
            mem: Memtable::new(),
            comps,
            epoch: m.epoch,
            next_component_id: m.next_component_id,
            live,
            memtable_capacity: m.memtable_capacity as usize,
            merge_factor: m.merge_factor as usize,
            durability: opts.durability,
            pool_frames: opts.pool_frames,
            threads: opts.threads,
        })
    }

    /// Live objects visible in the forest.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// Whether no live objects are visible.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Manifest commit epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tree configuration shared by every component.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Records currently buffered in the memtable (tombstones included).
    pub fn memtable_len(&self) -> usize {
        self.mem.len()
    }

    /// Memtable records that trigger an automatic flush (from the
    /// manifest, not [`ForestOptions`], after an `open`).
    pub fn memtable_capacity(&self) -> usize {
        self.memtable_capacity
    }

    /// Components per level that trigger a merge in [`Self::maintain`].
    pub fn merge_factor(&self) -> usize {
        self.merge_factor
    }

    /// Shared I/O counters across every component pool.
    pub fn stats(&self) -> &Arc<AccessStats> {
        &self.stats
    }

    /// Per-component statistics, newest first.
    pub fn component_stats(&self) -> Vec<ComponentInfo> {
        self.comps
            .iter()
            .map(|c| ComponentInfo {
                id: c.id,
                level: c.level,
                len: c.tree.len(),
                tombstones: c.tombstones.len(),
            })
            .collect()
    }

    /// Whether `id` is live (memtable first, then components newest to
    /// oldest — the first entry or tombstone for `id` decides).
    pub fn contains(&self, id: u64) -> bool {
        match self.mem.get(id) {
            Some(Some(_)) => return true,
            Some(None) => return false,
            None => {}
        }
        for c in &self.comps {
            if c.ids.contains(&id) {
                return true;
            }
            if c.tombstones.contains(&id) {
                return false;
            }
        }
        false
    }

    /// Upserts one pfv. Quantises immediately under a quantised leaf
    /// format (so memtable and flushed densities agree bit for bit) and
    /// auto-flushes when the memtable reaches capacity.
    ///
    /// # Errors
    /// Dimensionality mismatch, quantisation range errors, or store
    /// errors from an auto-flush.
    pub fn insert(&mut self, id: u64, v: &Pfv) -> Result<(), TreeError> {
        if v.dims() != self.config.dims {
            return Err(TreeError::DimMismatch {
                expected: self.config.dims,
                got: v.dims(),
            });
        }
        let stored = match crate::tree::quantise_for(self.config.leaf_format, v)? {
            Some(q) => q,
            None => v.clone(),
        };
        if !self.contains(id) {
            self.live += 1;
        }
        self.mem.put(id, Some(stored));
        self.maybe_flush()
    }

    /// Deletes one object (a tombstone until merges compact it away).
    /// Returns whether the id was live.
    ///
    /// # Errors
    /// Store errors from an auto-flush.
    pub fn delete(&mut self, id: u64) -> Result<bool, TreeError> {
        let existed = self.contains(id);
        if existed {
            self.live -= 1;
        }
        self.mem.put(id, None);
        self.maybe_flush()?;
        Ok(existed)
    }

    fn maybe_flush(&mut self) -> Result<(), TreeError> {
        if self.mem.len() >= self.memtable_capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes the memtable into a new level-0 component and commits the
    /// manifest. Returns whether a component was produced (a memtable of
    /// nothing but no-op tombstones commits nothing).
    ///
    /// # Errors
    /// Store errors; on error the memtable is retained.
    pub fn flush(&mut self) -> Result<bool, TreeError> {
        if self.mem.is_empty() {
            return Ok(false);
        }
        let entries = self.mem.live_entries();
        // A tombstone must persist only while some older component still
        // stores the id; everything else it could shadow is gone.
        let tombstones: HashSet<u64> = self
            .mem
            .tombstones()
            .into_iter()
            .filter(|t| self.comps.iter().any(|c| c.ids.contains(t)))
            .collect();
        if entries.is_empty() && tombstones.is_empty() {
            self.mem.clear();
            return Ok(false);
        }
        let ids: HashSet<u64> = entries.iter().map(|(id, _)| *id).collect();
        let comp = self.build_component(0, entries, ids, tombstones)?;
        self.comps.insert(0, comp);
        match self.commit_manifest() {
            Ok(()) => {
                self.mem.clear();
                Ok(true)
            }
            Err(e) => {
                // Unlink the uncommitted component so the in-memory list
                // matches the durable manifest; its store becomes an
                // orphan that `open` cleans up.
                self.comps.remove(0);
                Err(e)
            }
        }
    }

    /// Merges every level holding at least `merge_factor` components,
    /// repeatedly, until no level is over-full. Each merge rewrites the
    /// union of its level (newest entry per id wins), drops tombstones
    /// that are redundant or have nothing older left to shadow, commits
    /// the manifest and only then removes the consumed component stores.
    ///
    /// # Errors
    /// Store errors; the committed forest is never left half-merged.
    pub fn maintain(&mut self) -> Result<MaintainReport, TreeError> {
        let mut report = MaintainReport::default();
        loop {
            let mut run: Option<(u32, usize, usize)> = None; // (level, start, count)
            for (i, c) in self.comps.iter().enumerate() {
                match &mut run {
                    Some((level, _, count)) if *level == c.level => *count += 1,
                    Some((_, _, count)) if *count >= self.merge_factor => break,
                    _ => run = Some((c.level, i, 1)),
                }
            }
            let Some((level, start, count)) = run.filter(|&(_, _, n)| n >= self.merge_factor)
            else {
                break;
            };
            self.merge_run(level, start, count, &mut report)?;
            report.merges += 1;
        }
        Ok(report)
    }

    fn merge_run(
        &mut self,
        level: u32,
        start: usize,
        count: usize,
        report: &mut MaintainReport,
    ) -> Result<(), TreeError> {
        let group: Vec<Component<B::Store>> = self.comps.drain(start..start + count).collect();
        // Newest-first shadowing inside the group: an id already claimed
        // (entry or tombstone) by a newer group member wins.
        let mut group_seen: HashSet<u64> = HashSet::new();
        let mut entries: Vec<(u64, Pfv)> = Vec::new();
        for c in &group {
            c.tree.for_each_entry(|id, v| {
                if !group_seen.contains(&id) {
                    entries.push((id, v.clone()));
                }
            })?;
            group_seen.extend(c.ids.iter().copied());
            group_seen.extend(c.tombstones.iter().copied());
        }
        entries.sort_by_key(|(id, _)| *id);
        let ids: HashSet<u64> = entries.iter().map(|(id, _)| *id).collect();
        let below = &self.comps[start..];
        let group_tombs: usize = group.iter().map(|c| c.tombstones.len()).sum();
        // Keep a tombstone only if it still shadows something: not
        // superseded by a kept entry, and present in some older
        // component. At the oldest level every tombstone bottoms out.
        let tombstones: HashSet<u64> = group
            .iter()
            .flat_map(|c| c.tombstones.iter().copied())
            .filter(|t| !ids.contains(t) && below.iter().any(|c| c.ids.contains(t)))
            .collect();
        report.components_merged += group.len();
        report.entries_rewritten += entries.len() as u64;
        report.tombstones_dropped += group_tombs - tombstones.len();
        if entries.is_empty() && tombstones.is_empty() {
            // The whole level cancelled out; commit its removal.
            self.commit_manifest()?;
        } else {
            let comp = self.build_component(level + 1, entries, ids, tombstones)?;
            self.comps.insert(start, comp);
            if let Err(e) = self.commit_manifest() {
                self.comps.remove(start);
                return Err(e);
            }
        }
        // Old stores go away only after the commit: a crash in between
        // leaves readable components plus a manifest that no longer
        // references them, cleaned up on open.
        for c in group {
            let cid = c.id;
            drop(c);
            self.backend.remove_component(cid)?;
        }
        Ok(())
    }

    fn build_component(
        &mut self,
        level: u32,
        entries: Vec<(u64, Pfv)>,
        ids: HashSet<u64>,
        tombstones: HashSet<u64>,
    ) -> Result<Component<B::Store>, TreeError> {
        let id = self.next_component_id;
        self.next_component_id += 1;
        let store = self.backend.create_component(id)?;
        let pool = BufferPool::new(store, self.pool_frames, Arc::clone(&self.stats));
        let mut tree = if entries.is_empty() {
            GaussTree::create_with(
                pool,
                self.config,
                &TreeOptions::new().durability(self.durability),
            )?
        } else {
            let opts = BulkLoadOptions::default()
                .with_threads(self.threads)
                .with_durability(self.durability);
            GaussTree::bulk_load_with(pool, self.config, entries, &opts)?.0
        };
        // Commit the component so snapshots can pin it immediately.
        tree.flush()?;
        Ok(Component {
            id,
            level,
            tree,
            ids,
            tombstones,
        })
    }

    /// Commits the current component list: data barrier on every
    /// component's pages, then the manifest slot for the next epoch,
    /// then a manifest barrier.
    fn commit_manifest(&mut self) -> Result<(), TreeError> {
        let next_epoch = self.epoch + 1;
        let m = ForestManifest {
            epoch: next_epoch,
            config: self.config,
            memtable_capacity: self.memtable_capacity as u64,
            merge_factor: u32::try_from(self.merge_factor).unwrap_or(u32::MAX),
            next_component_id: self.next_component_id,
            components: self
                .comps
                .iter()
                .map(|c| ManifestComponent {
                    id: c.id,
                    level: c.level,
                    len: c.tree.len(),
                    tombstones: {
                        let mut t: Vec<u64> = c.tombstones.iter().copied().collect();
                        t.sort_unstable();
                        t
                    },
                })
                .collect(),
        };
        let bytes = m.encode();
        // Data barrier: every page the new manifest references must be
        // durable before the slot commits to them.
        for c in &self.comps {
            c.tree.pool().sync(self.durability)?;
        }
        let slot = ForestManifest::slot_for(next_epoch);
        self.backend.write_manifest_slot(slot, &bytes)?;
        self.backend.sync_manifest(self.durability)?;
        self.epoch = next_epoch;
        Ok(())
    }

    /// Pins a consistent, epoch-tagged view of the whole forest:
    /// memtable contents plus a [`Snapshot`] of every component, with
    /// per-component shadow sets precomputed. The snapshot implements
    /// [`crate::ReadView`] and stays valid across later flushes, merges
    /// and reopens of the forest.
    ///
    /// # Errors
    /// Store errors while pinning component snapshots.
    pub fn snapshot(&self) -> Result<ForestSnapshot<B::Store>, TreeError> {
        let mem = self.mem.live_entries();
        let mut newer: HashSet<u64> = self.mem.ids().collect();
        let mut comps = Vec::with_capacity(self.comps.len());
        for c in &self.comps {
            let snap = c.tree.snapshot()?;
            let hidden: HashSet<u64> = c.ids.intersection(&newer).copied().collect();
            newer.extend(c.ids.iter().copied());
            newer.extend(c.tombstones.iter().copied());
            comps.push(SnapComponent { snap, hidden });
        }
        debug_assert_eq!(
            mem.len() as u64
                + comps
                    .iter()
                    .map(|c| c.snap.len() - c.hidden.len() as u64)
                    .sum::<u64>(),
            self.live,
            "forest live count diverged from snapshot visibility"
        );
        Ok(ForestSnapshot {
            config: self.config,
            epoch: self.epoch,
            live: self.live,
            mem,
            comps,
        })
    }

    /// Consumes the forest, returning its backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

/// One component pinned by a [`ForestSnapshot`]: an epoch-pinned tree
/// snapshot plus the ids newer data shadows inside it.
pub(crate) struct SnapComponent<S: PageStore> {
    pub(crate) snap: Snapshot<S>,
    pub(crate) hidden: HashSet<u64>,
}

impl<S: PageStore> Clone for SnapComponent<S> {
    fn clone(&self) -> Self {
        Self {
            snap: self.snap.clone(),
            hidden: self.hidden.clone(),
        }
    }
}

/// A consistent read view over the whole forest at one manifest epoch.
/// See [`GaussForest::snapshot`].
pub struct ForestSnapshot<S: PageStore> {
    pub(crate) config: TreeConfig,
    pub(crate) epoch: u64,
    pub(crate) live: u64,
    /// Live memtable entries at pin time, ascending id.
    pub(crate) mem: Vec<(u64, Pfv)>,
    /// Pinned components, newest first.
    pub(crate) comps: Vec<SnapComponent<S>>,
}

impl<S: PageStore> Clone for ForestSnapshot<S> {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            epoch: self.epoch,
            live: self.live,
            mem: self.mem.clone(),
            comps: self.comps.clone(),
        }
    }
}

impl<S: PageStore> ForestSnapshot<S> {
    /// Manifest epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live objects visible to the snapshot.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// Whether no live objects are visible.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Dimensionality of the indexed pfv.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Tree configuration shared by every component.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauss_storage::MemComponentStores;

    fn v(seed: u64) -> Pfv {
        let x = (seed as f64 * 0.731).sin() * 10.0;
        let y = (seed as f64 * 0.377).cos() * 10.0;
        Pfv::new(vec![x, y], vec![0.1 + (seed % 5) as f64 * 0.1, 0.2]).unwrap()
    }

    fn small_forest(cap: usize) -> GaussForest<MemComponentStores> {
        GaussForest::create(
            MemComponentStores::new(4096),
            TreeConfig::new(2).with_capacities(6, 4),
            ForestOptions::new().memtable_capacity(cap),
        )
        .unwrap()
    }

    #[test]
    fn insert_flush_merge_and_counts() {
        let mut f = small_forest(8);
        for i in 0..50u64 {
            f.insert(i, &v(i)).unwrap();
        }
        assert_eq!(f.len(), 50);
        assert!(f.component_stats().len() > 1, "auto-flush should have run");
        // Upsert and delete across component boundaries.
        f.insert(3, &v(103)).unwrap();
        assert_eq!(f.len(), 50);
        assert!(f.delete(4).unwrap());
        assert!(!f.delete(4).unwrap());
        assert!(!f.delete(999).unwrap());
        assert_eq!(f.len(), 49);
        assert!(f.contains(3));
        assert!(!f.contains(4));
        f.flush().unwrap();
        let report = f.maintain().unwrap();
        assert!(report.merges > 0);
        assert_eq!(f.len(), 49);
        assert!(f.contains(3));
        assert!(!f.contains(4));
        // Fully merged forest has one component and no tombstones left.
        let stats = f.component_stats();
        assert_eq!(stats.len(), 1, "stats: {stats:?}");
        assert_eq!(stats[0].tombstones, 0);
        assert_eq!(stats[0].len, 49);
    }

    #[test]
    fn levels_double_and_stay_sorted() {
        let mut f = small_forest(4);
        for i in 0..40u64 {
            f.insert(i, &v(i)).unwrap();
            if i % 8 == 7 {
                f.maintain().unwrap();
            }
        }
        let stats = f.component_stats();
        for w in stats.windows(2) {
            assert!(w[0].level <= w[1].level, "levels out of order: {stats:?}");
        }
        // No level holds merge_factor components after maintain.
        f.flush().unwrap();
        f.maintain().unwrap();
        let stats = f.component_stats();
        for level in stats.iter().map(|c| c.level) {
            let n = stats.iter().filter(|c| c.level == level).count();
            assert!(n < 2, "level {level} still over-full: {stats:?}");
        }
    }

    #[test]
    fn reopen_restores_live_set_and_manifest() {
        let disk = MemComponentStores::new(4096);
        let config = TreeConfig::new(2).with_capacities(6, 4);
        let mut f = GaussForest::create(
            disk.clone(),
            config,
            ForestOptions::new().memtable_capacity(8),
        )
        .unwrap();
        for i in 0..30u64 {
            f.insert(i, &v(i)).unwrap();
        }
        f.delete(7).unwrap();
        f.insert(9, &v(109)).unwrap();
        f.flush().unwrap();
        let epoch = f.epoch();
        drop(f);
        let f = GaussForest::open(disk, ForestOptions::new()).unwrap();
        assert_eq!(f.epoch(), epoch);
        assert_eq!(f.len(), 29);
        assert_eq!(f.memtable_len(), 0);
        assert!(!f.contains(7));
        assert!(f.contains(9));
        // Manifest-persisted knobs survive the reopen.
        assert_eq!(f.memtable_capacity(), 8);
        assert_eq!(f.merge_factor(), 2);
    }

    #[test]
    fn create_refuses_existing_forest() {
        let disk = MemComponentStores::new(4096);
        let config = TreeConfig::new(2);
        let _f = GaussForest::create(disk.clone(), config, ForestOptions::new()).unwrap();
        assert!(matches!(
            GaussForest::create(disk, config, ForestOptions::new()),
            Err(TreeError::Corrupt(_))
        ));
    }

    #[test]
    fn snapshot_pins_across_mutation() {
        use crate::view::ReadView as _;
        let mut f = small_forest(8);
        for i in 0..20u64 {
            f.insert(i, &v(i)).unwrap();
        }
        let snap = f.snapshot().unwrap();
        assert_eq!(snap.len(), 20);
        let q = v(3);
        let before = snap.k_mliq(&q, 5).unwrap();
        // Mutate heavily: the pinned snapshot must not move.
        for i in 0..20u64 {
            f.delete(i).unwrap();
        }
        f.flush().unwrap();
        f.maintain().unwrap();
        assert_eq!(f.len(), 0);
        let after = snap.k_mliq(&q, 5).unwrap();
        assert_eq!(before, after);
        assert!(f.snapshot().unwrap().k_mliq(&q, 5).unwrap().is_empty());
    }
}
