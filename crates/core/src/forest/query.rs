//! Query processing across the whole forest.
//!
//! Every algorithm of [`crate::query`] generalises from one tree to
//! memtable + components because the Gauss-tree's candidate selection is
//! a pure function of the *multiset of (id, density) pairs of the live
//! set* under a strict total order:
//!
//! * **k-MLIQ** pushes memtable densities and every component's
//!   best-first scan into one shared top-k heap. Densities are computed
//!   by the same kernels everywhere ([`pfv::combine::log_joint`] ≡
//!   [`pfv::batch`] per the PR-3 bit-identity gate, and memtable values
//!   are pre-quantised), ids are unique across the live set, and the
//!   `(density, id)` order is total — so the surviving k are independent
//!   of component boundaries and scan order: **bit-identical** to a
//!   single tree bulk-loaded with the same live set. A fuller shared
//!   heap only *tightens* each component's pruning bound.
//! * **Refined k-MLIQ / TIQ** aggregate the global Bayes denominator
//!   from per-component partial sums: one [`DenomBounds`] accumulator
//!   receives exact densities for memtable entries and expanded leaves,
//!   and per-node remainder terms priced with *asymmetric counts* — the
//!   upper remainder uses the node's full entry count (valid even when
//!   newer components shadow some entries), the lower uses the count
//!   minus the component's total shadowed ids (never over-counts what is
//!   visible). Hidden entries are excluded from the exact accumulator
//!   on leaf expansion, so the bounds converge to the exact live-set
//!   denominator; result *membership* and densities match the single
//!   tree, while the reported probability intervals may differ within
//!   the caller's accuracy (bounds are exploration-order dependent).
//! * **Box queries** filter the memtable exactly and run each
//!   component's pruned descent with its shadow set — bit-identical.

use super::{ForestSnapshot, SnapComponent};
use crate::interval::{containment_probability, BoxQueryResult};
use crate::node::CachedNode;
use crate::query::{
    active_children, clamped_probs, push_candidate, ActiveNode, Candidate, DenomBounds, MliqResult,
    RefinedResult, TiqResult,
};
use crate::tree::TreeError;
use crate::view::Plane;
use gauss_storage::store::PageStore;
use pfv::{batch, combine, Pfv};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The forest read-plane: borrowed view of a [`ForestSnapshot`]'s
/// memtable image and pinned components, mirroring [`Plane`] for a
/// single tree. Public only because [`crate::view::ViewPlane`] carries
/// it; not constructed outside the crate.
#[doc(hidden)]
pub struct ForestPlane<'a, S: PageStore> {
    pub(crate) snap: &'a ForestSnapshot<S>,
}

impl<S: PageStore> Clone for ForestPlane<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: PageStore> Copy for ForestPlane<'_, S> {}

/// Queue entry of the forest-level best-first loops: an active node
/// tagged with its component index (part of the `Ord` key only to keep
/// the order total across components).
struct CompNode {
    node: ActiveNode,
    comp: usize,
}

impl PartialEq for CompNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CompNode {}
impl PartialOrd for CompNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CompNode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.node
            .log_upper
            .total_cmp(&other.node.log_upper)
            .then_with(|| self.comp.cmp(&other.comp))
            .then_with(|| self.node.page.cmp(&other.node.page))
    }
}

impl<'a, S: PageStore> ForestPlane<'a, S> {
    pub(crate) fn config(&self) -> &'a crate::config::TreeConfig {
        &self.snap.config
    }

    pub(crate) fn len(&self) -> u64 {
        self.snap.live
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.snap.live == 0
    }

    pub(crate) fn mem(&self) -> &'a [(u64, Pfv)] {
        &self.snap.mem
    }

    pub(crate) fn comps(&self) -> &'a [SnapComponent<S>] {
        &self.snap.comps
    }

    pub(crate) fn check_dims(&self, got: usize) -> Result<(), TreeError> {
        if got == self.snap.config.dims {
            Ok(())
        } else {
            Err(TreeError::DimMismatch {
                expected: self.snap.config.dims,
                got,
            })
        }
    }

    /// k-MLIQ across the forest — one shared top-k heap over the
    /// memtable and every component scan (see module docs for why this
    /// is bit-identical to the single-tree answer).
    pub(crate) fn k_mliq(&self, q: &Pfv, k: usize) -> Result<Vec<MliqResult>, TreeError> {
        self.check_dims(q.dims())?;
        if k == 0 || self.is_empty() {
            return Ok(Vec::new());
        }
        let target = k.min(self.len() as usize);
        let mode = self.snap.config.combine;
        let mut best: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        for (id, v) in self.mem() {
            push_candidate(&mut best, target, combine::log_joint(mode, v, q), *id);
        }
        for c in self.comps() {
            let hidden = (!c.hidden.is_empty()).then_some(&c.hidden);
            c.snap
                .tree_plane()
                .k_mliq_scan(q, target, hidden, &mut best)?;
        }
        let mut out: Vec<MliqResult> = best
            .into_iter()
            .map(|std::cmp::Reverse(c)| MliqResult {
                id: c.id,
                log_density: c.log_density,
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_density
                .total_cmp(&a.log_density)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// Eagerly evaluates the memtable and every component root, the
    /// shared prologue of the denominator-tracking loops. Returns the
    /// exact objects `(id, log_density)` found (memtable + root leaves,
    /// shadowed ids excluded) and the priced root children.
    #[allow(clippy::type_complexity)]
    fn denom_roots(
        &self,
        planes: &[Plane<'a, S>],
        q: &Pfv,
        dens: &mut Vec<f64>,
    ) -> Result<(Vec<(u64, f64)>, Vec<CompNode>), TreeError> {
        let mode = self.snap.config.combine;
        let mut objects: Vec<(u64, f64)> = self
            .mem()
            .iter()
            .map(|(id, v)| (*id, combine::log_joint(mode, v, q)))
            .collect();
        let mut nodes: Vec<CompNode> = Vec::new();
        for (ci, (c, plane)) in self.comps().iter().zip(planes).enumerate() {
            if plane.is_empty() {
                continue;
            }
            match &*plane.read_node_cached(plane.root_page())? {
                CachedNode::Leaf(leaf) => {
                    dens.resize(leaf.columns.len(), 0.0);
                    batch::log_densities(mode, q, &leaf.columns, dens);
                    for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                        if !c.hidden.contains(&id) {
                            objects.push((id, ld));
                        }
                    }
                }
                CachedNode::Inner(es) => {
                    nodes.extend(
                        active_children(es, q, mode)
                            .into_iter()
                            .map(|node| CompNode { node, comp: ci }),
                    );
                }
            }
        }
        Ok((objects, nodes))
    }

    /// Remainder-term counts for a node of component `ci`: the upper
    /// bound prices all stored entries (shadowed ones only loosen it
    /// upward), the lower bound discounts every id the component hides
    /// (the node cannot hide more than the whole component does).
    fn node_counts(&self, ci: usize, node: &ActiveNode) -> (f64, f64) {
        let hidden = self.snap.comps[ci].hidden.len() as f64;
        ((node.count as f64 - hidden).max(0.0), node.count as f64)
    }

    /// Probability-refined k-MLIQ across the forest.
    pub(crate) fn k_mliq_refined(
        &self,
        q: &Pfv,
        k: usize,
        accuracy: f64,
    ) -> Result<Vec<RefinedResult>, TreeError> {
        assert!(accuracy > 0.0, "accuracy must be positive");
        self.check_dims(q.dims())?;
        if k == 0 || self.is_empty() {
            return Ok(Vec::new());
        }
        let mode = self.snap.config.combine;
        let target = k.min(self.len() as usize);
        let planes: Vec<Plane<'a, S>> = self.comps().iter().map(|c| c.snap.tree_plane()).collect();
        let mut dens: Vec<f64> = Vec::new();
        let (objects, nodes) = self.denom_roots(&planes, q, &mut dens)?;

        let anchor = nodes
            .iter()
            .map(|n| n.node.log_upper)
            .chain(objects.iter().map(|&(_, ld)| ld))
            .fold(f64::NEG_INFINITY, f64::max);
        let mut denom = DenomBounds::new(if anchor.is_finite() { anchor } else { 0.0 });
        let mut active: BinaryHeap<CompNode> = BinaryHeap::new();
        let mut best: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        let mut best_ld = f64::NEG_INFINITY;
        for (id, ld) in objects {
            denom.add_object(ld);
            push_candidate(&mut best, target, ld, id);
            best_ld = best_ld.max(ld);
        }
        for cn in nodes {
            let (lo_n, hi_n) = self.node_counts(cn.comp, &cn.node);
            denom.add_node_counts(cn.node.log_lower, lo_n, cn.node.log_upper, hi_n);
            active.push(cn);
        }

        loop {
            let settled = best.len() == target
                && active.peek().is_none_or(|t| {
                    // lint: allow(no-panic) -- guarded by best.len() == target > 0 earlier in the condition chain
                    best.peek().expect("non-empty").0.log_density >= t.node.log_upper
                });
            if settled && denom.prob_width(best_ld) <= accuracy {
                break;
            }
            let Some(top) = active.pop() else { break };
            let (lo_n, hi_n) = self.node_counts(top.comp, &top.node);
            denom.remove_node_counts(top.node.log_lower, lo_n, top.node.log_upper, hi_n);
            let hidden = &self.snap.comps[top.comp].hidden;
            match &*planes[top.comp].read_node_cached(top.node.page)? {
                CachedNode::Leaf(leaf) => {
                    dens.resize(leaf.columns.len(), 0.0);
                    batch::log_densities(mode, q, &leaf.columns, &mut dens);
                    for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                        if hidden.contains(&id) {
                            continue;
                        }
                        denom.add_object(ld);
                        push_candidate(&mut best, target, ld, id);
                        best_ld = best_ld.max(ld);
                    }
                }
                CachedNode::Inner(es) => {
                    for node in active_children(es, q, mode) {
                        let (lo_n, hi_n) = self.node_counts(top.comp, &node);
                        denom.add_node_counts(node.log_lower, lo_n, node.log_upper, hi_n);
                        active.push(CompNode {
                            node,
                            comp: top.comp,
                        });
                    }
                }
            }
        }

        let (lo, hi, mid) = (denom.log_lo(), denom.log_hi(), denom.log_mid());
        let mut out: Vec<RefinedResult> = best
            .into_iter()
            .map(|std::cmp::Reverse(c)| {
                let (probability, prob_lo, prob_hi) = clamped_probs(c.log_density, lo, hi, mid);
                RefinedResult {
                    id: c.id,
                    log_density: c.log_density,
                    probability,
                    prob_lo,
                    prob_hi,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_density
                .total_cmp(&a.log_density)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    pub(crate) fn tiq(
        &self,
        q: &Pfv,
        p_theta: f64,
        accuracy: f64,
    ) -> Result<Vec<TiqResult>, TreeError> {
        self.tiq_impl(q, p_theta, Some(accuracy))
    }

    pub(crate) fn tiq_anytime(&self, q: &Pfv, p_theta: f64) -> Result<Vec<TiqResult>, TreeError> {
        self.tiq_impl(q, p_theta, None)
    }

    /// Threshold identification across the forest — the Figure-5 loop
    /// with the shared denominator accumulator of
    /// [`ForestPlane::k_mliq_refined`].
    fn tiq_impl(
        &self,
        q: &Pfv,
        p_theta: f64,
        accuracy: Option<f64>,
    ) -> Result<Vec<TiqResult>, TreeError> {
        assert!(
            p_theta > 0.0 && p_theta <= 1.0,
            "threshold must be in (0,1], got {p_theta}"
        );
        assert!(
            accuracy.is_none_or(|a| a > 0.0),
            "accuracy must be positive"
        );
        self.check_dims(q.dims())?;
        if self.is_empty() {
            return Ok(Vec::new());
        }
        let mode = self.snap.config.combine;
        let ln_theta = p_theta.ln();
        let planes: Vec<Plane<'a, S>> = self.comps().iter().map(|c| c.snap.tree_plane()).collect();
        let mut dens: Vec<f64> = Vec::new();
        let (objects, nodes) = self.denom_roots(&planes, q, &mut dens)?;

        let anchor = nodes
            .iter()
            .map(|n| n.node.log_upper)
            .chain(objects.iter().map(|&(_, ld)| ld))
            .fold(f64::NEG_INFINITY, f64::max);
        let mut denom = DenomBounds::new(if anchor.is_finite() { anchor } else { 0.0 });
        let mut active: BinaryHeap<CompNode> = BinaryHeap::new();
        let mut cands: Vec<(u64, f64)> = Vec::new();
        for (id, ld) in objects {
            denom.add_object(ld);
            cands.push((id, ld));
        }
        for cn in nodes {
            let (lo_n, hi_n) = self.node_counts(cn.comp, &cn.node);
            denom.add_node_counts(cn.node.log_lower, lo_n, cn.node.log_upper, hi_n);
            active.push(cn);
        }

        loop {
            let denom_lo = denom.log_lo();
            let denom_hi = denom.log_hi();
            cands.retain(|&(_, ld)| ld - denom_lo >= ln_theta);

            let explore_more = active
                .peek()
                .is_some_and(|t| t.node.log_upper - denom_lo >= ln_theta);
            let refine_more = match accuracy {
                Some(acc) => {
                    let any_undecided = cands
                        .iter()
                        .any(|&(_, ld)| ld - denom_hi < ln_theta && ld - denom_lo >= ln_theta);
                    let max_width = cands
                        .iter()
                        .map(|&(_, ld)| denom.prob_width(ld))
                        .fold(0.0, f64::max);
                    any_undecided || max_width > acc
                }
                None => false,
            };
            if !explore_more && !refine_more {
                break;
            }
            let Some(top) = active.pop() else { break };
            let (lo_n, hi_n) = self.node_counts(top.comp, &top.node);
            denom.remove_node_counts(top.node.log_lower, lo_n, top.node.log_upper, hi_n);
            let hidden = &self.snap.comps[top.comp].hidden;
            match &*planes[top.comp].read_node_cached(top.node.page)? {
                CachedNode::Leaf(leaf) => {
                    dens.resize(leaf.columns.len(), 0.0);
                    batch::log_densities(mode, q, &leaf.columns, &mut dens);
                    for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                        if hidden.contains(&id) {
                            continue;
                        }
                        denom.add_object(ld);
                        if ld - denom.log_lo() >= ln_theta {
                            cands.push((id, ld));
                        }
                    }
                }
                CachedNode::Inner(es) => {
                    for node in active_children(es, q, mode) {
                        let (lo_n, hi_n) = self.node_counts(top.comp, &node);
                        denom.add_node_counts(node.log_lower, lo_n, node.log_upper, hi_n);
                        active.push(CompNode {
                            node,
                            comp: top.comp,
                        });
                    }
                }
            }
        }

        let (lo, hi, mid) = (denom.log_lo(), denom.log_hi(), denom.log_mid());
        let mut out: Vec<TiqResult> = cands
            .into_iter()
            .filter(|&(_, ld)| match accuracy {
                Some(_) => ld - hi >= ln_theta,
                None => ld - lo >= ln_theta,
            })
            .map(|(id, ld)| {
                let (mid_p, prob_lo, prob_hi) = clamped_probs(ld, lo, hi, mid);
                TiqResult {
                    id,
                    log_density: ld,
                    probability: if accuracy.is_some() { mid_p } else { prob_lo },
                    prob_lo,
                    prob_hi,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_density
                .total_cmp(&a.log_density)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// Probabilistic box query across the forest — exact memtable filter
    /// plus every component's pruned descent. Bit-identical to the
    /// single-tree answer over the live set.
    pub(crate) fn probabilistic_box_query(
        &self,
        lo: &[f64],
        hi: &[f64],
        tau: f64,
    ) -> Result<Vec<BoxQueryResult>, TreeError> {
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0,1], got {tau}");
        self.check_dims(lo.len())
            .and_then(|()| self.check_dims(hi.len()))?;
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "reversed box in dim {i}");
        }
        let mut out = Vec::new();
        for (id, v) in self.mem() {
            let p = containment_probability(v, lo, hi);
            if p >= tau {
                out.push(BoxQueryResult {
                    id: *id,
                    probability: p,
                });
            }
        }
        for c in self.comps() {
            let hidden = (!c.hidden.is_empty()).then_some(&c.hidden);
            c.snap
                .tree_plane()
                .box_query_scan(lo, hi, tau, hidden, &mut out)?;
        }
        out.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// Visits every live entry: memtable first (ascending id), then each
    /// component newest-first in tree order, shadowed ids skipped.
    pub(crate) fn for_each_entry(&self, mut f: impl FnMut(u64, &Pfv)) -> Result<(), TreeError> {
        for (id, v) in self.mem() {
            f(*id, v);
        }
        for c in self.comps() {
            c.snap.tree_plane().for_each_entry(|id, v| {
                if !c.hidden.contains(&id) {
                    f(id, v);
                }
            })?;
        }
        Ok(())
    }
}
