//! Probabilistic box (threshold) queries — bridging to the *interval
//! uncertainty model* of Cheng et al. (§2 of the paper).
//!
//! The related work the paper contrasts against (SIGMOD'03 / VLDB'04)
//! asks: *which uncertain objects lie inside a given query rectangle with
//! probability ≥ τ?* The paper argues this is the wrong primitive for
//! identification — but it is a useful query in its own right, and the
//! Gauss-tree supports it directly (extension, not in the paper):
//!
//! * per object, the containment probability factorises over dimensions as
//!   `Πᵢ (Φ((hiᵢ−μᵢ)/σᵢ) − Φ((loᵢ−μᵢ)/σᵢ))`;
//! * per node, `mass ≤ ∫_lo^hi N̂(x) dx ≤ (hi−lo)·max_{x∈[lo,hi]} N̂(x)`
//!   gives a conservative per-dimension upper bound from the same Lemma-2
//!   hull the identification queries use, so subtrees whose bound falls
//!   below τ are pruned.

use crate::node::Node;
use crate::tree::TreeError;
use crate::view::Plane;
use gauss_storage::store::PageStore;
use pfv::hull::DimBounds;
use pfv::Pfv;

/// One result of a probabilistic box query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxQueryResult {
    /// External object id.
    pub id: u64,
    /// Exact probability that the object's true vector lies in the box.
    pub probability: f64,
}

/// Exact containment probability of one pfv in `[lo, hi]`.
///
/// # Panics
/// Panics on dimensionality mismatch or a reversed box.
#[must_use]
pub fn containment_probability(v: &Pfv, lo: &[f64], hi: &[f64]) -> f64 {
    assert_eq!(v.dims(), lo.len(), "box dimensionality mismatch");
    assert_eq!(lo.len(), hi.len(), "box corners mismatch");
    let mut p = 1.0;
    for i in 0..v.dims() {
        assert!(lo[i] <= hi[i], "reversed box in dim {i}");
        let g = v.gaussian(i);
        p *= (g.cdf(hi[i]) - g.cdf(lo[i])).max(0.0);
        if p == 0.0 {
            return 0.0;
        }
    }
    p
}

/// Conservative upper bound on the containment mass of any Gaussian whose
/// parameters lie in `bounds`, over the interval `[lo, hi]`.
#[must_use]
pub fn mass_upper_1d(bounds: &DimBounds, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi);
    // max of N̂ over [lo, hi]: N̂ rises monotonically up to μ̌, is flat on
    // [μ̌, μ̂], and falls beyond — so the max is at the point of [lo, hi]
    // closest to the plateau.
    let x_star = if hi < bounds.mu_lo {
        hi
    } else if lo > bounds.mu_hi {
        lo
    } else {
        // Intervals overlap: plateau value.
        bounds.mu_lo.max(lo)
    };
    ((hi - lo) * bounds.upper(x_star)).min(1.0)
}

impl<S: PageStore> Plane<'_, S> {
    /// Probabilistic box threshold query — the algorithm behind
    /// [`crate::view::ReadView::probabilistic_box_query`].
    pub(crate) fn probabilistic_box_query(
        &self,
        lo: &[f64],
        hi: &[f64],
        tau: f64,
    ) -> Result<Vec<BoxQueryResult>, TreeError> {
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0,1], got {tau}");
        if lo.len() != self.dims() || hi.len() != self.dims() {
            return Err(TreeError::DimMismatch {
                expected: self.dims(),
                got: lo.len(),
            });
        }
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "reversed box in dim {i}");
        }
        let mut out = Vec::new();
        self.box_query_scan(lo, hi, tau, None, &mut out)?;
        out.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// The pruned box-query descent over *this* tree, appending qualifying
    /// objects to a caller-owned vector (unsorted). `hidden` names entry
    /// ids to skip — the forest passes ids shadowed by newer components.
    /// Inputs are assumed validated by the caller.
    pub(crate) fn box_query_scan(
        &self,
        lo: &[f64],
        hi: &[f64],
        tau: f64,
        hidden: Option<&std::collections::HashSet<u64>>,
        out: &mut Vec<BoxQueryResult>,
    ) -> Result<(), TreeError> {
        if self.is_empty() {
            return Ok(());
        }
        let skip = |id: u64| hidden.is_some_and(|h| h.contains(&id));
        let mut stack = vec![self.root_page()];
        while let Some(page) = stack.pop() {
            match self.read_node(page)? {
                Node::Leaf(es) => {
                    for e in &es {
                        if skip(e.id) {
                            continue;
                        }
                        let p = containment_probability(&e.pfv, lo, hi);
                        if p >= tau {
                            out.push(BoxQueryResult {
                                id: e.id,
                                probability: p,
                            });
                        }
                    }
                }
                Node::Inner(es) => {
                    for e in &es {
                        let mut bound = 1.0;
                        for (i, d) in e.rect.as_slice().iter().enumerate() {
                            bound *= mass_upper_1d(d, lo[i], hi[i]);
                            if bound < tau {
                                break;
                            }
                        }
                        if bound >= tau {
                            stack.push(e.child);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::tree::GaussTree;
    use crate::view::ReadView;
    use gauss_storage::{AccessStats, BufferPool, MemStore};

    fn build(items: &[(u64, Pfv)]) -> GaussTree<MemStore> {
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, TreeConfig::new(2).with_capacities(5, 4)).unwrap();
        for (id, v) in items {
            tree.insert(*id, v).unwrap();
        }
        tree
    }

    fn grid_items() -> Vec<(u64, Pfv)> {
        let mut out = Vec::new();
        let mut id = 0;
        for x in 0..10 {
            for y in 0..10 {
                let v = Pfv::new(
                    vec![x as f64, y as f64],
                    vec![0.1 + (x % 3) as f64 * 0.2, 0.1 + (y % 4) as f64 * 0.15],
                )
                .unwrap();
                out.push((id, v));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn containment_probability_basics() {
        let v = Pfv::new(vec![0.0], vec![1.0]).unwrap();
        // Central 1σ interval holds ~68.3%.
        let p = containment_probability(&v, &[-1.0], &[1.0]);
        assert!((p - 0.6827).abs() < 1e-3, "p = {p}");
        // Full line ≈ 1, far box ≈ 0.
        assert!(containment_probability(&v, &[-50.0], &[50.0]) > 0.999_999);
        assert!(containment_probability(&v, &[40.0], &[50.0]) < 1e-12);
        // Multivariate factorisation.
        let v2 = Pfv::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let p2 = containment_probability(&v2, &[-1.0, -1.0], &[1.0, 1.0]);
        assert!((p2 - 0.6827 * 0.6827).abs() < 2e-3);
    }

    #[test]
    fn mass_upper_dominates_every_member() {
        let b = DimBounds::new(2.0, 4.0, 0.3, 1.0);
        for &(mu, sigma) in &[(2.0, 0.3), (3.0, 0.5), (4.0, 1.0), (2.5, 0.9)] {
            for &(lo, hi) in &[
                (0.0, 1.0),
                (1.5, 2.5),
                (2.9, 3.1),
                (5.0, 9.0),
                (-10.0, 10.0),
            ] {
                let v = Pfv::new(vec![mu], vec![sigma]).unwrap();
                let exact = containment_probability(&v, &[lo], &[hi]);
                let bound = mass_upper_1d(&b, lo, hi);
                assert!(
                    bound >= exact - 1e-12,
                    "bound {bound} < exact {exact} for N({mu},{sigma}) on [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn box_query_matches_brute_force() {
        let items = grid_items();
        let tree = build(&items);
        for (lo, hi, tau) in [
            ([2.5, 2.5], [4.5, 6.5], 0.5),
            ([0.0, 0.0], [9.0, 9.0], 0.9),
            ([4.9, 4.9], [5.1, 5.1], 0.05),
            ([-5.0, -5.0], [-1.0, -1.0], 0.01),
        ] {
            let got = tree.probabilistic_box_query(&lo, &hi, tau).unwrap();
            let mut want: Vec<(u64, f64)> = items
                .iter()
                .map(|(id, v)| (*id, containment_probability(v, &lo, &hi)))
                .filter(|&(_, p)| p >= tau)
                .collect();
            want.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            assert_eq!(got.len(), want.len(), "count mismatch for tau={tau}");
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.id, w.0);
                assert!((g.probability - w.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn box_query_prunes_pages() {
        let items = grid_items();
        let tree = build(&items);
        tree.cold_start();
        // Tiny box in one corner: most of the grid must be pruned.
        let _ = tree
            .probabilistic_box_query(&[0.5, 0.5], &[1.5, 1.5], 0.2)
            .unwrap();
        let read = tree.stats().snapshot().physical_reads;
        let total = tree.pool().num_pages();
        assert!(
            read * 2 < total,
            "box query read {read} of {total} pages — no pruning?"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let items = grid_items();
        let tree = build(&items);
        assert!(tree.probabilistic_box_query(&[0.0], &[1.0], 0.5).is_err());
    }

    #[test]
    #[should_panic(expected = "reversed box")]
    fn rejects_reversed_box() {
        let items = grid_items();
        let tree = build(&items);
        let _ = tree.probabilistic_box_query(&[1.0, 0.0], &[0.0, 1.0], 0.5);
    }
}
