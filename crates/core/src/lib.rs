//! The Gauss-tree — an index for probabilistic feature vectors.
//!
//! Implements the index structure of *"The Gauss-Tree: Efficient Object
//! Identification in Databases of Probabilistic Feature Vectors"* (Böhm,
//! Pryakhin, Schubert — ICDE 2006, §5):
//!
//! * a balanced tree from the R-tree family that indexes not the Gaussians
//!   as spatial objects but the **parameter space** `(μᵢ, σᵢ)` of their
//!   means and uncertainties (Definition 4);
//! * conservative per-node bounds from Lemmas 2/3 (see [`pfv::hull`]);
//! * best-first query processing over a priority queue
//!   (Hjaltason–Samet style) for
//!   [k-most-likely identification queries](ReadView::k_mliq),
//!   [probability-refined k-MLIQ](ReadView::k_mliq_refined) (§5.2.2) and
//!   [threshold identification queries](ReadView::tiq) (§5.2.3, Figure 5);
//! * the insertion strategy of §5.3 (exact-fit preference, then minimal
//!   hull-cost enlargement) and the split strategy that minimises the
//!   integral `∫ N̂(x) dx` of the resulting hull functions, for which the
//!   closed form lives in [`pfv::hull::DimBounds::hull_integral`];
//! * a parallel, out-of-core STR-style [bulk loader](GaussTree::bulk_load)
//!   (an extension — the paper only describes incremental insertion) whose
//!   pipeline runs in three stages (see [`bulk`]): a streaming front end
//!   that spills runs past a configurable memory budget, partitioning
//!   fanned across scoped worker threads (the recursion's sub-ranges are
//!   independent), and batched page writes group-committed as coalesced
//!   sequential runs — every combination byte-identical to the serial
//!   resident build; plus [`GaussTree::extend`], the batched sorted-run
//!   merge into an existing tree (one descent per batch);
//! * [structural invariant checking](GaussTree::check_invariants),
//!   including exact page accounting: every allocated page is the meta
//!   page, reachable from the root, or on the free list deletions refill;
//! * a columnar read hot path: decoded nodes are cached next to their pages
//!   ([`CachedNode`] behind a [`gauss_storage::SideCache`]), leaves are
//!   materialized struct-of-arrays and evaluated with the batched Lemma-1
//!   kernel [`pfv::batch::log_densities`], and inner children are priced in
//!   one fused hull sweep ([`children_log_hulls`]) — all bit-identical to
//!   the scalar per-entry path.
//!
//! Nodes live in fixed-size pages behind a [`gauss_storage::SharedBufferPool`],
//! so every query reports the same page-access statistics the paper measures
//! — and, because the pool has interior mutability, every read-only query
//! takes `&self` and can run concurrently with others over one shared tree
//! (see the [`executor`] module for the multi-threaded batch API).
//!
//! Every query entry point is a provided method of the [`ReadView`] trait
//! (module [`view`]), implemented both by [`GaussTree`] — queries see the
//! tree's current working state — and by the pinned [`Snapshot`] handed out
//! by [`GaussTree::snapshot`], which keeps serving one committed epoch
//! lock-free while a writer shadow-builds the next (see the *Snapshots &
//! MVCC* section of the README).
//!
//! For write-heavy workloads the [`forest`] module layers an LSM-style
//! store on top: [`GaussForest`] absorbs inserts/deletes in a memtable
//! (deletes as tombstones), flushes it through the bulk loader into
//! immutable components of doubling sizes, and merges components on
//! [`GaussForest::maintain`]; queries fan out across the memtable and
//! every component behind the same [`ReadView`] trait and return results
//! bit-identical to a single tree over the live set.
//!
//! # Example
//!
//! ```
//! use gauss_tree::{GaussTree, ReadView, TreeConfig};
//! use gauss_storage::{BufferPool, MemStore, AccessStats};
//! use pfv::Pfv;
//!
//! let config = TreeConfig::new(2);
//! let pool = BufferPool::new(MemStore::new(4096), 64, AccessStats::new_shared());
//! let mut tree = GaussTree::create(pool, config).unwrap();
//!
//! tree.insert(1, &Pfv::new(vec![1.0, 2.0], vec![0.1, 0.2]).unwrap()).unwrap();
//! tree.insert(2, &Pfv::new(vec![5.0, 6.0], vec![0.3, 0.1]).unwrap()).unwrap();
//!
//! let q = Pfv::new(vec![1.1, 2.1], vec![0.2, 0.2]).unwrap();
//! let hits = tree.k_mliq(&q, 1).unwrap();
//! assert_eq!(hits[0].id, 1);
//! ```

#![forbid(unsafe_code)]

/// Parallel out-of-core bulk loading.
pub mod bulk;
/// Structural invariant checking for debugging and tests.
pub mod check;
/// Tree construction and split-strategy configuration.
pub mod config;
/// Streaming cursors over leaf entries.
pub mod cursor;
/// Deletion and node-underflow handling.
pub mod delete;
/// Parallel batch-query execution.
pub mod executor;
/// The LSM-style Gauss-forest: memtable + immutable component trees.
pub mod forest;
/// Conservative probability-interval bounds for subtree pruning.
pub mod interval;
/// On-page node layout: inner/leaf entries and their codecs.
pub mod node;
/// Probabilistic identification queries (MLIQ / k-MLIQ / TIQ).
pub mod query;
/// Node splitting, including the parallel partition pipeline.
pub mod split;
/// The Gauss-tree itself: build, insert, query entry points.
pub mod tree;
/// The shared read-plane: the [`ReadView`] query trait and its substrate.
pub mod view;

pub use bulk::{BulkLoadOptions, BulkLoadReport, SpillKind};
pub use check::InvariantError;
pub use config::{LeafFormat, SplitStrategy, TreeConfig};
pub use cursor::RankingCursor;
pub use delete::DeleteOutcome;
pub use executor::BatchExecutor;
pub use forest::{ComponentInfo, ForestOptions, ForestSnapshot, GaussForest, MaintainReport};
pub use interval::BoxQueryResult;
pub use node::{children_log_hulls, CachedNode, ColumnarLeafNode};
pub use query::{MliqResult, RefinedResult, TiqResult};
pub use tree::{GaussTree, RecoveryReport, Snapshot, TreeError, TreeOptions};
pub use view::ReadView;
