//! Node layouts and page (de)serialisation.
//!
//! A page holds exactly one node. Layout:
//!
//! ```text
//! [kind: u8] [count: u16] [reserved: 5 bytes]
//! leaf entry   := [id: u64] [means: d × f64] [sigmas: d × f64]
//! leaf-q entry := [id: u64] [means: d × f32] [sigmas: d × f32]
//! inner entry  := [child: u64] [subtree count: u64]
//!                 [per dim: mu_lo, mu_hi, sigma_lo, sigma_hi : f64]
//! ```
//!
//! Which leaf layout a tree uses is fixed at creation by
//! [`LeafFormat`] and persisted in the meta page; the node kind byte is
//! validated against it on every decode, so an exact tree can never
//! silently misread a quantised page (or vice versa). Quantised leaves
//! narrow with [`pfv::quant::to_f32_exact`] — ingest already stored the
//! widened `f32` value, so encoding is lossless and a decoded node
//! compares equal to the staged one.

use crate::config::LeafFormat;
use gauss_storage::{PageId, Reader, Writer};
use pfv::batch::ColumnarLeaf;
use pfv::{quant, CombineMode, DimBounds, ParamRect, Pfv};

/// Bytes reserved at the start of every node page.
pub const NODE_HEADER_BYTES: usize = 8;

const KIND_LEAF: u8 = 0;
const KIND_INNER: u8 = 1;
const KIND_LEAF_Q: u8 = 2;

/// Entry of a leaf node: one pfv plus the external object id.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntry {
    /// External object identifier.
    pub id: u64,
    /// The stored probabilistic feature vector.
    pub pfv: Pfv,
}

/// Entry of an inner node: a child pointer, the number of pfv in the child's
/// subtree (needed for the `n·Ň ≤ Σ ≤ n·N̂` sum bounds of §5.2.2), and the
/// parameter-space MBR of the subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct InnerEntry {
    /// Child page.
    pub child: PageId,
    /// Number of pfv stored below `child`.
    pub count: u64,
    /// Parameter-space bounds of the subtree.
    pub rect: ParamRect,
}

/// A deserialised node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Leaf level: stores pfv.
    Leaf(Vec<LeafEntry>),
    /// Inner level: stores child descriptors.
    Inner(Vec<InnerEntry>),
}

/// A decoded leaf in query-ready columnar form: the external ids plus the
/// struct-of-arrays feature columns the batched Lemma-1 kernel
/// ([`pfv::batch::log_densities`]) consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarLeafNode {
    /// External object ids, in entry order.
    pub ids: Box<[u64]>,
    /// Per-dimension contiguous `μ`/`σ`/`σ²` columns.
    pub columns: ColumnarLeaf,
}

/// A node decoded once and cached for the read path (see
/// [`crate::GaussTree`]'s node cache): leaves are materialized as columnar
/// scans, inner nodes keep their entry vector for hull sweeps.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedNode {
    /// Leaf level, columnar.
    Leaf(ColumnarLeafNode),
    /// Inner level.
    Inner(Vec<InnerEntry>),
}

/// Conservative bounds `(ln N̂, ln Ň)` of every child of an inner node for
/// query `q`, priced in one sweep over the entry vector (fused Lemma-2/3
/// evaluation via [`ParamRect::log_bounds_for_query`]). Bit-identical to
/// calling `log_upper_for_query` and `log_lower_for_query` per child.
///
/// # Panics
/// Panics on dimensionality mismatch.
#[must_use]
pub fn children_log_hulls(entries: &[InnerEntry], q: &Pfv, mode: CombineMode) -> Vec<(f64, f64)> {
    entries
        .iter()
        .map(|e| e.rect.log_bounds_for_query(q, mode))
        .collect()
}

/// Errors from node (de)serialisation.
#[derive(Debug)]
pub enum NodeCodecError {
    /// The page did not contain a valid node.
    Corrupt(&'static str),
    /// Buffer ran short while decoding.
    Short(gauss_storage::codec::ShortBuffer),
}

impl std::fmt::Display for NodeCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeCodecError::Corrupt(what) => write!(f, "corrupt node page: {what}"),
            NodeCodecError::Short(e) => write!(f, "corrupt node page: {e}"),
        }
    }
}

impl std::error::Error for NodeCodecError {}

impl From<gauss_storage::codec::ShortBuffer> for NodeCodecError {
    fn from(e: gauss_storage::codec::ShortBuffer) -> Self {
        NodeCodecError::Short(e)
    }
}

impl Node {
    /// Whether this is a leaf node.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Converts the node into its cached, query-ready representation,
    /// materializing leaves as [`ColumnarLeafNode`]s.
    #[must_use]
    pub fn into_cached(self, dims: usize) -> CachedNode {
        match self {
            Node::Leaf(es) => CachedNode::Leaf(ColumnarLeafNode {
                ids: es.iter().map(|e| e.id).collect(),
                columns: ColumnarLeaf::from_pfvs(dims, es.iter().map(|e| &e.pfv)),
            }),
            Node::Inner(es) => CachedNode::Inner(es),
        }
    }

    /// Number of entries in the node.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Inner(es) => es.len(),
        }
    }

    /// Whether the node has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pfv stored in the subtree rooted at this node.
    #[must_use]
    pub fn subtree_count(&self) -> u64 {
        match self {
            Node::Leaf(es) => es.len() as u64,
            Node::Inner(es) => es.iter().map(|e| e.count).sum(),
        }
    }

    /// Parameter-space MBR of everything below this node.
    ///
    /// # Panics
    /// Panics on an empty node (an empty node has no bounds).
    #[must_use]
    pub fn bounding_rect(&self) -> ParamRect {
        match self {
            Node::Leaf(es) => {
                assert!(!es.is_empty(), "empty leaf has no bounds");
                ParamRect::covering(es.iter().map(|e| &e.pfv))
            }
            Node::Inner(es) => {
                assert!(!es.is_empty(), "empty inner node has no bounds");
                let mut rect = es[0].rect.clone();
                for e in &es[1..] {
                    rect.extend_rect(&e.rect);
                }
                rect
            }
        }
    }

    /// Serialises the node into a page buffer using the tree's leaf
    /// `format`.
    ///
    /// # Panics
    /// Panics if the node does not fit the page (capacity violations are
    /// caught by the tree before writing), or — for
    /// [`LeafFormat::Quantised`] — if a leaf value is not exactly
    /// `f32`-representable (ingest quantises every stored parameter, so
    /// this indicates in-memory corruption, not a data error).
    pub fn write_to(&self, dims: usize, format: LeafFormat, page: &mut [u8]) {
        let mut w = Writer::new(page);
        match self {
            Node::Leaf(es) if format == LeafFormat::Quantised => {
                w.put_u8(KIND_LEAF_Q);
                // lint: allow(no-panic) -- entry counts are capped by the node capacity, far below u16::MAX
                w.put_u16(u16::try_from(es.len()).expect("node entry count fits u16"));
                for _ in 0..(NODE_HEADER_BYTES - 3) {
                    w.put_u8(0);
                }
                for e in es {
                    debug_assert_eq!(e.pfv.dims(), dims);
                    w.put_u64(e.id);
                    for &m in e.pfv.means() {
                        w.put_f32(quant::to_f32_exact(m));
                    }
                    for &s in e.pfv.sigmas() {
                        w.put_f32(quant::to_f32_exact(s));
                    }
                }
            }
            Node::Leaf(es) => {
                w.put_u8(KIND_LEAF);
                // lint: allow(no-panic) -- entry counts are capped by the node capacity, far below u16::MAX
                w.put_u16(u16::try_from(es.len()).expect("node entry count fits u16"));
                for _ in 0..(NODE_HEADER_BYTES - 3) {
                    w.put_u8(0);
                }
                for e in es {
                    debug_assert_eq!(e.pfv.dims(), dims);
                    w.put_u64(e.id);
                    w.put_f64_slice(e.pfv.means());
                    w.put_f64_slice(e.pfv.sigmas());
                }
            }
            Node::Inner(es) => {
                w.put_u8(KIND_INNER);
                // lint: allow(no-panic) -- entry counts are capped by the node capacity, far below u16::MAX
                w.put_u16(u16::try_from(es.len()).expect("node entry count fits u16"));
                for _ in 0..(NODE_HEADER_BYTES - 3) {
                    w.put_u8(0);
                }
                for e in es {
                    debug_assert_eq!(e.rect.dims(), dims);
                    w.put_u64(e.child.index());
                    w.put_u64(e.count);
                    for d in e.rect.as_slice() {
                        w.put_f64(d.mu_lo);
                        w.put_f64(d.mu_hi);
                        w.put_f64(d.sigma_lo);
                        w.put_f64(d.sigma_hi);
                    }
                }
            }
        }
    }

    /// Deserialises a node from a page buffer, validating the node kind
    /// against the tree's leaf `format`.
    ///
    /// # Errors
    /// [`NodeCodecError`] on malformed pages, including a leaf kind byte
    /// that does not match `format`.
    pub fn read_from(dims: usize, format: LeafFormat, page: &[u8]) -> Result<Node, NodeCodecError> {
        let mut r = Reader::new(page);
        let kind = r.get_u8()?;
        let count = r.get_u16()? as usize;
        for _ in 0..(NODE_HEADER_BYTES - 3) {
            let _ = r.get_u8()?;
        }
        match kind {
            KIND_LEAF | KIND_LEAF_Q => {
                let expected = match format {
                    LeafFormat::Exact => KIND_LEAF,
                    LeafFormat::Quantised => KIND_LEAF_Q,
                };
                if kind != expected {
                    return Err(NodeCodecError::Corrupt(
                        "leaf kind does not match tree leaf format",
                    ));
                }
                let mut es = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = r.get_u64()?;
                    let (means, sigmas) = if kind == KIND_LEAF_Q {
                        // f32 → f64 widening is exact: the decoded node is
                        // bit-identical to the staged one.
                        let mut means = Vec::with_capacity(dims);
                        for _ in 0..dims {
                            means.push(f64::from(r.get_f32()?));
                        }
                        let mut sigmas = Vec::with_capacity(dims);
                        for _ in 0..dims {
                            sigmas.push(f64::from(r.get_f32()?));
                        }
                        (means, sigmas)
                    } else {
                        (r.get_f64_vec(dims)?, r.get_f64_vec(dims)?)
                    };
                    let pfv = Pfv::new(means, sigmas)
                        .map_err(|_| NodeCodecError::Corrupt("invalid pfv in leaf"))?;
                    es.push(LeafEntry { id, pfv });
                }
                Ok(Node::Leaf(es))
            }
            KIND_INNER => {
                let mut es = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = PageId(r.get_u64()?);
                    if !child.is_valid() {
                        return Err(NodeCodecError::Corrupt("invalid child pointer"));
                    }
                    let node_count = r.get_u64()?;
                    let mut ds = Vec::with_capacity(dims);
                    for _ in 0..dims {
                        let mu_lo = r.get_f64()?;
                        let mu_hi = r.get_f64()?;
                        let sigma_lo = r.get_f64()?;
                        let sigma_hi = r.get_f64()?;
                        if !(mu_lo.is_finite()
                            && mu_hi.is_finite()
                            && sigma_lo.is_finite()
                            && sigma_hi.is_finite())
                            || mu_lo > mu_hi
                            || sigma_lo > sigma_hi
                        {
                            return Err(NodeCodecError::Corrupt("invalid bounds"));
                        }
                        ds.push(DimBounds::new(mu_lo, mu_hi, sigma_lo, sigma_hi));
                    }
                    es.push(InnerEntry {
                        child,
                        count: node_count,
                        rect: ParamRect::from_dims(ds),
                    });
                }
                Ok(Node::Inner(es))
            }
            _ => Err(NodeCodecError::Corrupt("unknown node kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_leaf() -> Node {
        Node::Leaf(vec![
            LeafEntry {
                id: 7,
                pfv: Pfv::new(vec![1.0, 2.0], vec![0.1, 0.2]).unwrap(),
            },
            LeafEntry {
                id: 42,
                pfv: Pfv::new(vec![-3.5, 0.0], vec![0.5, 1.5]).unwrap(),
            },
        ])
    }

    fn sample_inner() -> Node {
        Node::Inner(vec![
            InnerEntry {
                child: PageId(3),
                count: 10,
                rect: ParamRect::from_dims(vec![
                    DimBounds::new(0.0, 1.0, 0.1, 0.2),
                    DimBounds::new(-1.0, 2.0, 0.3, 0.9),
                ]),
            },
            InnerEntry {
                child: PageId(9),
                count: 4,
                rect: ParamRect::from_dims(vec![
                    DimBounds::new(5.0, 6.0, 0.1, 0.1),
                    DimBounds::new(5.0, 5.0, 0.2, 0.4),
                ]),
            },
        ])
    }

    /// A leaf whose values are all exactly f32-representable (as ingest
    /// guarantees for a quantised tree).
    fn sample_leaf_q() -> Node {
        let quantise = |v: &Pfv| {
            let means: Vec<f64> = v
                .means()
                .iter()
                .map(|&m| f64::from(pfv::quant::quantise_mu(m).unwrap()))
                .collect();
            let sigmas: Vec<f64> = v
                .sigmas()
                .iter()
                .map(|&s| f64::from(pfv::quant::quantise_sigma(s).unwrap()))
                .collect();
            Pfv::new(means, sigmas).unwrap()
        };
        Node::Leaf(vec![
            LeafEntry {
                id: 7,
                pfv: quantise(&Pfv::new(vec![1.1, 2.7], vec![0.13, 0.21]).unwrap()),
            },
            LeafEntry {
                id: 42,
                pfv: quantise(&Pfv::new(vec![-3.51, 0.004], vec![0.57, 1.53]).unwrap()),
            },
        ])
    }

    #[test]
    fn leaf_round_trip() {
        let node = sample_leaf();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Exact, &mut page);
        let back = Node::read_from(2, LeafFormat::Exact, &page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn quantised_leaf_round_trip_is_bit_exact() {
        let node = sample_leaf_q();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Quantised, &mut page);
        assert_eq!(page[0], 2, "quantised leaves use their own kind byte");
        let back = Node::read_from(2, LeafFormat::Quantised, &page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn quantised_entries_are_half_the_size() {
        let node = sample_leaf_q();
        let mut exact = vec![0u8; 4096];
        let mut quant = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Exact, &mut exact);
        node.write_to(2, LeafFormat::Quantised, &mut quant);
        // 2 entries × (8 + 2·8·f64) vs 2 entries × (8 + 2·8·f32): find the
        // last non-zero byte as a proxy for the payload extent.
        let used = |p: &[u8]| p.iter().rposition(|&b| b != 0).unwrap() + 1;
        assert!(used(&quant) < used(&exact));
        assert!(used(&quant) <= NODE_HEADER_BYTES + 2 * (8 + 2 * 4 + 2 * 4));
    }

    #[test]
    fn leaf_kind_must_match_format() {
        let node = sample_leaf_q();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Quantised, &mut page);
        let err = Node::read_from(2, LeafFormat::Exact, &page).unwrap_err();
        assert!(err.to_string().contains("leaf format"), "{err}");
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Exact, &mut page);
        let err = Node::read_from(2, LeafFormat::Quantised, &page).unwrap_err();
        assert!(err.to_string().contains("leaf format"), "{err}");
        // Inner nodes are format-agnostic.
        let inner = sample_inner();
        let mut page = vec![0u8; 4096];
        inner.write_to(2, LeafFormat::Quantised, &mut page);
        assert!(Node::read_from(2, LeafFormat::Exact, &page).is_ok());
    }

    #[test]
    #[should_panic(expected = "not exactly f32-representable")]
    fn quantised_encode_rejects_unquantised_values() {
        // 0.1 is not f32-exact — staging such a leaf into a quantised tree
        // is a bug upstream (ingest must quantise), and must not silently
        // lose precision.
        let node = sample_leaf();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Quantised, &mut page);
    }

    #[test]
    fn inner_round_trip() {
        let node = sample_inner();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Exact, &mut page);
        let back = Node::read_from(2, LeafFormat::Exact, &page).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn subtree_counts() {
        assert_eq!(sample_leaf().subtree_count(), 2);
        assert_eq!(sample_inner().subtree_count(), 14);
    }

    #[test]
    fn bounding_rect_covers_entries() {
        let node = sample_leaf();
        let rect = node.bounding_rect();
        if let Node::Leaf(es) = &node {
            for e in es {
                assert!(rect.contains_pfv(&e.pfv));
            }
        }
        let inner = sample_inner();
        let rect = inner.bounding_rect();
        if let Node::Inner(es) = &inner {
            for e in es {
                assert!(rect.contains_rect(&e.rect));
            }
        }
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut page = vec![0u8; 64];
        page[0] = 9;
        assert!(Node::read_from(2, LeafFormat::Exact, &page).is_err());
    }

    #[test]
    fn rejects_truncated_page() {
        let node = sample_leaf();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Exact, &mut page);
        // Cut the page short mid-entry.
        assert!(Node::read_from(2, LeafFormat::Exact, &page[..40]).is_err());
    }

    #[test]
    fn rejects_reversed_bounds() {
        let node = sample_inner();
        let mut page = vec![0u8; 4096];
        node.write_to(2, LeafFormat::Exact, &mut page);
        // Swap mu_lo/mu_hi of the first dim of the first entry:
        // header(8) + child(8) + count(8) = offset 24 for mu_lo.
        let mu_lo = f64::from_le_bytes(page[24..32].try_into().unwrap());
        let mu_hi = f64::from_le_bytes(page[32..40].try_into().unwrap());
        page[24..32].copy_from_slice(&mu_hi.to_le_bytes());
        page[32..40].copy_from_slice(&mu_lo.to_le_bytes());
        assert!(Node::read_from(2, LeafFormat::Exact, &page).is_err());
    }

    #[test]
    fn into_cached_round_trips_leaf_content() {
        let node = sample_leaf();
        let Node::Leaf(es) = node.clone() else {
            unreachable!()
        };
        let CachedNode::Leaf(leaf) = node.into_cached(2) else {
            panic!("leaf must cache as columnar leaf");
        };
        assert_eq!(leaf.ids.as_ref(), &[7, 42]);
        for (e, entry) in es.iter().enumerate() {
            assert_eq!(leaf.columns.pfv(e), entry.pfv);
        }
    }

    #[test]
    fn into_cached_keeps_inner_entries() {
        let node = sample_inner();
        let Node::Inner(es) = node.clone() else {
            unreachable!()
        };
        let CachedNode::Inner(cached) = node.into_cached(2) else {
            panic!("inner must cache as inner");
        };
        assert_eq!(cached, es);
    }

    #[test]
    fn children_log_hulls_match_per_child_bounds() {
        let Node::Inner(es) = sample_inner() else {
            unreachable!()
        };
        let q = Pfv::new(vec![0.5, 1.0], vec![0.2, 0.3]).unwrap();
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            let hulls = children_log_hulls(&es, &q, mode);
            assert_eq!(hulls.len(), es.len());
            for (h, e) in hulls.iter().zip(es.iter()) {
                assert_eq!(
                    h.0.to_bits(),
                    e.rect.log_upper_for_query(&q, mode).to_bits()
                );
                assert_eq!(
                    h.1.to_bits(),
                    e.rect.log_lower_for_query(&q, mode).to_bits()
                );
            }
        }
    }

    #[test]
    fn header_size_matches_constant() {
        // If the header layout changes, capacity maths must change with it.
        let node = Node::Leaf(vec![]);
        let mut page = vec![0u8; 64];
        node.write_to(2, LeafFormat::Exact, &mut page);
        let r = Node::read_from(2, LeafFormat::Exact, &page).unwrap();
        assert!(r.is_empty());
    }
}
