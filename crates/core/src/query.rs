//! Query processing on the Gauss-tree (paper §5.2).
//!
//! All three algorithms run best-first over a priority queue of *active
//! nodes* ordered by the conservative upper bound `N̂` of the node's
//! Gaussians evaluated for the query (Hjaltason–Samet, as in §5.2.1).
//! They are implemented once against the shared read-plane
//! ([`crate::view::Plane`]) and surface on both the writer handle and
//! pinned snapshots through [`crate::view::ReadView`]:
//!
//! * [`ReadView::k_mliq`] — the plain k-most-likely identification query:
//!   finds the k objects with maximal relative probability (density); stops
//!   when every candidate beats the bound of the best unexplored node;
//! * [`ReadView::k_mliq_refined`] — §5.2.2: additionally reports the
//!   *actual* identification probability `P(v|q)` by maintaining lower and
//!   upper bounds `n·Ň ≤ Σ ≤ n·N̂` on the contribution of unexplored
//!   subtrees to the Bayes denominator, refining until the probability
//!   interval is narrower than the caller's accuracy;
//! * [`ReadView::tiq`] — §5.2.3 / Figure 5: the threshold identification
//!   query; candidates are pruned once their probability upper bound drops
//!   below the threshold, and processing stops when no unexplored node can
//!   contain a qualifying object and every candidate is decided.
//!
//! [`ReadView::k_mliq`]: crate::view::ReadView::k_mliq
//! [`ReadView::k_mliq_refined`]: crate::view::ReadView::k_mliq_refined
//! [`ReadView::tiq`]: crate::view::ReadView::tiq

use crate::node::CachedNode;
use crate::tree::TreeError;
use crate::view::Plane;
use gauss_storage::store::PageStore;
use gauss_storage::PageId;
use pfv::logsum::{log_add_exp, LogSumAcc, ScaledSum};
use pfv::{batch, Pfv};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a plain k-MLIQ: ranked by relative probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MliqResult {
    /// External object id.
    pub id: u64,
    /// `ln p(q|v)` — the relative (unnormalised) log density.
    pub log_density: f64,
}

/// Result of a probability-refined k-MLIQ (§5.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinedResult {
    /// External object id.
    pub id: u64,
    /// `ln p(q|v)`.
    pub log_density: f64,
    /// Identification probability `P(v|q)` (midpoint of the bound interval).
    pub probability: f64,
    /// Guaranteed lower bound on `P(v|q)`.
    pub prob_lo: f64,
    /// Guaranteed upper bound on `P(v|q)`.
    pub prob_hi: f64,
}

/// Result of a threshold identification query (§5.2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiqResult {
    /// External object id.
    pub id: u64,
    /// `ln p(q|v)`.
    pub log_density: f64,
    /// Identification probability `P(v|q)` (midpoint of the bound interval).
    pub probability: f64,
    /// Guaranteed lower bound on `P(v|q)`.
    pub prob_lo: f64,
    /// Guaranteed upper bound on `P(v|q)`.
    pub prob_hi: f64,
}

/// Priority-queue entry: an active node ordered by its upper bound.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActiveNode {
    pub(crate) log_upper: f64,
    pub(crate) log_lower: f64,
    pub(crate) count: u64,
    pub(crate) page: PageId,
}

impl PartialEq for ActiveNode {
    fn eq(&self, other: &Self) -> bool {
        self.log_upper == other.log_upper && self.page == other.page
    }
}
impl Eq for ActiveNode {}
impl PartialOrd for ActiveNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ActiveNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on the upper bound; page id only to make Ord total.
        self.log_upper
            .total_cmp(&other.log_upper)
            .then_with(|| self.page.cmp(&other.page))
    }
}

/// Candidate ordered ascending by (density, id) so a `BinaryHeap<Reverse<_>>`
/// keeps the k best and peeks the worst kept.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub(crate) log_density: f64,
    pub(crate) id: u64,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.log_density == other.log_density && self.id == other.id
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.log_density
            .total_cmp(&other.log_density)
            // Larger ids considered "worse" on ties so ordering is stable.
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Running lower/upper bounds on the Bayes denominator
/// `Σ_{w ∈ DB} p(q|w)`.
///
/// `exact` accumulates the densities of objects already examined; `min_rem`
/// / `max_rem` accumulate `n·Ň` / `n·N̂` of not-yet-expanded subtrees.
pub(crate) struct DenomBounds {
    exact: LogSumAcc,
    min_rem: ScaledSum,
    max_rem: ScaledSum,
}

impl DenomBounds {
    pub(crate) fn new(anchor: f64) -> Self {
        Self {
            exact: LogSumAcc::new(),
            min_rem: ScaledSum::new(anchor),
            max_rem: ScaledSum::new(anchor),
        }
    }

    pub(crate) fn add_object(&mut self, log_density: f64) {
        self.exact.add(log_density);
    }

    pub(crate) fn add_node(&mut self, node: &ActiveNode) {
        self.add_node_counts(
            node.log_lower,
            node.count as f64,
            node.log_upper,
            node.count as f64,
        );
    }

    /// Like [`DenomBounds::add_node`] but with distinct entry counts for
    /// the lower and upper remainder terms. The forest query path prices a
    /// component node with `hi_count` = all stored entries (a correct
    /// upper bound even when some are shadowed by newer components) and
    /// `lo_count` = entries guaranteed visible.
    pub(crate) fn add_node_counts(
        &mut self,
        log_lower: f64,
        lo_count: f64,
        log_upper: f64,
        hi_count: f64,
    ) {
        // Re-anchor before a term that would overflow the current scale.
        if log_upper - self.max_rem.anchor() > 600.0 {
            self.min_rem.reanchor(log_upper);
            self.max_rem.reanchor(log_upper);
        }
        self.min_rem.add(log_lower, lo_count);
        self.max_rem.add(log_upper, hi_count);
    }

    pub(crate) fn remove_node(&mut self, node: &ActiveNode) {
        self.remove_node_counts(
            node.log_lower,
            node.count as f64,
            node.log_upper,
            node.count as f64,
        );
    }

    /// Inverse of [`DenomBounds::add_node_counts`].
    pub(crate) fn remove_node_counts(
        &mut self,
        log_lower: f64,
        lo_count: f64,
        log_upper: f64,
        hi_count: f64,
    ) {
        self.min_rem.sub(log_lower, lo_count);
        self.max_rem.sub(log_upper, hi_count);
    }

    /// `ln` of the guaranteed lower bound on the denominator.
    ///
    /// Uses the error-deflated reading of the remainder accumulator so the
    /// bound stays a true lower bound under add/sub cancellation noise.
    pub(crate) fn log_lo(&self) -> f64 {
        log_add_exp(self.exact.value(), self.min_rem.log_value_lower())
    }

    /// `ln` of the guaranteed upper bound on the denominator.
    ///
    /// Uses the error-inflated reading of the remainder accumulator: a raw
    /// reading can cancel to zero while unexpanded nodes still hold real
    /// mass, which would collapse the interval early and report a bogus
    /// zero-width probability (observed as forest-vs-tree TIQ divergence
    /// far beyond the requested accuracy).
    pub(crate) fn log_hi(&self) -> f64 {
        log_add_exp(self.exact.value(), self.max_rem.log_value_upper())
    }

    /// `ln` of the interval midpoint (in linear space).
    pub(crate) fn log_mid(&self) -> f64 {
        log_add_exp(self.log_lo(), self.log_hi()) - std::f64::consts::LN_2
    }

    /// Width of the probability interval of an object with log density `ld`.
    ///
    /// Clamped at zero: `ScaledSum` subtraction can leave the upper
    /// accumulator a cancellation residue *below* the lower one, which would
    /// otherwise make the width slightly negative and `width <= accuracy`
    /// comparisons vacuously true for negative widths only.
    pub(crate) fn prob_width(&self, ld: f64) -> f64 {
        ((ld - self.log_lo()).exp() - (ld - self.log_hi()).exp()).max(0.0)
    }
}

/// Turns a log density and denominator bounds into clamped probabilities.
///
/// Floating-point residue in the `ScaledSum` accumulators can push the raw
/// ratios out of `[0, 1]` (e.g. `prob_hi = exp(ld − log_lo)` marginally
/// above 1 when the remainder bound cancels to zero), and a query so far
/// from every object that all densities underflow makes the ratios
/// `exp(−∞ − (−∞)) = NaN`. Returns `(probability, prob_lo, prob_hi)` with
/// every value finite in `[0, 1]` and `prob_lo <= probability <= prob_hi`
/// guaranteed (the all-underflow case maps to probability 0).
pub(crate) fn clamped_probs(ld: f64, log_lo: f64, log_hi: f64, log_mid: f64) -> (f64, f64, f64) {
    let unit = |x: f64| if x.is_nan() { 0.0 } else { x.clamp(0.0, 1.0) };
    let p_lo = unit((ld - log_hi).exp());
    let p_hi = unit((ld - log_lo).exp()).max(p_lo);
    let p = unit((ld - log_mid).exp()).clamp(p_lo, p_hi);
    (p, p_lo, p_hi)
}

impl<S: PageStore> Plane<'_, S> {
    /// k-most-likely identification query (§5.2.1, Definition 3) — the
    /// algorithm behind [`crate::view::ReadView::k_mliq`].
    pub(crate) fn k_mliq(&self, q: &Pfv, k: usize) -> Result<Vec<MliqResult>, TreeError> {
        self.check_dims(q.dims())?;
        if k == 0 || self.is_empty() {
            return Ok(Vec::new());
        }
        let target = k.min(self.len() as usize);
        // Min-heap keeping the k best candidates.
        let mut best: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        self.k_mliq_scan(q, target, None, &mut best)?;

        let mut out: Vec<MliqResult> = best
            .into_iter()
            .map(|std::cmp::Reverse(c)| MliqResult {
                id: c.id,
                log_density: c.log_density,
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_density
                .total_cmp(&a.log_density)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// The best-first k-MLIQ descent over *this* tree, pushing candidates
    /// into a caller-owned heap capped at `target`.
    ///
    /// `hidden` names entry ids to skip — the forest query path passes the
    /// ids shadowed by newer components / tombstones; `None` is the plain
    /// single-tree scan. The heap may arrive pre-populated (memtable
    /// entries, other components): a fuller heap only tightens the pruning
    /// bound, and because candidate selection is a pure top-`target` under
    /// the total `(density, id)` order, the surviving set is independent
    /// of which component was scanned first.
    pub(crate) fn k_mliq_scan(
        &self,
        q: &Pfv,
        target: usize,
        hidden: Option<&std::collections::HashSet<u64>>,
        best: &mut BinaryHeap<std::cmp::Reverse<Candidate>>,
    ) -> Result<(), TreeError> {
        if self.is_empty() {
            return Ok(());
        }
        let mode = self.config().combine;
        let skip = |id: u64| hidden.is_some_and(|h| h.contains(&id));

        let mut active: BinaryHeap<ActiveNode> = BinaryHeap::new();
        active.push(ActiveNode {
            log_upper: f64::INFINITY,
            log_lower: f64::NEG_INFINITY,
            count: self.len(),
            page: self.root_page(),
        });
        // Scratch buffers for the batched leaf kernels, reused across leaves.
        let mut dens: Vec<f64> = Vec::new();
        let mut fast = batch::FastScratch::new();

        while let Some(top) = active.pop() {
            if best.len() == target {
                // lint: allow(no-panic) -- best.len() == target > 0, so the heap is non-empty
                let worst = best.peek().expect("non-empty").0.log_density;
                // Strict: a subtree whose upper bound exactly equals the
                // worst kept density may still hold an equal-density entry
                // with a smaller id, which wins the (density, id) tie —
                // pruning on equality would make the result depend on scan
                // order (and across forest components, on component order).
                if worst > top.log_upper {
                    break;
                }
            }
            match &*self.read_node_cached(top.page)? {
                CachedNode::Leaf(leaf) => {
                    if best.len() == target {
                        // Fast tier: the heap is full, so a conservative
                        // upper bound below the worst kept density rules an
                        // entry out without the exact kernel. The bounds
                        // never undershoot the exact value (overflow turns
                        // them NaN, which fails the `<` screen), and ties
                        // fall through to exact evaluation, so the result
                        // set is identical to the unscreened path.
                        // lint: allow(no-panic) -- best.len() == target > 0, so the heap is non-empty
                        let worst = best.peek().expect("non-empty").0.log_density;
                        // Query-independent precomputed peak bounds first:
                        // if no entry's peak clears the bar, skip the leaf.
                        if leaf.columns.log_norm_col().iter().all(|&p| p < worst) {
                            continue;
                        }
                        batch::log_densities_upper(mode, q, &leaf.columns, &mut fast);
                        for (e, &id) in leaf.ids.iter().enumerate() {
                            if fast.upper()[e] < worst || skip(id) {
                                continue;
                            }
                            // Refine tier: exact, bit-identical to the
                            // batched kernel for this entry.
                            let ld = batch::log_density_one(mode, q, &leaf.columns, e);
                            push_candidate(best, target, ld, id);
                        }
                    } else {
                        dens.resize(leaf.columns.len(), 0.0);
                        batch::log_densities(mode, q, &leaf.columns, &mut dens);
                        for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                            if skip(id) {
                                continue;
                            }
                            push_candidate(best, target, ld, id);
                        }
                    }
                }
                CachedNode::Inner(es) => {
                    // Plain k-MLIQ never consults the lower bound, so price
                    // the children with upper bounds only.
                    for e in es {
                        let up = e.rect.log_upper_for_query(q, mode);
                        // Strict for the same reason as the break above: an
                        // exactly-tied child may contain the tie-winning id.
                        if best.len() == target
                            // lint: allow(no-panic) -- best.len() == target > 0, so the heap is non-empty
                            && up < best.peek().expect("non-empty").0.log_density
                        {
                            continue;
                        }
                        active.push(ActiveNode {
                            log_upper: up,
                            log_lower: f64::NEG_INFINITY,
                            count: e.count,
                            page: e.child,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Probability-refined k-MLIQ (§5.2.2) — the algorithm behind
    /// [`crate::view::ReadView::k_mliq_refined`].
    pub(crate) fn k_mliq_refined(
        &self,
        q: &Pfv,
        k: usize,
        accuracy: f64,
    ) -> Result<Vec<RefinedResult>, TreeError> {
        assert!(accuracy > 0.0, "accuracy must be positive");
        self.check_dims(q.dims())?;
        if k == 0 || self.is_empty() {
            return Ok(Vec::new());
        }
        let mode = self.config().combine;
        let target = k.min(self.len() as usize);

        // Expand the root eagerly so an anchor for the scaled accumulators
        // is known before anything enters the queue.
        let root = self.read_node_cached(self.root_page())?;
        let mut active: BinaryHeap<ActiveNode> = BinaryHeap::new();
        let mut best: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        let mut best_ld = f64::NEG_INFINITY;
        // Scratch buffer for the batched leaf kernel, reused across leaves.
        let mut dens: Vec<f64> = Vec::new();

        let mut denom;
        match &*root {
            CachedNode::Leaf(leaf) => {
                denom = DenomBounds::new(0.0);
                dens.resize(leaf.columns.len(), 0.0);
                batch::log_densities(mode, q, &leaf.columns, &mut dens);
                for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                    denom.add_object(ld);
                    push_candidate(&mut best, target, ld, id);
                    best_ld = best_ld.max(ld);
                }
            }
            CachedNode::Inner(es) => {
                let children: Vec<ActiveNode> = active_children(es, q, mode);
                let anchor = children
                    .iter()
                    .map(|c| c.log_upper)
                    .fold(f64::NEG_INFINITY, f64::max);
                denom = DenomBounds::new(if anchor.is_finite() { anchor } else { 0.0 });
                for c in children {
                    denom.add_node(&c);
                    active.push(c);
                }
            }
        }
        drop(root);

        loop {
            let settled = best.len() == target
                && active
                    .peek()
                    // lint: allow(no-panic) -- guarded by best.len() == target > 0 earlier in the condition chain
                    .is_none_or(|t| best.peek().expect("non-empty").0.log_density >= t.log_upper);
            if settled && denom.prob_width(best_ld) <= accuracy {
                break;
            }
            let Some(top) = active.pop() else { break };
            denom.remove_node(&top);
            match &*self.read_node_cached(top.page)? {
                CachedNode::Leaf(leaf) => {
                    dens.resize(leaf.columns.len(), 0.0);
                    batch::log_densities(mode, q, &leaf.columns, &mut dens);
                    for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                        denom.add_object(ld);
                        push_candidate(&mut best, target, ld, id);
                        best_ld = best_ld.max(ld);
                    }
                }
                CachedNode::Inner(es) => {
                    for child in active_children(es, q, mode) {
                        denom.add_node(&child);
                        active.push(child);
                    }
                }
            }
        }

        let (lo, hi, mid) = (denom.log_lo(), denom.log_hi(), denom.log_mid());
        let mut out: Vec<RefinedResult> = best
            .into_iter()
            .map(|std::cmp::Reverse(c)| {
                let (probability, prob_lo, prob_hi) = clamped_probs(c.log_density, lo, hi, mid);
                RefinedResult {
                    id: c.id,
                    log_density: c.log_density,
                    probability,
                    prob_lo,
                    prob_hi,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_density
                .total_cmp(&a.log_density)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// Threshold identification query (§5.2.3, Figure 5, Definition 2) —
    /// the algorithm behind [`crate::view::ReadView::tiq`].
    pub(crate) fn tiq(
        &self,
        q: &Pfv,
        p_theta: f64,
        accuracy: f64,
    ) -> Result<Vec<TiqResult>, TreeError> {
        self.tiq_impl(q, p_theta, Some(accuracy))
    }

    /// The literal Figure-5 anytime algorithm — behind
    /// [`crate::view::ReadView::tiq_anytime`].
    pub(crate) fn tiq_anytime(&self, q: &Pfv, p_theta: f64) -> Result<Vec<TiqResult>, TreeError> {
        self.tiq_impl(q, p_theta, None)
    }

    fn tiq_impl(
        &self,
        q: &Pfv,
        p_theta: f64,
        accuracy: Option<f64>,
    ) -> Result<Vec<TiqResult>, TreeError> {
        assert!(
            p_theta > 0.0 && p_theta <= 1.0,
            "threshold must be in (0,1], got {p_theta}"
        );
        assert!(
            accuracy.is_none_or(|a| a > 0.0),
            "accuracy must be positive"
        );
        self.check_dims(q.dims())?;
        if self.is_empty() {
            return Ok(Vec::new());
        }
        let mode = self.config().combine;
        let ln_theta = p_theta.ln();

        let root = self.read_node_cached(self.root_page())?;
        let mut active: BinaryHeap<ActiveNode> = BinaryHeap::new();
        let mut cands: Vec<(u64, f64)> = Vec::new();
        // Scratch buffer for the batched leaf kernel, reused across leaves.
        let mut dens: Vec<f64> = Vec::new();

        let mut denom;
        match &*root {
            CachedNode::Leaf(leaf) => {
                denom = DenomBounds::new(0.0);
                dens.resize(leaf.columns.len(), 0.0);
                batch::log_densities(mode, q, &leaf.columns, &mut dens);
                for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                    denom.add_object(ld);
                    cands.push((id, ld));
                }
            }
            CachedNode::Inner(es) => {
                let children: Vec<ActiveNode> = active_children(es, q, mode);
                let anchor = children
                    .iter()
                    .map(|c| c.log_upper)
                    .fold(f64::NEG_INFINITY, f64::max);
                denom = DenomBounds::new(if anchor.is_finite() { anchor } else { 0.0 });
                for c in children {
                    denom.add_node(&c);
                    active.push(c);
                }
            }
        }
        drop(root);

        loop {
            let denom_lo = denom.log_lo();
            let denom_hi = denom.log_hi();
            // Figure 5's "delete unnecessary candidates": prune every
            // candidate whose probability upper bound is below the threshold.
            cands.retain(|&(_, ld)| ld - denom_lo >= ln_theta);

            let explore_more = active
                .peek()
                .is_some_and(|t| t.log_upper - denom_lo >= ln_theta);
            let refine_more = match accuracy {
                // Exact mode: also decide every boundary candidate and meet
                // the probability accuracy.
                Some(acc) => {
                    let any_undecided = cands
                        .iter()
                        .any(|&(_, ld)| ld - denom_hi < ln_theta && ld - denom_lo >= ln_theta);
                    let max_width = cands
                        .iter()
                        .map(|&(_, ld)| denom.prob_width(ld))
                        .fold(0.0, f64::max);
                    any_undecided || max_width > acc
                }
                // Anytime mode (Figure 5 verbatim): no further refinement.
                None => false,
            };
            if !explore_more && !refine_more {
                break;
            }
            let Some(top) = active.pop() else { break };
            denom.remove_node(&top);
            match &*self.read_node_cached(top.page)? {
                CachedNode::Leaf(leaf) => {
                    dens.resize(leaf.columns.len(), 0.0);
                    batch::log_densities(mode, q, &leaf.columns, &mut dens);
                    for (&id, &ld) in leaf.ids.iter().zip(dens.iter()) {
                        denom.add_object(ld);
                        // Admit only candidates that could still qualify —
                        // the retain step above keeps this set tight.
                        if ld - denom.log_lo() >= ln_theta {
                            cands.push((id, ld));
                        }
                    }
                }
                CachedNode::Inner(es) => {
                    for child in active_children(es, q, mode) {
                        denom.add_node(&child);
                        active.push(child);
                    }
                }
            }
        }

        let (lo, hi, mid) = (denom.log_lo(), denom.log_hi(), denom.log_mid());
        let mut out: Vec<TiqResult> = cands
            .into_iter()
            .filter(|&(_, ld)| match accuracy {
                // Exact mode: the candidate provably reaches the threshold.
                Some(_) => ld - hi >= ln_theta,
                // Anytime mode: keep candidates that could reach it.
                None => ld - lo >= ln_theta,
            })
            .map(|(id, ld)| {
                let (mid_p, prob_lo, prob_hi) = clamped_probs(ld, lo, hi, mid);
                TiqResult {
                    id,
                    log_density: ld,
                    probability: if accuracy.is_some() {
                        mid_p
                    } else {
                        // Figure 5 reports the conservative value.
                        prob_lo
                    },
                    prob_lo,
                    prob_hi,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.log_density
                .total_cmp(&a.log_density)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }
}

/// Prices every child of an inner node in one fused hull sweep (the same
/// per-child evaluation as [`children_log_hulls`], without materializing
/// the intermediate bounds vector) and wraps them as queue entries.
pub(crate) fn active_children(
    es: &[crate::node::InnerEntry],
    q: &Pfv,
    mode: pfv::CombineMode,
) -> Vec<ActiveNode> {
    es.iter()
        .map(|e| {
            let (up, lo) = e.rect.log_bounds_for_query(q, mode);
            ActiveNode {
                log_upper: up,
                log_lower: lo,
                count: e.count,
                page: e.child,
            }
        })
        .collect()
}

pub(crate) fn push_candidate(
    best: &mut BinaryHeap<std::cmp::Reverse<Candidate>>,
    target: usize,
    log_density: f64,
    id: u64,
) {
    let cand = Candidate { log_density, id };
    if best.len() < target {
        best.push(std::cmp::Reverse(cand));
    // lint: allow(no-panic) -- the else branch runs only when best.len() >= target > 0
    } else if cand > best.peek().expect("non-empty").0 {
        best.pop();
        best.push(std::cmp::Reverse(cand));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::tree::GaussTree;
    use crate::view::ReadView;
    use gauss_storage::{AccessStats, BufferPool, MemStore};
    use pfv::{combine, CombineMode};

    /// Deterministic xorshift so tests need no external RNG.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn random_db(n: usize, dims: usize, seed: u64) -> Vec<(u64, Pfv)> {
        let mut rng = Rng(seed | 1);
        (0..n as u64)
            .map(|id| {
                let means: Vec<f64> = (0..dims).map(|_| rng.next_f64() * 10.0).collect();
                let sigmas: Vec<f64> = (0..dims).map(|_| 0.05 + rng.next_f64()).collect();
                (id, Pfv::new(means, sigmas).unwrap())
            })
            .collect()
    }

    fn build_tree(items: &[(u64, Pfv)], dims: usize) -> GaussTree<MemStore> {
        let config = TreeConfig::new(dims).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, config).unwrap();
        for (id, v) in items {
            tree.insert(*id, v).unwrap();
        }
        tree
    }

    /// Brute-force k-MLIQ over the raw data.
    fn scan_k_mliq(items: &[(u64, Pfv)], q: &Pfv, k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = items
            .iter()
            .map(|(id, v)| (*id, combine::log_joint(CombineMode::Convolution, v, q)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn k_mliq_matches_brute_force() {
        let items = random_db(300, 3, 42);
        let tree = build_tree(&items, 3);
        let mut rng = Rng(7);
        for _ in 0..20 {
            let q = Pfv::new(
                vec![
                    rng.next_f64() * 10.0,
                    rng.next_f64() * 10.0,
                    rng.next_f64() * 10.0,
                ],
                vec![
                    0.1 + rng.next_f64(),
                    0.1 + rng.next_f64(),
                    0.1 + rng.next_f64(),
                ],
            )
            .unwrap();
            for k in [1, 3, 10] {
                let got = tree.k_mliq(&q, k).unwrap();
                let want = scan_k_mliq(&items, &q, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    // Densities must agree exactly (same formula); ids may
                    // swap only on exact density ties.
                    assert!(
                        (g.log_density - w.1).abs() < 1e-9,
                        "density mismatch: {} vs {}",
                        g.log_density,
                        w.1
                    );
                }
            }
        }
    }

    #[test]
    fn k_mliq_on_empty_tree() {
        let config = TreeConfig::new(2).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(8192), 64, AccessStats::new_shared());
        let tree = GaussTree::create(pool, config).unwrap();
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        assert!(tree.k_mliq(&q, 5).unwrap().is_empty());
    }

    #[test]
    fn k_larger_than_database_returns_everything() {
        let items = random_db(7, 2, 9);
        let tree = build_tree(&items, 2);
        let q = Pfv::new(vec![5.0, 5.0], vec![0.5, 0.5]).unwrap();
        let got = tree.k_mliq(&q, 100).unwrap();
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn refined_probabilities_match_brute_force_bayes() {
        let items = random_db(200, 2, 1234);
        let tree = build_tree(&items, 2);
        let db: Vec<Pfv> = items.iter().map(|(_, v)| v.clone()).collect();
        let mut rng = Rng(99);
        for _ in 0..10 {
            let q = Pfv::new(
                vec![rng.next_f64() * 10.0, rng.next_f64() * 10.0],
                vec![0.1 + rng.next_f64(), 0.1 + rng.next_f64()],
            )
            .unwrap();
            let got = tree.k_mliq_refined(&q, 3, 1e-6).unwrap();
            let truth = pfv::posteriors(CombineMode::Convolution, &db, &q);
            for r in &got {
                let want = truth[r.id as usize].probability;
                assert!(
                    (r.probability - want).abs() <= 1e-5 + 1e-5 * want,
                    "P mismatch for {}: got {}, want {}",
                    r.id,
                    r.probability,
                    want
                );
                assert!(r.prob_lo <= want + 1e-9 && want <= r.prob_hi + 1e-9);
                assert!(r.prob_hi - r.prob_lo <= 1e-6 + 1e-9);
            }
        }
    }

    #[test]
    fn tiq_matches_brute_force_membership() {
        let items = random_db(200, 2, 777);
        let tree = build_tree(&items, 2);
        let db: Vec<Pfv> = items.iter().map(|(_, v)| v.clone()).collect();
        let mut rng = Rng(5);
        for _ in 0..10 {
            // Query near a random database object so results are non-trivial.
            let target = (rng.next_f64() * 199.0) as usize;
            let base = &items[target].1;
            let q = Pfv::new(
                base.means().to_vec(),
                vec![0.2 + rng.next_f64() * 0.2, 0.2 + rng.next_f64() * 0.2],
            )
            .unwrap();
            for theta in [0.1, 0.3, 0.7] {
                let got = tree.tiq(&q, theta, 1e-9).unwrap();
                let truth = pfv::posteriors(CombineMode::Convolution, &db, &q);
                let want: Vec<u64> = truth
                    .iter()
                    .filter(|p| p.probability >= theta)
                    .map(|p| p.index as u64)
                    .collect();
                let mut got_ids: Vec<u64> = got.iter().map(|r| r.id).collect();
                got_ids.sort_unstable();
                let mut want = want;
                want.sort_unstable();
                assert_eq!(got_ids, want, "theta={theta}");
                for r in &got {
                    let w = truth[r.id as usize].probability;
                    assert!((r.probability - w).abs() < 1e-6 + 1e-6 * w);
                }
            }
        }
    }

    #[test]
    fn tiq_total_probability_never_exceeds_one() {
        // Property 1 of §4.
        let items = random_db(100, 2, 31);
        let tree = build_tree(&items, 2);
        let q = Pfv::new(vec![3.0, 3.0], vec![0.5, 0.5]).unwrap();
        let got = tree.tiq(&q, 0.01, 1e-9).unwrap();
        let total: f64 = got.iter().map(|r| r.probability).sum();
        assert!(total <= 1.0 + 1e-6, "total {total}");
    }

    #[test]
    fn tiq_high_threshold_returns_subset_of_low_threshold() {
        let items = random_db(150, 2, 64);
        let tree = build_tree(&items, 2);
        let q = Pfv::new(items[0].1.means().to_vec(), vec![0.3, 0.3]).unwrap();
        let low = tree.tiq(&q, 0.05, 1e-9).unwrap();
        let high = tree.tiq(&q, 0.5, 1e-9).unwrap();
        let low_ids: std::collections::HashSet<u64> = low.iter().map(|r| r.id).collect();
        for r in &high {
            assert!(low_ids.contains(&r.id));
        }
        assert!(high.len() <= low.len());
    }

    #[test]
    fn mliq_prunes_pages_versus_full_scan() {
        // The index must not read every page for a selective query.
        let items = random_db(2000, 2, 2024);
        let tree = build_tree(&items, 2);
        tree.cold_start();
        let q = Pfv::new(items[100].1.means().to_vec(), vec![0.05, 0.05]).unwrap();
        let _ = tree.k_mliq(&q, 1).unwrap();
        let accessed = tree.stats().snapshot().physical_reads;
        let total_pages = tree.pool().num_pages();
        assert!(
            accessed * 3 < total_pages,
            "k-MLIQ accessed {accessed} of {total_pages} pages — no pruning?"
        );
    }

    #[test]
    fn prob_width_never_negative_under_cancellation() {
        // Near-cancelling node bounds: add a node whose bounds sit far below
        // the anchor, remove it again, and leave only a residue. The raw
        // upper remainder can fall below the lower one by floating-point
        // residue; prob_width must clamp instead of going negative.
        let mut denom = DenomBounds::new(0.0);
        let node = ActiveNode {
            log_upper: -0.3,
            log_lower: -0.7,
            count: 7,
            page: PageId(1),
        };
        denom.add_object(-0.1);
        for _ in 0..1000 {
            denom.add_node(&node);
            denom.remove_node(&node);
        }
        let w = denom.prob_width(-0.1);
        assert!(w >= 0.0, "width {w} must be clamped at zero");
        assert!(w < 1e-9, "bounds should have (nearly) converged, got {w}");
    }

    #[test]
    fn clamped_probs_stay_in_unit_interval_and_ordered() {
        // ld marginally above the denominator lower bound: the raw upper
        // ratio exceeds 1 and must be clamped.
        let (p, lo, hi) = clamped_probs(0.0, -1e-14, 1e-14, 0.0);
        assert!(hi <= 1.0);
        assert!(lo >= 0.0);
        assert!(lo <= p && p <= hi);

        // Degenerate interval where residue flips the order of lo/hi.
        let (p, lo, hi) = clamped_probs(-0.5, -0.5 + 1e-15, -0.5 - 1e-15, -0.5);
        assert!(lo <= p && p <= hi, "lo={lo} p={p} hi={hi}");
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));

        // All densities underflowed: −∞ − (−∞) = NaN must map to 0, not
        // panic inside `clamp` or leak NaN to callers.
        let ninf = f64::NEG_INFINITY;
        let (p, lo, hi) = clamped_probs(ninf, ninf, ninf, ninf);
        assert_eq!((p, lo, hi), (0.0, 0.0, 0.0));
    }

    #[test]
    fn query_infinitely_far_from_everything_returns_zero_probabilities() {
        // Regression: every log density underflows to −∞, so the Bayes
        // denominator bounds are −∞ too; results must come back with
        // probability 0 instead of panicking on a NaN clamp bound.
        let items = random_db(50, 2, 13);
        let tree = build_tree(&items, 2);
        let q = Pfv::new(vec![1e200, 1e200], vec![0.1, 0.1]).unwrap();
        let got = tree.k_mliq_refined(&q, 3, 1e-3).unwrap();
        assert_eq!(got.len(), 3);
        for r in &got {
            assert_eq!((r.probability, r.prob_lo, r.prob_hi), (0.0, 0.0, 0.0));
        }
        assert!(tree.tiq(&q, 0.5, 1e-3).unwrap().is_empty());
        assert!(tree.tiq_anytime(&q, 0.5).unwrap().is_empty());
    }

    #[test]
    fn refined_and_tiq_bounds_respect_unit_interval() {
        // An extremely peaked query: the winner's probability is ~1 and the
        // raw upper bound is prone to 1 + ε residue.
        let items = vec![
            (0u64, Pfv::new(vec![0.0, 0.0], vec![1e-6, 1e-6]).unwrap()),
            (1, Pfv::new(vec![100.0, 100.0], vec![0.1, 0.1]).unwrap()),
            (2, Pfv::new(vec![-100.0, 50.0], vec![0.1, 0.1]).unwrap()),
        ];
        let tree = build_tree(&items, 2);
        let q = Pfv::new(vec![0.0, 0.0], vec![1e-6, 1e-6]).unwrap();
        for r in tree.k_mliq_refined(&q, 3, 1e-9).unwrap() {
            assert!((0.0..=1.0).contains(&r.prob_lo), "prob_lo {}", r.prob_lo);
            assert!((0.0..=1.0).contains(&r.prob_hi), "prob_hi {}", r.prob_hi);
            assert!((0.0..=1.0).contains(&r.probability));
            assert!(r.prob_lo <= r.probability && r.probability <= r.prob_hi);
        }
        for r in tree.tiq(&q, 0.5, 1e-9).unwrap() {
            assert!((0.0..=1.0).contains(&r.prob_lo));
            assert!((0.0..=1.0).contains(&r.prob_hi), "prob_hi {}", r.prob_hi);
            assert!(r.prob_lo <= r.probability && r.probability <= r.prob_hi);
        }
    }

    #[test]
    fn wrong_dimensionality_is_rejected() {
        let items = random_db(10, 2, 3);
        let tree = build_tree(&items, 2);
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        assert!(matches!(
            tree.k_mliq(&q, 1),
            Err(TreeError::DimMismatch { .. })
        ));
        assert!(matches!(
            tree.tiq(&q, 0.5, 1e-3),
            Err(TreeError::DimMismatch { .. })
        ));
    }

    #[test]
    fn additive_sigma_mode_is_honoured_end_to_end() {
        let items = random_db(100, 2, 55);
        let config = TreeConfig::new(2)
            .with_capacities(6, 4)
            .with_combine(CombineMode::AdditiveSigma);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut tree = GaussTree::create(pool, config).unwrap();
        for (id, v) in &items {
            tree.insert(*id, v).unwrap();
        }
        let q = Pfv::new(vec![5.0, 5.0], vec![0.4, 0.4]).unwrap();
        let got = tree.k_mliq(&q, 5).unwrap();
        let mut all: Vec<(u64, f64)> = items
            .iter()
            .map(|(id, v)| (*id, combine::log_joint(CombineMode::AdditiveSigma, v, &q)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (g, w) in got.iter().zip(all.iter()) {
            assert!((g.log_density - w.1).abs() < 1e-9);
        }
    }
}
