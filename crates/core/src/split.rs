//! Node split strategies (paper §5.3).
//!
//! On overflow the paper tentatively performs a median split in each
//! μ-dimension and each σ-dimension, computes the bounds of the two
//! resulting nodes, and keeps the split minimising the summed hull
//! integrals `∫ N̂(x) dx` — the probability proxy for a node being accessed
//! by an arbitrary query. Two conventional baselines ([`SplitStrategy::WidestMu`],
//! [`SplitStrategy::MinVolume`]) are included for the ablation study.

use crate::config::SplitStrategy;
use crate::node::{InnerEntry, LeafEntry};
use gauss_storage::sync::{LockRank, TrackedCondvar, TrackedMutex};
use pfv::{DimBounds, ParamRect};

/// A split axis: the μ or the σ component of one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Split by feature value of dimension `i`.
    Mu(usize),
    /// Split by uncertainty value of dimension `i`.
    Sigma(usize),
}

/// Items a node split can operate on (leaf pfv entries or inner child
/// entries).
pub trait Splittable {
    /// Dimensionality.
    fn dims(&self) -> usize;
    /// Sort key along `axis` (centre of the item's extent on that axis).
    fn axis_key(&self, axis: Axis) -> f64;
    /// The item's parameter bounds in dimension `dim`.
    fn dim_bounds(&self, dim: usize) -> DimBounds;
}

impl Splittable for LeafEntry {
    fn dims(&self) -> usize {
        self.pfv.dims()
    }

    fn axis_key(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Mu(i) => self.pfv.means()[i],
            Axis::Sigma(i) => self.pfv.sigmas()[i],
        }
    }

    fn dim_bounds(&self, dim: usize) -> DimBounds {
        let (m, s) = self.pfv.component(dim);
        DimBounds::point(m, s)
    }
}

impl Splittable for InnerEntry {
    fn dims(&self) -> usize {
        self.rect.dims()
    }

    fn axis_key(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Mu(i) => {
                let d = self.rect.dim(i);
                0.5 * (d.mu_lo + d.mu_hi)
            }
            Axis::Sigma(i) => {
                let d = self.rect.dim(i);
                0.5 * (d.sigma_lo + d.sigma_hi)
            }
        }
    }

    fn dim_bounds(&self, dim: usize) -> DimBounds {
        *self.rect.dim(dim)
    }
}

/// MBR of a group of splittable items.
///
/// # Panics
/// Panics on an empty group.
#[must_use]
pub fn group_rect<T: Splittable>(items: &[T]) -> ParamRect {
    assert!(!items.is_empty(), "empty group has no bounds");
    let dims = items[0].dims();
    let mut ds: Vec<DimBounds> = (0..dims).map(|d| items[0].dim_bounds(d)).collect();
    for it in &items[1..] {
        for (d, b) in ds.iter_mut().enumerate() {
            *b = b.union(&it.dim_bounds(d));
        }
    }
    ParamRect::from_dims(ds)
}

/// Log-space cost of one node under a strategy's objective.
///
/// * Hull-integral strategy: `Σ_dim ln ∫N̂_dim` (log of the product of
///   per-dimension hull integrals);
/// * volume strategies: log of the parameter-space volume, with a small ε
///   floor per extent so degenerate rectangles stay comparable.
#[must_use]
pub fn node_cost(strategy: SplitStrategy, rect: &ParamRect) -> f64 {
    const EPS: f64 = 1e-12;
    match strategy {
        SplitStrategy::HullIntegral => rect.log_access_cost(),
        SplitStrategy::WidestMu | SplitStrategy::MinVolume => rect
            .as_slice()
            .iter()
            .map(|d| (d.mu_extent() + EPS).ln() + (d.sigma_extent() + EPS).ln())
            .sum(),
    }
}

/// `ln(exp(a) + exp(b))` — combines the two child costs for comparison.
pub(crate) fn log_add(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if lo == f64::NEG_INFINITY {
        hi
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

/// Outcome of a split: the chosen axis and the two groups.
#[derive(Debug)]
pub struct SplitOutcome<T> {
    /// Axis the split was performed on.
    pub axis: Axis,
    /// Left group (keeps the original page).
    pub left: Vec<T>,
    /// Right group (goes to a fresh page).
    pub right: Vec<T>,
}

/// Splits an overflowing set of items into two groups.
///
/// Every candidate axis receives a median split (so both halves satisfy the
/// minimum fanout by construction); the strategy's cost function picks the
/// winner.
///
/// # Panics
/// Panics if fewer than two items are supplied.
#[must_use]
pub fn split_items<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
) -> SplitOutcome<T> {
    assert!(items.len() >= 2, "cannot split fewer than two items");
    let dims = items[0].dims();

    let axes: Vec<Axis> = match strategy {
        SplitStrategy::WidestMu => {
            // Only μ axes; choose the one with the widest overall extent.
            let rect = group_rect(&items);
            let best = (0..dims)
                .max_by(|&a, &b| rect.dim(a).mu_extent().total_cmp(&rect.dim(b).mu_extent()))
                // lint: allow(no-panic) -- dims >= 1 is a TreeConfig invariant, so max_by sees at least one axis
                .expect("dims >= 1");
            vec![Axis::Mu(best)]
        }
        SplitStrategy::HullIntegral | SplitStrategy::MinVolume => (0..dims)
            .flat_map(|i| [Axis::Mu(i), Axis::Sigma(i)])
            .collect(),
    };

    let mid = items.len() / 2;
    let mut best: Option<(f64, Axis, Vec<T>, Vec<T>)> = None;
    for axis in axes {
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| a.axis_key(axis).total_cmp(&b.axis_key(axis)));
        let right = sorted.split_off(mid);
        let left = sorted;
        let cost = log_add(
            node_cost(strategy, &group_rect(&left)),
            node_cost(strategy, &group_rect(&right)),
        );
        let better = match &best {
            None => true,
            Some((c, ..)) => cost < *c,
        };
        if better {
            best = Some((cost, axis, left, right));
        }
    }
    // lint: allow(no-panic) -- the axis loop above ran at least once (dims >= 1)
    let (_, axis, left, right) = best.expect("at least one candidate axis");
    SplitOutcome { axis, left, right }
}

/// The candidate split axes of a strategy, in the canonical order every
/// partitioner (in-memory, parallel, external) must share: all `2·dims`
/// parameter axes for the cost-driven strategies, the single widest-μ axis
/// (computed lazily from the covering rectangle) for the baseline.
pub(crate) fn candidate_axes(
    strategy: SplitStrategy,
    dims: usize,
    whole_rect: impl FnOnce() -> ParamRect,
) -> Vec<Axis> {
    match strategy {
        SplitStrategy::WidestMu => {
            let rect = whole_rect();
            let best = (0..dims)
                .max_by(|&a, &b| rect.dim(a).mu_extent().total_cmp(&rect.dim(b).mu_extent()))
                // lint: allow(no-panic) -- dims >= 1 is a TreeConfig invariant, so max_by sees at least one axis
                .expect("dims >= 1");
            vec![Axis::Mu(best)]
        }
        SplitStrategy::HullIntegral | SplitStrategy::MinVolume => (0..dims)
            .flat_map(|i| [Axis::Mu(i), Axis::Sigma(i)])
            .collect(),
    }
}

/// MBR of the items selected by `idxs`, unioned in index order — the same
/// fold [`group_rect`] performs over a materialised group.
///
/// # Panics
/// Panics if `idxs` is empty.
pub(crate) fn rect_of_indices<T: Splittable>(items: &[T], idxs: &[u32]) -> ParamRect {
    assert!(!idxs.is_empty(), "empty group has no bounds");
    let first = &items[idxs[0] as usize];
    let dims = first.dims();
    let mut ds: Vec<DimBounds> = (0..dims).map(|d| first.dim_bounds(d)).collect();
    for &i in &idxs[1..] {
        let it = &items[i as usize];
        for (d, b) in ds.iter_mut().enumerate() {
            *b = b.union(&it.dim_bounds(d));
        }
    }
    ParamRect::from_dims(ds)
}

/// Splits `items` at `split_at` along the cheapest candidate axis and
/// returns the two halves in the stable sort order of that axis.
///
/// Semantically identical to the original clone-sort-per-axis
/// implementation, but candidate axes are evaluated on a stable **argsort**
/// (one `Vec<f64>` of keys and one index permutation per axis) and only the
/// winning permutation materialises the items — no per-axis full clones.
fn choose_partition_split<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
    split_at: usize,
) -> (Vec<T>, Vec<T>) {
    let dims = items[0].dims();
    let n = items.len();
    let axes = candidate_axes(strategy, dims, || group_rect(&items));

    let mut best: Option<(f64, Vec<u32>)> = None;
    for axis in axes {
        let keys: Vec<f64> = items.iter().map(|it| it.axis_key(axis)).collect();
        // lint: allow(no-panic) -- split groups are capped by node capacity, far below u32::MAX
        let mut perm: Vec<u32> = (0..u32::try_from(n).expect("group fits u32")).collect();
        // Stable argsort == stable sort of the items themselves.
        perm.sort_by(|&a, &b| keys[a as usize].total_cmp(&keys[b as usize]));
        let cost = log_add(
            node_cost(strategy, &rect_of_indices(&items, &perm[..split_at])),
            node_cost(strategy, &rect_of_indices(&items, &perm[split_at..])),
        );
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, perm));
        }
    }
    // lint: allow(no-panic) -- the axis loop above ran at least once (dims >= 1)
    let (_, perm) = best.expect("at least one candidate axis");

    // Move the items into the winning order (no clones).
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut left = Vec::with_capacity(split_at);
    let mut right = Vec::with_capacity(n - split_at);
    for (i, &p) in perm.iter().enumerate() {
        // lint: allow(no-panic) -- perm is a permutation, so each slot index occurs exactly once
        let it = slots[p as usize].take().expect("each index moved once");
        if i < split_at {
            left.push(it);
        } else {
            right.push(it);
        }
    }
    (left, right)
}

/// Recursively partitions `items` into `⌈n / cap⌉` groups of at most `cap`
/// items each, choosing split axes with the same cost objective as node
/// splits. Used by the bulk loader.
///
/// # Panics
/// Panics if `cap < 1` or `items` is empty.
#[must_use]
pub fn partition_groups<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
    cap: usize,
) -> Vec<Vec<T>> {
    assert!(cap >= 1, "group capacity must be positive");
    assert!(!items.is_empty(), "cannot partition zero items");
    let n_groups = items.len().div_ceil(cap);
    let mut out = Vec::with_capacity(n_groups);
    partition_rec(strategy, items, n_groups, &mut out);
    out
}

fn partition_rec<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
    n_groups: usize,
    out: &mut Vec<Vec<T>>,
) {
    if n_groups <= 1 {
        out.push(items);
        return;
    }
    let g_left = n_groups / 2;
    let split_at = items.len() * g_left / n_groups;
    let (left, right) = choose_partition_split(strategy, items, split_at);
    partition_rec(strategy, left, g_left, out);
    partition_rec(strategy, right, n_groups - g_left, out);
}

/// Subtrees below this size are partitioned serially by one worker instead
/// of feeding the shared queue — the lock traffic would cost more than the
/// parallelism buys.
const PARALLEL_TASK_FLOOR: usize = 2048;

/// [`partition_groups`] fanned across `threads` scoped workers.
///
/// The recursion of [`partition_groups`] descends into two *independent*
/// sub-ranges after every split, so the right half goes onto a shared
/// work-stealing queue while the splitting worker keeps descending into the
/// left — the same claim-next-unit scheme `BatchExecutor` uses for queries.
/// Every group's final position is fixed by the recursion shape alone
/// (`n_groups` splits deterministically), so groups land in their slots in
/// input-recursion order regardless of which worker computed them: the
/// result is **identical** to the serial partitioning for any thread count.
///
/// # Panics
/// Panics if `cap < 1` or `items` is empty.
#[must_use]
pub fn partition_groups_parallel<T: Splittable + Clone + Send>(
    strategy: SplitStrategy,
    items: Vec<T>,
    cap: usize,
    threads: usize,
) -> Vec<Vec<T>> {
    assert!(cap >= 1, "group capacity must be positive");
    assert!(!items.is_empty(), "cannot partition zero items");
    let total = items.len().div_ceil(cap);
    partition_into_n_parallel(strategy, items, total, threads)
}

/// [`partition_groups_parallel`] with an explicit group count — the form
/// the bulk loader's recursion needs, because a sub-range's group count is
/// fixed by the parent split, not recomputed from the capacity.
pub(crate) fn partition_into_n_parallel<T: Splittable + Clone + Send>(
    strategy: SplitStrategy,
    items: Vec<T>,
    total: usize,
    threads: usize,
) -> Vec<Vec<T>> {
    assert!(!items.is_empty(), "cannot partition zero items");
    let threads = threads.max(1);
    if threads == 1 || total == 1 || items.len() <= PARALLEL_TASK_FLOOR {
        let mut out = Vec::with_capacity(total);
        partition_rec(strategy, items, total, &mut out);
        return out;
    }

    use std::sync::atomic::{AtomicUsize, Ordering};
    // (items, n_groups, slot offset of the sub-range's first group).
    // Rank WorkQueue: below the result slots, above every storage lock —
    // though partitioning runs on plain in-memory items and never holds a
    // pool lock.
    let queue: TrackedMutex<Vec<(Vec<T>, usize, usize)>> = TrackedMutex::new(
        vec![(items, total, 0)],
        LockRank::WorkQueue,
        0,
        "partition-queue",
    );
    // Idle workers park on this condvar instead of spinning — during the
    // serial head (first split) and tail (last sub-floor tasks) the
    // waiting threads must not tax the one that has work.
    let work_ready = TrackedCondvar::new();
    let done = AtomicUsize::new(0);
    let slots: Vec<TrackedMutex<Option<Vec<T>>>> = (0..total)
        .map(|i| TrackedMutex::new(None, LockRank::ResultSlot, i, "partition-slot"))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let task = {
                    let mut q = queue.lock();
                    loop {
                        if done.load(Ordering::Acquire) >= total {
                            return;
                        }
                        if let Some(task) = q.pop() {
                            break task;
                        }
                        q = work_ready.wait(q);
                    }
                };
                let (mut items, mut n, off) = task;
                // Small sub-ranges finish serially; their groups occupy the
                // consecutive slots [off, off + n) in recursion order.
                while n > 1 && items.len() > PARALLEL_TASK_FLOOR {
                    let g_left = n / 2;
                    let split_at = items.len() * g_left / n;
                    let (left, right) = choose_partition_split(strategy, items, split_at);
                    queue.lock().push((right, n - g_left, off + g_left));
                    work_ready.notify_one();
                    items = left;
                    n = g_left;
                }
                let mut local = Vec::with_capacity(n);
                partition_rec(strategy, items, n, &mut local);
                debug_assert_eq!(local.len(), n);
                for (i, g) in local.into_iter().enumerate() {
                    *slots[off + i].lock() = Some(g);
                }
                if done.fetch_add(n, Ordering::Release) + n >= total {
                    // All groups are placed: wake every parked worker so
                    // the scope can close. Take the queue lock so the
                    // notification cannot slip between a waiter's check of
                    // `done` and its wait.
                    let _q = queue.lock();
                    work_ready.notify_all();
                }
            });
        }
    });

    slots
        .into_iter()
        // lint: allow(no-panic) -- the scope above joins every worker, and workers fill exactly the slots [off, off+n) they claimed
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// Splits an overflowing set into as many groups of at most `cap` items as
/// the recursive median splits produce (at least two) — the multi-way
/// counterpart of [`split_items`] used when a batch insert overfills one
/// node by more than a single split's worth.
///
/// # Panics
/// Panics if `cap < 2` or `items.len() < 2`.
#[must_use]
pub fn split_many<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
    cap: usize,
) -> Vec<Vec<T>> {
    assert!(cap >= 2, "capacity below two cannot hold a split result");
    if items.len() <= cap {
        return vec![items];
    }
    let out = split_items(strategy, items);
    let mut groups = split_many(strategy, out.left, cap);
    groups.extend(split_many(strategy, out.right, cap));
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfv::Pfv;

    fn leaf(id: u64, mu: f64, sigma: f64) -> LeafEntry {
        LeafEntry {
            id,
            pfv: Pfv::new(vec![mu], vec![sigma]).unwrap(),
        }
    }

    #[test]
    fn split_balances_cardinality() {
        let items: Vec<LeafEntry> = (0..9).map(|i| leaf(i, i as f64, 0.5)).collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert_eq!(out.left.len(), 4);
        assert_eq!(out.right.len(), 5);
    }

    #[test]
    fn low_sigma_cluster_splits_by_mu() {
        // Paper intuition: if σ̂ is low, split by μ.
        let items: Vec<LeafEntry> = (0..8)
            .map(|i| leaf(i, i as f64 * 2.0, 0.05 + 0.001 * (i % 2) as f64))
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert!(matches!(out.axis, Axis::Mu(0)), "axis = {:?}", out.axis);
        // Groups are separated in μ.
        let max_left = out
            .left
            .iter()
            .map(|e| e.pfv.means()[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let min_right = out
            .right
            .iter()
            .map(|e| e.pfv.means()[0])
            .fold(f64::INFINITY, f64::min);
        assert!(max_left <= min_right);
    }

    #[test]
    fn mixed_sigma_cluster_splits_by_sigma() {
        // Paper intuition: with wildly mixed σ and narrow μ, split by σ so
        // that at least the low-σ node becomes selective.
        let items: Vec<LeafEntry> = (0..8)
            .map(|i| {
                let sigma = if i % 2 == 0 { 0.01 } else { 10.0 };
                leaf(i, 0.1 * i as f64, sigma)
            })
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert!(matches!(out.axis, Axis::Sigma(0)), "axis = {:?}", out.axis);
    }

    #[test]
    fn hull_split_cost_not_worse_than_alternatives() {
        // The chosen split must have minimal hull cost among all tentative
        // median splits (it is an argmin by construction; verify against a
        // brute-force recomputation).
        let items: Vec<LeafEntry> = (0..10)
            .map(|i| leaf(i, (i * i) as f64 * 0.3, 0.05 + 0.3 * (i % 3) as f64))
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items.clone());
        let chosen = log_add(
            node_cost(SplitStrategy::HullIntegral, &group_rect(&out.left)),
            node_cost(SplitStrategy::HullIntegral, &group_rect(&out.right)),
        );
        let mid = items.len() / 2;
        for axis in [Axis::Mu(0), Axis::Sigma(0)] {
            let mut sorted = items.clone();
            sorted.sort_by(|a, b| a.axis_key(axis).total_cmp(&b.axis_key(axis)));
            let right = sorted.split_off(mid);
            let cost = log_add(
                node_cost(SplitStrategy::HullIntegral, &group_rect(&sorted)),
                node_cost(SplitStrategy::HullIntegral, &group_rect(&right)),
            );
            assert!(chosen <= cost + 1e-12);
        }
    }

    #[test]
    fn widest_mu_ignores_sigma() {
        let items: Vec<LeafEntry> = (0..8)
            .map(|i| {
                let sigma = if i % 2 == 0 { 0.01 } else { 10.0 };
                leaf(i, 0.001 * i as f64, sigma)
            })
            .collect();
        let out = split_items(SplitStrategy::WidestMu, items);
        assert!(matches!(out.axis, Axis::Mu(_)));
    }

    #[test]
    fn inner_entries_split_too() {
        let items: Vec<InnerEntry> = (0..6)
            .map(|i| InnerEntry {
                child: gauss_storage::PageId(i),
                count: 5,
                rect: ParamRect::from_dims(vec![DimBounds::new(
                    i as f64,
                    i as f64 + 0.5,
                    0.1,
                    0.2,
                )]),
            })
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert_eq!(out.left.len() + out.right.len(), 6);
        assert!(out.left.len() >= 3 && out.right.len() >= 3);
    }

    #[test]
    fn group_rect_is_tight() {
        let items = vec![leaf(0, 1.0, 0.1), leaf(1, 3.0, 0.4), leaf(2, 2.0, 0.2)];
        let r = group_rect(&items);
        assert_eq!(r.dim(0).mu_lo, 1.0);
        assert_eq!(r.dim(0).mu_hi, 3.0);
        assert_eq!(r.dim(0).sigma_lo, 0.1);
        assert_eq!(r.dim(0).sigma_hi, 0.4);
    }

    #[test]
    #[should_panic(expected = "fewer than two")]
    fn split_rejects_singleton() {
        let _ = split_items(SplitStrategy::HullIntegral, vec![leaf(0, 0.0, 0.1)]);
    }

    #[test]
    fn partition_respects_capacity() {
        let items: Vec<LeafEntry> = (0..103)
            .map(|i| leaf(i, (i as f64).sin() * 10.0, 0.1 + (i % 4) as f64 * 0.2))
            .collect();
        for cap in [2, 5, 7, 16, 200] {
            let groups = partition_groups(SplitStrategy::HullIntegral, items.clone(), cap);
            assert_eq!(groups.len(), 103usize.div_ceil(cap));
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, 103);
            for g in &groups {
                assert!(!g.is_empty());
                assert!(g.len() <= cap, "group of {} exceeds cap {}", g.len(), cap);
            }
        }
    }

    #[test]
    fn partition_keeps_every_item_exactly_once() {
        let items: Vec<LeafEntry> = (0..50).map(|i| leaf(i, i as f64, 0.3)).collect();
        let groups = partition_groups(SplitStrategy::MinVolume, items, 8);
        let mut ids: Vec<u64> = groups.iter().flatten().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partition_single_group() {
        let items: Vec<LeafEntry> = (0..5).map(|i| leaf(i, i as f64, 0.3)).collect();
        let groups = partition_groups(SplitStrategy::HullIntegral, items, 10);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }

    #[test]
    fn parallel_partition_identical_to_serial() {
        // Enough items that the work queue actually fans out (the serial
        // floor is 2048), on every strategy and several thread counts.
        let items: Vec<LeafEntry> = (0..6000)
            .map(|i| {
                leaf(
                    i,
                    (i as f64 * 0.917).sin() * 40.0,
                    0.02 + ((i * 7) % 11) as f64 * 0.09,
                )
            })
            .collect();
        for strategy in [
            SplitStrategy::HullIntegral,
            SplitStrategy::MinVolume,
            SplitStrategy::WidestMu,
        ] {
            let serial = partition_groups(strategy, items.clone(), 24);
            for threads in [1, 2, 3, 8] {
                let par = partition_groups_parallel(strategy, items.clone(), 24, threads);
                assert_eq!(par, serial, "strategy {strategy:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn split_many_respects_capacity_and_keeps_items() {
        let items: Vec<LeafEntry> = (0..77)
            .map(|i| leaf(i, (i as f64 * 1.3).cos() * 15.0, 0.1 + (i % 6) as f64 * 0.1))
            .collect();
        for cap in [4, 8, 80] {
            let groups = split_many(SplitStrategy::HullIntegral, items.clone(), cap);
            let mut ids: Vec<u64> = groups.iter().flatten().map(|e| e.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..77).collect::<Vec<_>>());
            for g in &groups {
                assert!(!g.is_empty() && g.len() <= cap);
            }
            if cap >= 80 {
                assert_eq!(groups.len(), 1);
            }
        }
    }
}
