//! Node split strategies (paper §5.3).
//!
//! On overflow the paper tentatively performs a median split in each
//! μ-dimension and each σ-dimension, computes the bounds of the two
//! resulting nodes, and keeps the split minimising the summed hull
//! integrals `∫ N̂(x) dx` — the probability proxy for a node being accessed
//! by an arbitrary query. Two conventional baselines ([`SplitStrategy::WidestMu`],
//! [`SplitStrategy::MinVolume`]) are included for the ablation study.

use crate::config::SplitStrategy;
use crate::node::{InnerEntry, LeafEntry};
use pfv::{DimBounds, ParamRect};

/// A split axis: the μ or the σ component of one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Split by feature value of dimension `i`.
    Mu(usize),
    /// Split by uncertainty value of dimension `i`.
    Sigma(usize),
}

/// Items a node split can operate on (leaf pfv entries or inner child
/// entries).
pub trait Splittable {
    /// Dimensionality.
    fn dims(&self) -> usize;
    /// Sort key along `axis` (centre of the item's extent on that axis).
    fn axis_key(&self, axis: Axis) -> f64;
    /// The item's parameter bounds in dimension `dim`.
    fn dim_bounds(&self, dim: usize) -> DimBounds;
}

impl Splittable for LeafEntry {
    fn dims(&self) -> usize {
        self.pfv.dims()
    }

    fn axis_key(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Mu(i) => self.pfv.means()[i],
            Axis::Sigma(i) => self.pfv.sigmas()[i],
        }
    }

    fn dim_bounds(&self, dim: usize) -> DimBounds {
        let (m, s) = self.pfv.component(dim);
        DimBounds::point(m, s)
    }
}

impl Splittable for InnerEntry {
    fn dims(&self) -> usize {
        self.rect.dims()
    }

    fn axis_key(&self, axis: Axis) -> f64 {
        match axis {
            Axis::Mu(i) => {
                let d = self.rect.dim(i);
                0.5 * (d.mu_lo + d.mu_hi)
            }
            Axis::Sigma(i) => {
                let d = self.rect.dim(i);
                0.5 * (d.sigma_lo + d.sigma_hi)
            }
        }
    }

    fn dim_bounds(&self, dim: usize) -> DimBounds {
        *self.rect.dim(dim)
    }
}

/// MBR of a group of splittable items.
///
/// # Panics
/// Panics on an empty group.
#[must_use]
pub fn group_rect<T: Splittable>(items: &[T]) -> ParamRect {
    assert!(!items.is_empty(), "empty group has no bounds");
    let dims = items[0].dims();
    let mut ds: Vec<DimBounds> = (0..dims).map(|d| items[0].dim_bounds(d)).collect();
    for it in &items[1..] {
        for (d, b) in ds.iter_mut().enumerate() {
            *b = b.union(&it.dim_bounds(d));
        }
    }
    ParamRect::from_dims(ds)
}

/// Log-space cost of one node under a strategy's objective.
///
/// * Hull-integral strategy: `Σ_dim ln ∫N̂_dim` (log of the product of
///   per-dimension hull integrals);
/// * volume strategies: log of the parameter-space volume, with a small ε
///   floor per extent so degenerate rectangles stay comparable.
#[must_use]
pub fn node_cost(strategy: SplitStrategy, rect: &ParamRect) -> f64 {
    const EPS: f64 = 1e-12;
    match strategy {
        SplitStrategy::HullIntegral => rect.log_access_cost(),
        SplitStrategy::WidestMu | SplitStrategy::MinVolume => rect
            .as_slice()
            .iter()
            .map(|d| (d.mu_extent() + EPS).ln() + (d.sigma_extent() + EPS).ln())
            .sum(),
    }
}

/// `ln(exp(a) + exp(b))` — combines the two child costs for comparison.
fn log_add(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if lo == f64::NEG_INFINITY {
        hi
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

/// Outcome of a split: the chosen axis and the two groups.
#[derive(Debug)]
pub struct SplitOutcome<T> {
    /// Axis the split was performed on.
    pub axis: Axis,
    /// Left group (keeps the original page).
    pub left: Vec<T>,
    /// Right group (goes to a fresh page).
    pub right: Vec<T>,
}

/// Splits an overflowing set of items into two groups.
///
/// Every candidate axis receives a median split (so both halves satisfy the
/// minimum fanout by construction); the strategy's cost function picks the
/// winner.
///
/// # Panics
/// Panics if fewer than two items are supplied.
#[must_use]
pub fn split_items<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
) -> SplitOutcome<T> {
    assert!(items.len() >= 2, "cannot split fewer than two items");
    let dims = items[0].dims();

    let axes: Vec<Axis> = match strategy {
        SplitStrategy::WidestMu => {
            // Only μ axes; choose the one with the widest overall extent.
            let rect = group_rect(&items);
            let best = (0..dims)
                .max_by(|&a, &b| rect.dim(a).mu_extent().total_cmp(&rect.dim(b).mu_extent()))
                .expect("dims >= 1");
            vec![Axis::Mu(best)]
        }
        SplitStrategy::HullIntegral | SplitStrategy::MinVolume => (0..dims)
            .flat_map(|i| [Axis::Mu(i), Axis::Sigma(i)])
            .collect(),
    };

    let mid = items.len() / 2;
    let mut best: Option<(f64, Axis, Vec<T>, Vec<T>)> = None;
    for axis in axes {
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| a.axis_key(axis).total_cmp(&b.axis_key(axis)));
        let right = sorted.split_off(mid);
        let left = sorted;
        let cost = log_add(
            node_cost(strategy, &group_rect(&left)),
            node_cost(strategy, &group_rect(&right)),
        );
        let better = match &best {
            None => true,
            Some((c, ..)) => cost < *c,
        };
        if better {
            best = Some((cost, axis, left, right));
        }
    }
    let (_, axis, left, right) = best.expect("at least one candidate axis");
    SplitOutcome { axis, left, right }
}

/// Recursively partitions `items` into `⌈n / cap⌉` groups of at most `cap`
/// items each, choosing split axes with the same cost objective as node
/// splits. Used by the bulk loader.
///
/// # Panics
/// Panics if `cap < 1` or `items` is empty.
#[must_use]
pub fn partition_groups<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
    cap: usize,
) -> Vec<Vec<T>> {
    assert!(cap >= 1, "group capacity must be positive");
    assert!(!items.is_empty(), "cannot partition zero items");
    let n_groups = items.len().div_ceil(cap);
    let mut out = Vec::with_capacity(n_groups);
    partition_rec(strategy, items, n_groups, &mut out);
    out
}

fn partition_rec<T: Splittable + Clone>(
    strategy: SplitStrategy,
    items: Vec<T>,
    n_groups: usize,
    out: &mut Vec<Vec<T>>,
) {
    if n_groups <= 1 {
        out.push(items);
        return;
    }
    let dims = items[0].dims();
    let g_left = n_groups / 2;
    let split_at = items.len() * g_left / n_groups;

    let axes: Vec<Axis> = match strategy {
        SplitStrategy::WidestMu => {
            let rect = group_rect(&items);
            let best = (0..dims)
                .max_by(|&a, &b| rect.dim(a).mu_extent().total_cmp(&rect.dim(b).mu_extent()))
                .expect("dims >= 1");
            vec![Axis::Mu(best)]
        }
        _ => (0..dims)
            .flat_map(|i| [Axis::Mu(i), Axis::Sigma(i)])
            .collect(),
    };

    let mut best: Option<(f64, Vec<T>, Vec<T>)> = None;
    for axis in axes {
        let mut sorted = items.clone();
        sorted.sort_by(|a, b| a.axis_key(axis).total_cmp(&b.axis_key(axis)));
        let right = sorted.split_off(split_at);
        let left = sorted;
        let cost = log_add(
            node_cost(strategy, &group_rect(&left)),
            node_cost(strategy, &group_rect(&right)),
        );
        if best.as_ref().is_none_or(|(c, ..)| cost < *c) {
            best = Some((cost, left, right));
        }
    }
    let (_, left, right) = best.expect("at least one axis");
    partition_rec(strategy, left, g_left, out);
    partition_rec(strategy, right, n_groups - g_left, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfv::Pfv;

    fn leaf(id: u64, mu: f64, sigma: f64) -> LeafEntry {
        LeafEntry {
            id,
            pfv: Pfv::new(vec![mu], vec![sigma]).unwrap(),
        }
    }

    #[test]
    fn split_balances_cardinality() {
        let items: Vec<LeafEntry> = (0..9).map(|i| leaf(i, i as f64, 0.5)).collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert_eq!(out.left.len(), 4);
        assert_eq!(out.right.len(), 5);
    }

    #[test]
    fn low_sigma_cluster_splits_by_mu() {
        // Paper intuition: if σ̂ is low, split by μ.
        let items: Vec<LeafEntry> = (0..8)
            .map(|i| leaf(i, i as f64 * 2.0, 0.05 + 0.001 * (i % 2) as f64))
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert!(matches!(out.axis, Axis::Mu(0)), "axis = {:?}", out.axis);
        // Groups are separated in μ.
        let max_left = out
            .left
            .iter()
            .map(|e| e.pfv.means()[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let min_right = out
            .right
            .iter()
            .map(|e| e.pfv.means()[0])
            .fold(f64::INFINITY, f64::min);
        assert!(max_left <= min_right);
    }

    #[test]
    fn mixed_sigma_cluster_splits_by_sigma() {
        // Paper intuition: with wildly mixed σ and narrow μ, split by σ so
        // that at least the low-σ node becomes selective.
        let items: Vec<LeafEntry> = (0..8)
            .map(|i| {
                let sigma = if i % 2 == 0 { 0.01 } else { 10.0 };
                leaf(i, 0.1 * i as f64, sigma)
            })
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert!(matches!(out.axis, Axis::Sigma(0)), "axis = {:?}", out.axis);
    }

    #[test]
    fn hull_split_cost_not_worse_than_alternatives() {
        // The chosen split must have minimal hull cost among all tentative
        // median splits (it is an argmin by construction; verify against a
        // brute-force recomputation).
        let items: Vec<LeafEntry> = (0..10)
            .map(|i| leaf(i, (i * i) as f64 * 0.3, 0.05 + 0.3 * (i % 3) as f64))
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items.clone());
        let chosen = log_add(
            node_cost(SplitStrategy::HullIntegral, &group_rect(&out.left)),
            node_cost(SplitStrategy::HullIntegral, &group_rect(&out.right)),
        );
        let mid = items.len() / 2;
        for axis in [Axis::Mu(0), Axis::Sigma(0)] {
            let mut sorted = items.clone();
            sorted.sort_by(|a, b| a.axis_key(axis).total_cmp(&b.axis_key(axis)));
            let right = sorted.split_off(mid);
            let cost = log_add(
                node_cost(SplitStrategy::HullIntegral, &group_rect(&sorted)),
                node_cost(SplitStrategy::HullIntegral, &group_rect(&right)),
            );
            assert!(chosen <= cost + 1e-12);
        }
    }

    #[test]
    fn widest_mu_ignores_sigma() {
        let items: Vec<LeafEntry> = (0..8)
            .map(|i| {
                let sigma = if i % 2 == 0 { 0.01 } else { 10.0 };
                leaf(i, 0.001 * i as f64, sigma)
            })
            .collect();
        let out = split_items(SplitStrategy::WidestMu, items);
        assert!(matches!(out.axis, Axis::Mu(_)));
    }

    #[test]
    fn inner_entries_split_too() {
        let items: Vec<InnerEntry> = (0..6)
            .map(|i| InnerEntry {
                child: gauss_storage::PageId(i),
                count: 5,
                rect: ParamRect::from_dims(vec![DimBounds::new(
                    i as f64,
                    i as f64 + 0.5,
                    0.1,
                    0.2,
                )]),
            })
            .collect();
        let out = split_items(SplitStrategy::HullIntegral, items);
        assert_eq!(out.left.len() + out.right.len(), 6);
        assert!(out.left.len() >= 3 && out.right.len() >= 3);
    }

    #[test]
    fn group_rect_is_tight() {
        let items = vec![leaf(0, 1.0, 0.1), leaf(1, 3.0, 0.4), leaf(2, 2.0, 0.2)];
        let r = group_rect(&items);
        assert_eq!(r.dim(0).mu_lo, 1.0);
        assert_eq!(r.dim(0).mu_hi, 3.0);
        assert_eq!(r.dim(0).sigma_lo, 0.1);
        assert_eq!(r.dim(0).sigma_hi, 0.4);
    }

    #[test]
    #[should_panic(expected = "fewer than two")]
    fn split_rejects_singleton() {
        let _ = split_items(SplitStrategy::HullIntegral, vec![leaf(0, 0.0, 0.1)]);
    }

    #[test]
    fn partition_respects_capacity() {
        let items: Vec<LeafEntry> = (0..103)
            .map(|i| leaf(i, (i as f64).sin() * 10.0, 0.1 + (i % 4) as f64 * 0.2))
            .collect();
        for cap in [2, 5, 7, 16, 200] {
            let groups = partition_groups(SplitStrategy::HullIntegral, items.clone(), cap);
            assert_eq!(groups.len(), 103usize.div_ceil(cap));
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, 103);
            for g in &groups {
                assert!(!g.is_empty());
                assert!(g.len() <= cap, "group of {} exceeds cap {}", g.len(), cap);
            }
        }
    }

    #[test]
    fn partition_keeps_every_item_exactly_once() {
        let items: Vec<LeafEntry> = (0..50).map(|i| leaf(i, i as f64, 0.3)).collect();
        let groups = partition_groups(SplitStrategy::MinVolume, items, 8);
        let mut ids: Vec<u64> = groups.iter().flatten().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partition_single_group() {
        let items: Vec<LeafEntry> = (0..5).map(|i| leaf(i, i as f64, 0.3)).collect();
        let groups = partition_groups(SplitStrategy::HullIntegral, items, 10);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }
}
