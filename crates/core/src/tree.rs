//! The Gauss-tree structure: creation, persistence, insertion, bulk loading.

use crate::bulk::{BulkLoadOptions, BulkLoadReport};
use crate::config::{LeafFormat, TreeConfig};
use crate::node::{CachedNode, InnerEntry, LeafEntry, Node, NodeCodecError};
use crate::split::{group_rect, node_cost, split_items, split_many};
use crate::view::{Plane, ReadView};
use gauss_storage::store::{Durability, PageStore, StoreError};
use gauss_storage::{
    fnv1a64, EpochRegistry, PageId, Reader, SharedBufferPool, SideCache, WriteBatch, Writer,
};
use pfv::{quant, CombineMode, ParamRect, Pfv};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

const META_MAGIC: u32 = 0x4754_5245; // "GTRE"
/// Current metadata format: two versioned, checksummed slots (pages 0–1)
/// committed alternately — see the `flush` docs for the protocol. v3 adds
/// the leaf-format tag byte to the v2 layout; everything else is
/// identical.
const META_VERSION: u32 = 3;
/// The dual-slot format without the leaf-format byte; still readable
/// (such trees are [`LeafFormat::Exact`]), rewritten as v3 on commit.
const META_VERSION_V2: u32 = 2;
/// The pre-durability single-slot format; still readable (and writable,
/// in place) for files created before the dual-slot commit existed.
const META_VERSION_V1: u32 = 1;

/// The two metadata slots of a v2 tree.
const META_SLOT_A: PageId = PageId(0);
const META_SLOT_B: PageId = PageId(1);

/// Fill factor applied by the bulk loader so bulk-built nodes can absorb a
/// few inserts before splitting.
const BULK_FILL: f64 = 0.75;

/// Base metadata bytes in a v3 meta slot before the persisted free-list
/// ids: magic + version + checksum + epoch + allocated-page count, the
/// fixed tree fields (including the leaf-format byte added in v3), the
/// in-meta id count (u32) and the overflow chain pointer (u64).
const META_BASE_BYTES: usize = 4 + 4 + 8 + 8 + 8 + 4 + 1 + 1 + 1 + 4 + 4 + 8 + 4 + 8 + 4 + 8;

/// Byte offset of the checksum field inside a v2 meta slot.
const META_CHECKSUM_OFFSET: usize = 8;

/// v1 equivalent of [`META_BASE_BYTES`] (no checksum/epoch/allocation).
const META_BASE_BYTES_V1: usize = 4 + 4 + 4 + 1 + 1 + 4 + 4 + 8 + 4 + 8 + 4 + 8;

/// Bytes of a free-list overflow carrier page consumed by its header
/// (next-pointer u64 + id count u32).
const FREE_CHAIN_HEADER_BYTES: usize = 8 + 4;

/// Errors surfaced by the Gauss-tree.
#[derive(Debug)]
pub enum TreeError {
    /// Underlying page store failed.
    Store(StoreError),
    /// A page did not decode to a valid node.
    Codec(NodeCodecError),
    /// A pfv with the wrong dimensionality was supplied.
    DimMismatch {
        /// Tree dimensionality.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// The store does not contain a Gauss-tree (bad magic / version).
    NotAGaussTree,
    /// Structural corruption detected while traversing.
    Corrupt(&'static str),
    /// A page was returned to the free list twice. Surfaced as a hard
    /// error (not just a debug assertion) because a double-freed page
    /// would later be handed out to two nodes at once — exactly the
    /// free-list corruption crash recovery has to be able to rule out.
    DoubleFree {
        /// The doubly freed page id.
        page: u64,
    },
    /// A parameter of an ingested pfv cannot be quantised to `f32` — it
    /// overflows the `f32` range or is non-finite. Raised only by trees
    /// built with [`crate::LeafFormat::Quantised`]; the exact format
    /// stores any finite `f64`.
    QuantisationRange {
        /// Dimension of the offending parameter.
        dim: usize,
        /// The unquantisable value.
        value: f64,
    },
    /// No committed epoch is available to pin as a [`Snapshot`] — either
    /// the file uses the legacy v1 format (no epochs), or uncommitted
    /// in-place writes have diverged the store from the last commit (call
    /// [`GaussTree::flush`] first).
    SnapshotUnavailable(&'static str),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Store(e) => write!(f, "store error: {e}"),
            TreeError::Codec(e) => write!(f, "codec error: {e}"),
            TreeError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "dimensionality mismatch: tree has {expected}, vector has {got}"
                )
            }
            TreeError::NotAGaussTree => write!(f, "store does not contain a Gauss-tree"),
            TreeError::Corrupt(what) => write!(f, "corrupt tree: {what}"),
            TreeError::DoubleFree { page } => write!(f, "page {page} freed twice"),
            TreeError::QuantisationRange { dim, value } => {
                write!(
                    f,
                    "value {value:e} in dimension {dim} does not fit the quantised leaf format"
                )
            }
            TreeError::SnapshotUnavailable(why) => {
                write!(f, "no committed epoch to snapshot: {why}")
            }
        }
    }
}

impl std::error::Error for TreeError {}

impl From<StoreError> for TreeError {
    fn from(e: StoreError) -> Self {
        TreeError::Store(e)
    }
}

impl From<NodeCodecError> for TreeError {
    fn from(e: NodeCodecError) -> Self {
        TreeError::Codec(e)
    }
}

/// The Gauss-tree (Definition 4 of the paper) — the *writer handle* of
/// the index.
///
/// Nodes live behind a [`SharedBufferPool`], so every read-only operation
/// (`k_mliq*`, `tiq*`, `for_each_entry`, `check_invariants`, cursors —
/// all provided by the [`ReadView`] trait) takes `&self` and many threads
/// may query one tree concurrently (see [`crate::executor`]). Mutation
/// (`insert`, `delete`, `bulk_load`, `flush`) keeps `&mut self`.
/// Constructors accept anything convertible into a [`SharedBufferPool`] —
/// in particular a plain [`gauss_storage::BufferPool`].
///
/// [`GaussTree::snapshot`] additionally pins the last *committed* epoch
/// as an owning [`Snapshot`] view: queries on it run lock-free against
/// that frozen state while this handle keeps shadow-building the next
/// epoch (MVCC — see the [`Snapshot`] docs for the protocol).
///
/// See the [crate docs](crate) for an overview and an example.
#[derive(Debug)]
pub struct GaussTree<S: PageStore> {
    pool: Arc<SharedBufferPool<S>>,
    /// Decoded-node companion cache: pages already paid for via the pool
    /// are kept in query-ready form ([`CachedNode`] — columnar leaves,
    /// inner entry vectors) so the read hot path never re-parses bytes.
    /// Invalidated on every node write; never consulted without first
    /// requesting the page from the pool, so access accounting is
    /// unchanged. Shared with snapshots: shadow paging guarantees a
    /// committed page's bytes never change while a snapshot can read
    /// them, so cached decodes stay valid across epochs.
    node_cache: Arc<SideCache<CachedNode>>,
    /// Epoch pin counts of live [`Snapshot`]s (shared with every snapshot
    /// handed out). Gates page reclamation ([`GaussTree::free_aging`])
    /// and forces shadow paging while pins exist.
    registry: Arc<EpochRegistry>,
    config: TreeConfig,
    leaf_cap: usize,
    inner_cap: usize,
    /// On-disk metadata layout this tree was opened with (see `flush`).
    format: MetaFormat,
    /// Crash-safety policy. [`Durability::None`] keeps the fast legacy
    /// write path (in-place node updates, no barriers); `Flush`/`Fsync`
    /// switch mutation to shadow paging so the last committed epoch is
    /// never overwritten, and order data barriers before meta commits.
    durability: Durability,
    /// Last committed epoch (v2 format; 0 before the first commit).
    epoch: u64,
    root: PageId,
    height: u32,
    len: u64,
    /// Free pages whose free was *committed* at an earlier epoch (or that
    /// never belonged to a committed tree). Allocation pops from here
    /// before extending the store, so the store never accumulates
    /// unreachable pages — [`GaussTree::check_invariants`] asserts exactly
    /// that. Under shadow paging these are the only reusable pages: a
    /// crash rolls back to the committed epoch, which does not reference
    /// them.
    free_committed: Vec<PageId>,
    /// Pages freed during the current epoch that the committed tree still
    /// references (shadow paging parks them here). Reusing one before the
    /// next commit would corrupt the crash-fallback state; the next
    /// successful `flush` promotes them to `free_committed`.
    free_pending: Vec<PageId>,
    /// Free pages currently serving as the committed meta slot's free-list
    /// overflow chain. Free for accounting purposes, but not reusable
    /// until the *next* commit supersedes the chain they carry.
    carriers_live: Vec<PageId>,
    /// Every page currently on any of the three free lists — the release
    /// double-free guard ([`TreeError::DoubleFree`]).
    free_set: HashSet<u64>,
    /// Pages written since the last commit that the committed tree does
    /// not reference; shadow paging may update them in place.
    shadowed: HashSet<u64>,
    /// Root page as of the last committed epoch — what
    /// [`GaussTree::snapshot`] pins while the working `root`/`height`/`len`
    /// fields run ahead under shadow paging.
    committed_root: PageId,
    /// Height as of the last committed epoch.
    committed_height: u32,
    /// Entry count as of the last committed epoch.
    committed_len: u64,
    /// Whether an in-place write has diverged the store from the last
    /// committed epoch (legacy-speed mutation under [`Durability::None`]
    /// with no live snapshots). While set, [`GaussTree::snapshot`] refuses
    /// to pin the stale committed root.
    dirty_since_commit: bool,
    /// Commit-promoted frees still gated by live snapshots: each entry
    /// holds the pages whose free was committed at the tagged epoch,
    /// reusable only once no snapshot pins an *older* epoch. Kept in
    /// epoch order so reaping pops from the front.
    free_aging: VecDeque<(u64, Vec<PageId>)>,
}

/// On-disk metadata layout of an opened tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetaFormat {
    /// Single meta page at page 0, no epoch/checksum. Files from before
    /// the dual-slot commit open (and keep flushing) in this format —
    /// page 1 holds a node in those files, so the second slot can never
    /// be claimed in place. Rebuild to upgrade.
    V1,
    /// Dual-slot versioned commit (pages 0–1).
    V2,
}

/// What [`GaussTree::open_with_recovery`] found and decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the slot the tree was opened from (0 for legacy files).
    pub epoch: u64,
    /// Whether the newest slot was rejected (torn/corrupt/invariant
    /// failure) and an older epoch was used instead.
    pub fell_back: bool,
    /// Pages allocated after the chosen epoch's commit (an interrupted
    /// mutation's shadow pages), reclaimed onto the free list.
    pub orphaned_pages: u64,
    /// Whether the file uses the legacy single-slot format.
    pub legacy: bool,
}

/// Builder-style construction options for [`GaussTree::create_with`],
/// [`GaussTree::open_with`] and [`GaussTree::recover_with`] — the one
/// place the crash-safety policy and cache sizing are decided.
///
/// ```
/// use gauss_tree::TreeOptions;
/// use gauss_storage::Durability;
///
/// let opts = TreeOptions::new()
///     .durability(Durability::Fsync)
///     .node_cache_capacity(4096);
/// # let _ = opts;
/// ```
#[derive(Debug, Clone, Default)]
pub struct TreeOptions {
    durability: Durability,
    node_cache_capacity: Option<usize>,
    leaf_format: Option<crate::config::LeafFormat>,
}

impl TreeOptions {
    /// Default options: [`Durability::None`], decoded-node cache sized to
    /// the buffer pool's frame capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash-safety policy for every mutation on the opened tree (see
    /// [`GaussTree::flush`] for the commit protocol it drives).
    #[must_use]
    pub fn durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Capacity (in nodes) of the decoded-node companion cache. Defaults
    /// to the buffer pool's frame capacity.
    #[must_use]
    pub fn node_cache_capacity(mut self, nodes: usize) -> Self {
        self.node_cache_capacity = Some(nodes);
        self
    }

    /// On-disk leaf entry representation for trees *created* with these
    /// options (overrides the [`TreeConfig`]'s format). Ignored on open —
    /// an existing tree's format is part of its persisted metadata.
    #[must_use]
    pub fn leaf_format(mut self, format: crate::config::LeafFormat) -> Self {
        self.leaf_format = Some(format);
        self
    }

    /// The decoded-node cache capacity for a pool of `pool_cap` frames.
    fn cache_cap(&self, pool_cap: usize) -> usize {
        self.node_cache_capacity.unwrap_or(pool_cap).max(1)
    }
}

/// An immutable, owning view of one *committed* epoch of a [`GaussTree`] —
/// the reader half of the MVCC split.
///
/// Obtained from [`GaussTree::snapshot`]. A snapshot pins its epoch in the
/// tree's shared [`EpochRegistry`]:
///
/// * every query method (provided by [`ReadView`]) runs lock-free against
///   the frozen committed root — no `&mut` borrow of the writer, no writer
///   mutex — while the writer keeps shadow-building the next epoch;
/// * pages the writer frees stay un-reused until every snapshot pinning an
///   epoch that references them is dropped (see the free-aging rule in
///   [`GaussTree::flush`]);
/// * while any snapshot is live the writer shadow-pages even under
///   [`Durability::None`], so committed bytes are never overwritten.
///
/// Cloning re-pins the epoch; dropping unpins it. Snapshots are `Send` and
/// `Sync` — hand them to other threads freely.
#[derive(Debug)]
pub struct Snapshot<S: PageStore> {
    pool: Arc<SharedBufferPool<S>>,
    node_cache: Arc<SideCache<CachedNode>>,
    registry: Arc<EpochRegistry>,
    config: TreeConfig,
    leaf_cap: usize,
    inner_cap: usize,
    epoch: u64,
    root: PageId,
    height: u32,
    len: u64,
}

impl<S: PageStore> Snapshot<S> {
    /// The committed epoch this snapshot pins.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of stored pfv at this epoch.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree was empty at this epoch.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree at this epoch (0 = the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dimensionality of the indexed pfv.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// The tree's configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Root page id at this epoch.
    #[must_use]
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Structural invariant check of the pinned epoch (§4 node invariants:
    /// conservative rectangles, counts, balanced height, fill factors with
    /// `strict_fanout`). Page accounting is *not* checked — free lists
    /// belong to the writer's working state, not to a frozen epoch.
    ///
    /// # Errors
    /// Store / codec errors while traversing.
    pub fn check_invariants(
        &self,
        strict_fanout: bool,
    ) -> Result<Vec<crate::check::InvariantError>, TreeError> {
        self.tree_plane()
            .check_structure(strict_fanout)
            .map(|(errs, _)| errs)
    }

    /// The raw single-tree read-plane of this pinned epoch — for the
    /// in-crate algorithms (structure checks, forest fan-out) that need
    /// a [`Plane`] rather than the [`ReadView`] dispatch enum.
    pub(crate) fn tree_plane(&self) -> Plane<'_, S> {
        Plane {
            pool: &self.pool,
            node_cache: &self.node_cache,
            config: &self.config,
            leaf_cap: self.leaf_cap,
            inner_cap: self.inner_cap,
            root: self.root,
            height: self.height,
            len: self.len,
        }
    }
}

impl<S: PageStore> Clone for Snapshot<S> {
    fn clone(&self) -> Self {
        self.registry.pin(self.epoch);
        Self {
            pool: Arc::clone(&self.pool),
            node_cache: Arc::clone(&self.node_cache),
            registry: Arc::clone(&self.registry),
            config: self.config,
            leaf_cap: self.leaf_cap,
            inner_cap: self.inner_cap,
            epoch: self.epoch,
            root: self.root,
            height: self.height,
            len: self.len,
        }
    }
}

impl<S: PageStore> Drop for Snapshot<S> {
    fn drop(&mut self) {
        self.registry.unpin(self.epoch);
    }
}

impl<S: PageStore> ReadView<S> for Snapshot<S> {
    fn plane(&self) -> crate::view::ViewPlane<'_, S> {
        crate::view::ViewPlane::Tree(self.tree_plane())
    }
}

/// One parsed v2 meta slot, pending validation against the store.
struct ParsedMeta {
    epoch: u64,
    allocated: u64,
    config: TreeConfig,
    root: PageId,
    height: u32,
    len: u64,
    free_ids: Vec<PageId>,
    carriers: Vec<PageId>,
}

/// Descriptor of one subtree produced by a batch merge ([`GaussTree::extend`]).
struct SubtreeDesc {
    page: PageId,
    rect: ParamRect,
    count: u64,
}

/// Result of a recursive insert below some node. Carries the child's page
/// id because shadow paging may relocate a node on write — the parent must
/// re-point at wherever the child landed.
enum ChildUpdate {
    /// Child absorbed the entry; (possibly new) page, new rect and count.
    Updated(PageId, ParamRect, u64),
    /// Child split in two.
    Split {
        left_page: PageId,
        left: (ParamRect, u64),
        right_page: PageId,
        right: (ParamRect, u64),
    },
}

/// Quantises an ingested pfv to the stored representation of a
/// [`LeafFormat::Quantised`] tree: every parameter becomes the widened
/// `f64` of its rounded `f32` (see [`pfv::quant`]), so leaf encoding is an
/// exact narrowing and queries stay exact over the stored parameters.
/// Returns `Ok(None)` for exact trees (store as-is).
pub(crate) fn quantise_for(format: LeafFormat, v: &Pfv) -> Result<Option<Pfv>, TreeError> {
    if format == LeafFormat::Exact {
        return Ok(None);
    }
    let mut means = Vec::with_capacity(v.dims());
    let mut sigmas = Vec::with_capacity(v.dims());
    for (dim, (&m, &s)) in v.means().iter().zip(v.sigmas()).enumerate() {
        let mq = quant::quantise_mu(m).ok_or(TreeError::QuantisationRange { dim, value: m })?;
        let sq = quant::quantise_sigma(s).ok_or(TreeError::QuantisationRange { dim, value: s })?;
        means.push(f64::from(mq));
        sigmas.push(f64::from(sq));
    }
    // lint: allow(no-panic) -- quantised parameters are finite with σ at or above the floor
    let q = Pfv::new(means, sigmas).expect("quantised parameters are valid");
    Ok(Some(q))
}

impl<S: PageStore> GaussTree<S> {
    /// Creates an empty Gauss-tree in a fresh store with default
    /// [`TreeOptions`] — [`Durability::None`] (fast in-place writes, no
    /// crash guarantees).
    ///
    /// # Errors
    /// Propagates store errors; fails if the page size cannot hold two
    /// entries of the configured dimensionality.
    pub fn create(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
    ) -> Result<Self, TreeError> {
        Self::create_with(pool, config, &TreeOptions::default())
    }

    /// Creates an empty Gauss-tree in a fresh store under the given
    /// [`TreeOptions`].
    ///
    /// # Errors
    /// Propagates store errors; rejects a non-empty store (the metadata
    /// slots must own pages 0–1).
    pub fn create_with(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
        opts: &TreeOptions,
    ) -> Result<Self, TreeError> {
        let pool = pool.into();
        if pool.num_pages() != 0 {
            return Err(TreeError::Corrupt("create requires an empty store"));
        }
        let config = opts
            .leaf_format
            .map_or(config, |f| config.with_leaf_format(f));
        let page_size = pool.page_size();
        let leaf_cap = config.leaf_capacity(page_size);
        let inner_cap = config.inner_capacity(page_size);
        let slot_a = pool.allocate()?;
        let slot_b = pool.allocate()?;
        debug_assert_eq!((slot_a, slot_b), (META_SLOT_A, META_SLOT_B));
        let root = pool.allocate()?;
        let node_cache = SideCache::new(opts.cache_cap(pool.capacity()));
        let mut tree = Self {
            pool: Arc::new(pool),
            node_cache: Arc::new(node_cache),
            registry: Arc::new(EpochRegistry::new()),
            config,
            leaf_cap,
            inner_cap,
            format: MetaFormat::V2,
            durability: opts.durability,
            epoch: 0,
            root,
            height: 0,
            len: 0,
            free_committed: Vec::new(),
            free_pending: Vec::new(),
            carriers_live: Vec::new(),
            free_set: HashSet::new(),
            shadowed: HashSet::new(),
            committed_root: root,
            committed_height: 0,
            committed_len: 0,
            dirty_since_commit: false,
            free_aging: VecDeque::new(),
        };
        tree.write_node(root, &Node::Leaf(Vec::new()))?;
        tree.flush()?;
        Ok(tree)
    }

    /// The tree's crash-safety policy.
    #[must_use]
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Last committed epoch (0 for legacy-format trees).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Pins the last committed epoch as an immutable [`Snapshot`] view.
    ///
    /// The snapshot owns shared handles (buffer pool, decoded-node cache,
    /// epoch registry), so it has no lifetime tie to this writer: send it
    /// to another thread and keep mutating here. While it lives, this
    /// writer shadow-pages every mutation (even under [`Durability::None`])
    /// and defers page reuse, so the pinned state is never overwritten.
    ///
    /// # Errors
    /// [`TreeError::SnapshotUnavailable`] if the file uses the legacy v1
    /// format (no committed epochs) or if in-place writes since the last
    /// [`GaussTree::flush`] have diverged the store from the committed
    /// epoch — flush first, then snapshot.
    pub fn snapshot(&self) -> Result<Snapshot<S>, TreeError> {
        if self.format == MetaFormat::V1 {
            return Err(TreeError::SnapshotUnavailable(
                "legacy v1 files have no committed epochs",
            ));
        }
        if self.dirty_since_commit {
            return Err(TreeError::SnapshotUnavailable(
                "in-place writes since the last commit",
            ));
        }
        self.registry.pin(self.epoch);
        Ok(Snapshot {
            pool: Arc::clone(&self.pool),
            node_cache: Arc::clone(&self.node_cache),
            registry: Arc::clone(&self.registry),
            config: self.config,
            leaf_cap: self.leaf_cap,
            inner_cap: self.inner_cap,
            epoch: self.epoch,
            root: self.committed_root,
            height: self.committed_height,
            len: self.committed_len,
        })
    }

    /// Number of live [`Snapshot`] pins on this tree (all epochs).
    #[must_use]
    pub fn pinned_snapshots(&self) -> u64 {
        self.registry.pinned_count()
    }

    /// Whether mutation must shadow-write instead of updating in place:
    /// always under a durable policy, and whenever a live [`Snapshot`]
    /// pins a committed epoch that in-place writes would tear up.
    pub(crate) fn is_shadowing(&self) -> bool {
        self.format == MetaFormat::V2
            && (self.durability != Durability::None || self.registry.has_pins())
    }

    /// Opens an existing Gauss-tree from its store.
    ///
    /// v2 files (dual-slot commit): both meta slots are parsed and
    /// validated — magic, version, checksum, and every referenced page id
    /// bounds-checked against the store — and the highest valid epoch
    /// wins, so a torn meta write falls back to the previous commit.
    /// Pages allocated after that commit (an interrupted mutation's
    /// shadow writes) are reclaimed onto the free list. v1 files (single
    /// meta page) keep opening as before.
    ///
    /// The opened tree uses default [`TreeOptions`] ([`Durability::None`]);
    /// use [`GaussTree::open_with`] when crash safety or cache sizing is
    /// required.
    ///
    /// # Errors
    /// [`TreeError::NotAGaussTree`] if no valid metadata is found; store
    /// errors otherwise.
    pub fn open(pool: impl Into<SharedBufferPool<S>>) -> Result<Self, TreeError> {
        Self::open_with(pool, &TreeOptions::default())
    }

    /// Opens an existing Gauss-tree under the given [`TreeOptions`].
    ///
    /// # Errors
    /// As [`GaussTree::open`].
    pub fn open_with(
        pool: impl Into<SharedBufferPool<S>>,
        opts: &TreeOptions,
    ) -> Result<Self, TreeError> {
        Self::open_impl(pool.into(), false, opts).map(|(tree, _)| tree)
    }

    /// Opens an existing Gauss-tree, additionally *verifying* the chosen
    /// epoch with a full [`GaussTree::check_invariants`] pass (including
    /// exact page accounting) and falling back to the previous slot when
    /// verification fails — the belt-and-braces recovery path for stores
    /// that may have crashed without write ordering.
    ///
    /// This reads every page of the tree; prefer [`GaussTree::open`] on
    /// hot paths and this after an unclean shutdown.
    ///
    /// # Errors
    /// [`TreeError::NotAGaussTree`] if no slot yields a structurally
    /// sound tree; store errors otherwise.
    pub fn open_with_recovery(
        pool: impl Into<SharedBufferPool<S>>,
    ) -> Result<(Self, RecoveryReport), TreeError> {
        Self::recover_with(pool, &TreeOptions::default())
    }

    /// [`GaussTree::open_with_recovery`] under the given [`TreeOptions`].
    ///
    /// # Errors
    /// As [`GaussTree::open_with_recovery`].
    pub fn recover_with(
        pool: impl Into<SharedBufferPool<S>>,
        opts: &TreeOptions,
    ) -> Result<(Self, RecoveryReport), TreeError> {
        Self::open_impl(pool.into(), true, opts)
    }

    fn open_impl(
        pool: SharedBufferPool<S>,
        verify: bool,
        opts: &TreeOptions,
    ) -> Result<(Self, RecoveryReport), TreeError> {
        let allocated_now = pool.num_pages();
        if allocated_now == 0 {
            return Err(TreeError::NotAGaussTree);
        }
        // Legacy single-slot format?
        {
            let page = pool.page(PageId(0))?;
            let mut r = Reader::new(&page);
            let magic = r.get_u32().unwrap_or(0);
            let version = r.get_u32().unwrap_or(0);
            if magic == META_MAGIC && version == META_VERSION_V1 {
                let tree = Self::open_v1(pool, opts)?;
                if verify {
                    match tree.check_invariants(false) {
                        Ok(errs) if errs.is_empty() => {}
                        _ => return Err(TreeError::NotAGaussTree),
                    }
                }
                let report = RecoveryReport {
                    legacy: true,
                    ..RecoveryReport::default()
                };
                return Ok((tree, report));
            }
        }
        // v2: parse both slots, try them in descending epoch order. A
        // slot that holds data but does not validate (torn write, stale
        // garbage) counts as a fallback even though its epoch is
        // unknowable — an all-zero slot is just a commit that never
        // happened (epoch 1 only ever writes one slot).
        let mut torn_slot = false;
        let mut candidates: Vec<ParsedMeta> = Vec::new();
        for slot in [META_SLOT_A, META_SLOT_B] {
            if slot.index() >= allocated_now {
                continue;
            }
            match Self::parse_slot(&pool, slot, allocated_now) {
                Some(meta) => candidates.push(meta),
                None => {
                    if pool.page(slot)?.iter().any(|&b| b != 0) {
                        torn_slot = true;
                    }
                }
            }
        }
        candidates.sort_by_key(|m| std::cmp::Reverse(m.epoch));
        let newest = candidates.first().map(|m| m.epoch);
        let mut pool = pool;
        for meta in candidates {
            let fell_back = torn_slot || Some(meta.epoch) != newest;
            let report = RecoveryReport {
                epoch: meta.epoch,
                fell_back,
                orphaned_pages: allocated_now - meta.allocated,
                legacy: false,
            };
            let mut tree = Self::from_meta(pool, meta, opts);
            if !verify {
                return Ok((tree, report));
            }
            match tree.check_invariants(false) {
                Ok(errs) if errs.is_empty() => {
                    // Seal the recovery: a fallback or orphan reclamation
                    // exists only in memory so far — a later *plain* open
                    // would re-select the rejected slot and redo (or
                    // lose) the reclamation. Committing a fresh epoch
                    // overwrites the rejected slot and persists the
                    // reclaimed pages on the free list.
                    if report.fell_back || report.orphaned_pages > 0 {
                        let saved = tree.durability;
                        tree.durability = Durability::Fsync;
                        tree.flush()?;
                        tree.durability = saved;
                    }
                    return Ok((tree, report));
                }
                // Structurally unsound (or unreadable): try the other slot.
                _ => pool = tree.into_pool(),
            }
        }
        Err(TreeError::NotAGaussTree)
    }

    /// Parses and validates one v2/v3 meta slot; `None` if the slot is not
    /// a committed epoch (torn, stale, out of bounds, or plain garbage).
    fn parse_slot(
        pool: &SharedBufferPool<S>,
        slot: PageId,
        allocated_now: u64,
    ) -> Option<ParsedMeta> {
        let page = pool.page(slot).ok()?;
        let mut r = Reader::new(&page);
        let magic = r.get_u32().ok()?;
        let version = r.get_u32().ok()?;
        if magic != META_MAGIC || !(version == META_VERSION || version == META_VERSION_V2) {
            return None;
        }
        let stored_sum = r.get_u64().ok()?;
        let mut image = page.to_vec();
        image[META_CHECKSUM_OFFSET..META_CHECKSUM_OFFSET + 8].fill(0);
        if fnv1a64(&image) != stored_sum {
            return None;
        }
        let epoch = r.get_u64().ok()?;
        let allocated = r.get_u64().ok()?;
        let dims = r.get_u32().ok()? as usize;
        let combine = match r.get_u8().ok()? {
            0 => CombineMode::Convolution,
            1 => CombineMode::AdditiveSigma,
            _ => return None,
        };
        let split = crate::config::SplitStrategy::from_tag(r.get_u8().ok()?)?;
        // v3 appends the leaf-format byte here; v2 slots predate the
        // quantised format and are always exact.
        let leaf_format = if version == META_VERSION_V2 {
            crate::config::LeafFormat::Exact
        } else {
            crate::config::LeafFormat::from_tag(r.get_u8().ok()?)?
        };
        let leaf_cap = r.get_u32().ok()? as usize;
        let inner_cap = r.get_u32().ok()? as usize;
        let root = PageId(r.get_u64().ok()?);
        let height = r.get_u32().ok()?;
        let len = r.get_u64().ok()?;
        // Every referenced id must be in bounds *of the committed
        // allocation*, which itself must fit the store — a truncated file
        // fails here with a clean rejection instead of a decode error
        // deep inside `read_node`.
        if epoch == 0
            || dims == 0
            || leaf_cap < 2
            || inner_cap < 2
            || allocated < 3
            || allocated > allocated_now
            || root.index() < 2
            || root.index() >= allocated
        {
            return None;
        }
        let free_count = r.get_u32().ok()? as usize;
        let mut free_next = PageId(r.get_u64().ok()?);
        let mut free_ids = Vec::with_capacity(free_count);
        for _ in 0..free_count {
            free_ids.push(PageId(r.get_u64().ok()?));
        }
        // Follow the overflow chain through its carrier pages. Carriers
        // are not covered by the slot checksum, so the walk must bound
        // itself: a garbage chain that cycles with zero-count carriers
        // would otherwise never trip the id-count guard.
        let mut carriers = Vec::new();
        while free_next.is_valid() {
            if free_next.index() < 2
                || free_next.index() >= allocated
                || free_ids.len() as u64 > allocated
                || carriers.len() as u64 > allocated
            {
                return None;
            }
            carriers.push(free_next);
            let page = pool.page(free_next).ok()?;
            let mut r = Reader::new(&page);
            let next = PageId(r.get_u64().ok()?);
            let count = r.get_u32().ok()? as usize;
            if count > (page.len() - FREE_CHAIN_HEADER_BYTES) / 8 {
                return None;
            }
            for _ in 0..count {
                free_ids.push(PageId(r.get_u64().ok()?));
            }
            free_next = next;
        }
        // Free ids must be in bounds, unique, and distinct from the meta
        // slots; the carriers must themselves be persisted as free.
        let mut seen = HashSet::with_capacity(free_ids.len());
        for id in &free_ids {
            if id.index() < 2 || id.index() >= allocated || !seen.insert(id.index()) {
                return None;
            }
        }
        if !carriers.iter().all(|c| seen.contains(&c.index())) {
            return None;
        }
        let mut config = TreeConfig::new(dims)
            .with_combine(combine)
            .with_split(split)
            .with_leaf_format(leaf_format);
        config.max_leaf_entries = Some(leaf_cap);
        config.max_inner_entries = Some(inner_cap);
        Some(ParsedMeta {
            epoch,
            allocated,
            config,
            root,
            height,
            len,
            free_ids,
            carriers,
        })
    }

    /// Builds the in-memory tree from a validated slot, reclaiming pages
    /// the chosen epoch never committed (shadow writes of an interrupted
    /// mutation) onto the free list.
    fn from_meta(pool: SharedBufferPool<S>, meta: ParsedMeta, opts: &TreeOptions) -> Self {
        let leaf_cap = meta.config.leaf_capacity(pool.page_size());
        let inner_cap = meta.config.inner_capacity(pool.page_size());
        let node_cache = SideCache::new(opts.cache_cap(pool.capacity()));
        let carrier_set: HashSet<u64> = meta.carriers.iter().map(|p| p.index()).collect();
        let mut free_set: HashSet<u64> = meta.free_ids.iter().map(|p| p.index()).collect();
        let mut free_committed: Vec<PageId> = meta
            .free_ids
            .iter()
            .copied()
            .filter(|p| !carrier_set.contains(&p.index()))
            .collect();
        let allocated_now = pool.num_pages();
        for orphan in meta.allocated..allocated_now {
            free_set.insert(orphan);
            free_committed.push(PageId(orphan));
        }
        Self {
            pool: Arc::new(pool),
            node_cache: Arc::new(node_cache),
            registry: Arc::new(EpochRegistry::new()),
            config: meta.config,
            leaf_cap,
            inner_cap,
            format: MetaFormat::V2,
            durability: opts.durability,
            epoch: meta.epoch,
            root: meta.root,
            height: meta.height,
            len: meta.len,
            free_committed,
            free_pending: Vec::new(),
            carriers_live: meta.carriers,
            free_set,
            shadowed: HashSet::new(),
            committed_root: meta.root,
            committed_height: meta.height,
            committed_len: meta.len,
            dirty_since_commit: false,
            free_aging: VecDeque::new(),
        }
    }

    /// Opens a legacy v1 (single meta slot) file.
    fn open_v1(pool: SharedBufferPool<S>, opts: &TreeOptions) -> Result<Self, TreeError> {
        let allocated = pool.num_pages();
        let page = pool.page(PageId(0))?;
        let mut r = Reader::new(&page);
        type MetaFields = (TreeConfig, PageId, u32, u64, Vec<PageId>, PageId);
        let parse = (|| -> Result<MetaFields, NodeCodecError> {
            let magic = r.get_u32()?;
            let version = r.get_u32()?;
            if magic != META_MAGIC || version != META_VERSION_V1 {
                return Err(NodeCodecError::Corrupt("bad magic/version"));
            }
            let dims = r.get_u32()? as usize;
            let combine = match r.get_u8()? {
                0 => CombineMode::Convolution,
                1 => CombineMode::AdditiveSigma,
                _ => return Err(NodeCodecError::Corrupt("bad combine mode")),
            };
            let split = crate::config::SplitStrategy::from_tag(r.get_u8()?)
                .ok_or(NodeCodecError::Corrupt("bad split strategy"))?;
            let leaf_cap = r.get_u32()? as usize;
            let inner_cap = r.get_u32()? as usize;
            let root = PageId(r.get_u64()?);
            let height = r.get_u32()?;
            let len = r.get_u64()?;
            if dims == 0 || leaf_cap < 2 || inner_cap < 2 || root.index() >= allocated {
                return Err(NodeCodecError::Corrupt("bad metadata values"));
            }
            let free_count = r.get_u32()? as usize;
            let free_next = PageId(r.get_u64()?);
            let mut free_list = Vec::with_capacity(free_count);
            for _ in 0..free_count {
                free_list.push(PageId(r.get_u64()?));
            }
            let mut config = TreeConfig::new(dims)
                .with_combine(combine)
                .with_split(split);
            config.max_leaf_entries = Some(leaf_cap);
            config.max_inner_entries = Some(inner_cap);
            Ok((config, root, height, len, free_list, free_next))
        })();
        let (config, root, height, len, mut free_list, mut free_next) =
            parse.map_err(|_| TreeError::NotAGaussTree)?;
        // Follow the overflow chain through the freed carrier pages
        // (`chain_len` bounds a garbage cycle of zero-count carriers).
        let mut chain_len = 0u64;
        while free_next.is_valid() {
            chain_len += 1;
            if free_next.index() >= allocated
                || free_list.len() as u64 > allocated
                || chain_len > allocated
            {
                return Err(TreeError::NotAGaussTree);
            }
            let page = pool.page(free_next)?;
            let mut r = Reader::new(&page);
            let chain = (|| -> Result<(PageId, Vec<PageId>), NodeCodecError> {
                let next = PageId(r.get_u64()?);
                let count = r.get_u32()? as usize;
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(PageId(r.get_u64()?));
                }
                Ok((next, ids))
            })();
            let (next, ids) = chain.map_err(|_| TreeError::NotAGaussTree)?;
            free_list.extend(ids);
            free_next = next;
        }
        if free_list
            .iter()
            .any(|p| p.index() == 0 || p.index() >= allocated)
        {
            return Err(TreeError::NotAGaussTree);
        }
        let leaf_cap = config.leaf_capacity(pool.page_size());
        let inner_cap = config.inner_capacity(pool.page_size());
        let node_cache = SideCache::new(opts.cache_cap(pool.capacity()));
        let free_set = free_list.iter().map(|p| p.index()).collect();
        Ok(Self {
            pool: Arc::new(pool),
            node_cache: Arc::new(node_cache),
            registry: Arc::new(EpochRegistry::new()),
            config,
            leaf_cap,
            inner_cap,
            format: MetaFormat::V1,
            durability: opts.durability,
            epoch: 0,
            root,
            height,
            len,
            free_committed: free_list,
            free_pending: Vec::new(),
            carriers_live: Vec::new(),
            free_set,
            shadowed: HashSet::new(),
            committed_root: root,
            committed_height: height,
            committed_len: len,
            dirty_since_commit: false,
            free_aging: VecDeque::new(),
        })
    }

    /// Gives the pool back (recovery's slot-fallback path; no snapshot can
    /// exist on a tree that is still being opened).
    fn into_pool(self) -> SharedBufferPool<S> {
        match Arc::try_unwrap(self.pool) {
            Ok(pool) => pool,
            // lint: allow(no-panic) -- only reachable during open, before any snapshot is handed out
            Err(_) => panic!("buffer pool still shared during open"),
        }
    }

    /// Consumes the tree and returns the underlying page store (flush
    /// first if the latest mutations must be committed).
    ///
    /// # Panics
    /// Panics if any [`Snapshot`] of this tree is still alive — snapshots
    /// share the buffer pool and must be dropped first.
    #[must_use]
    pub fn into_store(self) -> S {
        match Arc::try_unwrap(self.pool) {
            Ok(pool) => pool.into_store(),
            // lint: allow(no-panic) -- documented contract: drop all snapshots before into_store
            Err(_) => panic!("GaussTree::into_store called with live snapshots"),
        }
    }

    /// Bulk-loads a tree from `(id, pfv)` pairs (STR-style recursive
    /// partitioning driven by the configured split cost — an extension over
    /// the paper's incremental insertion).
    ///
    /// Runs the pipeline of [`GaussTree::bulk_load_with`] with
    /// [`BulkLoadOptions::default`]: single-threaded, fully resident,
    /// batched page writes.
    ///
    /// # Errors
    /// Propagates store errors; rejects dimensionality mismatches.
    pub fn bulk_load(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
        items: impl IntoIterator<Item = (u64, Pfv)>,
    ) -> Result<Self, TreeError> {
        Ok(Self::bulk_load_with(pool, config, items, &BulkLoadOptions::default())?.0)
    }

    /// Bulk-loads a tree through the full ingest pipeline (see
    /// [`crate::bulk`]): streaming chunked consumption of `items` under an
    /// optional memory budget with runs spilled through a page store,
    /// partitioning fanned across worker threads, and node pages written in
    /// coalesced batches. The produced tree is **byte-identical** to the
    /// serial fully-resident build for every thread count, memory budget
    /// and write mode.
    ///
    /// # Errors
    /// Propagates store errors; rejects dimensionality mismatches.
    pub fn bulk_load_with(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
        items: impl IntoIterator<Item = (u64, Pfv)>,
        opts: &BulkLoadOptions,
    ) -> Result<(Self, BulkLoadReport), TreeError> {
        let mut tree = Self::create_with(
            pool,
            config,
            &TreeOptions::new().durability(opts.durability),
        )?;
        // Quantise while streaming: the bulk pipeline never re-reads the
        // source, so rounding here covers every leaf it will write. An
        // unquantisable item stops the stream and surfaces its error after
        // the (now moot) run finishes.
        let format = tree.config.leaf_format;
        let mut quant_err = None;
        let quantised = items
            .into_iter()
            .map_while(|(id, pfv)| match quantise_for(format, &pfv) {
                Ok(Some(q)) => Some((id, q)),
                Ok(None) => Some((id, pfv)),
                Err(e) => {
                    quant_err = Some(e);
                    None
                }
            });
        let report = crate::bulk::run(&mut tree, quantised, opts)?;
        if let Some(e) = quant_err {
            return Err(e);
        }
        Ok((tree, report))
    }

    /// Number of stored pfv.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 = the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dimensionality of the indexed pfv.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// The tree's configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Maximum number of entries in a leaf node (`2M` in the paper).
    #[must_use]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Maximum number of entries in an inner node (`M` in the paper).
    #[must_use]
    pub fn inner_capacity(&self) -> usize {
        self.inner_cap
    }

    /// Root page id.
    #[must_use]
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Access to the buffer pool (stats, cold start, raw page access). All
    /// pool operations take `&self` — the pool has interior mutability.
    ///
    /// Writing node pages through this handle bypasses the decoded-node
    /// cache's write invalidation; mutate through the tree API instead.
    #[must_use]
    pub fn pool(&self) -> &SharedBufferPool<S> {
        &self.pool
    }

    /// Shared access statistics of the buffer pool.
    #[must_use]
    pub fn stats(&self) -> &std::sync::Arc<gauss_storage::AccessStats> {
        self.pool.stats()
    }

    /// Commits the tree's metadata. Call after building; queries never
    /// dirty the tree.
    ///
    /// v2 format: an atomic dual-slot commit. The full free list is
    /// persisted first (overflow chained through committed-free carrier
    /// pages the previous epoch does not reference), then a data barrier
    /// is issued at the tree's [`Durability`] level, then the inactive
    /// meta slot is written with a bumped epoch and a checksum, then a
    /// second barrier makes the commit durable. Open picks the highest
    /// valid epoch, so a crash anywhere in this sequence — or in the
    /// shadow-paged mutations before it — falls back to the previous
    /// commit intact.
    ///
    /// Legacy v1 files keep their single in-place meta page (their commit
    /// is not atomic; rebuild to upgrade).
    ///
    /// # Errors
    /// Propagates store errors. After an error the in-memory tree may be
    /// mid-commit and should be dropped; the on-disk state remains
    /// recoverable.
    pub fn flush(&mut self) -> Result<(), TreeError> {
        match self.format {
            MetaFormat::V1 => self.flush_v1(),
            MetaFormat::V2 => self.flush_v2(),
        }
    }

    fn flush_v2(&mut self) -> Result<(), TreeError> {
        let page_size = self.pool.page_size();
        let meta_cap = page_size.saturating_sub(META_BASE_BYTES) / 8;
        let per_carrier = ((page_size - FREE_CHAIN_HEADER_BYTES) / 8).max(1);

        // Dropped snapshots may have released aged pages; fold them back
        // into the reusable pool before carriers are drawn from it.
        self.reap_aged();

        // Every free id that must survive reopen, whatever sub-list it is
        // on right now — including snapshot-gated aging pages: their free
        // *is* committed, only in-memory reuse is deferred.
        let mut all_ids: Vec<PageId> =
            Vec::with_capacity(self.free_pending.len() + self.carriers_live.len());
        all_ids.extend(&self.free_pending);
        all_ids.extend(&self.carriers_live);
        all_ids.extend(&self.free_committed);
        for (_, pages) in &self.free_aging {
            all_ids.extend(pages);
        }

        // Overflow carriers for the new chain: committed-free pages (the
        // live chain's carriers are held out of `free_committed`, so they
        // can never be clobbered while the previous epoch still needs
        // them), topped up with fresh allocations. A fresh carrier is
        // itself a free page and joins the persisted set, which can grow
        // the overflow — hence the fixpoint loop.
        let mut new_carriers: Vec<PageId> = Vec::new();
        loop {
            let rest = all_ids.len().saturating_sub(meta_cap);
            let needed = rest.div_ceil(per_carrier);
            if new_carriers.len() >= needed {
                break;
            }
            if let Some(p) = self.free_committed.pop() {
                new_carriers.push(p);
            } else {
                let p = self.pool.allocate()?;
                self.free_set.insert(p.index());
                all_ids.push(p);
                new_carriers.push(p);
            }
        }

        let in_meta = all_ids.len().min(meta_cap);
        let rest = &all_ids[in_meta..];
        let chunks: Vec<&[PageId]> = rest.chunks(per_carrier).collect();
        debug_assert_eq!(chunks.len(), new_carriers.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let carrier = new_carriers[i];
            let next = new_carriers.get(i + 1).copied().unwrap_or(PageId::INVALID);
            let mut buf = vec![0u8; page_size];
            let mut cw = Writer::new(&mut buf);
            cw.put_u64(next.index());
            // lint: allow(no-panic) -- free-list chunks are capped by per_carrier, far below u32::MAX
            cw.put_u32(u32::try_from(chunk.len()).expect("chunk fits u32"));
            for id in *chunk {
                cw.put_u64(id.index());
            }
            // A carrier may still carry a stale decoded node from before
            // it was freed; its bytes are changing, so drop that decode.
            self.node_cache.remove(carrier);
            self.pool.write(carrier, &buf)?;
        }

        // Data barrier: every node page and carrier the new meta slot
        // will reference must be durable before the slot commits to them.
        self.pool.sync(self.durability)?;

        let new_epoch = self.epoch + 1;
        let slot = if new_epoch.is_multiple_of(2) {
            META_SLOT_A
        } else {
            META_SLOT_B
        };
        let mut page = vec![0u8; page_size];
        let mut w = Writer::new(&mut page);
        w.put_u32(META_MAGIC);
        w.put_u32(META_VERSION);
        w.put_u64(0); // checksum, patched below
        w.put_u64(new_epoch);
        w.put_u64(self.pool.num_pages());
        // lint: allow(no-panic) -- dims are validated at TreeConfig construction, far below u32::MAX
        w.put_u32(u32::try_from(self.config.dims).expect("dims fit u32"));
        w.put_u8(match self.config.combine {
            CombineMode::Convolution => 0,
            CombineMode::AdditiveSigma => 1,
        });
        w.put_u8(self.config.split.to_tag());
        w.put_u8(self.config.leaf_format.to_tag());
        // lint: allow(no-panic) -- leaf capacity derives from the page size, far below u32::MAX
        w.put_u32(u32::try_from(self.leaf_cap).expect("leaf cap fits u32"));
        // lint: allow(no-panic) -- node capacities derive from the page size, far below u32::MAX
        w.put_u32(u32::try_from(self.inner_cap).expect("inner cap fits u32"));
        w.put_u64(self.root.index());
        w.put_u32(self.height);
        w.put_u64(self.len);
        // lint: allow(no-panic) -- in_meta is capped by the meta page capacity, far below u32::MAX
        w.put_u32(u32::try_from(in_meta).expect("free count fits u32"));
        w.put_u64(
            new_carriers
                .first()
                .copied()
                .unwrap_or(PageId::INVALID)
                .index(),
        );
        for id in &all_ids[..in_meta] {
            w.put_u64(id.index());
        }
        let sum = fnv1a64(&page);
        page[META_CHECKSUM_OFFSET..META_CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
        self.pool.write(slot, &page)?;
        // Commit barrier: the new epoch is durable before flush returns.
        self.pool.sync(self.durability)?;

        // The commit succeeded: this epoch's deferred frees and the
        // superseded chain's carriers become reusable — except that pages
        // the *previous* epoch still references must additionally wait for
        // every snapshot pinned at an older epoch to drop (free-aging
        // rule), or a reuse would overwrite a page a live reader can still
        // reach.
        self.epoch = new_epoch;
        let pending = std::mem::take(&mut self.free_pending);
        if !pending.is_empty() {
            self.free_aging.push_back((new_epoch, pending));
        }
        self.free_committed.append(&mut self.carriers_live);
        self.carriers_live = new_carriers;
        self.shadowed.clear();
        self.dirty_since_commit = false;
        self.committed_root = self.root;
        self.committed_height = self.height;
        self.committed_len = self.len;
        self.reap_aged();
        Ok(())
    }

    /// Promotes aged frees whose gating epoch is clear of snapshot pins:
    /// an entry tagged `E` holds pages referenced by epoch `E - 1` and
    /// earlier, so it is reusable once no live snapshot pins an epoch
    /// below `E`. Entries are promoted front-first (epoch order), stopping
    /// at the first still-gated tag.
    fn reap_aged(&mut self) {
        if self.free_aging.is_empty() {
            return;
        }
        let min = self.registry.min_pinned();
        while let Some((tag, _)) = self.free_aging.front() {
            if min.is_none_or(|m| m >= *tag) {
                // lint: allow(no-panic) -- front() just returned Some
                let (_, mut pages) = self.free_aging.pop_front().expect("front checked");
                self.free_committed.append(&mut pages);
            } else {
                break;
            }
        }
    }

    fn flush_v1(&mut self) -> Result<(), TreeError> {
        // Legacy trees never shadow-page, so all frees sit in
        // `free_committed` and the v1 carrier scheme (carriers drawn from
        // the overflow ids themselves) still applies.
        debug_assert!(self.free_pending.is_empty() && self.carriers_live.is_empty());
        let mut page = vec![0u8; self.pool.page_size()];
        let mut w = Writer::new(&mut page);
        w.put_u32(META_MAGIC);
        w.put_u32(META_VERSION_V1);
        // lint: allow(no-panic) -- dims are validated at TreeConfig construction, far below u32::MAX
        w.put_u32(u32::try_from(self.config.dims).expect("dims fit u32"));
        w.put_u8(match self.config.combine {
            CombineMode::Convolution => 0,
            CombineMode::AdditiveSigma => 1,
        });
        w.put_u8(self.config.split.to_tag());
        // lint: allow(no-panic) -- leaf capacity derives from the page size, far below u32::MAX
        w.put_u32(u32::try_from(self.leaf_cap).expect("leaf cap fits u32"));
        // lint: allow(no-panic) -- node capacities derive from the page size, far below u32::MAX
        w.put_u32(u32::try_from(self.inner_cap).expect("inner cap fits u32"));
        w.put_u64(self.root.index());
        w.put_u32(self.height);
        w.put_u64(self.len);
        let page_size = self.pool.page_size();
        let meta_cap = page_size.saturating_sub(META_BASE_BYTES_V1) / 8;
        let in_meta = self.free_committed.len().min(meta_cap);
        let rest = &self.free_committed[in_meta..];
        let per_carrier = ((page_size - FREE_CHAIN_HEADER_BYTES) / 8).max(1);
        let chunks: Vec<&[PageId]> = rest.chunks(per_carrier).collect();
        let first_carrier = chunks.first().map_or(PageId::INVALID, |c| c[0]);
        // lint: allow(no-panic) -- in_meta is capped by the meta page capacity, far below u32::MAX
        w.put_u32(u32::try_from(in_meta).expect("free count fits u32"));
        w.put_u64(first_carrier.index());
        for id in &self.free_committed[..in_meta] {
            w.put_u64(id.index());
        }
        self.pool.sync(self.durability)?;
        self.pool.write(PageId(0), &page)?;
        for (i, chunk) in chunks.iter().enumerate() {
            let carrier = chunk[0];
            let next = chunks.get(i + 1).map_or(PageId::INVALID, |c| c[0]);
            let mut buf = vec![0u8; page_size];
            let mut cw = Writer::new(&mut buf);
            cw.put_u64(next.index());
            // lint: allow(no-panic) -- free-list chunks are capped by per_carrier, far below u32::MAX
            cw.put_u32(u32::try_from(chunk.len()).expect("chunk fits u32"));
            for id in *chunk {
                cw.put_u64(id.index());
            }
            self.node_cache.remove(carrier);
            self.pool.write(carrier, &buf)?;
        }
        self.pool.sync(self.durability)?;
        Ok(())
    }

    /// Allocates a page for a new node, reusing a committed-free page when
    /// one is available. The page is marked shadowed: it is not part of
    /// the committed tree, so shadow paging may write it in place.
    pub(crate) fn alloc_page(&mut self) -> Result<PageId, TreeError> {
        if self.free_committed.is_empty() && !self.free_aging.is_empty() {
            // A snapshot drop may have un-gated aged frees since the last
            // commit; prefer them over growing the store.
            self.reap_aged();
        }
        let page = match self.free_committed.pop() {
            Some(p) => {
                self.free_set.remove(&p.index());
                p
            }
            None => self.pool.allocate()?,
        };
        self.shadowed.insert(page.index());
        Ok(page)
    }

    /// Returns a no-longer-referenced node page to the free list:
    /// immediately reusable when the committed tree does not reference it
    /// (page shadowed this epoch, or the tree is not shadow-paging),
    /// deferred until the next commit otherwise.
    ///
    /// # Errors
    /// [`TreeError::DoubleFree`] if the page is already free.
    pub(crate) fn free_page(&mut self, page: PageId) -> Result<(), TreeError> {
        if !self.free_set.insert(page.index()) {
            return Err(TreeError::DoubleFree { page: page.index() });
        }
        let was_shadowed = self.shadowed.remove(&page.index());
        if was_shadowed {
            self.free_committed.push(page);
        } else if self.is_shadowing() {
            self.free_pending.push(page);
        } else {
            // In-place mode: a committed page becomes reusable right away,
            // which diverges the store from the committed epoch — block
            // snapshots until the next flush re-commits.
            self.dirty_since_commit = true;
            self.free_committed.push(page);
        }
        Ok(())
    }

    /// Pages freed and not yet reused by later allocations (reusable,
    /// commit-deferred, snapshot-gated, and live chain carriers together).
    #[must_use]
    pub fn free_page_count(&self) -> usize {
        self.free_committed.len()
            + self.free_pending.len()
            + self.carriers_live.len()
            + self.free_aging.iter().map(|(_, p)| p.len()).sum::<usize>()
    }

    /// The freed-page ids (for the invariant checker).
    pub(crate) fn free_pages(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.free_page_count());
        out.extend(&self.free_committed);
        out.extend(&self.free_pending);
        out.extend(&self.carriers_live);
        for (_, pages) in &self.free_aging {
            out.extend(pages);
        }
        out
    }

    /// Number of pages owned by the tree's metadata (slot pages).
    pub(crate) fn meta_page_count(&self) -> u64 {
        match self.format {
            MetaFormat::V1 => 1,
            MetaFormat::V2 => 2,
        }
    }

    /// Bulk-loader leaf fill target (`BULK_FILL` of the capacity).
    pub(crate) fn bulk_leaf_target(&self) -> usize {
        ((self.leaf_cap as f64 * BULK_FILL) as usize).max(2)
    }

    /// Bulk-loader inner fill target.
    pub(crate) fn bulk_inner_target(&self) -> usize {
        ((self.inner_cap as f64 * BULK_FILL) as usize).max(2)
    }

    /// Serialises `node` into a fresh page-sized buffer.
    pub(crate) fn encode_node(&self, node: &Node) -> Vec<u8> {
        let mut buf = vec![0u8; self.pool.page_size()];
        node.write_to(self.config.dims, self.config.leaf_format, &mut buf);
        buf
    }

    /// Stages `node` for `page` in a [`WriteBatch`] (group commit),
    /// invalidating the decoded-node cache exactly like a direct write.
    pub(crate) fn stage_node(&self, batch: &mut WriteBatch, page: PageId, node: &Node) {
        self.node_cache.remove(page);
        batch.put(page, &self.encode_node(node));
    }

    /// Flushes a staged [`WriteBatch`] through the pool (coalesced runs).
    pub(crate) fn commit_batch(&self, batch: &mut WriteBatch) -> Result<(), TreeError> {
        self.pool.write_batch(batch)?;
        Ok(())
    }

    /// Inserts one pfv with external id `id` (paper §5.3 descent rules).
    ///
    /// # Errors
    /// [`TreeError::DimMismatch`] for wrong dimensionality; store errors.
    pub fn insert(&mut self, id: u64, v: &Pfv) -> Result<(), TreeError> {
        if v.dims() != self.config.dims {
            return Err(TreeError::DimMismatch {
                expected: self.config.dims,
                got: v.dims(),
            });
        }
        let v = &quantise_for(self.config.leaf_format, v)?.unwrap_or_else(|| v.clone());
        match self.insert_rec(self.root, self.height, id, v)? {
            ChildUpdate::Updated(page, ..) => self.root = page,
            ChildUpdate::Split {
                left_page,
                left,
                right_page,
                right,
            } => {
                // Grow a new root.
                let new_root = self.alloc_page()?;
                let node = Node::Inner(vec![
                    InnerEntry {
                        child: left_page,
                        count: left.1,
                        rect: left.0,
                    },
                    InnerEntry {
                        child: right_page,
                        count: right.1,
                        rect: right.0,
                    },
                ]);
                self.write_node(new_root, &node)?;
                self.root = new_root;
                self.height += 1;
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        page: PageId,
        level: u32,
        id: u64,
        v: &Pfv,
    ) -> Result<ChildUpdate, TreeError> {
        let node = self.read_node(page)?;
        if level == 0 {
            let Node::Leaf(mut entries) = node else {
                return Err(TreeError::Corrupt("expected leaf at level 0"));
            };
            entries.push(LeafEntry { id, pfv: v.clone() });
            if entries.len() <= self.leaf_cap {
                let rect = group_rect(&entries);
                let count = entries.len() as u64;
                let page = self.write_node_shadow(page, &Node::Leaf(entries))?;
                Ok(ChildUpdate::Updated(page, rect, count))
            } else {
                let out = split_items(self.config.split, entries);
                let right_page = self.alloc_page()?;
                let left_rect = group_rect(&out.left);
                let right_rect = group_rect(&out.right);
                let left_count = out.left.len() as u64;
                let right_count = out.right.len() as u64;
                let left_page = self.write_node_shadow(page, &Node::Leaf(out.left))?;
                self.write_node(right_page, &Node::Leaf(out.right))?;
                Ok(ChildUpdate::Split {
                    left_page,
                    left: (left_rect, left_count),
                    right_page,
                    right: (right_rect, right_count),
                })
            }
        } else {
            let Node::Inner(mut entries) = node else {
                return Err(TreeError::Corrupt("expected inner node above level 0"));
            };
            if entries.is_empty() {
                return Err(TreeError::Corrupt("empty inner node"));
            }
            let idx = self.choose_subtree(&entries, v);
            let child_page = entries[idx].child;
            match self.insert_rec(child_page, level - 1, id, v)? {
                ChildUpdate::Updated(new_child, rect, count) => {
                    entries[idx].child = new_child;
                    entries[idx].rect = rect;
                    entries[idx].count = count;
                }
                ChildUpdate::Split {
                    left_page,
                    left,
                    right_page,
                    right,
                } => {
                    entries[idx] = InnerEntry {
                        child: left_page,
                        count: left.1,
                        rect: left.0,
                    };
                    entries.push(InnerEntry {
                        child: right_page,
                        count: right.1,
                        rect: right.0,
                    });
                }
            }
            if entries.len() <= self.inner_cap {
                let rect = group_rect(&entries);
                let count = entries.iter().map(|e| e.count).sum();
                let page = self.write_node_shadow(page, &Node::Inner(entries))?;
                Ok(ChildUpdate::Updated(page, rect, count))
            } else {
                let out = split_items(self.config.split, entries);
                let right_page = self.alloc_page()?;
                let left_rect = group_rect(&out.left);
                let right_rect = group_rect(&out.right);
                let left_count = out.left.iter().map(|e| e.count).sum();
                let right_count = out.right.iter().map(|e| e.count).sum();
                let left_page = self.write_node_shadow(page, &Node::Inner(out.left))?;
                self.write_node(right_page, &Node::Inner(out.right))?;
                Ok(ChildUpdate::Split {
                    left_page,
                    left: (left_rect, left_count),
                    right_page,
                    right: (right_rect, right_count),
                })
            }
        }
    }

    /// Batch-inserts a run of `(id, pfv)` pairs into an existing tree — the
    /// append path of the ingest pipeline (`build --append` in the CLI).
    ///
    /// Unlike looping [`GaussTree::insert`], the whole run descends the
    /// tree **once**: at every inner node the batch is routed to child
    /// subtrees with the §5.3 subtree-selection rule and merged group-wise,
    /// so each touched node is rewritten a single time per batch instead of
    /// once per item, and overflowing nodes are split multi-way in one go
    /// ([`split_many`]). Returns the number of items added.
    ///
    /// # Errors
    /// [`TreeError::DimMismatch`] for wrong dimensionality; store errors.
    pub fn extend(
        &mut self,
        items: impl IntoIterator<Item = (u64, Pfv)>,
    ) -> Result<u64, TreeError> {
        let mut batch = Vec::new();
        for (id, pfv) in items {
            if pfv.dims() != self.config.dims {
                return Err(TreeError::DimMismatch {
                    expected: self.config.dims,
                    got: pfv.dims(),
                });
            }
            let pfv = quantise_for(self.config.leaf_format, &pfv)?.unwrap_or(pfv);
            batch.push(LeafEntry { id, pfv });
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let added = batch.len() as u64;
        let mut descs = self.extend_rec(self.root, self.height, batch)?;
        // Grow new levels until a single root covers every sibling the
        // batch created (a large run can overflow the old root multi-way,
        // raising the height by more than one).
        while descs.len() > 1 {
            let entries: Vec<InnerEntry> = descs
                .iter()
                .map(|d| InnerEntry {
                    child: d.page,
                    count: d.count,
                    rect: d.rect.clone(),
                })
                .collect();
            if entries.len() <= self.inner_cap {
                let page = self.alloc_page()?;
                let rect = group_rect(&entries);
                let count = entries.iter().map(|e| e.count).sum();
                self.write_node(page, &Node::Inner(entries))?;
                self.height += 1;
                descs = vec![SubtreeDesc { page, rect, count }];
            } else {
                let groups = split_many(self.config.split, entries, self.inner_cap);
                let mut next = Vec::with_capacity(groups.len());
                for g in groups {
                    let page = self.alloc_page()?;
                    let rect = group_rect(&g);
                    let count = g.iter().map(|e| e.count).sum();
                    self.write_node(page, &Node::Inner(g))?;
                    next.push(SubtreeDesc { page, rect, count });
                }
                self.height += 1;
                descs = next;
            }
        }
        self.root = descs[0].page;
        self.len += added;
        Ok(added)
    }

    /// Merges `items` into the subtree rooted at `page`, returning the
    /// descriptors of the subtree(s) that replace it (more than one when
    /// the node overflowed and split).
    fn extend_rec(
        &mut self,
        page: PageId,
        level: u32,
        items: Vec<LeafEntry>,
    ) -> Result<Vec<SubtreeDesc>, TreeError> {
        let node = self.read_node(page)?;
        if level == 0 {
            let Node::Leaf(mut entries) = node else {
                return Err(TreeError::Corrupt("expected leaf at level 0"));
            };
            entries.extend(items);
            return if entries.len() <= self.leaf_cap {
                let rect = group_rect(&entries);
                let count = entries.len() as u64;
                let page = self.write_node_shadow(page, &Node::Leaf(entries))?;
                Ok(vec![SubtreeDesc { page, rect, count }])
            } else {
                let groups = split_many(self.config.split, entries, self.leaf_cap);
                let mut descs = Vec::with_capacity(groups.len());
                for (i, g) in groups.into_iter().enumerate() {
                    let rect = group_rect(&g);
                    let count = g.len() as u64;
                    let target = if i == 0 {
                        self.write_node_shadow(page, &Node::Leaf(g))?
                    } else {
                        let t = self.alloc_page()?;
                        self.write_node(t, &Node::Leaf(g))?;
                        t
                    };
                    descs.push(SubtreeDesc {
                        page: target,
                        rect,
                        count,
                    });
                }
                Ok(descs)
            };
        }
        let Node::Inner(mut entries) = node else {
            return Err(TreeError::Corrupt("expected inner node above level 0"));
        };
        if entries.is_empty() {
            return Err(TreeError::Corrupt("empty inner node"));
        }
        // Route every item with the single-insert descent rule, against the
        // rectangles as they were when the batch arrived, then recurse once
        // per targeted child with its whole group.
        let mut groups: BTreeMap<usize, Vec<LeafEntry>> = BTreeMap::new();
        for item in items {
            let idx = self.choose_subtree(&entries, &item.pfv);
            groups.entry(idx).or_default().push(item);
        }
        let mut extra: Vec<InnerEntry> = Vec::new();
        for (idx, group) in groups {
            let child = entries[idx].child;
            let descs = self.extend_rec(child, level - 1, group)?;
            let mut it = descs.into_iter();
            // lint: allow(no-panic) -- extend_rec returns one desc per created node and creates at least one
            let first = it.next().expect("extend_rec returns at least one desc");
            entries[idx] = InnerEntry {
                child: first.page,
                count: first.count,
                rect: first.rect,
            };
            extra.extend(it.map(|d| InnerEntry {
                child: d.page,
                count: d.count,
                rect: d.rect,
            }));
        }
        entries.extend(extra);
        if entries.len() <= self.inner_cap {
            let rect = group_rect(&entries);
            let count = entries.iter().map(|e| e.count).sum();
            let page = self.write_node_shadow(page, &Node::Inner(entries))?;
            Ok(vec![SubtreeDesc { page, rect, count }])
        } else {
            let groups = split_many(self.config.split, entries, self.inner_cap);
            let mut descs = Vec::with_capacity(groups.len());
            for (i, g) in groups.into_iter().enumerate() {
                let rect = group_rect(&g);
                let count = g.iter().map(|e| e.count).sum();
                let target = if i == 0 {
                    self.write_node_shadow(page, &Node::Inner(g))?
                } else {
                    let t = self.alloc_page()?;
                    self.write_node(t, &Node::Inner(g))?;
                    t
                };
                descs.push(SubtreeDesc {
                    page: target,
                    rect,
                    count,
                });
            }
            Ok(descs)
        }
    }

    /// Insertion path selection (paper §5.3):
    /// 1. if exactly one child rectangle contains the new pfv, follow it;
    /// 2. if several contain it, follow the most selective one (minimal
    ///    hull cost — the greedy single-path realisation of the paper's
    ///    "follow all paths and find a node it exactly fits");
    /// 3. otherwise follow the child whose cost increases least.
    fn choose_subtree(&self, entries: &[InnerEntry], v: &Pfv) -> usize {
        debug_assert!(!entries.is_empty());
        let strategy = self.config.split;
        let mut best_containing: Option<(f64, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            if e.rect.contains_pfv(v) {
                let cost = node_cost(strategy, &e.rect);
                if best_containing.is_none_or(|(c, _)| cost < c) {
                    best_containing = Some((cost, i));
                }
            }
        }
        if let Some((_, i)) = best_containing {
            return i;
        }
        // No child contains it: minimal cost increase, ties by smaller cost.
        let mut best = (f64::INFINITY, f64::INFINITY, 0usize);
        for (i, e) in entries.iter().enumerate() {
            let before = node_cost(strategy, &e.rect);
            let mut extended = e.rect.clone();
            extended.extend_pfv(v);
            let delta = node_cost(strategy, &extended) - before;
            if delta < best.0 || (delta == best.0 && before < best.1) {
                best = (delta, before, i);
            }
        }
        best.2
    }

    /// Reads and decodes the node stored at `page`.
    ///
    /// # Errors
    /// Store / codec errors.
    pub(crate) fn read_node(&self, page: PageId) -> Result<Node, TreeError> {
        let bytes = self.pool.page(page)?;
        Ok(Node::read_from(
            self.config.dims,
            self.config.leaf_format,
            &bytes,
        )?)
    }

    /// The decoded-node companion cache (size/occupancy introspection).
    #[must_use]
    pub fn node_cache(&self) -> &SideCache<CachedNode> {
        &self.node_cache
    }

    /// Cold start for measurement loops: drops the buffer pool's cached
    /// frames, zeroes the access counters, **and** clears the decoded-node
    /// cache. `pool().clear_cache_and_stats()` alone leaves the decoded
    /// nodes warm — physical-read counts would still be cold-accurate, but
    /// CPU timings would silently skip the decode work and depend on what
    /// ran before.
    pub fn cold_start(&self) {
        self.pool.clear_cache_and_stats();
        self.node_cache.clear();
    }

    /// Serialises `node` into `page` (crate-internal; used by deletion).
    pub(crate) fn write_node_pub(&mut self, page: PageId, node: &Node) -> Result<(), TreeError> {
        self.write_node(page, node)
    }

    /// Minimum fill of a non-root leaf (`M` in the paper's `[M, 2M]`).
    pub(crate) fn leaf_min_fill(&self) -> usize {
        (self.leaf_cap / 2).max(1)
    }

    /// Minimum fill of a non-root inner node (`M/2`).
    pub(crate) fn inner_min_fill(&self) -> usize {
        (self.inner_cap / 2).max(1)
    }

    /// Overrides the stored length (deletion bookkeeping).
    pub(crate) fn set_len(&mut self, len: u64) {
        self.len = len;
    }

    /// Replaces the root pointer and height (root collapse on deletion).
    pub(crate) fn set_root(&mut self, root: PageId, height: u32) {
        self.root = root;
        self.height = height;
    }

    fn write_node(&mut self, page: PageId, node: &Node) -> Result<(), TreeError> {
        // An in-place write to a page the committed epoch references
        // diverges the store from that epoch: snapshots are blocked until
        // the next flush re-commits. Shadow pages are invisible to the
        // committed tree, so writing them keeps the epoch intact.
        if !self.shadowed.contains(&page.index()) {
            self.dirty_since_commit = true;
        }
        let mut buf = vec![0u8; self.pool.page_size()];
        node.write_to(self.config.dims, self.config.leaf_format, &mut buf);
        // Invalidate the decoded form before the bytes change so no reader
        // of the new page content can ever see the stale decode (mutation
        // holds `&mut self`, but keep the ordering airtight regardless).
        self.node_cache.remove(page);
        self.pool.write(page, &buf)?;
        Ok(())
    }

    /// Writes `node` where the durability policy allows: in place when the
    /// committed tree does not reference `page` (or the tree is not
    /// shadow-paging), otherwise to a freshly allocated shadow page,
    /// deferring `page` to the post-commit free list. Returns where the
    /// node landed; callers must re-point the parent at it.
    pub(crate) fn write_node_shadow(
        &mut self,
        page: PageId,
        node: &Node,
    ) -> Result<PageId, TreeError> {
        if !self.is_shadowing() || self.shadowed.contains(&page.index()) {
            self.write_node(page, node)?;
            Ok(page)
        } else {
            let new = self.alloc_page()?;
            self.write_node(new, node)?;
            self.free_page(page)?;
            Ok(new)
        }
    }

    /// The read-plane over this writer's *working* state (root/height/len
    /// as mutated so far, committed or not) — what [`ReadView`] queries on
    /// `&GaussTree` observe.
    pub(crate) fn working_plane(&self) -> Plane<'_, S> {
        Plane {
            pool: &self.pool,
            node_cache: &self.node_cache,
            config: &self.config,
            leaf_cap: self.leaf_cap,
            inner_cap: self.inner_cap,
            root: self.root,
            height: self.height,
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauss_storage::{AccessStats, BufferPool, MemStore};

    fn mem_tree(dims: usize, leaf: usize, inner: usize) -> GaussTree<MemStore> {
        let config = TreeConfig::new(dims).with_capacities(leaf, inner);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        GaussTree::create(pool, config).unwrap()
    }

    fn pfv1(mu: f64, sigma: f64) -> Pfv {
        Pfv::new(vec![mu], vec![sigma]).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = mem_tree(1, 4, 4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn insert_grows_len_and_keeps_entries() {
        let mut t = mem_tree(1, 4, 4);
        for i in 0..50u64 {
            t.insert(i, &pfv1(i as f64, 0.1 + (i % 5) as f64 * 0.05))
                .unwrap();
        }
        assert_eq!(t.len(), 50);
        assert!(t.height() >= 1, "50 entries with cap 4 must split");
        let mut seen = Vec::new();
        t.for_each_entry(|id, _| seen.push(id)).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_wrong_dimensionality() {
        let mut t = mem_tree(2, 4, 4);
        let err = t.insert(0, &pfv1(0.0, 0.1)).unwrap_err();
        assert!(matches!(
            err,
            TreeError::DimMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn persistence_round_trip() {
        let config = TreeConfig::new(2).with_capacities(4, 3);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut t = GaussTree::create(pool, config).unwrap();
        for i in 0..30u64 {
            let v = Pfv::new(vec![i as f64, -(i as f64)], vec![0.2, 0.3]).unwrap();
            t.insert(i, &v).unwrap();
        }
        t.flush().unwrap();
        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.len(), 30);
        assert_eq!(t2.dims(), 2);
        let mut n = 0;
        t2.for_each_entry(|_, _| n += 1).unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn open_rejects_non_tree() {
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        assert!(matches!(
            GaussTree::open(pool),
            Err(TreeError::NotAGaussTree)
        ));
        let mut store = MemStore::new(8192);
        store.allocate().unwrap(); // garbage page 0
        let pool = BufferPool::new(store, 16, AccessStats::new_shared());
        assert!(matches!(
            GaussTree::open(pool),
            Err(TreeError::NotAGaussTree)
        ));
    }

    #[test]
    fn bulk_load_matches_inserted_content() {
        let items: Vec<(u64, Pfv)> = (0..200u64)
            .map(|i| (i, pfv1((i % 37) as f64, 0.05 + (i % 7) as f64 * 0.1)))
            .collect();
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, items.clone()).unwrap();
        assert_eq!(t.len(), 200);
        let mut seen = Vec::new();
        t.for_each_entry(|id, _| seen.push(id)).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_single_leaf() {
        let items = vec![(1u64, pfv1(0.0, 0.1)), (2, pfv1(1.0, 0.2))];
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, items).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn bulk_load_empty() {
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, Vec::new()).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn node_cache_serves_decoded_nodes_and_invalidates_on_write() {
        let mut t = mem_tree(1, 4, 4);
        for i in 0..20u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        let root = t.root_page();
        let a = t.working_plane().read_node_cached(root).unwrap();
        let b = t.working_plane().read_node_cached(root).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "second read must hit the node cache"
        );
        assert!(!t.node_cache().is_empty());

        // Mutation must invalidate: the next read decodes the new bytes.
        t.insert(100, &pfv1(50.0, 0.2)).unwrap();
        let c = t.working_plane().read_node_cached(t.root_page()).unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&a, &c),
            "write must invalidate the cached decode"
        );
        // And the cached view matches a fresh decode.
        let fresh = t.read_node(t.root_page()).unwrap().into_cached(1);
        assert_eq!(*c, fresh);
    }

    #[test]
    fn node_cache_accounting_matches_plain_reads() {
        // The cached read path must request the page from the pool exactly
        // like the uncached one, so the paper's page-access metrics are
        // unchanged by the decode cache.
        let mut t = mem_tree(1, 4, 4);
        for i in 0..30u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        let root = t.root_page();
        t.pool().clear_cache_and_stats();
        let _ = t.working_plane().read_node_cached(root).unwrap();
        let _ = t.working_plane().read_node_cached(root).unwrap();
        let snap = t.stats().snapshot();
        assert_eq!(snap.logical_reads, 2, "every cached read stays logical");
        assert_eq!(snap.physical_reads, 1, "first read faults, second hits");
    }

    #[test]
    fn extend_merges_batches_like_single_inserts() {
        let items: Vec<(u64, Pfv)> = (0..120u64)
            .map(|i| (i, pfv1((i % 31) as f64, 0.05 + (i % 5) as f64 * 0.08)))
            .collect();
        let config = TreeConfig::new(1).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut t = GaussTree::bulk_load(pool, config, items).unwrap();

        let run: Vec<(u64, Pfv)> = (200..320u64)
            .map(|i| {
                (
                    i,
                    pfv1((i as f64 * 0.37).sin() * 25.0, 0.1 + (i % 3) as f64 * 0.1),
                )
            })
            .collect();
        assert_eq!(t.extend(run).unwrap(), 120);
        assert_eq!(t.len(), 240);
        let mut seen = Vec::new();
        t.for_each_entry(|id, _| seen.push(id)).unwrap();
        seen.sort_unstable();
        let mut want: Vec<u64> = (0..120).chain(200..320).collect();
        want.sort_unstable();
        assert_eq!(seen, want);
        let errs = t.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations after extend: {errs:?}");
    }

    #[test]
    fn extend_into_empty_tree_and_empty_batch() {
        let mut t = mem_tree(1, 4, 4);
        assert_eq!(t.extend(Vec::new()).unwrap(), 0);
        assert!(t.is_empty());
        let run: Vec<(u64, Pfv)> = (0..40u64).map(|i| (i, pfv1(i as f64, 0.2))).collect();
        assert_eq!(t.extend(run).unwrap(), 40);
        assert_eq!(t.len(), 40);
        assert!(t.height() >= 1, "40 entries with cap 4 must have split");
        let errs = t.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "{errs:?}");
        // Plain inserts still work after a batch merge.
        for i in 100..120u64 {
            t.insert(i, &pfv1(i as f64 * 0.3, 0.15)).unwrap();
        }
        assert_eq!(t.len(), 60);
        assert!(t.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn extend_rejects_wrong_dims_without_mutation() {
        let mut t = mem_tree(2, 4, 4);
        let err = t.extend(vec![(0u64, pfv1(0.0, 0.1))]).unwrap_err();
        assert!(matches!(err, TreeError::DimMismatch { .. }));
        assert!(t.is_empty());
    }

    #[test]
    fn extend_persists_across_reopen() {
        let config = TreeConfig::new(1).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(4096), 1024, AccessStats::new_shared());
        let items: Vec<(u64, Pfv)> = (0..50u64).map(|i| (i, pfv1(i as f64, 0.2))).collect();
        let mut t = GaussTree::bulk_load(pool, config, items).unwrap();
        t.extend((50..90u64).map(|i| (i, pfv1(i as f64 * 0.5, 0.3))))
            .unwrap();
        t.flush().unwrap();
        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.len(), 90);
        assert!(t2.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn huge_free_list_survives_reopen_via_overflow_chain() {
        // A 1 KiB meta page holds ~121 free ids inline; mass deletion on a
        // small-page tree frees far more. The overflow must persist through
        // the carrier chain: after reopen the full list is back and the
        // page accounting still balances (no false PageLeak).
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(1024), 4096, AccessStats::new_shared());
        let mut t = GaussTree::create(pool, config).unwrap();
        let items: Vec<(u64, Pfv)> = (0..900u64)
            .map(|i| {
                (
                    i,
                    pfv1((i as f64 * 0.61).sin() * 40.0, 0.05 + (i % 9) as f64 * 0.07),
                )
            })
            .collect();
        for (id, v) in &items {
            t.insert(*id, v).unwrap();
        }
        for (id, v) in items.iter().take(850) {
            t.delete(*id, v).unwrap();
        }
        let freed = t.free_page_count();
        let meta_cap = (1024 - super::META_BASE_BYTES) / 8;
        assert!(freed > meta_cap, "need overflow: {freed} <= {meta_cap}");
        assert!(t.check_invariants(false).unwrap().is_empty());
        t.flush().unwrap();

        let store = t.into_store();
        let pool = BufferPool::new(store, 4096, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.free_page_count(), freed, "free list truncated on reopen");
        let errs = t2.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations after reopen: {errs:?}");
        assert_eq!(t2.len(), 50);
    }

    #[test]
    fn epoch_bumps_and_survives_reopen() {
        let mut t = mem_tree(1, 4, 4);
        assert_eq!(t.epoch(), 1, "create commits the empty tree");
        for i in 0..10u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        t.flush().unwrap();
        t.flush().unwrap();
        assert_eq!(t.epoch(), 3);
        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let (t2, report) = GaussTree::open_with_recovery(pool).unwrap();
        assert_eq!(t2.epoch(), 3);
        assert_eq!(report.epoch, 3);
        assert!(!report.fell_back && !report.legacy);
        assert_eq!(report.orphaned_pages, 0);
        assert_eq!(t2.len(), 10);
    }

    #[test]
    fn torn_meta_slot_falls_back_to_previous_epoch() {
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(1024), 1024, AccessStats::new_shared());
        let mut t = GaussTree::create_with(
            pool,
            config,
            &TreeOptions::new().durability(Durability::Fsync),
        )
        .unwrap();
        for i in 0..20u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        t.flush().unwrap(); // epoch 2 -> slot A
        for i in 20..40u64 {
            t.insert(i, &pfv1(i as f64 * 0.5, 0.2)).unwrap();
        }
        t.flush().unwrap(); // epoch 3 -> slot B
        assert_eq!(t.epoch(), 3);

        // Tear the newest slot (epoch 3 lives in slot B = page 1).
        let mut bytes = t.pool().page(PageId(1)).unwrap().to_vec();
        for b in bytes.iter_mut().skip(512) {
            *b = 0xAA;
        }
        t.pool().write(PageId(1), &bytes).unwrap();

        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let (t2, report) = GaussTree::open_with_recovery(pool).unwrap();
        assert_eq!(report.epoch, 2, "must fall back to the intact commit");
        assert!(report.fell_back);
        assert_eq!(t2.len(), 20, "epoch-2 state: first 20 inserts only");
        assert!(t2.check_invariants(false).unwrap().is_empty());
        let mut ids = Vec::new();
        t2.for_each_entry(|id, _| ids.push(id)).unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn double_free_is_a_hard_error_in_release() {
        let mut t = mem_tree(1, 4, 4);
        let p = t.alloc_page().unwrap();
        t.free_page(p).unwrap();
        let err = t.free_page(p).unwrap_err();
        assert!(matches!(err, TreeError::DoubleFree { page } if page == p.index()));
    }

    #[test]
    fn orphan_pages_are_reclaimed_on_open() {
        let mut t = mem_tree(1, 4, 4);
        for i in 0..15u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        t.flush().unwrap();
        // Simulate an interrupted mutation: pages allocated after the
        // commit that no meta slot references.
        for _ in 0..3 {
            let _ = t.pool().allocate().unwrap();
        }
        let free_before = t.free_page_count();
        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let (t2, report) = GaussTree::open_with_recovery(pool).unwrap();
        assert_eq!(report.orphaned_pages, 3);
        assert_eq!(t2.free_page_count(), free_before + 3);
        assert!(t2.check_invariants(false).unwrap().is_empty());
        // The reclamation was sealed by a commit: a later plain open sees
        // the orphans on the persisted free list, not as orphans again.
        let store = t2.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let (t3, report) = GaussTree::open_with_recovery(pool).unwrap();
        assert_eq!(report.orphaned_pages, 0, "reclamation must be persistent");
        assert_eq!(t3.free_page_count(), free_before + 3);
    }

    #[test]
    fn shadow_paging_defers_reuse_until_commit() {
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(4096), 1024, AccessStats::new_shared());
        let mut t = GaussTree::create_with(
            pool,
            config,
            &TreeOptions::new().durability(Durability::Flush),
        )
        .unwrap();
        let items: Vec<(u64, Pfv)> = (0..60u64).map(|i| (i, pfv1(i as f64, 0.15))).collect();
        for (id, v) in &items {
            t.insert(*id, v).unwrap();
        }
        t.flush().unwrap();
        for (id, v) in items.iter().take(30) {
            t.delete(*id, v).unwrap();
        }
        // Deletion shadow-freed committed pages: they must sit on the
        // deferred list until the commit, not be handed back out.
        assert!(
            !t.free_pending.is_empty(),
            "committed pages freed this epoch are reuse-deferred"
        );
        assert!(t.check_invariants(false).unwrap().is_empty());
        t.flush().unwrap();
        assert!(t.free_pending.is_empty(), "commit promotes deferred frees");
        assert!(!t.free_committed.is_empty());
        assert!(t.check_invariants(false).unwrap().is_empty());
        // And the tree still behaves: reinsert and query.
        for (id, v) in items.iter().take(30) {
            t.insert(*id, v).unwrap();
        }
        assert_eq!(t.len(), 60);
        assert!(t.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn legacy_v1_file_opens_flushes_and_stays_v1() {
        // Hand-build a v1-format file: single meta page at 0, root leaf at
        // page 1 — the layout every pre-dual-slot release wrote.
        let dims = 1usize;
        let config = TreeConfig::new(dims).with_capacities(4, 4);
        let entries = vec![
            LeafEntry {
                id: 7,
                pfv: pfv1(1.0, 0.2),
            },
            LeafEntry {
                id: 9,
                pfv: pfv1(-2.0, 0.4),
            },
        ];
        let mut store = MemStore::new(1024);
        {
            use gauss_storage::store::PageStore as _;
            let meta = store.allocate().unwrap();
            let root = store.allocate().unwrap();
            let mut page = vec![0u8; 1024];
            let mut w = Writer::new(&mut page);
            w.put_u32(META_MAGIC);
            w.put_u32(META_VERSION_V1);
            w.put_u32(dims as u32);
            w.put_u8(0); // Convolution
            w.put_u8(config.split.to_tag());
            w.put_u32(4);
            w.put_u32(4);
            w.put_u64(root.index());
            w.put_u32(0); // height
            w.put_u64(entries.len() as u64);
            w.put_u32(0); // free count
            w.put_u64(PageId::INVALID.index());
            store.write_page(meta, &page).unwrap();
            let mut node_page = vec![0u8; 1024];
            Node::Leaf(entries.clone()).write_to(dims, LeafFormat::Exact, &mut node_page);
            store.write_page(root, &node_page).unwrap();
        }
        let pool = BufferPool::new(store, 64, AccessStats::new_shared());
        let (mut t, report) = GaussTree::open_with_recovery(pool).unwrap();
        assert!(report.legacy);
        assert_eq!(t.len(), 2);
        assert_eq!(t.root_page(), PageId(1));
        assert!(t.check_invariants(false).unwrap().is_empty());
        let mut ids = Vec::new();
        t.for_each_entry(|id, _| ids.push(id)).unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![7, 9]);

        // Mutating and flushing keeps the v1 format (page 1 is a node, so
        // the second slot can never be claimed) and the file reopens.
        t.insert(11, &pfv1(4.0, 0.3)).unwrap();
        t.flush().unwrap();
        let store = t.into_store();
        let pool = BufferPool::new(store, 64, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.epoch(), 0, "legacy files have no epochs");
        assert!(t2.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn truncated_store_is_rejected_cleanly() {
        // A store cut below what the meta commits to must fail with
        // NotAGaussTree (bounds validation), not a decode error deep in
        // read_node.
        let mut t = mem_tree(1, 4, 4);
        for i in 0..40u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        t.flush().unwrap();
        let full = t.into_store();
        // Copy only the two meta slot pages into a fresh store — a
        // page-aligned truncation that cut away every node. Both slots
        // commit to more pages than the store holds, so both must be
        // rejected by the bounds validation.
        let mut cut = MemStore::new(8192);
        {
            use gauss_storage::store::PageStore as _;
            let mut full = full;
            let mut buf = vec![0u8; 8192];
            for i in 0..2u64 {
                let id = cut.allocate().unwrap();
                full.read_page(PageId(i), &mut buf).unwrap();
                cut.write_page(id, &buf).unwrap();
            }
        }
        let pool = BufferPool::new(cut, 64, AccessStats::new_shared());
        assert!(matches!(
            GaussTree::open(pool),
            Err(TreeError::NotAGaussTree)
        ));
    }

    #[test]
    fn cyclic_free_chain_is_rejected_not_looped() {
        // Carrier pages are outside the slot checksum; a garbage carrier
        // whose header decodes as (next = itself, count = 0) must bound
        // the chain walk and fall back to the previous epoch, not hang.
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(1024), 4096, AccessStats::new_shared());
        let mut t = GaussTree::create(pool, config).unwrap();
        let items: Vec<(u64, Pfv)> = (0..400u64).map(|i| (i, pfv1(i as f64, 0.1))).collect();
        for (id, v) in &items {
            t.insert(*id, v).unwrap();
        }
        for (id, v) in items.iter().take(380) {
            t.delete(*id, v).unwrap();
        }
        t.flush().unwrap(); // epoch 2: overflow chain exists
        t.flush().unwrap(); // epoch 3: a second chain, epoch 2 stays intact
        let newest_slot = PageId(1); // epoch 3 is odd -> slot B
        let slot_bytes = t.pool().page(newest_slot).unwrap();
        // Overflow chain pointer: the last 8 bytes of the fixed v3 header.
        let chain_off = META_BASE_BYTES - 8;
        let first_carrier = PageId(u64::from_le_bytes(
            slot_bytes[chain_off..chain_off + 8].try_into().unwrap(),
        ));
        assert!(first_carrier.is_valid(), "test needs an overflow chain");
        let mut cycle = vec![0u8; 1024];
        cycle[..8].copy_from_slice(&first_carrier.index().to_le_bytes()); // next = itself
        t.pool().write(first_carrier, &cycle).unwrap();

        let store = t.into_store();
        let pool = BufferPool::new(store, 4096, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.epoch(), 2, "cyclic chain slot must be rejected");
        assert_eq!(t2.len(), 20);
        assert!(t2.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn recovery_fallback_is_sealed_for_later_plain_opens() {
        // A checksum-valid slot whose tree fails verification: plain open
        // happily picks it, open_with_recovery must reject it AND persist
        // that decision so later plain opens stop re-selecting it.
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(1024), 4096, AccessStats::new_shared());
        let mut t = GaussTree::create_with(
            pool,
            config,
            &TreeOptions::new().durability(Durability::Fsync),
        )
        .unwrap();
        for i in 0..20u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        t.flush().unwrap(); // epoch 2 -> slot A
        for i in 20..40u64 {
            t.insert(i, &pfv1(i as f64 * 0.3, 0.2)).unwrap();
        }
        t.flush().unwrap(); // epoch 3 -> slot B
                            // Corrupt epoch 3 semantically: point its root at some other
                            // in-bounds page and recompute the checksum so parsing passes.
        let slot = PageId(1);
        let mut bytes = t.pool().page(slot).unwrap().to_vec();
        let bogus_root = t.pool().num_pages() - 1;
        bytes[46..54].copy_from_slice(&bogus_root.to_le_bytes());
        bytes[8..16].fill(0);
        let sum = gauss_storage::fnv1a64(&bytes);
        bytes[8..16].copy_from_slice(&sum.to_le_bytes());
        t.pool().write(slot, &bytes).unwrap();

        let store = t.into_store();
        let pool = BufferPool::new(store, 4096, AccessStats::new_shared());
        let (t2, report) = GaussTree::open_with_recovery(pool).unwrap();
        assert!(report.fell_back);
        assert_eq!(report.epoch, 2);
        assert_eq!(t2.len(), 20);
        // The seal commits epoch 3 — rewriting exactly the rejected slot.
        assert_eq!(t2.epoch(), 3, "recovery must commit a sealing epoch");

        // The seal persists: a plain (unverified) open now lands on the
        // recovered state instead of the corrupt higher epoch.
        let store = t2.into_store();
        let pool = BufferPool::new(store, 4096, AccessStats::new_shared());
        let t3 = GaussTree::open(pool).unwrap();
        assert_eq!(t3.len(), 20);
        assert!(t3.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn durable_flush_issues_ordered_barriers() {
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(4096), 64, AccessStats::new_shared());
        let mut t = GaussTree::create_with(
            pool,
            config,
            &TreeOptions::new().durability(Durability::Fsync),
        )
        .unwrap();
        assert_eq!(
            t.stats().snapshot().syncs,
            2,
            "create's commit pays a data barrier and a commit barrier"
        );
        t.insert(1, &pfv1(0.5, 0.1)).unwrap();
        t.flush().unwrap();
        assert_eq!(t.stats().snapshot().syncs, 4);
        // Durability::None trees never sync.
        let pool = BufferPool::new(MemStore::new(4096), 64, AccessStats::new_shared());
        let t2 = GaussTree::create(pool, config).unwrap();
        assert_eq!(t2.stats().snapshot().syncs, 0);
    }

    #[test]
    fn insert_after_bulk_load() {
        let items: Vec<(u64, Pfv)> = (0..100u64).map(|i| (i, pfv1(i as f64, 0.1))).collect();
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut t = GaussTree::bulk_load(pool, config, items).unwrap();
        for i in 100..150u64 {
            t.insert(i, &pfv1(i as f64 * 0.5, 0.2)).unwrap();
        }
        assert_eq!(t.len(), 150);
        let mut n = 0;
        t.for_each_entry(|_, _| n += 1).unwrap();
        assert_eq!(n, 150);
    }

    fn quantised_mem_tree(dims: usize, leaf: usize, inner: usize) -> GaussTree<MemStore> {
        let config = TreeConfig::new(dims).with_capacities(leaf, inner);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        GaussTree::create_with(
            pool,
            config,
            &TreeOptions::new().leaf_format(LeafFormat::Quantised),
        )
        .unwrap()
    }

    #[test]
    fn quantised_tree_stores_rounded_parameters() {
        let mut t = quantised_mem_tree(1, 4, 4);
        assert_eq!(t.config().leaf_format, LeafFormat::Quantised);
        // 0.1 is not f32-exact: the stored parameters must be the rounded
        // ones, every one of them exactly f32-representable.
        for i in 0..40u64 {
            t.insert(i, &pfv1(i as f64 + 0.1, 0.1)).unwrap();
        }
        let mut checked = 0;
        t.for_each_entry(|_, v| {
            for &x in v.means().iter().chain(v.sigmas()) {
                assert!(
                    pfv::quant::is_f32_exact(x),
                    "stored value {x:e} not rounded"
                );
            }
            checked += 1;
        })
        .unwrap();
        assert_eq!(checked, 40);
        // The quantise-stability invariant passes (and would catch a write
        // path that skipped rounding).
        assert!(t.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn quantised_tree_queries_match_brute_force_over_stored_parameters() {
        let mut t = quantised_mem_tree(2, 4, 4);
        let items: Vec<(u64, Pfv)> = (0..120u64)
            .map(|i| {
                let v = Pfv::new(
                    vec![(i as f64 * 0.37).sin() * 9.0, (i as f64 * 0.59).cos() * 9.0],
                    vec![0.1 + (i % 5) as f64 * 0.07, 0.2 + (i % 3) as f64 * 0.05],
                )
                .unwrap();
                (i, v)
            })
            .collect();
        for (id, v) in &items {
            t.insert(*id, v).unwrap();
        }
        // Brute force over the *stored* (quantised) parameters.
        let mode = t.config().combine;
        let mut stored: Vec<(u64, Pfv)> = Vec::new();
        t.for_each_entry(|id, v| stored.push((id, v.clone())))
            .unwrap();
        let q = Pfv::new(vec![1.25, -2.5], vec![0.25, 0.5]).unwrap();
        let mut expect: Vec<(f64, u64)> = stored
            .iter()
            .map(|(id, v)| (pfv::combine::log_joint(mode, v, &q), *id))
            .collect();
        expect.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let got = t.k_mliq(&q, 7).unwrap();
        assert_eq!(got.len(), 7);
        for (r, (ld, id)) in got.iter().zip(&expect) {
            assert_eq!(r.id, *id);
            assert_eq!(r.log_density, *ld, "density must be exact, not approximate");
        }
    }

    #[test]
    fn quantised_format_survives_reopen() {
        let mut t = quantised_mem_tree(1, 4, 4);
        for i in 0..30u64 {
            t.insert(i, &pfv1(i as f64 * 0.3, 0.1)).unwrap();
        }
        t.flush().unwrap();
        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.config().leaf_format, LeafFormat::Quantised);
        assert_eq!(t2.len(), 30);
        assert!(t2.check_invariants(false).unwrap().is_empty());
        let mut n = 0;
        t2.for_each_entry(|_, v| {
            assert!(v
                .means()
                .iter()
                .chain(v.sigmas())
                .all(|&x| pfv::quant::is_f32_exact(x)));
            n += 1;
        })
        .unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn quantised_ingest_rejects_out_of_range_values() {
        let mut t = quantised_mem_tree(1, 4, 4);
        // |μ| beyond the f32 range cannot be stored losslessly.
        let err = t.insert(1, &pfv1(1e39, 0.1)).unwrap_err();
        assert!(matches!(err, TreeError::QuantisationRange { dim: 0, .. }));
        assert_eq!(t.len(), 0, "failed insert must not change the tree");
        // The exact format accepts the same value.
        let mut exact = mem_tree(1, 4, 4);
        exact.insert(1, &pfv1(1e39, 0.1)).unwrap();
    }

    #[test]
    fn quantised_bulk_load_rounds_the_stream() {
        let items: Vec<(u64, Pfv)> = (0..200u64)
            .map(|i| (i, pfv1(i as f64 * 0.7 + 0.1, 0.05 + (i % 7) as f64 * 0.1)))
            .collect();
        let config = TreeConfig::new(1)
            .with_capacities(8, 6)
            .with_leaf_format(LeafFormat::Quantised);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, items).unwrap();
        assert_eq!(t.len(), 200);
        assert!(t.check_invariants(false).unwrap().is_empty());

        // An unquantisable item surfaces its range error.
        let config = TreeConfig::new(1)
            .with_capacities(8, 6)
            .with_leaf_format(LeafFormat::Quantised);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let bad = vec![(0u64, pfv1(0.5, 0.1)), (1, pfv1(-1e39, 0.1))];
        assert!(matches!(
            GaussTree::bulk_load(pool, config, bad),
            Err(TreeError::QuantisationRange { .. })
        ));
    }

    #[test]
    fn v2_meta_slots_open_as_exact_trees() {
        // Reconstruct a v2 slot from a v3 one: drop the leaf-format byte,
        // set the version back, and re-checksum. Opening must still work
        // and classify the tree as LeafFormat::Exact.
        let mut t = mem_tree(1, 4, 4);
        for i in 0..20u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        t.flush().unwrap();
        let epoch = t.epoch();
        let slot = if epoch.is_multiple_of(2) {
            META_SLOT_A
        } else {
            META_SLOT_B
        };
        let other = if slot == META_SLOT_A {
            META_SLOT_B
        } else {
            META_SLOT_A
        };
        let v3 = t.pool().page(slot).unwrap();
        // Offset of the leaf-format byte: everything up to and including
        // the split-strategy byte.
        let fmt_off = 4 + 4 + 8 + 8 + 8 + 4 + 1 + 1;
        let mut v2 = Vec::with_capacity(v3.len());
        v2.extend_from_slice(&v3[..fmt_off]);
        v2.extend_from_slice(&v3[fmt_off + 1..]);
        v2.push(0);
        v2[4..8].copy_from_slice(&META_VERSION_V2.to_le_bytes());
        v2[META_CHECKSUM_OFFSET..META_CHECKSUM_OFFSET + 8].fill(0);
        let sum = fnv1a64(&v2);
        v2[META_CHECKSUM_OFFSET..META_CHECKSUM_OFFSET + 8].copy_from_slice(&sum.to_le_bytes());
        t.pool().write(slot, &v2).unwrap();
        // Wipe the other slot so the v2 one is the only candidate.
        t.pool().write(other, &vec![0u8; v3.len()]).unwrap();

        let store = t.into_store();
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.config().leaf_format, LeafFormat::Exact);
        assert_eq!(t2.epoch(), epoch);
        assert_eq!(t2.len(), 20);
        assert!(t2.check_invariants(false).unwrap().is_empty());
    }
}
