//! The Gauss-tree structure: creation, persistence, insertion, bulk loading.

use crate::bulk::{BulkLoadOptions, BulkLoadReport};
use crate::config::TreeConfig;
use crate::node::{CachedNode, InnerEntry, LeafEntry, Node, NodeCodecError};
use crate::split::{group_rect, node_cost, split_items, split_many};
use gauss_storage::store::{PageStore, StoreError};
use gauss_storage::{PageId, Reader, SharedBufferPool, SideCache, WriteBatch, Writer};
use pfv::{CombineMode, ParamRect, Pfv};
use std::collections::BTreeMap;
use std::sync::Arc;

const META_MAGIC: u32 = 0x4754_5245; // "GTRE"
const META_VERSION: u32 = 1;

/// Fill factor applied by the bulk loader so bulk-built nodes can absorb a
/// few inserts before splitting.
const BULK_FILL: f64 = 0.75;

/// Base metadata bytes in the meta page before the persisted free-list ids:
/// the fixed fields (42) plus the in-meta id count (u32) and the overflow
/// chain pointer (u64).
const META_BASE_BYTES: usize = 4 + 4 + 4 + 1 + 1 + 4 + 4 + 8 + 4 + 8 + 4 + 8;

/// Bytes of a free-list overflow carrier page consumed by its header
/// (next-pointer u64 + id count u32).
const FREE_CHAIN_HEADER_BYTES: usize = 8 + 4;

/// Errors surfaced by the Gauss-tree.
#[derive(Debug)]
pub enum TreeError {
    /// Underlying page store failed.
    Store(StoreError),
    /// A page did not decode to a valid node.
    Codec(NodeCodecError),
    /// A pfv with the wrong dimensionality was supplied.
    DimMismatch {
        /// Tree dimensionality.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// The store does not contain a Gauss-tree (bad magic / version).
    NotAGaussTree,
    /// Structural corruption detected while traversing.
    Corrupt(&'static str),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Store(e) => write!(f, "store error: {e}"),
            TreeError::Codec(e) => write!(f, "codec error: {e}"),
            TreeError::DimMismatch { expected, got } => {
                write!(
                    f,
                    "dimensionality mismatch: tree has {expected}, vector has {got}"
                )
            }
            TreeError::NotAGaussTree => write!(f, "store does not contain a Gauss-tree"),
            TreeError::Corrupt(what) => write!(f, "corrupt tree: {what}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<StoreError> for TreeError {
    fn from(e: StoreError) -> Self {
        TreeError::Store(e)
    }
}

impl From<NodeCodecError> for TreeError {
    fn from(e: NodeCodecError) -> Self {
        TreeError::Codec(e)
    }
}

/// The Gauss-tree (Definition 4 of the paper).
///
/// Nodes live behind a [`SharedBufferPool`], so every read-only operation
/// (`k_mliq*`, `tiq*`, `for_each_entry`, `check_invariants`, cursors) takes
/// `&self` and many threads may query one tree concurrently (see
/// [`crate::executor`]). Mutation (`insert`, `delete`, `bulk_load`,
/// `flush`) keeps `&mut self`. Constructors accept anything convertible
/// into a [`SharedBufferPool`] — in particular a plain
/// [`gauss_storage::BufferPool`].
///
/// See the [crate docs](crate) for an overview and an example.
#[derive(Debug)]
pub struct GaussTree<S: PageStore> {
    pool: SharedBufferPool<S>,
    /// Decoded-node companion cache: pages already paid for via the pool
    /// are kept in query-ready form ([`CachedNode`] — columnar leaves,
    /// inner entry vectors) so the read hot path never re-parses bytes.
    /// Invalidated on every node write; never consulted without first
    /// requesting the page from the pool, so access accounting is
    /// unchanged.
    node_cache: SideCache<CachedNode>,
    config: TreeConfig,
    leaf_cap: usize,
    inner_cap: usize,
    meta_page: PageId,
    root: PageId,
    height: u32,
    len: u64,
    /// Pages freed by deletion and not yet reused. Allocation pops from
    /// here before extending the store, so a tree's store never accumulates
    /// unreachable pages — [`GaussTree::check_invariants`] asserts exactly
    /// that. Persisted by [`GaussTree::flush`]: ids that fit live in the
    /// meta page, any overflow is chained through the freed pages
    /// themselves (their content is dead by definition), so the list
    /// survives reopen in full at any size.
    free_list: Vec<PageId>,
}

/// Descriptor of one subtree produced by a batch merge ([`GaussTree::extend`]).
struct SubtreeDesc {
    page: PageId,
    rect: ParamRect,
    count: u64,
}

/// Result of a recursive insert below some node.
enum ChildUpdate {
    /// Child absorbed the entry; new rect and count.
    Updated(ParamRect, u64),
    /// Child split in two.
    Split {
        left: (ParamRect, u64),
        right_page: PageId,
        right: (ParamRect, u64),
    },
}

impl<S: PageStore> GaussTree<S> {
    /// Creates an empty Gauss-tree in a fresh store.
    ///
    /// # Errors
    /// Propagates store errors; fails if the page size cannot hold two
    /// entries of the configured dimensionality.
    pub fn create(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
    ) -> Result<Self, TreeError> {
        let pool = pool.into();
        let page_size = pool.page_size();
        let leaf_cap = config.leaf_capacity(page_size);
        let inner_cap = config.inner_capacity(page_size);
        let meta_page = pool.allocate()?;
        let root = pool.allocate()?;
        let node_cache = SideCache::new(pool.capacity().max(1));
        let mut tree = Self {
            pool,
            node_cache,
            config,
            leaf_cap,
            inner_cap,
            meta_page,
            root,
            height: 0,
            len: 0,
            free_list: Vec::new(),
        };
        tree.write_node(root, &Node::Leaf(Vec::new()))?;
        tree.flush()?;
        Ok(tree)
    }

    /// Opens an existing Gauss-tree from its store.
    ///
    /// # Errors
    /// [`TreeError::NotAGaussTree`] if the metadata page is missing or
    /// invalid; store errors otherwise.
    pub fn open(pool: impl Into<SharedBufferPool<S>>) -> Result<Self, TreeError> {
        let pool = pool.into();
        if pool.num_pages() == 0 {
            return Err(TreeError::NotAGaussTree);
        }
        let page = pool.page(PageId(0))?;
        let mut r = Reader::new(&page);
        type MetaFields = (TreeConfig, PageId, u32, u64, Vec<PageId>, PageId);
        let parse = (|| -> Result<MetaFields, NodeCodecError> {
            let magic = r.get_u32()?;
            let version = r.get_u32()?;
            if magic != META_MAGIC || version != META_VERSION {
                return Err(NodeCodecError::Corrupt("bad magic/version"));
            }
            let dims = r.get_u32()? as usize;
            let combine = match r.get_u8()? {
                0 => CombineMode::Convolution,
                1 => CombineMode::AdditiveSigma,
                _ => return Err(NodeCodecError::Corrupt("bad combine mode")),
            };
            let split = crate::config::SplitStrategy::from_tag(r.get_u8()?)
                .ok_or(NodeCodecError::Corrupt("bad split strategy"))?;
            let leaf_cap = r.get_u32()? as usize;
            let inner_cap = r.get_u32()? as usize;
            let root = PageId(r.get_u64()?);
            let height = r.get_u32()?;
            let len = r.get_u64()?;
            if dims == 0 || leaf_cap < 2 || inner_cap < 2 || !root.is_valid() {
                return Err(NodeCodecError::Corrupt("bad metadata values"));
            }
            let free_count = r.get_u32()? as usize;
            let free_next = PageId(r.get_u64()?);
            let mut free_list = Vec::with_capacity(free_count);
            for _ in 0..free_count {
                free_list.push(PageId(r.get_u64()?));
            }
            let mut config = TreeConfig::new(dims)
                .with_combine(combine)
                .with_split(split);
            config.max_leaf_entries = Some(leaf_cap);
            config.max_inner_entries = Some(inner_cap);
            Ok((config, root, height, len, free_list, free_next))
        })();
        let (config, root, height, len, mut free_list, mut free_next) =
            parse.map_err(|_| TreeError::NotAGaussTree)?;
        // Follow the overflow chain through the freed carrier pages.
        let allocated = pool.num_pages();
        while free_next.is_valid() {
            if free_next.index() >= allocated || free_list.len() as u64 > allocated {
                return Err(TreeError::NotAGaussTree);
            }
            let page = pool.page(free_next)?;
            let mut r = Reader::new(&page);
            let chain = (|| -> Result<(PageId, Vec<PageId>), NodeCodecError> {
                let next = PageId(r.get_u64()?);
                let count = r.get_u32()? as usize;
                let mut ids = Vec::with_capacity(count);
                for _ in 0..count {
                    ids.push(PageId(r.get_u64()?));
                }
                Ok((next, ids))
            })();
            let (next, ids) = chain.map_err(|_| TreeError::NotAGaussTree)?;
            free_list.extend(ids);
            free_next = next;
        }
        let leaf_cap = config.leaf_capacity(pool.page_size());
        let inner_cap = config.inner_capacity(pool.page_size());
        let node_cache = SideCache::new(pool.capacity().max(1));
        Ok(Self {
            pool,
            node_cache,
            config,
            leaf_cap,
            inner_cap,
            meta_page: PageId(0),
            root,
            height,
            len,
            free_list,
        })
    }

    /// Bulk-loads a tree from `(id, pfv)` pairs (STR-style recursive
    /// partitioning driven by the configured split cost — an extension over
    /// the paper's incremental insertion).
    ///
    /// Runs the pipeline of [`GaussTree::bulk_load_with`] with
    /// [`BulkLoadOptions::default`]: single-threaded, fully resident,
    /// batched page writes.
    ///
    /// # Errors
    /// Propagates store errors; rejects dimensionality mismatches.
    pub fn bulk_load(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
        items: impl IntoIterator<Item = (u64, Pfv)>,
    ) -> Result<Self, TreeError> {
        Ok(Self::bulk_load_with(pool, config, items, &BulkLoadOptions::default())?.0)
    }

    /// Bulk-loads a tree through the full ingest pipeline (see
    /// [`crate::bulk`]): streaming chunked consumption of `items` under an
    /// optional memory budget with runs spilled through a page store,
    /// partitioning fanned across worker threads, and node pages written in
    /// coalesced batches. The produced tree is **byte-identical** to the
    /// serial fully-resident build for every thread count, memory budget
    /// and write mode.
    ///
    /// # Errors
    /// Propagates store errors; rejects dimensionality mismatches.
    pub fn bulk_load_with(
        pool: impl Into<SharedBufferPool<S>>,
        config: TreeConfig,
        items: impl IntoIterator<Item = (u64, Pfv)>,
        opts: &BulkLoadOptions,
    ) -> Result<(Self, BulkLoadReport), TreeError> {
        let mut tree = Self::create(pool, config)?;
        let report = crate::bulk::run(&mut tree, items, opts)?;
        Ok((tree, report))
    }

    /// Number of stored pfv.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 = the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Dimensionality of the indexed pfv.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// The tree's configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Maximum number of entries in a leaf node (`2M` in the paper).
    #[must_use]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Maximum number of entries in an inner node (`M` in the paper).
    #[must_use]
    pub fn inner_capacity(&self) -> usize {
        self.inner_cap
    }

    /// Root page id.
    #[must_use]
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Access to the buffer pool (stats, cold start, raw page access). All
    /// pool operations take `&self` — the pool has interior mutability.
    ///
    /// Writing node pages through this handle bypasses the decoded-node
    /// cache's write invalidation; mutate through the tree API instead.
    #[must_use]
    pub fn pool(&self) -> &SharedBufferPool<S> {
        &self.pool
    }

    /// Shared access statistics of the buffer pool.
    #[must_use]
    pub fn stats(&self) -> &std::sync::Arc<gauss_storage::AccessStats> {
        self.pool.stats()
    }

    /// Writes the metadata page. Call after building; queries never dirty
    /// the tree.
    ///
    /// # Errors
    /// Propagates store errors.
    pub fn flush(&mut self) -> Result<(), TreeError> {
        let mut page = vec![0u8; self.pool.page_size()];
        let mut w = Writer::new(&mut page);
        w.put_u32(META_MAGIC);
        w.put_u32(META_VERSION);
        w.put_u32(u32::try_from(self.config.dims).expect("dims fit u32"));
        w.put_u8(match self.config.combine {
            CombineMode::Convolution => 0,
            CombineMode::AdditiveSigma => 1,
        });
        w.put_u8(self.config.split.to_tag());
        w.put_u32(u32::try_from(self.leaf_cap).expect("leaf cap fits u32"));
        w.put_u32(u32::try_from(self.inner_cap).expect("inner cap fits u32"));
        w.put_u64(self.root.index());
        w.put_u32(self.height);
        w.put_u64(self.len);
        // Persist the free list in full: ids that fit go into the meta
        // page, any overflow is chained through carrier pages drawn from
        // the freed ids themselves (their content is dead by definition,
        // and each carrier also appears in the persisted id set, so the
        // page accounting stays exact across reopen).
        let page_size = self.pool.page_size();
        let meta_cap = page_size.saturating_sub(META_BASE_BYTES) / 8;
        let in_meta = self.free_list.len().min(meta_cap);
        let rest = &self.free_list[in_meta..];
        let per_carrier = ((page_size - FREE_CHAIN_HEADER_BYTES) / 8).max(1);
        let chunks: Vec<&[PageId]> = rest.chunks(per_carrier).collect();
        let first_carrier = chunks.first().map_or(PageId::INVALID, |c| c[0]);
        w.put_u32(u32::try_from(in_meta).expect("free count fits u32"));
        w.put_u64(first_carrier.index());
        for id in &self.free_list[..in_meta] {
            w.put_u64(id.index());
        }
        self.pool.write(self.meta_page, &page)?;
        for (i, chunk) in chunks.iter().enumerate() {
            let carrier = chunk[0];
            let next = chunks.get(i + 1).map_or(PageId::INVALID, |c| c[0]);
            let mut buf = vec![0u8; page_size];
            let mut cw = Writer::new(&mut buf);
            cw.put_u64(next.index());
            cw.put_u32(u32::try_from(chunk.len()).expect("chunk fits u32"));
            for id in *chunk {
                cw.put_u64(id.index());
            }
            // A carrier may still carry a stale decoded node from before it
            // was freed; its bytes are changing, so drop that decode.
            self.node_cache.remove(carrier);
            self.pool.write(carrier, &buf)?;
        }
        Ok(())
    }

    /// Allocates a page for a new node, reusing a freed page when one is
    /// available.
    pub(crate) fn alloc_page(&mut self) -> Result<PageId, TreeError> {
        match self.free_list.pop() {
            Some(p) => Ok(p),
            None => Ok(self.pool.allocate()?),
        }
    }

    /// Returns a no-longer-referenced node page to the free list.
    pub(crate) fn free_page(&mut self, page: PageId) {
        debug_assert!(!self.free_list.contains(&page), "double free of {page}");
        self.free_list.push(page);
    }

    /// Pages freed by deletions and not yet reused by later allocations.
    #[must_use]
    pub fn free_page_count(&self) -> usize {
        self.free_list.len()
    }

    /// The freed-page ids (for the invariant checker).
    pub(crate) fn free_pages(&self) -> &[PageId] {
        &self.free_list
    }

    /// Bulk-loader leaf fill target (`BULK_FILL` of the capacity).
    pub(crate) fn bulk_leaf_target(&self) -> usize {
        ((self.leaf_cap as f64 * BULK_FILL) as usize).max(2)
    }

    /// Bulk-loader inner fill target.
    pub(crate) fn bulk_inner_target(&self) -> usize {
        ((self.inner_cap as f64 * BULK_FILL) as usize).max(2)
    }

    /// Serialises `node` into a fresh page-sized buffer.
    pub(crate) fn encode_node(&self, node: &Node) -> Vec<u8> {
        let mut buf = vec![0u8; self.pool.page_size()];
        node.write_to(self.config.dims, &mut buf);
        buf
    }

    /// Stages `node` for `page` in a [`WriteBatch`] (group commit),
    /// invalidating the decoded-node cache exactly like a direct write.
    pub(crate) fn stage_node(&self, batch: &mut WriteBatch, page: PageId, node: &Node) {
        self.node_cache.remove(page);
        batch.put(page, &self.encode_node(node));
    }

    /// Flushes a staged [`WriteBatch`] through the pool (coalesced runs).
    pub(crate) fn commit_batch(&self, batch: &mut WriteBatch) -> Result<(), TreeError> {
        self.pool.write_batch(batch)?;
        Ok(())
    }

    /// Inserts one pfv with external id `id` (paper §5.3 descent rules).
    ///
    /// # Errors
    /// [`TreeError::DimMismatch`] for wrong dimensionality; store errors.
    pub fn insert(&mut self, id: u64, v: &Pfv) -> Result<(), TreeError> {
        if v.dims() != self.config.dims {
            return Err(TreeError::DimMismatch {
                expected: self.config.dims,
                got: v.dims(),
            });
        }
        match self.insert_rec(self.root, self.height, id, v)? {
            ChildUpdate::Updated(..) => {}
            ChildUpdate::Split {
                left,
                right_page,
                right,
            } => {
                // Grow a new root.
                let old_root = self.root;
                let new_root = self.alloc_page()?;
                let node = Node::Inner(vec![
                    InnerEntry {
                        child: old_root,
                        count: left.1,
                        rect: left.0,
                    },
                    InnerEntry {
                        child: right_page,
                        count: right.1,
                        rect: right.0,
                    },
                ]);
                self.write_node(new_root, &node)?;
                self.root = new_root;
                self.height += 1;
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        page: PageId,
        level: u32,
        id: u64,
        v: &Pfv,
    ) -> Result<ChildUpdate, TreeError> {
        let node = self.read_node(page)?;
        if level == 0 {
            let Node::Leaf(mut entries) = node else {
                return Err(TreeError::Corrupt("expected leaf at level 0"));
            };
            entries.push(LeafEntry { id, pfv: v.clone() });
            if entries.len() <= self.leaf_cap {
                let rect = group_rect(&entries);
                let count = entries.len() as u64;
                self.write_node(page, &Node::Leaf(entries))?;
                Ok(ChildUpdate::Updated(rect, count))
            } else {
                let out = split_items(self.config.split, entries);
                let right_page = self.alloc_page()?;
                let left_rect = group_rect(&out.left);
                let right_rect = group_rect(&out.right);
                let left_count = out.left.len() as u64;
                let right_count = out.right.len() as u64;
                self.write_node(page, &Node::Leaf(out.left))?;
                self.write_node(right_page, &Node::Leaf(out.right))?;
                Ok(ChildUpdate::Split {
                    left: (left_rect, left_count),
                    right_page,
                    right: (right_rect, right_count),
                })
            }
        } else {
            let Node::Inner(mut entries) = node else {
                return Err(TreeError::Corrupt("expected inner node above level 0"));
            };
            if entries.is_empty() {
                return Err(TreeError::Corrupt("empty inner node"));
            }
            let idx = self.choose_subtree(&entries, v);
            let child_page = entries[idx].child;
            match self.insert_rec(child_page, level - 1, id, v)? {
                ChildUpdate::Updated(rect, count) => {
                    entries[idx].rect = rect;
                    entries[idx].count = count;
                }
                ChildUpdate::Split {
                    left,
                    right_page,
                    right,
                } => {
                    entries[idx] = InnerEntry {
                        child: child_page,
                        count: left.1,
                        rect: left.0,
                    };
                    entries.push(InnerEntry {
                        child: right_page,
                        count: right.1,
                        rect: right.0,
                    });
                }
            }
            if entries.len() <= self.inner_cap {
                let rect = group_rect(&entries);
                let count = entries.iter().map(|e| e.count).sum();
                self.write_node(page, &Node::Inner(entries))?;
                Ok(ChildUpdate::Updated(rect, count))
            } else {
                let out = split_items(self.config.split, entries);
                let right_page = self.alloc_page()?;
                let left_rect = group_rect(&out.left);
                let right_rect = group_rect(&out.right);
                let left_count = out.left.iter().map(|e| e.count).sum();
                let right_count = out.right.iter().map(|e| e.count).sum();
                self.write_node(page, &Node::Inner(out.left))?;
                self.write_node(right_page, &Node::Inner(out.right))?;
                Ok(ChildUpdate::Split {
                    left: (left_rect, left_count),
                    right_page,
                    right: (right_rect, right_count),
                })
            }
        }
    }

    /// Batch-inserts a run of `(id, pfv)` pairs into an existing tree — the
    /// append path of the ingest pipeline (`build --append` in the CLI).
    ///
    /// Unlike looping [`GaussTree::insert`], the whole run descends the
    /// tree **once**: at every inner node the batch is routed to child
    /// subtrees with the §5.3 subtree-selection rule and merged group-wise,
    /// so each touched node is rewritten a single time per batch instead of
    /// once per item, and overflowing nodes are split multi-way in one go
    /// ([`split_many`]). Returns the number of items added.
    ///
    /// # Errors
    /// [`TreeError::DimMismatch`] for wrong dimensionality; store errors.
    pub fn extend(
        &mut self,
        items: impl IntoIterator<Item = (u64, Pfv)>,
    ) -> Result<u64, TreeError> {
        let mut batch = Vec::new();
        for (id, pfv) in items {
            if pfv.dims() != self.config.dims {
                return Err(TreeError::DimMismatch {
                    expected: self.config.dims,
                    got: pfv.dims(),
                });
            }
            batch.push(LeafEntry { id, pfv });
        }
        if batch.is_empty() {
            return Ok(0);
        }
        let added = batch.len() as u64;
        let mut descs = self.extend_rec(self.root, self.height, batch)?;
        // Grow new levels until a single root covers every sibling the
        // batch created (a large run can overflow the old root multi-way,
        // raising the height by more than one).
        while descs.len() > 1 {
            let entries: Vec<InnerEntry> = descs
                .iter()
                .map(|d| InnerEntry {
                    child: d.page,
                    count: d.count,
                    rect: d.rect.clone(),
                })
                .collect();
            if entries.len() <= self.inner_cap {
                let page = self.alloc_page()?;
                let rect = group_rect(&entries);
                let count = entries.iter().map(|e| e.count).sum();
                self.write_node(page, &Node::Inner(entries))?;
                self.height += 1;
                descs = vec![SubtreeDesc { page, rect, count }];
            } else {
                let groups = split_many(self.config.split, entries, self.inner_cap);
                let mut next = Vec::with_capacity(groups.len());
                for g in groups {
                    let page = self.alloc_page()?;
                    let rect = group_rect(&g);
                    let count = g.iter().map(|e| e.count).sum();
                    self.write_node(page, &Node::Inner(g))?;
                    next.push(SubtreeDesc { page, rect, count });
                }
                self.height += 1;
                descs = next;
            }
        }
        self.root = descs[0].page;
        self.len += added;
        Ok(added)
    }

    /// Merges `items` into the subtree rooted at `page`, returning the
    /// descriptors of the subtree(s) that replace it (more than one when
    /// the node overflowed and split).
    fn extend_rec(
        &mut self,
        page: PageId,
        level: u32,
        items: Vec<LeafEntry>,
    ) -> Result<Vec<SubtreeDesc>, TreeError> {
        let node = self.read_node(page)?;
        if level == 0 {
            let Node::Leaf(mut entries) = node else {
                return Err(TreeError::Corrupt("expected leaf at level 0"));
            };
            entries.extend(items);
            return if entries.len() <= self.leaf_cap {
                let rect = group_rect(&entries);
                let count = entries.len() as u64;
                self.write_node(page, &Node::Leaf(entries))?;
                Ok(vec![SubtreeDesc { page, rect, count }])
            } else {
                let groups = split_many(self.config.split, entries, self.leaf_cap);
                let mut descs = Vec::with_capacity(groups.len());
                for (i, g) in groups.into_iter().enumerate() {
                    let target = if i == 0 { page } else { self.alloc_page()? };
                    let rect = group_rect(&g);
                    let count = g.len() as u64;
                    self.write_node(target, &Node::Leaf(g))?;
                    descs.push(SubtreeDesc {
                        page: target,
                        rect,
                        count,
                    });
                }
                Ok(descs)
            };
        }
        let Node::Inner(mut entries) = node else {
            return Err(TreeError::Corrupt("expected inner node above level 0"));
        };
        if entries.is_empty() {
            return Err(TreeError::Corrupt("empty inner node"));
        }
        // Route every item with the single-insert descent rule, against the
        // rectangles as they were when the batch arrived, then recurse once
        // per targeted child with its whole group.
        let mut groups: BTreeMap<usize, Vec<LeafEntry>> = BTreeMap::new();
        for item in items {
            let idx = self.choose_subtree(&entries, &item.pfv);
            groups.entry(idx).or_default().push(item);
        }
        let mut extra: Vec<InnerEntry> = Vec::new();
        for (idx, group) in groups {
            let child = entries[idx].child;
            let descs = self.extend_rec(child, level - 1, group)?;
            let mut it = descs.into_iter();
            let first = it.next().expect("extend_rec returns at least one desc");
            entries[idx] = InnerEntry {
                child: first.page,
                count: first.count,
                rect: first.rect,
            };
            extra.extend(it.map(|d| InnerEntry {
                child: d.page,
                count: d.count,
                rect: d.rect,
            }));
        }
        entries.extend(extra);
        if entries.len() <= self.inner_cap {
            let rect = group_rect(&entries);
            let count = entries.iter().map(|e| e.count).sum();
            self.write_node(page, &Node::Inner(entries))?;
            Ok(vec![SubtreeDesc { page, rect, count }])
        } else {
            let groups = split_many(self.config.split, entries, self.inner_cap);
            let mut descs = Vec::with_capacity(groups.len());
            for (i, g) in groups.into_iter().enumerate() {
                let target = if i == 0 { page } else { self.alloc_page()? };
                let rect = group_rect(&g);
                let count = g.iter().map(|e| e.count).sum();
                self.write_node(target, &Node::Inner(g))?;
                descs.push(SubtreeDesc {
                    page: target,
                    rect,
                    count,
                });
            }
            Ok(descs)
        }
    }

    /// Insertion path selection (paper §5.3):
    /// 1. if exactly one child rectangle contains the new pfv, follow it;
    /// 2. if several contain it, follow the most selective one (minimal
    ///    hull cost — the greedy single-path realisation of the paper's
    ///    "follow all paths and find a node it exactly fits");
    /// 3. otherwise follow the child whose cost increases least.
    fn choose_subtree(&self, entries: &[InnerEntry], v: &Pfv) -> usize {
        debug_assert!(!entries.is_empty());
        let strategy = self.config.split;
        let mut best_containing: Option<(f64, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            if e.rect.contains_pfv(v) {
                let cost = node_cost(strategy, &e.rect);
                if best_containing.is_none_or(|(c, _)| cost < c) {
                    best_containing = Some((cost, i));
                }
            }
        }
        if let Some((_, i)) = best_containing {
            return i;
        }
        // No child contains it: minimal cost increase, ties by smaller cost.
        let mut best = (f64::INFINITY, f64::INFINITY, 0usize);
        for (i, e) in entries.iter().enumerate() {
            let before = node_cost(strategy, &e.rect);
            let mut extended = e.rect.clone();
            extended.extend_pfv(v);
            let delta = node_cost(strategy, &extended) - before;
            if delta < best.0 || (delta == best.0 && before < best.1) {
                best = (delta, before, i);
            }
        }
        best.2
    }

    /// Reads and decodes the node stored at `page`.
    ///
    /// # Errors
    /// Store / codec errors.
    pub(crate) fn read_node(&self, page: PageId) -> Result<Node, TreeError> {
        let bytes = self.pool.page(page)?;
        Ok(Node::read_from(self.config.dims, &bytes)?)
    }

    /// Reads the node stored at `page` in query-ready cached form.
    ///
    /// The page is *always* requested from the buffer pool first — so
    /// logical/physical access accounting is identical to [`read_node`] —
    /// and only the decode step is skipped on a node-cache hit. Leaves come
    /// back as columnar scans for the batched Lemma-1 kernel.
    ///
    /// [`read_node`]: Self::read_node
    ///
    /// # Errors
    /// Store / codec errors.
    pub(crate) fn read_node_cached(&self, page: PageId) -> Result<Arc<CachedNode>, TreeError> {
        let bytes = self.pool.page(page)?;
        if let Some(cached) = self.node_cache.get(page) {
            return Ok(cached);
        }
        let node = Node::read_from(self.config.dims, &bytes)?;
        let cached = Arc::new(node.into_cached(self.config.dims));
        self.node_cache.insert(page, Arc::clone(&cached));
        Ok(cached)
    }

    /// The decoded-node companion cache (size/occupancy introspection).
    #[must_use]
    pub fn node_cache(&self) -> &SideCache<CachedNode> {
        &self.node_cache
    }

    /// Cold start for measurement loops: drops the buffer pool's cached
    /// frames, zeroes the access counters, **and** clears the decoded-node
    /// cache. `pool().clear_cache_and_stats()` alone leaves the decoded
    /// nodes warm — physical-read counts would still be cold-accurate, but
    /// CPU timings would silently skip the decode work and depend on what
    /// ran before.
    pub fn cold_start(&self) {
        self.pool.clear_cache_and_stats();
        self.node_cache.clear();
    }

    /// Serialises `node` into `page` (crate-internal; used by deletion).
    pub(crate) fn write_node_pub(&mut self, page: PageId, node: &Node) -> Result<(), TreeError> {
        self.write_node(page, node)
    }

    /// Minimum fill of a non-root leaf (`M` in the paper's `[M, 2M]`).
    pub(crate) fn leaf_min_fill(&self) -> usize {
        (self.leaf_cap / 2).max(1)
    }

    /// Minimum fill of a non-root inner node (`M/2`).
    pub(crate) fn inner_min_fill(&self) -> usize {
        (self.inner_cap / 2).max(1)
    }

    /// Overrides the stored length (deletion bookkeeping).
    pub(crate) fn set_len(&mut self, len: u64) {
        self.len = len;
    }

    /// Replaces the root pointer and height (root collapse on deletion).
    pub(crate) fn set_root(&mut self, root: PageId, height: u32) {
        self.root = root;
        self.height = height;
    }

    fn write_node(&mut self, page: PageId, node: &Node) -> Result<(), TreeError> {
        let mut buf = vec![0u8; self.pool.page_size()];
        node.write_to(self.config.dims, &mut buf);
        // Invalidate the decoded form before the bytes change so no reader
        // of the new page content can ever see the stale decode (mutation
        // holds `&mut self`, but keep the ordering airtight regardless).
        self.node_cache.remove(page);
        self.pool.write(page, &buf)?;
        Ok(())
    }

    /// Visits every stored `(id, pfv)` pair (in tree order).
    ///
    /// # Errors
    /// Store / codec errors.
    pub fn for_each_entry(&self, mut f: impl FnMut(u64, &Pfv)) -> Result<(), TreeError> {
        let mut stack = vec![(self.root, self.height)];
        while let Some((page, level)) = stack.pop() {
            match self.read_node(page)? {
                Node::Leaf(es) => {
                    for e in &es {
                        f(e.id, &e.pfv);
                    }
                }
                Node::Inner(es) => {
                    if level == 0 {
                        return Err(TreeError::Corrupt("inner node at leaf level"));
                    }
                    for e in &es {
                        stack.push((e.child, level - 1));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gauss_storage::{AccessStats, BufferPool, MemStore};

    fn mem_tree(dims: usize, leaf: usize, inner: usize) -> GaussTree<MemStore> {
        let config = TreeConfig::new(dims).with_capacities(leaf, inner);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        GaussTree::create(pool, config).unwrap()
    }

    fn pfv1(mu: f64, sigma: f64) -> Pfv {
        Pfv::new(vec![mu], vec![sigma]).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = mem_tree(1, 4, 4);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn insert_grows_len_and_keeps_entries() {
        let mut t = mem_tree(1, 4, 4);
        for i in 0..50u64 {
            t.insert(i, &pfv1(i as f64, 0.1 + (i % 5) as f64 * 0.05))
                .unwrap();
        }
        assert_eq!(t.len(), 50);
        assert!(t.height() >= 1, "50 entries with cap 4 must split");
        let mut seen = Vec::new();
        t.for_each_entry(|id, _| seen.push(id)).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_wrong_dimensionality() {
        let mut t = mem_tree(2, 4, 4);
        let err = t.insert(0, &pfv1(0.0, 0.1)).unwrap_err();
        assert!(matches!(
            err,
            TreeError::DimMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn persistence_round_trip() {
        let config = TreeConfig::new(2).with_capacities(4, 3);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut t = GaussTree::create(pool, config).unwrap();
        for i in 0..30u64 {
            let v = Pfv::new(vec![i as f64, -(i as f64)], vec![0.2, 0.3]).unwrap();
            t.insert(i, &v).unwrap();
        }
        t.flush().unwrap();
        let store = {
            let GaussTree { pool, .. } = t;
            pool.into_store()
        };
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.len(), 30);
        assert_eq!(t2.dims(), 2);
        let mut n = 0;
        t2.for_each_entry(|_, _| n += 1).unwrap();
        assert_eq!(n, 30);
    }

    #[test]
    fn open_rejects_non_tree() {
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        assert!(matches!(
            GaussTree::open(pool),
            Err(TreeError::NotAGaussTree)
        ));
        let mut store = MemStore::new(8192);
        store.allocate().unwrap(); // garbage page 0
        let pool = BufferPool::new(store, 16, AccessStats::new_shared());
        assert!(matches!(
            GaussTree::open(pool),
            Err(TreeError::NotAGaussTree)
        ));
    }

    #[test]
    fn bulk_load_matches_inserted_content() {
        let items: Vec<(u64, Pfv)> = (0..200u64)
            .map(|i| (i, pfv1((i % 37) as f64, 0.05 + (i % 7) as f64 * 0.1)))
            .collect();
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, items.clone()).unwrap();
        assert_eq!(t.len(), 200);
        let mut seen = Vec::new();
        t.for_each_entry(|id, _| seen.push(id)).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_single_leaf() {
        let items = vec![(1u64, pfv1(0.0, 0.1)), (2, pfv1(1.0, 0.2))];
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, items).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn bulk_load_empty() {
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 16, AccessStats::new_shared());
        let t = GaussTree::bulk_load(pool, config, Vec::new()).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn node_cache_serves_decoded_nodes_and_invalidates_on_write() {
        let mut t = mem_tree(1, 4, 4);
        for i in 0..20u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        let root = t.root_page();
        let a = t.read_node_cached(root).unwrap();
        let b = t.read_node_cached(root).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "second read must hit the node cache"
        );
        assert!(!t.node_cache().is_empty());

        // Mutation must invalidate: the next read decodes the new bytes.
        t.insert(100, &pfv1(50.0, 0.2)).unwrap();
        let c = t.read_node_cached(t.root_page()).unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&a, &c),
            "write must invalidate the cached decode"
        );
        // And the cached view matches a fresh decode.
        let fresh = t.read_node(t.root_page()).unwrap().into_cached(1);
        assert_eq!(*c, fresh);
    }

    #[test]
    fn node_cache_accounting_matches_plain_reads() {
        // The cached read path must request the page from the pool exactly
        // like the uncached one, so the paper's page-access metrics are
        // unchanged by the decode cache.
        let mut t = mem_tree(1, 4, 4);
        for i in 0..30u64 {
            t.insert(i, &pfv1(i as f64, 0.1)).unwrap();
        }
        let root = t.root_page();
        t.pool().clear_cache_and_stats();
        let _ = t.read_node_cached(root).unwrap();
        let _ = t.read_node_cached(root).unwrap();
        let snap = t.stats().snapshot();
        assert_eq!(snap.logical_reads, 2, "every cached read stays logical");
        assert_eq!(snap.physical_reads, 1, "first read faults, second hits");
    }

    #[test]
    fn extend_merges_batches_like_single_inserts() {
        let items: Vec<(u64, Pfv)> = (0..120u64)
            .map(|i| (i, pfv1((i % 31) as f64, 0.05 + (i % 5) as f64 * 0.08)))
            .collect();
        let config = TreeConfig::new(1).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut t = GaussTree::bulk_load(pool, config, items).unwrap();

        let run: Vec<(u64, Pfv)> = (200..320u64)
            .map(|i| {
                (
                    i,
                    pfv1((i as f64 * 0.37).sin() * 25.0, 0.1 + (i % 3) as f64 * 0.1),
                )
            })
            .collect();
        assert_eq!(t.extend(run).unwrap(), 120);
        assert_eq!(t.len(), 240);
        let mut seen = Vec::new();
        t.for_each_entry(|id, _| seen.push(id)).unwrap();
        seen.sort_unstable();
        let mut want: Vec<u64> = (0..120).chain(200..320).collect();
        want.sort_unstable();
        assert_eq!(seen, want);
        let errs = t.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations after extend: {errs:?}");
    }

    #[test]
    fn extend_into_empty_tree_and_empty_batch() {
        let mut t = mem_tree(1, 4, 4);
        assert_eq!(t.extend(Vec::new()).unwrap(), 0);
        assert!(t.is_empty());
        let run: Vec<(u64, Pfv)> = (0..40u64).map(|i| (i, pfv1(i as f64, 0.2))).collect();
        assert_eq!(t.extend(run).unwrap(), 40);
        assert_eq!(t.len(), 40);
        assert!(t.height() >= 1, "40 entries with cap 4 must have split");
        let errs = t.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "{errs:?}");
        // Plain inserts still work after a batch merge.
        for i in 100..120u64 {
            t.insert(i, &pfv1(i as f64 * 0.3, 0.15)).unwrap();
        }
        assert_eq!(t.len(), 60);
        assert!(t.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn extend_rejects_wrong_dims_without_mutation() {
        let mut t = mem_tree(2, 4, 4);
        let err = t.extend(vec![(0u64, pfv1(0.0, 0.1))]).unwrap_err();
        assert!(matches!(err, TreeError::DimMismatch { .. }));
        assert!(t.is_empty());
    }

    #[test]
    fn extend_persists_across_reopen() {
        let config = TreeConfig::new(1).with_capacities(6, 4);
        let pool = BufferPool::new(MemStore::new(4096), 1024, AccessStats::new_shared());
        let items: Vec<(u64, Pfv)> = (0..50u64).map(|i| (i, pfv1(i as f64, 0.2))).collect();
        let mut t = GaussTree::bulk_load(pool, config, items).unwrap();
        t.extend((50..90u64).map(|i| (i, pfv1(i as f64 * 0.5, 0.3))))
            .unwrap();
        t.flush().unwrap();
        let store = {
            let GaussTree { pool, .. } = t;
            pool.into_store()
        };
        let pool = BufferPool::new(store, 1024, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.len(), 90);
        assert!(t2.check_invariants(false).unwrap().is_empty());
    }

    #[test]
    fn huge_free_list_survives_reopen_via_overflow_chain() {
        // A 1 KiB meta page holds ~121 free ids inline; mass deletion on a
        // small-page tree frees far more. The overflow must persist through
        // the carrier chain: after reopen the full list is back and the
        // page accounting still balances (no false PageLeak).
        let config = TreeConfig::new(1).with_capacities(4, 4);
        let pool = BufferPool::new(MemStore::new(1024), 4096, AccessStats::new_shared());
        let mut t = GaussTree::create(pool, config).unwrap();
        let items: Vec<(u64, Pfv)> = (0..900u64)
            .map(|i| {
                (
                    i,
                    pfv1((i as f64 * 0.61).sin() * 40.0, 0.05 + (i % 9) as f64 * 0.07),
                )
            })
            .collect();
        for (id, v) in &items {
            t.insert(*id, v).unwrap();
        }
        for (id, v) in items.iter().take(850) {
            t.delete(*id, v).unwrap();
        }
        let freed = t.free_page_count();
        let meta_cap = (1024 - super::META_BASE_BYTES) / 8;
        assert!(freed > meta_cap, "need overflow: {freed} <= {meta_cap}");
        assert!(t.check_invariants(false).unwrap().is_empty());
        t.flush().unwrap();

        let store = {
            let GaussTree { pool, .. } = t;
            pool.into_store()
        };
        let pool = BufferPool::new(store, 4096, AccessStats::new_shared());
        let t2 = GaussTree::open(pool).unwrap();
        assert_eq!(t2.free_page_count(), freed, "free list truncated on reopen");
        let errs = t2.check_invariants(false).unwrap();
        assert!(errs.is_empty(), "violations after reopen: {errs:?}");
        assert_eq!(t2.len(), 50);
    }

    #[test]
    fn insert_after_bulk_load() {
        let items: Vec<(u64, Pfv)> = (0..100u64).map(|i| (i, pfv1(i as f64, 0.1))).collect();
        let config = TreeConfig::new(1).with_capacities(8, 6);
        let pool = BufferPool::new(MemStore::new(8192), 1024, AccessStats::new_shared());
        let mut t = GaussTree::bulk_load(pool, config, items).unwrap();
        for i in 100..150u64 {
            t.insert(i, &pfv1(i as f64 * 0.5, 0.2)).unwrap();
        }
        assert_eq!(t.len(), 150);
        let mut n = 0;
        t.for_each_entry(|_, _| n += 1).unwrap();
        assert_eq!(n, 150);
    }
}
