//! The shared read-plane: one implementation of every read-only tree
//! operation, consumed through the [`ReadView`] trait by both the writer
//! handle ([`GaussTree`], which reads its *working* state) and the pinned
//! [`Snapshot`](crate::tree::Snapshot) view (which reads a *committed*
//! epoch).
//!
//! The paper's query algorithms (§5.2) only ever need five things: the
//! tree configuration, the root page, the height, the length, and a way to
//! read node pages. `Plane` packages exactly that, so the k-MLIQ / TIQ /
//! cursor / box-query / traversal / structural-check code exists once —
//! `query.rs`, `cursor.rs`, `interval.rs` and `check.rs` all implement
//! against `Plane` — and every public entry point is a provided method of
//! [`ReadView`]. Callers learn one new concept
//! ([`GaussTree::snapshot`](crate::tree::GaussTree::snapshot)) and keep
//! calling the same query methods on whichever view they hold.

use crate::config::TreeConfig;
use crate::cursor::RankingCursor;
use crate::executor::BatchExecutor;
use crate::forest::query::ForestPlane;
use crate::forest::ForestSnapshot;
use crate::interval::BoxQueryResult;
use crate::node::{CachedNode, Node};
use crate::query::{MliqResult, RefinedResult, TiqResult};
use crate::tree::{GaussTree, TreeError};
use gauss_storage::store::PageStore;
use gauss_storage::{PageId, SharedBufferPool, SideCache};
use pfv::Pfv;
use std::sync::Arc;

/// A borrowed, read-only view of one tree state (root + height + length +
/// page access) — the substrate every query algorithm runs against.
///
/// Obtained through [`ReadView::plane`]; not constructed directly. All
/// fields borrow from the owning [`GaussTree`] or
/// [`Snapshot`](crate::tree::Snapshot), so a `Plane` is a cheap `Copy`
/// token, not a pinned state by itself.
#[doc(hidden)]
#[derive(Debug)]
pub struct Plane<'a, S: PageStore> {
    pub(crate) pool: &'a SharedBufferPool<S>,
    pub(crate) node_cache: &'a SideCache<CachedNode>,
    pub(crate) config: &'a TreeConfig,
    pub(crate) leaf_cap: usize,
    pub(crate) inner_cap: usize,
    pub(crate) root: PageId,
    pub(crate) height: u32,
    pub(crate) len: u64,
}

// Manual impls: the derives would add an implicit `S: Copy` bound, but a
// `Plane` is all borrows and always copyable regardless of the store.
impl<S: PageStore> Clone for Plane<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: PageStore> Copy for Plane<'_, S> {}

impl<'a, S: PageStore> Plane<'a, S> {
    pub(crate) fn config(&self) -> &'a TreeConfig {
        self.config
    }

    pub(crate) fn dims(&self) -> usize {
        self.config.dims
    }

    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn height(&self) -> u32 {
        self.height
    }

    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    pub(crate) fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    pub(crate) fn inner_capacity(&self) -> usize {
        self.inner_cap
    }

    /// Reads and decodes the node stored at `page`.
    pub(crate) fn read_node(&self, page: PageId) -> Result<Node, TreeError> {
        let bytes = self.pool.page(page)?;
        Ok(Node::read_from(
            self.config.dims,
            self.config.leaf_format,
            &bytes,
        )?)
    }

    /// Reads the node stored at `page` in query-ready cached form. The
    /// page is *always* requested from the buffer pool first — access
    /// accounting is identical to [`Plane::read_node`] — and only the
    /// decode step is skipped on a node-cache hit.
    pub(crate) fn read_node_cached(&self, page: PageId) -> Result<Arc<CachedNode>, TreeError> {
        let bytes = self.pool.page(page)?;
        if let Some(cached) = self.node_cache.get(page) {
            return Ok(cached);
        }
        let node = Node::read_from(self.config.dims, self.config.leaf_format, &bytes)?;
        let cached = Arc::new(node.into_cached(self.config.dims));
        self.node_cache.insert(page, Arc::clone(&cached));
        Ok(cached)
    }

    pub(crate) fn check_dims(&self, got: usize) -> Result<(), TreeError> {
        if got != self.dims() {
            return Err(TreeError::DimMismatch {
                expected: self.dims(),
                got,
            });
        }
        Ok(())
    }

    /// Visits every stored `(id, pfv)` pair (in tree order).
    pub(crate) fn for_each_entry(&self, mut f: impl FnMut(u64, &Pfv)) -> Result<(), TreeError> {
        let mut stack = vec![(self.root, self.height)];
        while let Some((page, level)) = stack.pop() {
            match self.read_node(page)? {
                Node::Leaf(es) => {
                    for e in &es {
                        f(e.id, &e.pfv);
                    }
                }
                Node::Inner(es) => {
                    if level == 0 {
                        return Err(TreeError::Corrupt("inner node at leaf level"));
                    }
                    for e in &es {
                        stack.push((e.child, level - 1));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The read-plane behind any [`ReadView`]: either one tree state or a
/// whole forest snapshot (memtable + components). Every provided query
/// method dispatches through this enum, so the single-tree algorithms in
/// `query.rs` / `cursor.rs` / `interval.rs` stay untouched and the
/// forest fan-out lives in [`crate::forest::query`].
#[doc(hidden)]
pub enum ViewPlane<'a, S: PageStore> {
    /// One tree state (working state or pinned snapshot).
    Tree(Plane<'a, S>),
    /// A pinned forest manifest: memtable image + component snapshots.
    Forest(ForestPlane<'a, S>),
}

impl<S: PageStore> Clone for ViewPlane<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<S: PageStore> Copy for ViewPlane<'_, S> {}

impl<'a, S: PageStore> ViewPlane<'a, S> {
    pub(crate) fn config(&self) -> &'a TreeConfig {
        match self {
            ViewPlane::Tree(p) => p.config(),
            ViewPlane::Forest(p) => p.config(),
        }
    }

    pub(crate) fn check_dims(&self, got: usize) -> Result<(), TreeError> {
        match self {
            ViewPlane::Tree(p) => p.check_dims(got),
            ViewPlane::Forest(p) => p.check_dims(got),
        }
    }

    pub(crate) fn k_mliq(&self, q: &Pfv, k: usize) -> Result<Vec<MliqResult>, TreeError> {
        match self {
            ViewPlane::Tree(p) => p.k_mliq(q, k),
            ViewPlane::Forest(p) => p.k_mliq(q, k),
        }
    }

    pub(crate) fn k_mliq_refined(
        &self,
        q: &Pfv,
        k: usize,
        accuracy: f64,
    ) -> Result<Vec<RefinedResult>, TreeError> {
        match self {
            ViewPlane::Tree(p) => p.k_mliq_refined(q, k, accuracy),
            ViewPlane::Forest(p) => p.k_mliq_refined(q, k, accuracy),
        }
    }

    pub(crate) fn tiq(
        &self,
        q: &Pfv,
        p_theta: f64,
        accuracy: f64,
    ) -> Result<Vec<TiqResult>, TreeError> {
        match self {
            ViewPlane::Tree(p) => p.tiq(q, p_theta, accuracy),
            ViewPlane::Forest(p) => p.tiq(q, p_theta, accuracy),
        }
    }

    pub(crate) fn tiq_anytime(&self, q: &Pfv, p_theta: f64) -> Result<Vec<TiqResult>, TreeError> {
        match self {
            ViewPlane::Tree(p) => p.tiq_anytime(q, p_theta),
            ViewPlane::Forest(p) => p.tiq_anytime(q, p_theta),
        }
    }

    pub(crate) fn probabilistic_box_query(
        &self,
        lo: &[f64],
        hi: &[f64],
        tau: f64,
    ) -> Result<Vec<BoxQueryResult>, TreeError> {
        match self {
            ViewPlane::Tree(p) => p.probabilistic_box_query(lo, hi, tau),
            ViewPlane::Forest(p) => p.probabilistic_box_query(lo, hi, tau),
        }
    }

    pub(crate) fn for_each_entry(&self, f: impl FnMut(u64, &Pfv)) -> Result<(), TreeError> {
        match self {
            ViewPlane::Tree(p) => p.for_each_entry(f),
            ViewPlane::Forest(p) => p.for_each_entry(f),
        }
    }
}

/// Read-only query surface shared by the writer handle and pinned
/// snapshots.
///
/// Implemented by [`GaussTree`] (queries run against the tree's *working*
/// state, exactly as before the snapshot API existed), by
/// [`Snapshot`](crate::tree::Snapshot) (queries run lock-free against the
/// pinned *committed* epoch, concurrently with a writer shadow-building
/// the next one), and by [`ForestSnapshot`] (queries fan out across the
/// pinned forest manifest). Every method is provided — implementors only
/// supply [`ReadView::plane`].
pub trait ReadView<S: PageStore> {
    /// The raw read-plane this view exposes. Implementation detail —
    /// call the query methods instead.
    #[doc(hidden)]
    fn plane(&self) -> ViewPlane<'_, S>;

    /// k-most-likely identification query (paper §5.2.1, Definition 3).
    ///
    /// Returns up to `k` objects ranked by descending relative probability
    /// `p(q|v)`. Does not compute normalised probabilities — use
    /// [`ReadView::k_mliq_refined`] when you need `P(v|q)`.
    ///
    /// # Errors
    /// Dimensionality mismatch or storage errors.
    fn k_mliq(&self, q: &Pfv, k: usize) -> Result<Vec<MliqResult>, TreeError> {
        self.plane().k_mliq(q, k)
    }

    /// Probability-refined k-MLIQ (paper §5.2.2).
    ///
    /// Like [`ReadView::k_mliq`] but also determines the identification
    /// probability `P(v|q)` of every answer with guaranteed bounds whose
    /// width is at most `accuracy`.
    ///
    /// # Errors
    /// Dimensionality mismatch or storage errors.
    ///
    /// # Panics
    /// Panics if `accuracy <= 0`.
    fn k_mliq_refined(
        &self,
        q: &Pfv,
        k: usize,
        accuracy: f64,
    ) -> Result<Vec<RefinedResult>, TreeError> {
        self.plane().k_mliq_refined(q, k, accuracy)
    }

    /// Threshold identification query (paper §5.2.3, Figure 5,
    /// Definition 2): every object with `P(v|q) ≥ p_theta`, with
    /// probability bounds of width at most `accuracy`, and with every
    /// boundary candidate decided exactly.
    ///
    /// # Errors
    /// Dimensionality mismatch or storage errors.
    ///
    /// # Panics
    /// Panics unless `0 < p_theta <= 1` and `accuracy > 0`.
    fn tiq(&self, q: &Pfv, p_theta: f64, accuracy: f64) -> Result<Vec<TiqResult>, TreeError> {
        self.plane().tiq(q, p_theta, accuracy)
    }

    /// The literal Figure-5 algorithm: stops as soon as no unexplored node
    /// can contain a qualifying object, keeps every candidate whose
    /// probability *could* reach the threshold, and reports the
    /// conservative probability. Cheaper than [`ReadView::tiq`] but
    /// boundary candidates may be reported whose exact probability is
    /// slightly below the threshold.
    ///
    /// # Errors
    /// Dimensionality mismatch or storage errors.
    ///
    /// # Panics
    /// Panics unless `0 < p_theta <= 1`.
    fn tiq_anytime(&self, q: &Pfv, p_theta: f64) -> Result<Vec<TiqResult>, TreeError> {
        self.plane().tiq_anytime(q, p_theta)
    }

    /// Starts a lazy best-first ranking for `q` (highest relative
    /// probability first) — see [`RankingCursor`].
    ///
    /// # Errors
    /// Dimensionality mismatch.
    fn ranking_cursor(&self, q: &Pfv) -> Result<RankingCursor<'_, S>, TreeError> {
        self.plane().ranking_cursor(q)
    }

    /// Probabilistic box threshold query (interval uncertainty model of
    /// Cheng et al., see [`crate::interval`]): every object whose true
    /// feature vector lies in `[lo, hi]` with probability at least `tau`,
    /// sorted by descending probability.
    ///
    /// # Errors
    /// Dimensionality mismatch or storage errors.
    ///
    /// # Panics
    /// Panics unless `0 < tau <= 1` and the box is well-formed.
    fn probabilistic_box_query(
        &self,
        lo: &[f64],
        hi: &[f64],
        tau: f64,
    ) -> Result<Vec<BoxQueryResult>, TreeError> {
        self.plane().probabilistic_box_query(lo, hi, tau)
    }

    /// Visits every stored `(id, pfv)` pair (in tree order).
    ///
    /// # Errors
    /// Store / codec errors.
    fn for_each_entry(&self, f: impl FnMut(u64, &Pfv)) -> Result<(), TreeError>
    where
        Self: Sized,
    {
        self.plane().for_each_entry(f)
    }

    /// Fans batches of queries across `threads` worker threads over this
    /// view — shorthand for [`BatchExecutor::new`]`(self, threads)`.
    fn batch(&self, threads: usize) -> BatchExecutor<'_, S, Self>
    where
        Self: Sized + Sync,
        S: Send,
    {
        BatchExecutor::new(self, threads)
    }
}

impl<S: PageStore> ReadView<S> for GaussTree<S> {
    fn plane(&self) -> ViewPlane<'_, S> {
        ViewPlane::Tree(self.working_plane())
    }
}

impl<S: PageStore> ReadView<S> for ForestSnapshot<S> {
    fn plane(&self) -> ViewPlane<'_, S> {
        ViewPlane::Forest(ForestPlane { snap: self })
    }
}
