//! Stress test: batch queries racing cache invalidation.
//!
//! `clear_cache_and_stats` tears down every pool shard while worker
//! threads fault pages back in through the store lock; under debug builds
//! the lock-order detector is live, so this test doubles as a soak for the
//! store → shard → side-cache rank order on real query traffic. Results
//! must stay byte-identical to a serial run no matter how often the caches
//! are yanked mid-batch.

use std::sync::atomic::{AtomicBool, Ordering};

use gauss_storage::{AccessStats, BufferPool, MemStore};
use gauss_tree::config::TreeConfig;
use gauss_tree::tree::GaussTree;
use gauss_tree::ReadView;
use pfv::vector::Pfv;

fn build(n: u64) -> GaussTree<MemStore> {
    let pool = BufferPool::new(MemStore::new(8192), 4096, AccessStats::new_shared());
    let mut tree =
        GaussTree::create(pool, TreeConfig::new(2).with_capacities(8, 6)).expect("create");
    for i in 0..n {
        let v = Pfv::new(
            vec![
                (i as f64 * 0.61).sin() * 10.0,
                (i as f64 * 0.29).cos() * 10.0,
            ],
            vec![0.1 + (i % 5) as f64 * 0.15, 0.2],
        )
        .expect("valid pfv");
        tree.insert(i, &v).expect("insert");
    }
    tree
}

fn queries(n: usize) -> Vec<Pfv> {
    (0..n)
        .map(|i| {
            Pfv::new(
                vec![
                    (i as f64 * 1.7).sin() * 10.0,
                    (i as f64 * 0.83).cos() * 10.0,
                ],
                vec![0.25, 0.3],
            )
            .expect("valid query")
        })
        .collect()
}

#[test]
fn batch_queries_race_clear_cache_and_stats() {
    let tree = build(1200);
    let qs = queries(24);
    let serial: Vec<_> = qs
        .iter()
        .map(|q| tree.k_mliq(q, 5).expect("serial query"))
        .collect();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // The saboteur: yank the pool cache + decoded-node cache in a tight
        // loop while the workers are mid-batch.
        s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                tree.pool().clear_cache_and_stats();
                tree.cold_start();
                std::thread::yield_now();
            }
        });
        let workers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    for round in 0..10 {
                        let par = tree.batch(4).k_mliq(&qs, 5).expect("batch query");
                        assert_eq!(par, serial, "round {round}");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        stop.store(true, Ordering::Relaxed);
    });
}
