//! Annotated sites must stay silent; one malformed annotation must not.

/// Invariant-checked unwrap behind a proper annotation.
pub fn justified(x: Option<u32>) -> u32 {
    // lint: allow(no-panic) -- fixture: invariant documented here
    x.expect("covered by the allow above")
}

/// Trailing-form annotation.
pub fn trailing(x: Option<u32>) -> u32 {
    x.expect("inline") // lint: allow(no-panic) -- fixture: trailing form
}

/// Missing reason → bad-allow, and the unwrap still reports in bad.rs, not
/// here — this file's only finding must be the bad-allow itself.
pub fn malformed() {
    // lint: allow(no-panic)
    let _ = ();
}
