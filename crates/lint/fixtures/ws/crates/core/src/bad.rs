// Seeded violations: no-panic, raw-mutex, missing-docs.

use std::sync::Mutex;

pub fn undocumented_and_panicky(x: Option<u32>) -> u32 {
    let guard = GLOBAL.lock().unwrap();
    drop(guard);
    x.expect("boom")
}

static GLOBAL: Mutex<u32> = Mutex::new(0);

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
