// Deliberately missing #![forbid(unsafe_code)]  → forbid-unsafe.

mod bad;
mod allowed;
mod tree;
mod query;
