//! Fixture: a result-slot guard held across PageStore I/O on the query path.

use gauss_storage::sync::{LockRank, TrackedMutex};

fn scan_under_lock(pool: &Pool) -> u32 {
    let cache = TrackedMutex::new(0, LockRank::ResultSlot, 9, "fx-query-cache");
    let slot = cache.lock();
    let hit = pool.read_page(7);
    *slot + hit
}
