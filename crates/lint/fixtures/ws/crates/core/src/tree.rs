//! Fixture: durability-protocol violations in the commit path.

struct ShadowTree {
    free_pending: Vec<u32>,
    epoch: u64,
}

impl ShadowTree {
    fn broken_flush(&mut self, pool: &Pool, slot: u32, meta: Page) {
        pool.write(slot, &meta);
        pool.sync(0);
    }

    fn broken_alloc(&mut self) -> Option<u32> {
        self.free_pending.pop()
    }
}
