#![forbid(unsafe_code)]
//! Fixture pfv crate: float-eq violation.

/// Compares a probability against a literal the wrong way.
pub fn bad_compare(p: f64) -> bool {
    p == 0.25
}
