#![forbid(unsafe_code)]
//! Fixture storage crate: cast-truncation violation.

/// Truncates a page byte count.
pub fn bad_cast(len: usize) -> u32 {
    len as u32
}

/// Lock-ordering fixtures.
pub mod locks;

/// Discards a sync result.
pub fn sloppy_sync(pool: &Disk) {
    let _ = pool.sync(0);
}
