#![forbid(unsafe_code)]
//! Fixture storage crate: cast-truncation violation.

/// Truncates a page byte count.
pub fn bad_cast(len: usize) -> u32 {
    len as u32
}
