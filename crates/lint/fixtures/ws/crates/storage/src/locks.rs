//! Fixture: seeded lock-rank inversion on a path no test executes.

use gauss_storage::sync::{LockRank, TrackedMutex};

/// A miniature pool with a store lock (rank 0) and a shard lock (rank 1).
pub struct Pool {
    store: TrackedMutex<u32>,
    shards: TrackedMutex<u32>,
}

impl Pool {
    /// Builds the pool with correctly-ranked locks.
    pub fn fresh() -> Self {
        Self {
            store: TrackedMutex::new(0, LockRank::Store, 0, "fx-store"),
            shards: TrackedMutex::new(0, LockRank::Shard, 1, "fx-shard"),
        }
    }

    /// Entry point: holds the shard lock across a refill that eventually
    /// needs the store lock — a rank inversion three calls deep.
    pub fn shard_then_store(&self) -> u32 {
        let shard = self.shards.lock();
        let refilled = self.refill_from_disk();
        *shard + refilled
    }

    fn refill_from_disk(&self) -> u32 {
        self.grab_store()
    }

    fn grab_store(&self) -> u32 {
        let store = self.store.lock();
        *store
    }

    /// Holds the store guard across a helper that re-locks the store.
    pub fn double_store(&self) -> u32 {
        let store = self.store.lock();
        let total = self.store_total();
        *store + total
    }

    fn store_total(&self) -> u32 {
        let store = self.store.lock();
        *store
    }
}
