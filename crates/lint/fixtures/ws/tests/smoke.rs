//! Fixture integration test: relaxed rules (unwrap ok, dropped I/O not).

#[test]
fn smoke() {
    let v = open().unwrap();
    let _ = v.write_page(1, &[0u8; 8]);
}
