//! Flow-aware analysis: lock facts, call graph, and the protocol rules.
//!
//! This module implements the four rules that need more than token
//! matching, split into two phases so results can be cached per file:
//!
//! 1. **Fact extraction** ([`file_facts`]) — purely intraprocedural. For
//!    every function (via the [`crate::parse`] item tree) it records which
//!    `LockRank`s are acquired directly, which calls are made while
//!    which guards are live, and emits the findings that need no other
//!    file: direct rank inversions, guards held across `PageStore` I/O in
//!    query-path modules (`guard-across-call`), the `durability-protocol`
//!    statement-order checks in `core/src/tree.rs`/`bulk.rs`, and
//!    `ignored-io-result`.
//! 2. **Global propagation** ([`global_findings`]) — builds the
//!    intra-workspace call graph from the per-file facts, computes for
//!    every function the minimum lock rank it can transitively acquire,
//!    and flags every call site where that minimum is ≤ a rank already
//!    held, naming the full call chain (`static-lock-order` for strictly
//!    lower ranks, `guard-across-call` for equal-rank re-acquisition).
//!
//! Rank inference: a lock's rank comes from its
//! `TrackedMutex::new(_, LockRank::<R>, …)` construction, bound to the
//! nearest preceding `let`/field binder *in the same file* (ranks are a
//! per-pool convention; `shards` means rank 1 in `shared.rs` but rank 2
//! in `side_cache.rs`). `.lock()` receivers resolve through that map,
//! through `container[index]` bases, and through single-lock helper
//! functions like `shard_of(id).lock()`.
//!
//! Precision choices (documented limits, all conservative-by-silence):
//! calls through std-looking method names (`push`, `get`, `insert`, …)
//! never form call-graph edges, calls on a live guard target the locked
//! *data* rather than the pool and are excluded, and
//! `gauss_storage::sync` itself (lock internals, condvar re-acquisition)
//! is outside the model. The runtime tracker remains the backstop for
//! those blind spots.
//!
//! `LockRank` is the workspace lock hierarchy (rank 0 = Store, 1 = Shard,
//! 2 = SideCache, 3 = WorkQueue, 4 = ResultSlot, 5 = EpochRegistry; see
//! `gauss_storage::sync`).

use std::collections::{BTreeSet, HashMap};

use crate::lexer::{blank, test_regions, Blanked};
use crate::parse::{is_keyword, parse_items, tokenize, FnItem, Tok};
use crate::rules::{
    self, Finding, DURABILITY_PROTOCOL, GUARD_ACROSS_CALL, IGNORED_IO_RESULT, STATIC_LOCK_ORDER,
};
use crate::walk::{FileKind, SourceFile};

/// Rank names from `gauss_storage::sync::LockRank`, index = rank value.
const RANK_NAMES: &[&str] = &[
    "Store",
    "Shard",
    "SideCache",
    "WorkQueue",
    "ResultSlot",
    "EpochRegistry",
];

/// Sentinel "acquires nothing" rank (all real ranks are smaller).
const NO_RANK: u8 = u8::MAX;

/// Method/function names that never form call-graph edges: overwhelmingly
/// std container/iterator/atomic calls, and tracking them as potential
/// calls into same-named workspace functions would drown the analysis in
/// false chains.
const STD_NAMES: &[&str] = &[
    "push",
    "pop",
    "get",
    "get_mut",
    "get_or_insert",
    "get_or_insert_with",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "peek",
    "map",
    "and_then",
    "filter",
    "fold",
    "for_each",
    "collect",
    "extend",
    "drain",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "min",
    "max",
    "min_by",
    "max_by",
    "sum",
    "product",
    "take",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "flat_map",
    "flatten",
    "last",
    "first",
    "count",
    "position",
    "find",
    "any",
    "all",
    "cloned",
    "copied",
    "clone",
    "to_vec",
    "to_string",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "as_mut_slice",
    "into",
    "from",
    "try_from",
    "try_into",
    "parse",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "abs",
    "sqrt",
    "ln",
    "exp",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "to_bits",
    "from_bits",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "default",
    "drop",
    "split_at",
    "split_off",
    "starts_with",
    "ends_with",
    "trim",
    "join",
    "push_str",
    "entry",
    "or_insert",
    "or_insert_with",
    "keys",
    "values",
    "windows",
    "chunks",
    "binary_search",
    "binary_search_by",
    "partition_point",
    "resize",
    "truncate",
    "reserve",
    "with_capacity",
    "swap_remove",
    "split_first",
    "split_last",
    "copy_from_slice",
    "fill",
    "min_by_key",
    "max_by_key",
    "skip",
    "step_by",
    "leading_zeros",
    "trailing_zeros",
    "then",
    "then_some",
    "unzip",
    "to_le_bytes",
    "from_le_bytes",
    "to_be_bytes",
    "from_be_bytes",
    "write_fmt",
    "finish",
    "field",
    "debug_struct",
];

/// `gauss_storage` I/O API names whose `Result`s must not be dropped and
/// which count as "PageStore I/O" for the guard-across-I/O check.
const IO_NAMES: &[&str] = &[
    "read_page",
    "write_page",
    "write_pages",
    "write_batch",
    "write",
    "read",
    "sync",
    "flush",
    "allocate",
    "allocate_many",
    "page",
    "set_len",
    "write_all",
    "read_exact",
];

/// Tokens that, present in a `let _ = …;` statement, show the `Result`
/// was actually consumed before the discard.
const HANDLED_MARKS: &[&str] = &[
    "unwrap",
    "expect",
    "is_ok",
    "is_err",
    "ok",
    "map_err",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
];

/// The lock-tracking internals themselves: raw primitives and condvar
/// re-acquisition live here by design, so the static model excludes it.
const SYNC_MODULE: &str = "crates/storage/src/sync.rs";

/// One direct lock acquisition (or a held guard at a call site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acq {
    /// Lock rank (0 = Store … 5 = EpochRegistry).
    pub rank: u8,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Binder name of the lock (`store`, `shards`, …).
    pub lock: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called name (method or free function).
    pub name: String,
    /// Path qualifier before `::` (`Self`, a type, or empty).
    pub qual: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Whether the receiver is a live lock guard (call targets the locked
    /// data, not the pool — excluded from the call graph).
    pub on_guard: bool,
    /// Guards live across this call.
    pub held: Vec<Acq>,
}

/// Per-function facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFacts {
    /// Bare name.
    pub name: String,
    /// `impl`/`trait` self type, or empty.
    pub impl_type: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Direct acquisitions.
    pub acquires: Vec<Acq>,
    /// Call sites (std-named and macro calls excluded).
    pub calls: Vec<CallSite>,
}

impl FnFacts {
    /// Diagnostic path: `Type::name` or `name`.
    #[must_use]
    pub fn display(&self) -> String {
        if self.impl_type.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.impl_type, self.name)
        }
    }
}

/// One allow annotation, carried in the facts so the global pass can
/// honour escape hatches without re-reading the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowFact {
    /// Silenced rule names.
    pub rules: Vec<String>,
    /// 1-based line of the comment.
    pub line: usize,
    /// Standalone comments also cover the next line.
    pub standalone: bool,
}

/// Everything the linter knows about one file, cacheable between runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Owning crate directory name.
    pub crate_name: String,
    /// Function facts (lock-rule scope only; empty for tests/shims).
    pub fns: Vec<FnFacts>,
    /// Allow annotations (all of them, for the global pass).
    pub allows: Vec<AllowFact>,
    /// Findings decided from this file alone, already allow-filtered.
    pub local: Vec<Finding>,
}

impl FileFacts {
    /// Whether `rule` is escape-hatched on `line`.
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == rule)
                && (a.line == line || (a.standalone && a.line + 1 == line))
        })
    }
}

/// Whether lock/call-graph facts are collected for this file. Test code
/// deliberately constructs inversions to exercise the runtime tracker, so
/// only library, binary, and example code is modelled.
fn lock_scope(file: &SourceFile) -> bool {
    matches!(file.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
        && file.rel_path != SYNC_MODULE
}

/// Query-path modules where a guard across `PageStore` I/O is flagged.
fn query_path_module(file: &SourceFile) -> bool {
    file.crate_name == "core"
        && matches!(
            file.rel_path.rsplit('/').next(),
            Some("query.rs" | "cursor.rs" | "executor.rs")
        )
}

/// Modules under the durability-protocol statement-order checks: the
/// single-tree commit path and the forest's manifest-commit path.
fn durability_module(file: &SourceFile) -> bool {
    file.crate_name == "core"
        && (matches!(
            file.rel_path.rsplit('/').next(),
            Some("tree.rs" | "bulk.rs")
        ) || file.rel_path.ends_with("forest/mod.rs"))
}

/// Extracts [`FileFacts`] for one file: token-level rule findings (via
/// [`rules::lint_blanked`]) plus the flow-aware local findings and the
/// call-graph facts for [`global_findings`].
#[must_use]
pub fn file_facts(file: &SourceFile, src: &str) -> FileFacts {
    let blanked = blank(src);
    let test_spans = test_regions(&blanked.code);
    let mut facts = FileFacts {
        rel_path: file.rel_path.clone(),
        crate_name: file.crate_name.clone(),
        fns: Vec::new(),
        allows: blanked
            .allows
            .iter()
            .map(|a| AllowFact {
                rules: a.rules.clone(),
                line: a.line,
                standalone: a.standalone,
            })
            .collect(),
        local: rules::lint_blanked(file, &blanked, &test_spans),
    };
    if file.kind == FileKind::Shim {
        return facts;
    }
    let toks = tokenize(&blanked.code);
    let tree = parse_items(&blanked.code);
    ignored_io_rule(file, &blanked, &toks, &mut facts);
    if !lock_scope(file) {
        return facts;
    }
    let locks = lock_bindings(&toks);
    let hints = helper_hints(&tree, &toks, &locks);
    let in_test = |pos: usize| test_spans.iter().any(|&(s, e)| s <= pos && pos < e);
    for item in &tree.fns {
        let Some(body) = item.body else { continue };
        if in_test(item.pos) {
            continue;
        }
        let fnf = analyze_body(
            file, &blanked, &toks, item, body, &locks, &hints, &mut facts,
        );
        facts.fns.push(fnf);
    }
    facts
}

/// Builds the per-file lock-binder map: binder name → rank, from every
/// `TrackedMutex::new(_, LockRank::<R>, …)` construction site.
fn lock_bindings(toks: &[(usize, Tok<'_>)]) -> HashMap<String, u8> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i + 4 < toks.len() {
        if toks[i].1 == Tok::Ident("TrackedMutex")
            && toks[i + 1].1 == Tok::Punct(b':')
            && toks[i + 2].1 == Tok::Punct(b':')
            && toks[i + 3].1 == Tok::Ident("new")
            && toks[i + 4].1 == Tok::Punct(b'(')
        {
            if let (Some(rank), Some(binder)) = (rank_in_args(toks, i + 4), binder_before(toks, i))
            {
                out.insert(binder, rank);
            }
            i += 5;
        } else {
            i += 1;
        }
    }
    out
}

/// Finds `LockRank::<R>` among the argument tokens of the call whose `(`
/// sits at token index `open`.
fn rank_in_args(toks: &[(usize, Tok<'_>)], open: usize) -> Option<u8> {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].1 {
            Tok::Punct(b'(') => depth += 1,
            Tok::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            Tok::Ident("LockRank") => {
                if let (Some(&(_, Tok::Punct(b':'))), Some(&(_, Tok::Punct(b':')))) =
                    (toks.get(j + 1), toks.get(j + 2))
                {
                    if let Some(&(_, Tok::Ident(name))) = toks.get(j + 3) {
                        return RANK_NAMES
                            .iter()
                            .position(|&r| r == name)
                            .and_then(|p| u8::try_from(p).ok());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scans backwards from the `TrackedMutex` token for the binder the
/// construction is assigned to: the nearest preceding `ident :` (field or
/// typed let) or `ident =` (plain let / assignment), stopping at the
/// statement boundary.
fn binder_before(toks: &[(usize, Tok<'_>)], from: usize) -> Option<String> {
    let mut k = from;
    let mut steps = 0;
    while k > 0 && steps < 60 {
        k -= 1;
        steps += 1;
        match toks[k].1 {
            Tok::Punct(b';') => return None,
            Tok::Ident(name) if !is_keyword(name) => {
                let next = toks.get(k + 1).map(|&(_, t)| t);
                let after = toks.get(k + 2).map(|&(_, t)| t);
                let single_colon =
                    next == Some(Tok::Punct(b':')) && after != Some(Tok::Punct(b':'));
                let plain_assign = next == Some(Tok::Punct(b'='))
                    && !matches!(after, Some(Tok::Punct(b'=' | b'>')));
                if (single_colon || plain_assign) && k + 1 < from {
                    return Some(name.to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// For `helper(args).lock()` receivers: maps helper-function names to a
/// rank when the helper's body references exactly one known lock binder.
fn helper_hints(
    tree: &crate::parse::ItemTree,
    toks: &[(usize, Tok<'_>)],
    locks: &HashMap<String, u8>,
) -> HashMap<String, u8> {
    let mut out = HashMap::new();
    if locks.is_empty() {
        return out;
    }
    for f in &tree.fns {
        let Some((b, e)) = f.body else { continue };
        let lo = toks.partition_point(|&(p, _)| p < b);
        let hi = toks.partition_point(|&(p, _)| p < e);
        let mut seen: BTreeSet<u8> = BTreeSet::new();
        for &(_, t) in &toks[lo..hi] {
            if let Tok::Ident(name) = t {
                if let Some(&r) = locks.get(name) {
                    seen.insert(r);
                }
            }
        }
        if seen.len() == 1 {
            if let Some(&r) = seen.iter().next() {
                out.insert(f.name.clone(), r);
            }
        }
    }
    out
}

/// A guard live inside a body walk.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name (empty for statement temporaries).
    name: String,
    rank: u8,
    lock: String,
    line: usize,
    /// Byte offset of the acquisition (calls before it are not "under").
    off: usize,
}

/// One lexical scope during the body walk.
#[derive(Debug, Default)]
struct Frame {
    /// `let`-bound guards: live to the end of the scope or `drop(x)`.
    guards: Vec<Guard>,
    /// Statement temporaries: live to the next `;`.
    temps: Vec<Guard>,
    /// Token index where the current statement began.
    stmt_start: usize,
}

/// Walks one function body, collecting acquisitions, call sites, and the
/// intraprocedural findings.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn analyze_body(
    file: &SourceFile,
    blanked: &Blanked,
    toks: &[(usize, Tok<'_>)],
    item: &FnItem,
    body: (usize, usize),
    locks: &HashMap<String, u8>,
    hints: &HashMap<String, u8>,
    facts: &mut FileFacts,
) -> FnFacts {
    let mut fnf = FnFacts {
        name: item.name.clone(),
        impl_type: item.impl_type.clone(),
        line: blanked.line_of(item.pos),
        acquires: Vec::new(),
        calls: Vec::new(),
    };
    let lo = toks.partition_point(|&(p, _)| p < body.0);
    let hi = toks.partition_point(|&(p, _)| p < body.1);
    let durability = durability_module(file);
    let query_path = query_path_module(file);
    let mut frames: Vec<Frame> = Vec::new();
    let mut sync_seen = false;
    let mut epoch_assigned = false;
    let mut min_pinned_seen = false;
    let mut report = |rule: &'static str, line: usize, message: String, chain: Vec<String>| {
        if !blanked.is_allowed(rule, line) {
            facts.local.push(Finding {
                rel_path: file.rel_path.clone(),
                line,
                rule,
                message,
                chain,
            });
        }
    };
    let mut j = lo;
    while j < hi {
        let (pos, tok) = toks[j];
        match tok {
            Tok::Punct(b'{') => {
                frames.push(Frame {
                    stmt_start: j + 1,
                    ..Frame::default()
                });
            }
            Tok::Punct(b'}') => {
                frames.pop();
            }
            Tok::Punct(b';') => {
                if let Some(f) = frames.last_mut() {
                    f.temps.clear();
                    f.stmt_start = j + 1;
                }
            }
            Tok::Ident("epoch")
                if toks.get(j + 1).map(|&(_, t)| t) == Some(Tok::Punct(b'='))
                    && !matches!(
                        toks.get(j + 2).map(|&(_, t)| t),
                        Some(Tok::Punct(b'=' | b'>'))
                    ) =>
            {
                epoch_assigned = true;
            }
            Tok::Ident("drop") if toks.get(j + 1).map(|&(_, t)| t) == Some(Tok::Punct(b'(')) => {
                if let (Some(&(_, Tok::Ident(nm))), Some(&(_, Tok::Punct(b')')))) =
                    (toks.get(j + 2), toks.get(j + 3))
                {
                    for f in &mut frames {
                        f.guards.retain(|g| g.name != nm);
                    }
                }
            }
            Tok::Ident("lock")
                if j > lo
                    && toks[j - 1].1 == Tok::Punct(b'.')
                    && toks.get(j + 1).map(|&(_, t)| t) == Some(Tok::Punct(b'(')) =>
            {
                let rank = receiver_rank(toks, j - 1, locks, hints);
                if let Some((rank, lock)) = rank {
                    let line = blanked.line_of(pos);
                    // Direct inversion: acquiring strictly below a held
                    // rank can deadlock regardless of interleaving.
                    for g in live_guards(&frames, pos) {
                        if g.rank > rank {
                            report(
                                STATIC_LOCK_ORDER,
                                line,
                                format!(
                                    "acquires `{lock}` ({}) while holding `{}` ({}, line {}): \
                                     lock ranks must strictly increase",
                                    rank_label(rank),
                                    g.lock,
                                    rank_label(g.rank),
                                    g.line
                                ),
                                vec![fnf.display()],
                            );
                        }
                    }
                    fnf.acquires.push(Acq {
                        rank,
                        line,
                        lock: lock.clone(),
                    });
                    let guard = Guard {
                        name: let_binder(toks, &frames, j).unwrap_or_default(),
                        rank,
                        lock,
                        line,
                        off: pos,
                    };
                    if let Some(f) = frames.last_mut() {
                        if guard.name.is_empty() {
                            f.temps.push(guard);
                        } else {
                            f.guards.push(guard);
                        }
                    }
                }
            }
            Tok::Ident(name)
                if !is_keyword(name)
                    && name != "lock"
                    && toks.get(j + 1).map(|&(_, t)| t) == Some(Tok::Punct(b'(')) =>
            {
                let method = j > lo && toks[j - 1].1 == Tok::Punct(b'.');
                let qual = path_qualifier(toks, j);
                let on_guard = method && receiver_is_guard(toks, j - 1, &frames, pos);
                let held: Vec<Acq> = live_guards(&frames, pos)
                    .map(|g| Acq {
                        rank: g.rank,
                        line: g.line,
                        lock: g.lock.clone(),
                    })
                    .collect();
                let line = blanked.line_of(pos);
                if durability {
                    if name == "sync" {
                        sync_seen = true;
                    }
                    if name == "min_pinned" {
                        min_pinned_seen = true;
                    }
                    durability_checks(
                        toks,
                        j,
                        name,
                        method,
                        sync_seen,
                        epoch_assigned,
                        min_pinned_seen,
                        line,
                        &mut report,
                    );
                }
                if query_path && method && IO_NAMES.contains(&name) {
                    for h in &held {
                        report(
                            GUARD_ACROSS_CALL,
                            line,
                            format!(
                                "guard `{}` ({}, line {}) held across PageStore I/O \
                                 `.{name}(…)`: release the lock before touching storage \
                                 on the query path",
                                h.lock,
                                rank_label(h.rank),
                                h.line
                            ),
                            vec![fnf.display()],
                        );
                    }
                }
                if !STD_NAMES.contains(&name) {
                    fnf.calls.push(CallSite {
                        name: name.to_string(),
                        qual,
                        line,
                        on_guard,
                        held,
                    });
                }
            }
            _ => {}
        }
        j += 1;
    }
    fnf
}

/// Human label `rank N/Name`.
fn rank_label(rank: u8) -> String {
    let name = RANK_NAMES.get(rank as usize).copied().unwrap_or("?");
    format!("rank {rank}/{name}")
}

/// All guards live at byte offset `pos`.
fn live_guards<'a>(frames: &'a [Frame], pos: usize) -> impl Iterator<Item = &'a Guard> + 'a {
    frames
        .iter()
        .flat_map(|f| f.guards.iter().chain(f.temps.iter()))
        .filter(move |g| g.off < pos)
}

/// Resolves the rank of a `.lock()` receiver: the token chain before the
/// `.` at token index `dot`.
fn receiver_rank(
    toks: &[(usize, Tok<'_>)],
    dot: usize,
    locks: &HashMap<String, u8>,
    hints: &HashMap<String, u8>,
) -> Option<(u8, String)> {
    if dot == 0 {
        return None;
    }
    match toks[dot - 1].1 {
        Tok::Ident(name) => locks.get(name).map(|&r| (r, name.to_string())),
        Tok::Punct(b')') => {
            // `helper(args).lock()`: resolve through the helper's hint.
            let open = matching_back(toks, dot - 1, b'(', b')')?;
            if open == 0 {
                return None;
            }
            match toks[open - 1].1 {
                Tok::Ident(name) => hints.get(name).map(|&r| (r, format!("{name}(…)"))),
                _ => None,
            }
        }
        Tok::Punct(b']') => {
            // `container[idx].lock()`: the container is the binder.
            let open = matching_back(toks, dot - 1, b'[', b']')?;
            if open == 0 {
                return None;
            }
            match toks[open - 1].1 {
                Tok::Ident(name) => locks.get(name).map(|&r| (r, name.to_string())),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Token index of the `open` delimiter matching the `close` at `at`.
fn matching_back(toks: &[(usize, Tok<'_>)], at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = at + 1;
    while k > 0 {
        k -= 1;
        match toks[k].1 {
            Tok::Punct(b) if b == close => depth += 1,
            Tok::Punct(b) if b == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the method receiver before the `.` at `dot` is a live guard
/// (`guard.m(…)`) or a fresh `.lock()` temporary (`x.lock().m(…)`).
fn receiver_is_guard(toks: &[(usize, Tok<'_>)], dot: usize, frames: &[Frame], pos: usize) -> bool {
    if dot == 0 {
        return false;
    }
    match toks[dot - 1].1 {
        Tok::Ident(name) => live_guards(frames, pos).any(|g| g.name == name),
        Tok::Punct(b')') => matching_back(toks, dot - 1, b'(', b')')
            .and_then(|open| open.checked_sub(1))
            .map(|k| toks[k].1 == Tok::Ident("lock"))
            .unwrap_or(false),
        _ => false,
    }
}

/// The `Type`/`Self` qualifier of a `Qual::name(` call, if any.
fn path_qualifier(toks: &[(usize, Tok<'_>)], j: usize) -> String {
    if j >= 3 && toks[j - 1].1 == Tok::Punct(b':') && toks[j - 2].1 == Tok::Punct(b':') {
        if let Tok::Ident(q) = toks[j - 3].1 {
            return q.to_string();
        }
    }
    String::new()
}

/// If the current statement is `let [mut] <ident> =`/`let <ident>:`, the
/// binder name — the guard then lives to the end of the scope.
fn let_binder(toks: &[(usize, Tok<'_>)], frames: &[Frame], _at: usize) -> Option<String> {
    let start = frames.last()?.stmt_start;
    if toks.get(start)?.1 != Tok::Ident("let") {
        return None;
    }
    let mut k = start + 1;
    if toks.get(k)?.1 == Tok::Ident("mut") {
        k += 1;
    }
    match toks.get(k)?.1 {
        Tok::Ident(nm) if !is_keyword(nm) => match toks.get(k + 1)?.1 {
            Tok::Punct(b'=' | b':') => Some(nm.to_string()),
            _ => None,
        },
        _ => None,
    }
}

/// The statement-order durability checks at one call token.
#[allow(clippy::too_many_arguments)]
fn durability_checks(
    toks: &[(usize, Tok<'_>)],
    j: usize,
    name: &str,
    method: bool,
    sync_seen: bool,
    epoch_assigned: bool,
    min_pinned_seen: bool,
    line: usize,
    report: &mut impl FnMut(&'static str, usize, String, Vec<String>),
) {
    if method && matches!(name, "write" | "write_page") && is_meta_slot_arg(toks, j + 1) {
        if !sync_seen {
            report(
                DURABILITY_PROTOCOL,
                line,
                "meta-slot write is not dominated by a data `sync` barrier in this \
                 function: carriers must be durable before the commit record"
                    .to_string(),
                Vec::new(),
            );
        }
        return;
    }
    // Forest commit record: the manifest slot names component pages, so
    // every component must be synced before the slot write — the
    // multi-file analogue of the meta-slot rule above.
    if method && name == "write_manifest_slot" && !sync_seen {
        report(
            DURABILITY_PROTOCOL,
            line,
            "manifest-slot write is not dominated by a component `sync` barrier in \
             this function: component pages must be durable before the manifest \
             commits to them"
                .to_string(),
            Vec::new(),
        );
        return;
    }
    if method
        && matches!(name, "pop" | "drain" | "remove" | "swap_remove")
        && j >= 2
        && toks[j - 1].1 == Tok::Punct(b'.')
        && toks[j - 2].1 == Tok::Ident("free_pending")
    {
        report(
            DURABILITY_PROTOCOL,
            line,
            format!(
                "`free_pending.{name}(…)` reallocates a shadow-freed page before the \
                 epoch commit: pages freed this epoch are still referenced by the \
                 last durable tree"
            ),
            Vec::new(),
        );
    }
    if matches!(name, "append" | "take")
        && args_mention(toks, j + 1, "free_pending")
        && !epoch_assigned
    {
        report(
            DURABILITY_PROTOCOL,
            line,
            format!(
                "`free_pending` drained (`{name}`) before the epoch commit \
                 (`self.epoch = …`): a crash here would reuse pages the durable tree \
                 still references"
            ),
            Vec::new(),
        );
    }
    if method
        && matches!(name, "pop_front" | "pop" | "drain" | "remove" | "clear")
        && j >= 2
        && toks[j - 1].1 == Tok::Punct(b'.')
        && toks[j - 2].1 == Tok::Ident("free_aging")
        && !min_pinned_seen
    {
        report(
            DURABILITY_PROTOCOL,
            line,
            format!(
                "`free_aging.{name}(…)` reclaims epoch-tagged pages without first \
                 consulting `EpochRegistry::min_pinned`: a live snapshot may still \
                 read them"
            ),
            Vec::new(),
        );
    }
}

/// Whether the first argument of the call whose `(` is at token `open`
/// names the meta slot (`slot`, `META_SLOT_A/B`, or `PageId(0)`).
fn is_meta_slot_arg(toks: &[(usize, Tok<'_>)], open: usize) -> bool {
    match toks.get(open + 1).map(|&(_, t)| t) {
        Some(Tok::Ident("slot" | "META_SLOT_A" | "META_SLOT_B")) => true,
        Some(Tok::Ident("PageId")) => {
            toks.get(open + 2).map(|&(_, t)| t) == Some(Tok::Punct(b'('))
                && toks.get(open + 3).map(|&(_, t)| t) == Some(Tok::Ident("0"))
        }
        _ => false,
    }
}

/// Whether the argument list opening at token `open` mentions `needle`.
fn args_mention(toks: &[(usize, Tok<'_>)], open: usize, needle: &str) -> bool {
    let mut depth = 0i32;
    let mut k = open;
    while k < toks.len() {
        match toks[k].1 {
            Tok::Punct(b'(') => depth += 1,
            Tok::Punct(b')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(n) if n == needle => return true,
            _ => {}
        }
        k += 1;
    }
    false
}

/// The `ignored-io-result` rule: `let _ = <io call>;` or
/// `drop(<io call>)` statements that discard a `gauss_storage` I/O
/// `Result` without consuming it.
fn ignored_io_rule(
    file: &SourceFile,
    blanked: &Blanked,
    toks: &[(usize, Tok<'_>)],
    facts: &mut FileFacts,
) {
    let mut j = 0;
    while j + 2 < toks.len() {
        let discard_end = match (toks[j].1, toks[j + 1].1, toks[j + 2].1) {
            (Tok::Ident("let"), Tok::Ident("_"), Tok::Punct(b'=')) => Some(j + 3),
            (Tok::Ident("drop"), Tok::Punct(b'('), _)
                if j == 0 || toks[j - 1].1 != Tok::Punct(b'.') =>
            {
                Some(j + 2)
            }
            _ => None,
        };
        let Some(start) = discard_end else {
            j += 1;
            continue;
        };
        // Scan the discarded expression to the statement end.
        let mut depth = 0i32;
        let mut k = start;
        let mut io_call: Option<&str> = None;
        let mut handled = false;
        while k < toks.len() {
            match toks[k].1 {
                Tok::Punct(b'(' | b'[' | b'{') => depth += 1,
                Tok::Punct(b')' | b']' | b'}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                Tok::Punct(b';') if depth <= 0 => break,
                Tok::Punct(b'?') => handled = true,
                Tok::Ident(name) => {
                    if HANDLED_MARKS.contains(&name) {
                        handled = true;
                    }
                    if io_call.is_none()
                        && IO_NAMES.contains(&name)
                        && k > 0
                        && toks[k - 1].1 == Tok::Punct(b'.')
                        && toks.get(k + 1).map(|&(_, t)| t) == Some(Tok::Punct(b'('))
                    {
                        io_call = Some(name);
                    }
                }
                _ => {}
            }
            k += 1;
        }
        if let (Some(io), false) = (io_call, handled) {
            let pos = toks[j].0;
            let line = blanked.line_of(pos);
            if !blanked.is_allowed(IGNORED_IO_RESULT, line) {
                facts.local.push(Finding {
                    rel_path: file.rel_path.clone(),
                    line,
                    rule: IGNORED_IO_RESULT,
                    message: format!(
                        "Result of I/O call `.{io}(…)` is discarded: a failed write or \
                         sync would go unnoticed — handle the error or `?` it up"
                    ),
                    chain: Vec::new(),
                });
            }
        }
        j = k.max(j + 1);
    }
}

/// An index into the flattened workspace function table.
type FnRef = usize;

/// A chain sink's acquisition: `(lock name, file, line, rank)`.
type SinkAcq = (String, String, usize, u8);

/// Builds the workspace call graph from per-file facts and reports every
/// call site where the callee can transitively acquire a rank ≤ one
/// already held, with the full call chain.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn global_findings(files: &[FileFacts]) -> Vec<Finding> {
    // Flattened function table.
    let mut table: Vec<(usize, usize)> = Vec::new(); // (file idx, fn idx)
    let mut by_name: HashMap<&str, Vec<FnRef>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            by_name
                .entry(f.name.as_str())
                .or_default()
                .push(table.len());
            table.push((fi, gi));
        }
    }
    let fn_of = |r: FnRef| -> &FnFacts {
        let (fi, gi) = table[r];
        &files[fi].fns[gi]
    };
    let resolve = |caller: FnRef, call: &CallSite| -> Vec<FnRef> {
        let Some(cands) = by_name.get(call.name.as_str()) else {
            return Vec::new();
        };
        if !call.qual.is_empty() {
            let want = if call.qual == "Self" {
                fn_of(caller).impl_type.clone()
            } else {
                call.qual.clone()
            };
            return cands
                .iter()
                .copied()
                .filter(|&r| fn_of(r).impl_type == want)
                .collect();
        }
        if cands.len() > 6 {
            // Too ambiguous to say anything useful.
            return Vec::new();
        }
        cands.clone()
    };

    // Edges (skipping calls on guards: those target the locked data).
    let mut edges: Vec<Vec<FnRef>> = vec![Vec::new(); table.len()];
    for (r, &(fi, gi)) in table.iter().enumerate() {
        for call in &files[fi].fns[gi].calls {
            if call.on_guard {
                continue;
            }
            edges[r].extend(resolve(r, call));
        }
        edges[r].sort_unstable();
        edges[r].dedup();
    }

    // Minimum transitively-acquired rank per function, with a witness to
    // reconstruct the chain: either a direct acquisition or the callee
    // through which the minimum flows.
    #[derive(Clone, Copy)]
    enum Wit {
        None,
        Direct(usize),
        Via(FnRef),
    }
    let mut min_rank: Vec<u8> = table
        .iter()
        .map(|&(fi, gi)| {
            files[fi].fns[gi]
                .acquires
                .iter()
                .map(|a| a.rank)
                .min()
                .unwrap_or(NO_RANK)
        })
        .collect();
    let mut witness: Vec<Wit> = table
        .iter()
        .map(|&(fi, gi)| {
            files[fi].fns[gi]
                .acquires
                .iter()
                .enumerate()
                .min_by_key(|(_, a)| a.rank)
                .map_or(Wit::None, |(idx, _)| Wit::Direct(idx))
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for r in 0..table.len() {
            for &c in &edges[r] {
                if min_rank[c] < min_rank[r] {
                    min_rank[r] = min_rank[c];
                    witness[r] = Wit::Via(c);
                    changed = true;
                }
            }
        }
    }

    // Renders `start -> … -> sink`, returning the chain and the sink's
    // acquisition for the message.
    let chain_of = |start: FnRef| -> (Vec<String>, Option<SinkAcq>) {
        let mut names = Vec::new();
        let mut cur = start;
        for _ in 0..12 {
            names.push(fn_of(cur).display());
            match witness[cur] {
                Wit::Direct(idx) => {
                    let (fi, _) = table[cur];
                    let acq = &fn_of(cur).acquires[idx];
                    return (
                        names,
                        Some((
                            acq.lock.clone(),
                            files[fi].rel_path.clone(),
                            acq.line,
                            acq.rank,
                        )),
                    );
                }
                Wit::Via(c) => cur = c,
                Wit::None => break,
            }
        }
        (names, None)
    };

    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (r, &(fi, gi)) in table.iter().enumerate() {
        let caller = &files[fi].fns[gi];
        for call in &caller.calls {
            if call.on_guard || call.held.is_empty() {
                continue;
            }
            let best = resolve(r, call)
                .into_iter()
                .filter(|&c| min_rank[c] != NO_RANK)
                .min_by_key(|&c| min_rank[c]);
            let Some(best) = best else { continue };
            let callee_min = min_rank[best];
            let (chain_tail, acq) = chain_of(best);
            let Some((lock, acq_file, acq_line, acq_rank)) = acq else {
                continue;
            };
            let mut chain = vec![caller.display()];
            chain.extend(chain_tail);
            let rendered = chain.join(" -> ");
            let sink = chain.last().cloned().unwrap_or_default();
            for h in &call.held {
                let (rule, message) = if callee_min < h.rank {
                    (
                        STATIC_LOCK_ORDER,
                        format!(
                            "holding `{}` ({}, line {}), this call can reach \
                             `{sink}` which acquires `{lock}` ({}) at {acq_file}:{acq_line} — \
                             rank order violated on path {rendered}",
                            h.lock,
                            rank_label(h.rank),
                            h.line,
                            rank_label(acq_rank),
                        ),
                    )
                } else if callee_min == h.rank {
                    (
                        GUARD_ACROSS_CALL,
                        format!(
                            "guard `{}` ({}, line {}) is live across a call that can \
                             re-acquire the same rank (`{lock}` at {acq_file}:{acq_line} \
                             via {rendered}): drop the guard first",
                            h.lock,
                            rank_label(h.rank),
                            h.line,
                        ),
                    )
                } else {
                    continue;
                };
                if files[fi].is_allowed(rule, call.line) {
                    continue;
                }
                let key = (files[fi].rel_path.clone(), call.line, rule, message.clone());
                if seen.insert(key) {
                    out.push(Finding {
                        rel_path: files[fi].rel_path.clone(),
                        line: call.line,
                        rule,
                        message,
                        chain: chain.clone(),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::classify;

    fn facts_for(rel: &str, src: &str) -> FileFacts {
        let (kind, crate_name) = classify(rel);
        let file = SourceFile {
            rel_path: rel.to_string(),
            abs_path: std::path::PathBuf::from(rel),
            kind,
            crate_name,
        };
        file_facts(&file, src)
    }

    fn lint_all(specs: &[(&str, &str)]) -> Vec<Finding> {
        let mut files: Vec<FileFacts> = specs.iter().map(|(r, s)| facts_for(r, s)).collect();
        let mut out: Vec<Finding> = files
            .iter_mut()
            .flat_map(|f| f.local.split_off(0))
            .collect();
        out.extend(global_findings(&files));
        out
    }

    const POOL: &str = "\
use gauss_storage::sync::{LockRank, TrackedMutex};\n\
pub struct Pool { store: TrackedMutex<u32>, shard: TrackedMutex<u32> }\n\
impl Pool {\n\
    pub fn fresh() -> Self {\n\
        Self {\n\
            store: TrackedMutex::new(0, LockRank::Store, 0, \"t-store\"),\n\
            shard: TrackedMutex::new(0, LockRank::Shard, 0, \"t-shard\"),\n\
        }\n\
    }\n";

    #[test]
    fn direct_inversion_flagged_ascending_ok() {
        let bad = format!(
            "{POOL}    pub fn inverted(&self) {{\n        let s = self.shard.lock();\n        let t = self.store.lock();\n        let _ = (s, t);\n    }}\n}}\n"
        );
        let f = facts_for("crates/storage/src/x.rs", &bad);
        let slo: Vec<_> = f
            .local
            .iter()
            .filter(|f| f.rule == STATIC_LOCK_ORDER)
            .collect();
        assert_eq!(slo.len(), 1, "{:?}", f.local);
        assert_eq!(slo[0].line, 12);

        let good = format!(
            "{POOL}    pub fn ascending(&self) {{\n        let t = self.store.lock();\n        let s = self.shard.lock();\n        let _ = (s, t);\n    }}\n}}\n"
        );
        let f = facts_for("crates/storage/src/x.rs", &good);
        assert!(f.local.iter().all(|f| f.rule != STATIC_LOCK_ORDER));
    }

    #[test]
    fn drop_and_scope_end_release_guards() {
        let src = format!(
            "{POOL}    pub fn scoped(&self) {{\n        {{ let s = self.shard.lock(); let _ = s; }}\n        let t = self.store.lock();\n        let _ = t;\n    }}\n    pub fn dropped(&self) {{\n        let s = self.shard.lock();\n        drop(s);\n        let t = self.store.lock();\n        let _ = t;\n    }}\n}}\n"
        );
        let f = facts_for("crates/storage/src/x.rs", &src);
        assert!(
            f.local.iter().all(|f| f.rule != STATIC_LOCK_ORDER),
            "{:?}",
            f.local
        );
    }

    #[test]
    fn chained_inversion_reported_with_call_chain() {
        let src = format!(
            "{POOL}    pub fn entry(&self) {{\n        let s = self.shard.lock();\n        self.middle();\n        let _ = s;\n    }}\n    fn middle(&self) {{ self.bottom(); }}\n    fn bottom(&self) {{ let t = self.store.lock(); let _ = t; }}\n}}\n"
        );
        let all = lint_all(&[("crates/storage/src/x.rs", &src)]);
        let slo: Vec<_> = all.iter().filter(|f| f.rule == STATIC_LOCK_ORDER).collect();
        assert_eq!(slo.len(), 1, "{all:?}");
        assert_eq!(slo[0].line, 12, "finding anchors at the call site");
        assert!(
            slo[0]
                .message
                .contains("Pool::entry -> Pool::middle -> Pool::bottom"),
            "full chain rendered: {}",
            slo[0].message
        );
    }

    #[test]
    fn equal_rank_across_call_is_guard_across_call() {
        let src = format!(
            "{POOL}    pub fn twice(&self) {{\n        let s = self.store.lock();\n        self.total();\n        let _ = s;\n    }}\n    fn total(&self) {{ let t = self.store.lock(); let _ = t; }}\n}}\n"
        );
        let all = lint_all(&[("crates/storage/src/x.rs", &src)]);
        let gac: Vec<_> = all.iter().filter(|f| f.rule == GUARD_ACROSS_CALL).collect();
        assert_eq!(gac.len(), 1, "{all:?}");
        assert!(gac[0].message.contains("re-acquire the same rank"));
    }

    #[test]
    fn guard_receiver_calls_are_not_edges() {
        // `store.write_pages(...)` on a guard targets the locked data, not
        // the pool — even though a same-named pool method acquires locks.
        let src = format!(
            "{POOL}    pub fn write_pages(&self) {{\n        let store = self.store.lock();\n        store.write_pages();\n        let _ = store;\n    }}\n}}\n"
        );
        let all = lint_all(&[("crates/storage/src/x.rs", &src)]);
        assert!(
            all.iter()
                .all(|f| f.rule != GUARD_ACROSS_CALL && f.rule != STATIC_LOCK_ORDER),
            "{all:?}"
        );
    }

    #[test]
    fn lock_temporary_method_chain_not_flagged() {
        let src = format!(
            "{POOL}    pub fn num(&self) -> u32 {{ self.store.lock().value() }}\n    pub fn value(&self) -> u32 {{ *self.store.lock() }}\n}}\n"
        );
        let all = lint_all(&[("crates/storage/src/x.rs", &src)]);
        assert!(all.iter().all(|f| f.rule != GUARD_ACROSS_CALL), "{all:?}");
    }

    #[test]
    fn guard_across_io_on_query_path() {
        let src = "\
use gauss_storage::sync::{LockRank, TrackedMutex};\n\
pub fn scan(pool: &P) -> u32 {\n\
    let cache = TrackedMutex::new(0u32, LockRank::ResultSlot, 0, \"q\");\n\
    let slot = cache.lock();\n\
    let v = pool.read_page(7);\n\
    *slot + v\n\
}\n";
        let f = facts_for("crates/core/src/query.rs", src);
        let gac: Vec<_> = f
            .local
            .iter()
            .filter(|f| f.rule == GUARD_ACROSS_CALL)
            .collect();
        assert_eq!(gac.len(), 1, "{:?}", f.local);
        assert_eq!(gac[0].line, 5);
        // Same code outside the query path is not flagged locally.
        let f = facts_for("crates/core/src/node.rs", src);
        assert!(f.local.iter().all(|f| f.rule != GUARD_ACROSS_CALL));
    }

    #[test]
    fn durability_meta_write_needs_sync() {
        let bad = "\
impl T {\n    pub fn flush(&mut self) {\n        self.pool.write(slot, &page);\n        self.pool.sync(d);\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", bad);
        let d: Vec<_> = f
            .local
            .iter()
            .filter(|f| f.rule == DURABILITY_PROTOCOL)
            .collect();
        assert_eq!(d.len(), 1, "{:?}", f.local);
        assert_eq!(d[0].line, 3);

        let good = "\
impl T {\n    pub fn flush(&mut self) {\n        self.pool.sync(d);\n        self.pool.write(slot, &page);\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", good);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));

        // Outside tree.rs/bulk.rs the rule does not apply.
        let f = facts_for("crates/core/src/node.rs", bad);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));
    }

    #[test]
    fn durability_manifest_write_needs_component_sync() {
        let bad = "\
impl T {\n    fn commit_manifest(&mut self) {\n        self.backend.write_manifest_slot(slot, &bytes);\n        self.backend.sync_manifest(d);\n    }\n}\n";
        let f = facts_for("crates/core/src/forest/mod.rs", bad);
        let d: Vec<_> = f
            .local
            .iter()
            .filter(|f| f.rule == DURABILITY_PROTOCOL)
            .collect();
        assert_eq!(d.len(), 1, "{:?}", f.local);
        assert_eq!(d[0].line, 3);

        let good = "\
impl T {\n    fn commit_manifest(&mut self) {\n        for c in &self.comps {\n            c.tree.pool().sync(d);\n        }\n        self.backend.write_manifest_slot(slot, &bytes);\n        self.backend.sync_manifest(d);\n    }\n}\n";
        let f = facts_for("crates/core/src/forest/mod.rs", good);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));

        // Backend *implementations* of the slot write are not in scope —
        // ordering is the committer's obligation, not the store's.
        let f = facts_for("crates/storage/src/forest.rs", bad);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));
    }

    #[test]
    fn durability_free_pending_protection() {
        let pop = "impl T {\n    fn alloc(&mut self) { self.free_pending.pop(); }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", pop);
        assert_eq!(
            f.local
                .iter()
                .filter(|f| f.rule == DURABILITY_PROTOCOL)
                .count(),
            1
        );

        let early = "impl T {\n    fn commit(&mut self) {\n        self.free_committed.append(&mut self.free_pending);\n        self.epoch = e;\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", early);
        assert_eq!(
            f.local
                .iter()
                .filter(|f| f.rule == DURABILITY_PROTOCOL)
                .count(),
            1,
            "append before epoch bump must report"
        );

        let ok = "impl T {\n    fn commit(&mut self) {\n        self.epoch = e;\n        self.free_committed.append(&mut self.free_pending);\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", ok);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));

        // `mem::take` is just another way of draining free_pending early.
        let take_early = "impl T {\n    fn commit(&mut self) {\n        let p = std::mem::take(&mut self.free_pending);\n        self.epoch = e;\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", take_early);
        assert_eq!(
            f.local
                .iter()
                .filter(|f| f.rule == DURABILITY_PROTOCOL)
                .count(),
            1,
            "take before epoch bump must report"
        );

        let take_ok = "impl T {\n    fn commit(&mut self) {\n        self.epoch = e;\n        let p = std::mem::take(&mut self.free_pending);\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", take_ok);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));
    }

    #[test]
    fn durability_free_aging_requires_min_pinned() {
        // Reclaiming aged pages without consulting the epoch registry
        // would hand a pinned snapshot's pages to the allocator.
        let blind = "impl T {\n    fn reap(&mut self) {\n        let p = self.free_aging.pop_front();\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", blind);
        assert_eq!(
            f.local
                .iter()
                .filter(|f| f.rule == DURABILITY_PROTOCOL)
                .count(),
            1,
            "free_aging reclaim without min_pinned must report"
        );

        let guarded = "impl T {\n    fn reap(&mut self) {\n        let min = self.registry.min_pinned();\n        if min.is_none() {\n            let p = self.free_aging.pop_front();\n        }\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", guarded);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));

        // Growing the aging list is always fine — only reclaim is gated.
        let push = "impl T {\n    fn park(&mut self) {\n        self.free_aging.push_back((e, p));\n    }\n}\n";
        let f = facts_for("crates/core/src/tree.rs", push);
        assert!(f.local.iter().all(|f| f.rule != DURABILITY_PROTOCOL));
    }

    #[test]
    fn ignored_io_result_detection() {
        let bad = "fn f(p: &P) {\n    let _ = p.sync(d);\n}\n";
        let f = facts_for("crates/core/src/x.rs", bad);
        let io: Vec<_> = f
            .local
            .iter()
            .filter(|f| f.rule == IGNORED_IO_RESULT)
            .collect();
        assert_eq!(io.len(), 1, "{:?}", f.local);
        assert_eq!(io[0].line, 2);

        // Consumed results are fine, in any scope.
        let ok = "fn f(p: &P) {\n    let _ = p.page(id).unwrap();\n    let _ = compute();\n}\n";
        assert!(facts_for("crates/core/src/x.rs", ok)
            .local
            .iter()
            .all(|f| f.rule != IGNORED_IO_RESULT));

        // Applies to tests too (relaxed set keeps io-result on).
        let f = facts_for("tests/smoke.rs", bad);
        assert_eq!(
            f.local
                .iter()
                .filter(|f| f.rule == IGNORED_IO_RESULT)
                .count(),
            1
        );

        // drop(...) form.
        let dropped = "fn f(p: &P) {\n    drop(p.write_page(id, &buf));\n}\n";
        let f = facts_for("crates/core/src/x.rs", dropped);
        assert_eq!(
            f.local
                .iter()
                .filter(|f| f.rule == IGNORED_IO_RESULT)
                .count(),
            1
        );
    }

    #[test]
    fn allows_silence_flow_rules_at_the_call_site() {
        let src = format!(
            "{POOL}    pub fn entry(&self) {{\n        let s = self.shard.lock();\n        // lint: allow(static-lock-order) -- fixture: documented escape\n        self.bottom();\n        let _ = s;\n    }}\n    fn bottom(&self) {{ let t = self.store.lock(); let _ = t; }}\n}}\n"
        );
        let all = lint_all(&[("crates/storage/src/x.rs", &src)]);
        assert!(all.iter().all(|f| f.rule != STATIC_LOCK_ORDER), "{all:?}");
    }

    #[test]
    fn test_files_are_out_of_lock_scope() {
        let src = format!(
            "{POOL}    pub fn inverted(&self) {{\n        let s = self.shard.lock();\n        let t = self.store.lock();\n        let _ = (s, t);\n    }}\n}}\n"
        );
        let f = facts_for("crates/storage/tests/lock_order.rs", &src);
        assert!(f.local.iter().all(|f| f.rule != STATIC_LOCK_ORDER));
        assert!(f.fns.is_empty(), "test fns stay out of the call graph");
    }
}
