//! Incremental fact cache.
//!
//! [`file_facts`](crate::analysis::file_facts) is deterministic in the
//! file contents, so its result can be reused between runs. Entries are
//! keyed by workspace-relative path and validated in two steps: an
//! mtime+size fast path (no read), then an FNV-1a content hash (read but
//! no re-parse). The global call-graph pass is recomputed every run from
//! the cached facts — it is cheap compared to parsing.
//!
//! The on-disk format is a line-based text file (this crate is
//! stdlib-only, so no serde): a header carrying [`LINT_VERSION`], then
//! one record block per file. Any parse hiccup, version bump, or rule
//! rename invalidates the whole cache — it is only ever an optimisation.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::UNIX_EPOCH;

use crate::analysis::{Acq, AllowFact, CallSite, FileFacts, FnFacts};
use crate::rules::{all_rules, Finding};

/// Bumped whenever rules or the fact schema change, invalidating old
/// caches wholesale.
pub const LINT_VERSION: u32 = 2;

/// Modification stamp: nanoseconds since the epoch, plus file size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// mtime in nanoseconds since `UNIX_EPOCH` (0 when unavailable).
    pub mtime_ns: u128,
    /// File size in bytes.
    pub size: u64,
}

impl Stamp {
    /// Reads the stamp for `path`; `None` when the file cannot be stat'd.
    #[must_use]
    pub fn of(path: &Path) -> Option<Self> {
        let meta = fs::metadata(path).ok()?;
        let mtime_ns = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_nanos());
        Some(Self {
            mtime_ns,
            size: meta.len(),
        })
    }
}

/// 64-bit FNV-1a — tiny, stdlib-only, good enough for change detection
/// (an adversarial collision just means a stale lint result until the
/// next `--no-cache` run).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached file entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Stat fast path.
    pub stamp: Stamp,
    /// Content hash slow path.
    pub hash: u64,
    /// The cached analysis result.
    pub facts: FileFacts,
}

/// The whole cache, in memory.
#[derive(Debug, Default)]
pub struct Cache {
    entries: HashMap<String, Entry>,
}

impl Cache {
    /// Loads a cache from `path`; any error or version mismatch yields an
    /// empty cache.
    #[must_use]
    pub fn load(path: &Path) -> Self {
        fs::read_to_string(path)
            .ok()
            .and_then(|text| parse_cache(&text))
            .unwrap_or_default()
    }

    /// Fast-path lookup: same stamp means the facts are current.
    #[must_use]
    pub fn by_stamp(&self, rel: &str, stamp: Stamp) -> Option<&FileFacts> {
        let e = self.entries.get(rel)?;
        (e.stamp == stamp && stamp.mtime_ns != 0).then_some(&e.facts)
    }

    /// Slow-path lookup by content hash (e.g. after a `touch`).
    #[must_use]
    pub fn by_hash(&self, rel: &str, hash: u64) -> Option<&FileFacts> {
        let e = self.entries.get(rel)?;
        (e.hash == hash).then_some(&e.facts)
    }

    /// Inserts or refreshes an entry.
    pub fn put(&mut self, rel: String, stamp: Stamp, hash: u64, facts: FileFacts) {
        self.entries.insert(rel, Entry { stamp, hash, facts });
    }

    /// Drops entries for files that no longer exist in the walk.
    pub fn retain_files(&mut self, live: &[String]) {
        self.entries.retain(|k, _| live.iter().any(|l| l == k));
    }

    /// Serialises and writes the cache to `path` (parent directories are
    /// created as needed).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let mut out = format!("gauss-lint-cache {LINT_VERSION}\n");
        for k in keys {
            if let Some(e) = self.entries.get(k) {
                write_entry(&mut out, k, e);
            }
        }
        fs::write(path, out)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Separator for list-valued fields (never appears in identifiers or
/// escaped messages).
const LIST_SEP: char = '\u{1f}';

fn write_entry(out: &mut String, rel: &str, e: &Entry) {
    let _ = writeln!(
        out,
        "file\t{}\t{}\t{}\t{}\t{}",
        esc(rel),
        e.stamp.mtime_ns,
        e.stamp.size,
        e.hash,
        esc(&e.facts.crate_name),
    );
    for a in &e.facts.allows {
        let _ = writeln!(
            out,
            "allow\t{}\t{}\t{}",
            a.line,
            u8::from(a.standalone),
            a.rules.join(","),
        );
    }
    for f in &e.facts.local {
        let chain = f
            .chain
            .iter()
            .map(|c| esc(c))
            .collect::<Vec<_>>()
            .join(&LIST_SEP.to_string());
        let _ = writeln!(
            out,
            "local\t{}\t{}\t{}\t{}",
            f.line,
            f.rule,
            esc(&f.message),
            chain,
        );
    }
    for f in &e.facts.fns {
        let _ = writeln!(
            out,
            "fn\t{}\t{}\t{}",
            esc(&f.name),
            esc(&f.impl_type),
            f.line
        );
        for a in &f.acquires {
            let _ = writeln!(out, "acq\t{}\t{}\t{}", a.rank, a.line, esc(&a.lock));
        }
        for c in &f.calls {
            let held = c
                .held
                .iter()
                .map(|h| format!("{}:{}:{}", h.rank, h.line, esc(&h.lock)))
                .collect::<Vec<_>>()
                .join(&LIST_SEP.to_string());
            let _ = writeln!(
                out,
                "call\t{}\t{}\t{}\t{}\t{}",
                esc(&c.name),
                esc(&c.qual),
                c.line,
                u8::from(c.on_guard),
                held,
            );
        }
    }
}

/// Resolves a rule name back to its `&'static str` constant; unknown
/// names (renamed rules) poison the cache.
fn static_rule(name: &str) -> Option<&'static str> {
    all_rules().iter().map(|&(n, _)| n).find(|&n| n == name)
}

fn parse_cache(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let version = header.strip_prefix("gauss-lint-cache ")?;
    if version.parse::<u32>().ok()? != LINT_VERSION {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(String, Entry)> = None;
    for line in lines {
        let mut parts = line.split('\t');
        let tag = parts.next()?;
        match tag {
            "file" => {
                if let Some((rel, e)) = cur.take() {
                    cache.entries.insert(rel, e);
                }
                let rel = unesc(parts.next()?);
                let mtime_ns = parts.next()?.parse().ok()?;
                let size = parts.next()?.parse().ok()?;
                let hash = parts.next()?.parse().ok()?;
                let crate_name = unesc(parts.next()?);
                let facts = FileFacts {
                    rel_path: rel.clone(),
                    crate_name,
                    ..FileFacts::default()
                };
                cur = Some((
                    rel,
                    Entry {
                        stamp: Stamp { mtime_ns, size },
                        hash,
                        facts,
                    },
                ));
            }
            "allow" => {
                let (_, e) = cur.as_mut()?;
                e.facts.allows.push(AllowFact {
                    line: parts.next()?.parse().ok()?,
                    standalone: parts.next()? == "1",
                    rules: parts
                        .next()?
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect(),
                });
            }
            "local" => {
                let (rel, e) = cur.as_mut()?;
                let line_no = parts.next()?.parse().ok()?;
                let rule = static_rule(parts.next()?)?;
                let message = unesc(parts.next()?);
                let chain = parts
                    .next()?
                    .split(LIST_SEP)
                    .filter(|s| !s.is_empty())
                    .map(unesc)
                    .collect();
                e.facts.local.push(Finding {
                    rel_path: rel.clone(),
                    line: line_no,
                    rule,
                    message,
                    chain,
                });
            }
            "fn" => {
                let (_, e) = cur.as_mut()?;
                e.facts.fns.push(FnFacts {
                    name: unesc(parts.next()?),
                    impl_type: unesc(parts.next()?),
                    line: parts.next()?.parse().ok()?,
                    acquires: Vec::new(),
                    calls: Vec::new(),
                });
            }
            "acq" => {
                let (_, e) = cur.as_mut()?;
                let f = e.facts.fns.last_mut()?;
                f.acquires.push(Acq {
                    rank: parts.next()?.parse().ok()?,
                    line: parts.next()?.parse().ok()?,
                    lock: unesc(parts.next()?),
                });
            }
            "call" => {
                let (_, e) = cur.as_mut()?;
                let f = e.facts.fns.last_mut()?;
                let name = unesc(parts.next()?);
                let qual = unesc(parts.next()?);
                let line_no = parts.next()?.parse().ok()?;
                let on_guard = parts.next()? == "1";
                let mut held = Vec::new();
                for h in parts.next()?.split(LIST_SEP).filter(|s| !s.is_empty()) {
                    let mut hp = h.splitn(3, ':');
                    held.push(Acq {
                        rank: hp.next()?.parse().ok()?,
                        line: hp.next()?.parse().ok()?,
                        lock: unesc(hp.next()?),
                    });
                }
                f.calls.push(CallSite {
                    name,
                    qual,
                    line: line_no,
                    on_guard,
                    held,
                });
            }
            "" => {}
            _ => return None,
        }
    }
    if let Some((rel, e)) = cur.take() {
        cache.entries.insert(rel, e);
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::STATIC_LOCK_ORDER;

    fn sample_facts() -> FileFacts {
        FileFacts {
            rel_path: "crates/x/src/a.rs".to_string(),
            crate_name: "x".to_string(),
            fns: vec![FnFacts {
                name: "f".to_string(),
                impl_type: "T".to_string(),
                line: 3,
                acquires: vec![Acq {
                    rank: 1,
                    line: 4,
                    lock: "shards".to_string(),
                }],
                calls: vec![CallSite {
                    name: "g".to_string(),
                    qual: "Self".to_string(),
                    line: 5,
                    on_guard: false,
                    held: vec![Acq {
                        rank: 1,
                        line: 4,
                        lock: "shards".to_string(),
                    }],
                }],
            }],
            allows: vec![AllowFact {
                rules: vec!["no-panic".to_string()],
                line: 9,
                standalone: true,
            }],
            local: vec![Finding {
                rel_path: "crates/x/src/a.rs".to_string(),
                line: 7,
                rule: STATIC_LOCK_ORDER,
                message: "msg with\ttab and\nnewline".to_string(),
                chain: vec!["T::f".to_string(), "T::g".to_string()],
            }],
        }
    }

    #[test]
    fn roundtrip_preserves_facts() {
        let dir = std::env::temp_dir().join("gauss-lint-cache-test");
        let path = dir.join("cache.txt");
        let mut cache = Cache::default();
        let stamp = Stamp {
            mtime_ns: 123_456,
            size: 42,
        };
        cache.put("crates/x/src/a.rs".to_string(), stamp, 99, sample_facts());
        cache.save(&path).expect("save");
        let loaded = Cache::load(&path);
        let facts = loaded
            .by_stamp("crates/x/src/a.rs", stamp)
            .expect("stamp hit");
        assert_eq!(*facts, sample_facts());
        assert!(loaded.by_hash("crates/x/src/a.rs", 99).is_some());
        assert!(loaded.by_hash("crates/x/src/a.rs", 98).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_and_garbage_yield_empty() {
        let dir = std::env::temp_dir().join("gauss-lint-cache-test2");
        let path = dir.join("cache.txt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(&path, "gauss-lint-cache 1\nfile\tx\t0\t0\t0\tc\n").expect("write");
        assert!(Cache::load(&path).by_hash("x", 0).is_none());
        std::fs::write(&path, "not a cache at all").expect("write");
        assert!(Cache::load(&path).by_hash("x", 0).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv_distinguishes_contents() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"same"), fnv1a(b"same"));
    }
}
