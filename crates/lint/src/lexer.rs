//! A comment/string/raw-string-aware scanner for Rust source.
//!
//! `gauss_lint` has no registry access, so it cannot use `syn`; instead it
//! runs this hand-rolled lexer that understands exactly enough Rust lexical
//! structure to be trustworthy for the project rules:
//!
//! * line comments (`//`, and the `///` / `//!` doc forms),
//! * nested block comments (`/* /* */ */`, and `/**` / `/*!` doc forms),
//! * string literals with escapes, byte strings, raw (byte) strings with
//!   any number of `#` hashes,
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * `// lint: allow(<rule>) -- <reason>` escape-hatch comments.
//!
//! The output is a [`Blanked`] view: a byte-for-byte copy of the source in
//! which every comment and literal body has been replaced by spaces
//! (newlines preserved), so offsets and line numbers in the blanked text
//! match the original exactly and downstream rules can match identifiers
//! and operators without false positives from prose or string contents.

/// One `lint: allow(...)` escape-hatch annotation parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule names this annotation silences.
    pub rules: Vec<String>,
    /// The justification after `--` (empty when missing — itself a lint
    /// finding).
    pub reason: String,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Whether the comment shares its line with code (then it applies to
    /// that line) or stands alone (then it applies to the next line too).
    pub standalone: bool,
}

/// Lexed view of one source file. See the [module docs](self).
#[derive(Debug)]
pub struct Blanked {
    /// The source with comment and literal bodies blanked to spaces.
    pub code: String,
    /// Byte offset of the start of each 1-based line (index 0 unused).
    line_starts: Vec<usize>,
    /// Lines (1-based) that carry an outer or inner doc comment.
    pub doc_lines: Vec<bool>,
    /// Lines (1-based) on which non-comment, non-literal code appears.
    pub code_lines: Vec<bool>,
    /// Parsed `lint: allow` annotations.
    pub allows: Vec<Allow>,
    /// Comments that contain `lint:` but do not parse as a valid allow —
    /// reported instead of silently ignored. `(line, text)`.
    pub malformed_allows: Vec<(usize, String)>,
}

impl Blanked {
    /// 1-based line number of byte offset `pos`.
    #[must_use]
    pub fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(idx) => idx.max(1),
            Err(idx) => idx - 1,
        }
    }

    /// Whether `rule` is allowed (escape-hatched) on 1-based line `line`.
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rules.iter().any(|r| r == rule)
                && (a.line == line || (a.standalone && a.line + 1 == line))
        })
    }

    /// Number of lines in the file.
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.line_starts.len().saturating_sub(1)
    }
}

/// Parses the inside of a comment for a `lint: allow(...)` annotation.
///
/// Returns `Ok(Some((rules, reason)))` on a well-formed annotation,
/// `Ok(None)` when the comment mentions no `lint:` marker, and `Err` with a
/// description when the marker is present but malformed (missing rule list,
/// missing `-- <reason>` justification).
fn parse_allow(comment: &str) -> Result<Option<(Vec<String>, String)>, String> {
    let Some(marker) = comment.find("lint:") else {
        return Ok(None);
    };
    let rest = comment[marker + "lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err(format!("`lint:` marker without `allow(...)`: {comment:?}"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("`lint: allow` missing `(rule, ...)` list".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("`lint: allow(` missing closing `)`".to_string());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("`lint: allow()` lists no rules".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err("`lint: allow(...)` missing `-- <reason>` justification".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("`lint: allow(...) --` with an empty reason".to_string());
    }
    Ok(Some((rules, reason.to_string())))
}

/// Scanner state for [`blank`].
enum State {
    Code,
    LineComment {
        start: usize,
        doc: bool,
    },
    BlockComment {
        start: usize,
        depth: usize,
        doc: bool,
    },
    Str {
        raw_hashes: Option<usize>,
    },
    Char,
}

/// Lexes `src` into a [`Blanked`] view. Never fails: unterminated literals
/// or comments simply blank to the end of the file (the real compiler will
/// reject such a file anyway).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn blank(src: &str) -> Blanked {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut line_starts = vec![0usize, 0usize]; // index 0 unused; line 1 at 0
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let n = bytes.len();
    let mut i = 0;
    let mut state = State::Code;

    // Emit a blanked byte: newlines survive, everything else in a
    // comment/literal becomes a space.
    fn push_blank(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    // A line comment's text ends at the newline; block comment text is the
    // span between the delimiters. Both land here for allow parsing. Doc
    // comments are prose — they may legitimately describe the annotation
    // grammar — so only plain comments can carry annotations.
    let mut finish_comment =
        |src: &str, start: usize, end: usize, doc: bool, out: &[u8], line_starts: &[usize]| {
            if doc {
                return;
            }
            let text = &src[start..end];
            let line = line_starts.len() - 1;
            // Standalone = no code bytes before the comment on the line it
            // *starts* on (a block comment may finish lines later, so the
            // current line's start can lie beyond `start`).
            let line_begin = line_starts
                .iter()
                .skip(1)
                .rev()
                .find(|&&ls| ls <= start)
                .copied()
                .unwrap_or(0);
            let standalone = out[line_begin..start.min(out.len())]
                .iter()
                .all(|&b| b.is_ascii_whitespace());
            match parse_allow(text) {
                Ok(Some((rules, reason))) => allows.push(Allow {
                    rules,
                    reason,
                    line,
                    standalone,
                }),
                Ok(None) => {}
                Err(msg) => malformed.push((line, msg)),
            }
        };

    while i < n {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
                    let doc = matches!(bytes.get(i + 2), Some(b'!'))
                        || (matches!(bytes.get(i + 2), Some(b'/'))
                            && !matches!(bytes.get(i + 3), Some(b'/')));
                    state = State::LineComment { start: i, doc };
                    push_blank(&mut out, b);
                    i += 1;
                } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                    let doc = matches!(bytes.get(i + 2), Some(b'!'))
                        || (matches!(bytes.get(i + 2), Some(b'*'))
                            && !matches!(bytes.get(i + 3), Some(b'*' | b'/')));
                    state = State::BlockComment {
                        start: i,
                        depth: 1,
                        doc,
                    };
                    push_blank(&mut out, b);
                    push_blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if b == b'"' {
                    // Keep the quote so blanked code still shows a literal
                    // boundary token.
                    out.push(b);
                    state = State::Str { raw_hashes: None };
                    i += 1;
                } else if (b == b'r' || b == b'b') && is_raw_string_start(bytes, i) {
                    let (hashes, consumed) = raw_string_open(bytes, i);
                    // Placeholder boundary quotes keep offsets aligned.
                    out.resize(out.len() + consumed, b'"');
                    i += consumed;
                    state = State::Str {
                        raw_hashes: Some(hashes),
                    };
                } else if b == b'b' && matches!(bytes.get(i + 1), Some(b'"')) {
                    out.push(b'"');
                    out.push(b'"');
                    i += 2;
                    state = State::Str { raw_hashes: None };
                } else if b == b'\'' {
                    // Char literal or lifetime? `'\...` and `'x'` are
                    // literals; `'ident` (no close quote right after one
                    // char) is a lifetime/label.
                    if matches!(bytes.get(i + 1), Some(b'\\')) || char_closes_quote(src, i) {
                        out.push(b'\'');
                        state = State::Char;
                    } else {
                        out.push(b); // lifetime: keep the tick as code
                    }
                    i += 1;
                } else if is_ident_byte(b) {
                    // Copy a whole identifier (so a `r`/`b` inside one is
                    // never mistaken for a raw-string prefix).
                    while i < n && is_ident_byte(bytes[i]) {
                        out.push(bytes[i]);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    if b == b'\n' {
                        line_starts.push(i + 1);
                    }
                    i += 1;
                }
            }
            State::LineComment { start, doc } => {
                if b == b'\n' {
                    finish_comment(src, start, i, doc, &out, &line_starts);
                    out.push(b'\n');
                    line_starts.push(i + 1);
                    state = State::Code;
                } else {
                    push_blank(&mut out, b);
                }
                i += 1;
            }
            State::BlockComment { start, depth, doc } => {
                if b == b'/' && matches!(bytes.get(i + 1), Some(b'*')) {
                    state = State::BlockComment {
                        start,
                        depth: depth + 1,
                        doc,
                    };
                    push_blank(&mut out, b);
                    push_blank(&mut out, bytes[i + 1]);
                    i += 2;
                } else if b == b'*' && matches!(bytes.get(i + 1), Some(b'/')) {
                    push_blank(&mut out, b);
                    push_blank(&mut out, bytes[i + 1]);
                    if depth == 1 {
                        finish_comment(src, start, i, doc, &out, &line_starts);
                        state = State::Code;
                    } else {
                        state = State::BlockComment {
                            start,
                            depth: depth - 1,
                            doc,
                        };
                    }
                    i += 2;
                } else {
                    push_blank(&mut out, b);
                    if b == b'\n' {
                        line_starts.push(i + 1);
                    }
                    i += 1;
                }
            }
            State::Str { raw_hashes: None } => {
                if b == b'\\' && i + 1 < n {
                    push_blank(&mut out, b);
                    push_blank(&mut out, bytes[i + 1]);
                    if bytes[i + 1] == b'\n' {
                        line_starts.push(i + 2);
                    }
                    i += 2;
                } else if b == b'"' {
                    out.push(b);
                    state = State::Code;
                    i += 1;
                } else {
                    push_blank(&mut out, b);
                    if b == b'\n' {
                        line_starts.push(i + 1);
                    }
                    i += 1;
                }
            }
            State::Str {
                raw_hashes: Some(hashes),
            } => {
                if b == b'"' && closes_raw_string(bytes, i, hashes) {
                    out.push(b'"');
                    out.resize(out.len() + hashes, b' ');
                    i += 1 + hashes;
                    state = State::Code;
                } else {
                    push_blank(&mut out, b);
                    if b == b'\n' {
                        line_starts.push(i + 1);
                    }
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' && i + 1 < n {
                    push_blank(&mut out, b);
                    push_blank(&mut out, bytes[i + 1]);
                    if bytes[i + 1] == b'\n' {
                        line_starts.push(i + 2);
                    }
                    i += 2;
                } else if b == b'\'' {
                    out.push(b);
                    state = State::Code;
                    i += 1;
                } else {
                    push_blank(&mut out, b);
                    if b == b'\n' {
                        line_starts.push(i + 1);
                    }
                    i += 1;
                }
            }
        }
    }
    // An unterminated line comment at EOF still carries its annotation.
    if let State::LineComment { start, doc } | State::BlockComment { start, doc, .. } = state {
        finish_comment(src, start, n, doc, &out, &line_starts);
    }

    let code = match String::from_utf8(out) {
        Ok(code) => code,
        // Multi-byte characters only ever appear inside comments/strings in
        // this codebase; if one slips into blanked output, degrade lossily
        // rather than abort the lint run.
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    };

    let line_count = line_starts.len() - 1;
    let mut doc_lines = vec![false; line_count + 2];
    let mut code_lines = vec![false; line_count + 2];
    compute_line_kinds(src, &code, &line_starts, &mut doc_lines, &mut code_lines);

    Blanked {
        code,
        line_starts,
        doc_lines,
        code_lines,
        allows,
        malformed_allows: malformed,
    }
}

/// Marks, for every line, whether it starts a doc comment and whether it
/// holds any real code (non-blank bytes in the blanked view).
fn compute_line_kinds(
    src: &str,
    code: &str,
    line_starts: &[usize],
    doc_lines: &mut [bool],
    code_lines: &mut [bool],
) {
    let n = src.len();
    for line in 1..line_starts.len() {
        let begin = line_starts[line];
        let end = if line + 1 < line_starts.len() {
            line_starts[line + 1]
        } else {
            n
        };
        let raw = &src[begin..end.min(n)];
        let trimmed = raw.trim_start();
        if trimmed.starts_with("///") && !trimmed.starts_with("////") {
            doc_lines[line] = true;
        }
        if trimmed.starts_with("//!")
            || trimmed.starts_with("/*!")
            || (trimmed.starts_with("/**") && !trimmed.starts_with("/**/"))
        {
            doc_lines[line] = true;
        }
        let blanked_line = &code[begin.min(code.len())..end.min(code.len())];
        if blanked_line.bytes().any(|b| !b.is_ascii_whitespace()) {
            code_lines[line] = true;
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `bytes[i..]` start a raw-string literal (`r"`, `r#`, `br"`, `br#`)?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Length of the raw-string opener at `i` and its hash count.
fn raw_string_open(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, j - i)
}

/// Does the `"` at `i` close a raw string with `hashes` trailing hashes?
fn closes_raw_string(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// For a `'` at byte `i` (not followed by a backslash): does a closing `'`
/// appear right after exactly one character? Handles multi-byte chars.
fn char_closes_quote(src: &str, i: usize) -> bool {
    let rest = &src[i + 1..];
    let mut chars = rest.chars();
    match chars.next() {
        // `''` is not a char literal, and `'a` with no close is a lifetime.
        Some(c) if c != '\'' => chars.next() == Some('\''),
        _ => false,
    }
}

/// Byte ranges of `#[cfg(test)]`-gated items (test modules and functions):
/// code in these regions is exempt from the library-code rules.
///
/// Recognises any `#[cfg(...)]` attribute whose argument list mentions the
/// word `test` (covers `cfg(test)` and `cfg(all(test, ...))`), then spans
/// the attribute through the end of the item it gates — the matching `}`
/// of the first brace after the attribute, or the first `;` for semicolon
/// items.
#[must_use]
pub fn test_regions(blanked: &str) -> Vec<(usize, usize)> {
    let bytes = blanked.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(found) = blanked[i..].find("#[cfg") {
        let attr_start = i + found;
        // `#[cfg_attr(test, ...)]` gates an *attribute*, not compilation —
        // the item itself still builds outside tests, so it must not be
        // exempted. Only a bare `#[cfg(...)]` counts.
        if bytes
            .get(attr_start + "#[cfg".len())
            .is_some_and(|&b| is_ident_byte(b))
        {
            i = attr_start + "#[cfg".len();
            continue;
        }
        let Some(open_rel) = blanked[attr_start..].find('(') else {
            break;
        };
        let args_start = attr_start + open_rel + 1;
        let Some(args_end) = matching_delim(bytes, args_start - 1, b'(', b')') else {
            break;
        };
        let args = &blanked[args_start..args_end];
        let gates_test = args
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .any(|w| w == "test");
        // Jump past `#[cfg(...)]`'s closing bracket.
        let Some(attr_end) = blanked[args_end..].find(']') else {
            break;
        };
        let mut cursor = args_end + attr_end + 1;
        if !gates_test {
            i = cursor;
            continue;
        }
        // Skip further attributes and whitespace, then span the item.
        loop {
            let rest = &blanked[cursor..];
            let trimmed = rest.trim_start();
            let advance = rest.len() - trimmed.len();
            cursor += advance;
            if trimmed.starts_with("#[") {
                let Some(close) = blanked[cursor..].find(']') else {
                    break;
                };
                cursor += close + 1;
                continue;
            }
            break;
        }
        let brace = blanked[cursor..].find('{');
        let semi = blanked[cursor..].find(';');
        let item_end = match (brace, semi) {
            (Some(b), s) if s.is_none_or(|s| b < s) => {
                matching_delim(bytes, cursor + b, b'{', b'}').unwrap_or(bytes.len())
            }
            (_, Some(s)) => cursor + s,
            (_, None) => bytes.len(),
        };
        regions.push((attr_start, item_end.min(bytes.len())));
        i = item_end.min(bytes.len()).max(attr_start + 1);
    }
    regions
}

/// Byte offset of the delimiter closing the `open` at `start`, scanning
/// blanked code (so delimiters in strings/comments are already gone).
fn matching_delim(bytes: &[u8], start: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (off, &b) in bytes.iter().enumerate().skip(start) {
        if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(off);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let b = blank("let x = 1; // unwrap() in prose\nlet y = 2;\n");
        assert!(!b.code.contains("unwrap"));
        assert!(b.code.contains("let x = 1;"));
        assert_eq!(b.line_of(b.code.find("let y").unwrap()), 2);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let b = blank("a /* outer /* inner */ still comment */ b\n");
        assert!(b.code.contains('a'));
        assert!(b.code.contains('b'));
        assert!(!b.code.contains("comment"));
        assert!(!b.code.contains("inner"));
    }

    #[test]
    fn strings_and_escapes_are_blanked() {
        let b = blank(r#"let s = "panic! \" unwrap()"; call();"#);
        assert!(!b.code.contains("panic"));
        assert!(!b.code.contains("unwrap"));
        assert!(b.code.contains("call();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let b = blank(r###"let s = r#"has "quotes" and unwrap()"#; after();"###);
        assert!(!b.code.contains("unwrap"));
        assert!(b.code.contains("after();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let b = blank(r###"let a = b"panic!"; let c = br#"todo!"#; tail();"###);
        assert!(!b.code.contains("panic"));
        assert!(!b.code.contains("todo"));
        assert!(b.code.contains("tail();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let b = blank("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; g(x, q, n); }\n");
        // The quote char literal must not open a string that swallows code.
        assert!(b.code.contains("g(x, q, n);"));
        assert!(b.code.contains("<'a>"), "lifetime must survive as code");
    }

    #[test]
    fn unterminated_string_blanks_to_eof_without_panic() {
        let b = blank("let s = \"never closed... unwrap()");
        assert!(!b.code.contains("unwrap"));
    }

    #[test]
    fn allow_annotations_parse() {
        let src = "\
// lint: allow(no-panic) -- invariant: scope joined every worker\n\
x.expect(\"filled\");\n\
y.expect(\"other\"); // lint: allow(no-panic, raw-mutex) -- trailing form\n";
        let b = blank(src);
        assert_eq!(b.allows.len(), 2);
        assert!(b.allows[0].standalone);
        assert_eq!(b.allows[0].rules, vec!["no-panic"]);
        assert!(b.is_allowed("no-panic", 2), "standalone covers next line");
        assert!(!b.allows[1].standalone);
        assert_eq!(b.allows[1].rules, vec!["no-panic", "raw-mutex"]);
        assert!(b.is_allowed("raw-mutex", 3));
        assert!(!b.is_allowed("raw-mutex", 2));
    }

    #[test]
    fn malformed_allows_are_reported() {
        for bad in [
            "// lint: allow(no-panic)\nx();\n",       // no reason
            "// lint: allow() -- empty list\nx();\n", // no rules
            "// lint: deny(no-panic) -- wrong verb\nx();\n",
            "// lint: allow(no-panic) -- \nx();\n", // blank reason
        ] {
            let b = blank(bad);
            assert!(b.allows.is_empty(), "{bad:?} must not parse as allow");
            assert_eq!(b.malformed_allows.len(), 1, "{bad:?} must be reported");
        }
    }

    #[test]
    fn doc_and_code_lines_are_classified() {
        let src = "/// docs\npub fn f() {}\n\n//! inner\n// plain\n";
        let b = blank(src);
        assert!(b.doc_lines[1]);
        assert!(!b.doc_lines[2]);
        assert!(b.code_lines[2]);
        assert!(!b.code_lines[3]);
        assert!(b.doc_lines[4]);
        assert!(!b.code_lines[5]);
    }

    #[test]
    fn cfg_test_mod_region_detected() {
        let src = "\
fn lib_code() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { x.unwrap(); }\n\
}\n\
fn more_lib() {}\n";
        let b = blank(src);
        let regions = test_regions(&b.code);
        assert_eq!(regions.len(), 1);
        let unwrap_pos = b.code.find("unwrap").unwrap();
        assert!(regions[0].0 < unwrap_pos && unwrap_pos < regions[0].1);
        let more = b.code.find("more_lib").unwrap();
        assert!(more > regions[0].1);
    }

    #[test]
    fn cfg_all_test_and_gated_fn_detected() {
        let src = "\
#[cfg(all(test, feature = \"x\"))]\n\
fn helper() { y.unwrap() }\n\
fn real() {}\n";
        let b = blank(src);
        let regions = test_regions(&b.code);
        assert_eq!(regions.len(), 1);
        let unwrap_pos = b.code.find("unwrap").unwrap();
        assert!(regions[0].0 < unwrap_pos && unwrap_pos < regions[0].1);
        assert!(b.code.find("real").unwrap() > regions[0].1);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"extra\")]\nfn f() { x.unwrap(); }\n";
        let b = blank(src);
        assert!(test_regions(&b.code).is_empty());
    }
}
