//! `gauss_lint`: stdlib-only static analysis for the Gauss-tree workspace.
//!
//! The build environment has no registry access, so project-specific rules
//! cannot live in clippy plugins or `syn`-based tooling; instead this crate
//! ships a hand-rolled, comment/string/raw-string-aware scanner
//! ([`lexer`]) and a small rule engine ([`rules`]) that walks every `.rs`
//! file in the workspace ([`walk`]) and enforces the conventions the
//! compiler cannot express:
//!
//! * no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test
//!   library code,
//! * no raw `std::sync::Mutex`/`Condvar` outside `gauss_storage::sync`
//!   (everything else goes through `TrackedMutex` so the lock-order
//!   detector sees it),
//! * no float `==`/`!=` against literals in `pfv` kernel code,
//! * no bare narrowing `as` casts in page-id/byte-count code,
//! * doc comments on public items in `core`/`pfv`/`storage`,
//! * `#![forbid(unsafe_code)]` on every crate root.
//!
//! Violations that are genuinely fine carry an inline escape hatch:
//!
//! ```text
//! // lint: allow(no-panic) -- the scope above joins every worker
//! ```
//!
//! The annotation silences the named rule(s) on its own line, or on the
//! next line when the comment stands alone; the `-- <reason>` is
//! mandatory and malformed annotations are themselves findings. The lint
//! is self-hosting: `cargo run -p gauss_lint` must exit 0 on this
//! workspace, and CI runs it as a gating job.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

use rules::Finding;
use walk::workspace_files;

/// Lints every workspace `.rs` file under `root`, returning all findings
/// sorted by path and line.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file.abs_path)?;
        findings.extend(rules::lint_file(&file, &src));
    }
    findings.sort_by(|a, b| (&a.rel_path, a.line).cmp(&(&b.rel_path, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance test: the lint passes on the workspace that
    /// defines it (self-hosting), and flags its own violation fixture.
    #[test]
    fn self_hosting_clean_on_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = walk::find_root(here).expect("workspace root above crates/lint");
        let findings = run(&root).expect("workspace readable");
        assert!(
            findings.is_empty(),
            "gauss_lint must be clean on its own workspace:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fixture_workspace_trips_every_rule() {
        let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws");
        let findings = run(&fixture).expect("fixture readable");
        let hit: std::collections::BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
        for (rule, _) in rules::all_rules() {
            assert!(hit.contains(rule), "fixture must trip rule {rule}: {hit:?}");
        }
        // And the allow-annotated site in the fixture stays silent.
        assert!(
            !findings
                .iter()
                .any(|f| f.rel_path.ends_with("allowed.rs") && f.rule != rules::BAD_ALLOW),
            "annotated fixture file must only report its deliberate bad-allow"
        );
    }
}
