//! `gauss_lint`: stdlib-only static analysis for the Gauss-tree workspace.
//!
//! The build environment has no registry access, so project-specific rules
//! cannot live in clippy plugins or `syn`-based tooling; instead this crate
//! ships a hand-rolled, comment/string/raw-string-aware scanner
//! ([`lexer`]), a recursive-descent item-tree parser ([`parse`]), a small
//! token-rule engine ([`rules`]), and a flow-aware analyzer ([`analysis`])
//! that builds an intra-workspace call graph and enforces the conventions
//! the compiler cannot express:
//!
//! * no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in non-test
//!   library code,
//! * no raw `std::sync::Mutex`/`Condvar` outside `gauss_storage::sync`
//!   (everything else goes through `TrackedMutex` so the lock-order
//!   detector sees it),
//! * no float `==`/`!=` against literals in `pfv` kernel code,
//! * no bare narrowing `as` casts in page-id/byte-count code,
//! * doc comments on public items in `core`/`pfv`/`storage`,
//! * `#![forbid(unsafe_code)]` on every crate root,
//! * **static-lock-order**: no call path may acquire a `LockRank` below
//!   one already held (the runtime tracker only sees interleavings tests
//!   happen to execute; this rule sees every path),
//! * **guard-across-call**: no guard live across a call that can
//!   re-acquire its rank, nor across `PageStore` I/O on the query path,
//! * **durability-protocol**: `tree.rs`/`bulk.rs` must sync data pages
//!   before the meta-slot commit and must not recycle `free_pending`
//!   pages before the epoch bump; the forest's `commit_manifest` must
//!   sync every component before the manifest-slot write,
//! * **ignored-io-result**: no `let _ =`/`drop(…)` of a storage I/O
//!   `Result`.
//!
//! Violations that are genuinely fine carry an inline escape hatch:
//!
//! ```text
//! // lint: allow(no-panic) -- the scope above joins every worker
//! ```
//!
//! The annotation silences the named rule(s) on its own line, or on the
//! next line when the comment stands alone; the `-- <reason>` is
//! mandatory and malformed annotations are themselves findings. For
//! call-graph rules the annotation goes on the *call site* the finding
//! points at. The lint is self-hosting: `cargo run -p gauss_lint` must
//! exit 0 on this workspace, and CI runs it as a gating job. Results are
//! cached per file ([`cache`]) and renderable as JSON or SARIF
//! ([`output`]).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod cache;
pub mod lexer;
pub mod output;
pub mod parse;
pub mod rules;
pub mod walk;

use std::io;
use std::path::Path;

use analysis::FileFacts;
use cache::{fnv1a, Cache, Stamp};
use rules::Finding;
use walk::workspace_files;

/// Counters from one lint run, for the `--stats` line and the warm-cache
/// acceptance test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Files considered.
    pub files: usize,
    /// Files actually re-parsed this run.
    pub parsed: usize,
    /// Files served from the incremental cache.
    pub cached: usize,
}

fn finish(mut per_file: Vec<FileFacts>) -> Vec<Finding> {
    let mut findings: Vec<Finding> = per_file
        .iter_mut()
        .flat_map(|f| std::mem::take(&mut f.local))
        .collect();
    findings.extend(analysis::global_findings(&per_file));
    findings.sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));
    findings.dedup();
    findings
}

/// Lints every workspace `.rs` file under `root`, returning all findings
/// sorted by path and line. No cache is read or written.
///
/// # Errors
/// Propagates I/O errors from the directory walk or file reads.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let mut per_file = Vec::new();
    for file in workspace_files(root)? {
        let src = std::fs::read_to_string(&file.abs_path)?;
        per_file.push(analysis::file_facts(&file, &src));
    }
    Ok(finish(per_file))
}

/// Like [`run`], but with the incremental fact cache at `cache_path`:
/// unchanged files (same mtime+size, else same content hash) reuse their
/// cached facts without re-parsing. The updated cache is written back.
///
/// # Errors
/// Propagates I/O errors from the walk or file reads (cache read/write
/// failures are non-fatal: a cache is only ever an optimisation).
pub fn run_with(root: &Path, cache_path: &Path) -> io::Result<(Vec<Finding>, RunStats)> {
    let mut cache = Cache::load(cache_path);
    let mut per_file = Vec::new();
    let mut stats = RunStats::default();
    let files = workspace_files(root)?;
    let live: Vec<String> = files.iter().map(|f| f.rel_path.clone()).collect();
    for file in &files {
        stats.files += 1;
        let stamp = Stamp::of(&file.abs_path).unwrap_or_default();
        if let Some(facts) = cache.by_stamp(&file.rel_path, stamp) {
            stats.cached += 1;
            per_file.push(facts.clone());
            continue;
        }
        let src = std::fs::read_to_string(&file.abs_path)?;
        let hash = fnv1a(src.as_bytes());
        if let Some(facts) = cache.by_hash(&file.rel_path, hash) {
            stats.cached += 1;
            let facts = facts.clone();
            cache.put(file.rel_path.clone(), stamp, hash, facts.clone());
            per_file.push(facts);
            continue;
        }
        stats.parsed += 1;
        let facts = analysis::file_facts(file, &src);
        cache.put(file.rel_path.clone(), stamp, hash, facts.clone());
        per_file.push(facts);
    }
    cache.retain_files(&live);
    let _ = cache.save(cache_path);
    Ok((finish(per_file), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole acceptance test: the lint passes on the workspace that
    /// defines it (self-hosting), and flags its own violation fixture.
    #[test]
    fn self_hosting_clean_on_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = walk::find_root(here).expect("workspace root above crates/lint");
        let findings = run(&root).expect("workspace readable");
        assert!(
            findings.is_empty(),
            "gauss_lint must be clean on its own workspace:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fixture_workspace_trips_every_rule() {
        let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws");
        let findings = run(&fixture).expect("fixture readable");
        let hit: std::collections::BTreeSet<&str> = findings.iter().map(|f| f.rule).collect();
        for (rule, _) in rules::all_rules() {
            assert!(hit.contains(rule), "fixture must trip rule {rule}: {hit:?}");
        }
        // And the allow-annotated site in the fixture stays silent.
        assert!(
            !findings
                .iter()
                .any(|f| f.rel_path.ends_with("allowed.rs") && f.rule != rules::BAD_ALLOW),
            "annotated fixture file must only report its deliberate bad-allow"
        );
    }
}
