//! CLI entry point: `cargo run -p gauss_lint [-- --root <dir>]`.
//!
//! Exits 0 when the workspace is clean, 1 when findings exist, 2 on usage
//! or I/O errors. Findings print as `path:line: [rule] message`, one per
//! line, so editors and CI logs can jump straight to the site.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: gauss_lint [--root <dir>] [--list-rules]\n\
     \n\
     Lints every .rs file in the workspace rooted at <dir> (default: the\n\
     nearest ancestor of the current directory whose Cargo.toml declares\n\
     [workspace]). Silence a finding with\n\
     `// lint: allow(<rule>) -- <reason>` on or directly above its line."
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, desc) in gauss_lint::rules::all_rules() {
                    println!("{name:16} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("gauss_lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match gauss_lint::walk::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "gauss_lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match gauss_lint::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("gauss_lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("gauss_lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("gauss_lint: {e}");
            ExitCode::from(2)
        }
    }
}
