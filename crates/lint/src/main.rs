//! CLI entry point: `cargo run -p gauss_lint [-- --root <dir>]`.
//!
//! Exits 0 when the workspace is clean, 1 when findings exist, 2 on usage
//! or I/O errors. The default `text` format prints findings as
//! `path:line: [rule] message` (plus an indented `chain:` line for
//! call-graph findings); `--format json` and `--format sarif` emit the
//! machine-readable feeds CI turns into inline annotations. Runs are
//! incremental by default via a per-file fact cache under `target/`
//! (`--no-cache` bypasses it, `--cache-path` relocates it).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() -> &'static str {
    "usage: gauss_lint [--root <dir>] [--format text|json|sarif] [--no-cache]\n\
     \x20                 [--cache-path <file>] [--list-rules]\n\
     \n\
     Lints every .rs file in the workspace rooted at <dir> (default: the\n\
     nearest ancestor of the current directory whose Cargo.toml declares\n\
     [workspace]). Results are cached per file in\n\
     <root>/target/gauss-lint-cache.txt. Silence a finding with\n\
     `// lint: allow(<rule>) -- <reason>` on or directly above its line\n\
     (for call-graph rules: on the flagged call site)."
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut use_cache = true;
    let mut cache_path: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => {
                    eprintln!("--format needs text|json|sarif\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => use_cache = false,
            "--cache-path" => match args.next() {
                Some(p) => cache_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--cache-path needs a file\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, desc) in gauss_lint::rules::all_rules() {
                    println!("{name:20} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("gauss_lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match gauss_lint::walk::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "gauss_lint: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let result = if use_cache {
        let cache = cache_path.unwrap_or_else(|| root.join("target/gauss-lint-cache.txt"));
        gauss_lint::run_with(&root, &cache).map(|(findings, stats)| {
            eprintln!(
                "gauss_lint: {} files ({} parsed, {} cached)",
                stats.files, stats.parsed, stats.cached
            );
            findings
        })
    } else {
        gauss_lint::run(&root)
    };
    match result {
        Ok(findings) => {
            match format {
                Format::Text => {
                    for f in &findings {
                        println!("{f}");
                    }
                    if findings.is_empty() {
                        println!("gauss_lint: clean ({})", root.display());
                    } else {
                        eprintln!("gauss_lint: {} finding(s)", findings.len());
                    }
                }
                Format::Json => print!("{}", gauss_lint::output::to_json(&findings)),
                Format::Sarif => print!("{}", gauss_lint::output::to_sarif(&findings)),
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gauss_lint: {e}");
            ExitCode::from(2)
        }
    }
}
