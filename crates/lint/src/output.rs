//! Machine-readable output: `--format json` and `--format sarif`.
//!
//! Both renderers are hand-rolled over the stdlib (this crate takes no
//! dependencies). JSON is the compact CI-annotation feed; SARIF follows
//! the minimal SARIF 2.1.0 shape GitHub code scanning ingests: a single
//! run with a tool driver, one `reportingDescriptor` per rule, and one
//! `result` per finding with a physical location.

use std::fmt::Write as _;

use crate::rules::{all_rules, Finding};

/// Escapes `s` for a JSON string literal (quotes not included).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as the versioned JSON feed consumed by
/// `scripts/lint_annotations.py`.
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"chain\":[",
            json_escape(f.rule),
            json_escape(&f.rel_path),
            f.line,
            json_escape(&f.message),
        );
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(hop));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders findings as a SARIF 2.1.0 log with a single run.
#[must_use]
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"gauss-lint\",\"informationUri\":\
         \"https://example.invalid/gauss-lint\",\"rules\":[",
    );
    for (i, (name, desc)) in all_rules().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            json_escape(name),
            json_escape(desc),
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut text = f.message.clone();
        if !f.chain.is_empty() {
            let _ = write!(text, " [chain: {}]", f.chain.join(" -> "));
        }
        let _ = write!(
            out,
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\
             \"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_escape(f.rule),
            json_escape(&text),
            json_escape(&f.rel_path),
            f.line.max(1),
        );
    }
    out.push_str("]}]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::STATIC_LOCK_ORDER;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rel_path: "crates/x/src/a.rs".to_string(),
            line: 7,
            rule: STATIC_LOCK_ORDER,
            message: "tricky \"quoted\"\nmessage".to_string(),
            chain: vec!["A::f".to_string(), "A::g".to_string()],
        }]
    }

    #[test]
    fn json_escaping_and_shape() {
        let j = to_json(&sample());
        assert!(j.contains("\"version\":1"));
        assert!(j.contains("\"rule\":\"static-lock-order\""));
        assert!(j.contains("tricky \\\"quoted\\\"\\nmessage"));
        assert!(j.contains("\"chain\":[\"A::f\",\"A::g\"]"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sarif_carries_schema_rules_and_locations() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\":\"gauss-lint\""));
        assert!(s.contains("\"id\":\"no-panic\""), "all rules declared");
        assert!(s.contains("\"ruleId\":\"static-lock-order\""));
        assert!(s.contains("\"startLine\":7"));
        assert!(s.contains("[chain: A::f -> A::g]"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn empty_findings_still_valid_logs() {
        assert!(to_json(&[]).contains("\"findings\":[]"));
        assert!(to_sarif(&[]).contains("\"results\":[]"));
    }
}
