//! A recursive-descent item-tree parser over the blanked lexer view.
//!
//! [`crate::lexer::blank`] strips comments and literal bodies while
//! preserving every byte offset, which makes the remaining token stream
//! regular enough for a small recursive-descent pass: brace/paren/bracket
//! nesting is reliable (no `{` can hide in a string), so this module can
//! recover the *item tree* of a file — `mod` nesting, `impl` blocks,
//! `trait` bodies, `fn` items with their exact body spans, and flattened
//! `use` paths — without a full Rust grammar. The call-graph analysis in
//! [`crate::analysis`] is built on top of these items.
//!
//! The parser is tolerant by construction: anything it does not
//! recognise is skipped token-by-token, so macro-heavy or exotic code
//! degrades to "no items found here" rather than a wrong span.

/// One lexical token of blanked code: an identifier/number word or a
/// single punctuation byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok<'a> {
    /// Identifier, keyword, or number literal.
    Ident(&'a str),
    /// Any other non-whitespace byte.
    Punct(u8),
}

/// Tokenizes blanked code into `(byte_offset, token)` pairs.
#[must_use]
pub fn tokenize(code: &str) -> Vec<(usize, Tok<'_>)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((start, Tok::Ident(&code[start..i])));
        } else {
            if !b.is_ascii_whitespace() {
                out.push((i, Tok::Punct(b)));
            }
            i += 1;
        }
    }
    out
}

/// A function item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, or empty for free functions.
    pub impl_type: String,
    /// Inline `mod` path inside the file (outermost first).
    pub mod_path: Vec<String>,
    /// Byte offset of the `fn` keyword.
    pub pos: usize,
    /// Byte span of the `{ … }` body (inclusive braces), when present.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Display path for diagnostics: `Type::name` or plain `name`.
    #[must_use]
    pub fn display(&self) -> String {
        if self.impl_type.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.impl_type, self.name)
        }
    }
}

/// One imported leaf from a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Full path segments, outermost first (`gauss_storage`, `sync`, …).
    pub segments: Vec<String>,
    /// The name the import binds locally (alias if `as` was used).
    pub leaf: String,
}

/// The item tree of one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Every function in the file, in source order (bodies of nested
    /// functions are treated as part of their outermost item).
    pub fns: Vec<FnItem>,
    /// Flattened `use` imports.
    pub uses: Vec<UseItem>,
}

/// Keywords that can never be the name of a called function.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "in", "match", "loop", "return", "break", "continue", "fn",
    "let", "mut", "ref", "move", "as", "use", "pub", "mod", "impl", "trait", "struct", "enum",
    "union", "type", "const", "static", "where", "unsafe", "async", "await", "dyn", "self", "Self",
    "super", "crate", "extern",
];

/// Whether `name` is a Rust keyword (so not a callable identifier).
#[must_use]
pub fn is_keyword(name: &str) -> bool {
    KEYWORDS.contains(&name)
}

/// Parses the item tree of a blanked file.
#[must_use]
pub fn parse_items(code: &str) -> ItemTree {
    let toks = tokenize(code);
    let mut tree = ItemTree::default();
    let mut walker = Walker {
        code,
        bytes: code.as_bytes(),
        toks: &toks,
    };
    walker.region(0, code.len(), &mut Vec::new(), "", &mut tree);
    tree
}

struct Walker<'a> {
    code: &'a str,
    bytes: &'a [u8],
    toks: &'a [(usize, Tok<'a>)],
}

impl<'a> Walker<'a> {
    /// Index of the first token at or after byte `pos`.
    fn tok_at(&self, pos: usize) -> usize {
        self.toks.partition_point(|&(p, _)| p < pos)
    }

    /// Byte offset of the delimiter closing the `open` at byte `start`.
    fn matching(&self, start: usize, open: u8, close: u8) -> Option<usize> {
        let mut depth = 0usize;
        for (off, &b) in self.bytes.iter().enumerate().skip(start) {
            if b == open {
                depth += 1;
            } else if b == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(off);
                }
            }
        }
        None
    }

    /// Scans forward from token `i` for the first `{` or `;` at zero
    /// paren/bracket depth, returning `(token_index, byte_pos, is_brace)`.
    fn item_end(&self, mut i: usize, limit: usize) -> Option<(usize, usize, bool)> {
        let mut depth = 0i32;
        while i < self.toks.len() && self.toks[i].0 < limit {
            match self.toks[i].1 {
                Tok::Punct(b'(' | b'[') => depth += 1,
                Tok::Punct(b')' | b']') => depth -= 1,
                Tok::Punct(b'{') if depth == 0 => return Some((i, self.toks[i].0, true)),
                Tok::Punct(b';') if depth == 0 => return Some((i, self.toks[i].0, false)),
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Skips an item that ends at `;` but whose initializer may contain
    /// balanced braces (`const X: Foo = Foo { .. };`). Returns the token
    /// index just past the terminator.
    fn skip_to_semi(&self, mut i: usize, limit: usize) -> usize {
        let mut depth = 0i32;
        while i < self.toks.len() && self.toks[i].0 < limit {
            match self.toks[i].1 {
                Tok::Punct(b'{' | b'(' | b'[') => depth += 1,
                Tok::Punct(b'}' | b')' | b']') => depth -= 1,
                Tok::Punct(b';') if depth <= 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Walks the items between byte offsets `start` and `end`.
    fn region(
        &mut self,
        start: usize,
        end: usize,
        mod_path: &mut Vec<String>,
        impl_type: &str,
        tree: &mut ItemTree,
    ) {
        let mut i = self.tok_at(start);
        while i < self.toks.len() && self.toks[i].0 < end {
            let (pos, tok) = self.toks[i];
            match tok {
                Tok::Ident("mod") => {
                    let name = match self.toks.get(i + 1) {
                        Some(&(_, Tok::Ident(n))) => n,
                        _ => {
                            i += 1;
                            continue;
                        }
                    };
                    match self.item_end(i + 2, end) {
                        Some((_, bpos, true)) => {
                            let close = self.matching(bpos, b'{', b'}').unwrap_or(end);
                            mod_path.push(name.to_string());
                            self.region(bpos + 1, close, mod_path, "", tree);
                            mod_path.pop();
                            i = self.tok_at(close + 1);
                        }
                        Some((j, _, false)) => i = j + 1,
                        None => i += 2,
                    }
                }
                Tok::Ident("impl" | "trait") => {
                    let header_start = i + 1;
                    let Some((hdr_end, bpos, is_brace)) = self.item_end(header_start, end) else {
                        i += 1;
                        continue;
                    };
                    if !is_brace {
                        i = hdr_end + 1;
                        continue;
                    }
                    let ty = self.header_type(header_start, hdr_end, tok == Tok::Ident("trait"));
                    let close = self.matching(bpos, b'{', b'}').unwrap_or(end);
                    self.region(bpos + 1, close, mod_path, &ty, tree);
                    i = self.tok_at(close + 1);
                }
                Tok::Ident("fn") => {
                    let name = match self.toks.get(i + 1) {
                        Some(&(_, Tok::Ident(n))) => n.to_string(),
                        _ => {
                            i += 1;
                            continue;
                        }
                    };
                    match self.item_end(i + 2, end) {
                        Some((_, bpos, true)) => {
                            let close = self.matching(bpos, b'{', b'}').unwrap_or(end);
                            tree.fns.push(FnItem {
                                name,
                                impl_type: impl_type.to_string(),
                                mod_path: mod_path.clone(),
                                pos,
                                body: Some((bpos, close + 1)),
                            });
                            i = self.tok_at(close + 1);
                        }
                        Some((j, _, false)) => {
                            tree.fns.push(FnItem {
                                name,
                                impl_type: impl_type.to_string(),
                                mod_path: mod_path.clone(),
                                pos,
                                body: None,
                            });
                            i = j + 1;
                        }
                        None => i += 2,
                    }
                }
                Tok::Ident("use") => {
                    let semi = self.skip_to_semi(i + 1, end);
                    self.parse_use(i + 1, semi.saturating_sub(1), tree);
                    i = semi;
                }
                Tok::Ident("struct" | "enum" | "union") => match self.item_end(i + 1, end) {
                    Some((_, bpos, true)) => {
                        let close = self.matching(bpos, b'{', b'}').unwrap_or(end);
                        i = self.tok_at(close + 1);
                    }
                    Some((j, _, false)) => i = j + 1,
                    None => i += 1,
                },
                Tok::Ident("const" | "static" | "type") => {
                    i = self.skip_to_semi(i + 1, end);
                }
                Tok::Ident("macro_rules") => match self.item_end(i + 1, end) {
                    Some((_, bpos, true)) => {
                        let close = self.matching(bpos, b'{', b'}').unwrap_or(end);
                        i = self.tok_at(close + 1);
                    }
                    _ => i += 1,
                },
                Tok::Punct(b'#') => {
                    // Attribute: `#[...]` or `#![...]` — skip the bracket
                    // group so its tokens cannot look like items.
                    let mut j = i + 1;
                    if let Some(&(_, Tok::Punct(b'!'))) = self.toks.get(j) {
                        j += 1;
                    }
                    if let Some(&(bpos, Tok::Punct(b'['))) = self.toks.get(j) {
                        let close = self.matching(bpos, b'[', b']').unwrap_or(bpos);
                        i = self.tok_at(close + 1);
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// The self type of an `impl`/`trait` header: the first identifier
    /// after `for` when present (`impl Trait for Type`), otherwise the
    /// first non-generic identifier after the keyword.
    fn header_type(&self, start: usize, end: usize, is_trait: bool) -> String {
        let mut angle = 0i32;
        let mut after_for = false;
        let mut first: Option<&str> = None;
        let mut j = start;
        while j < end {
            match self.toks[j].1 {
                Tok::Punct(b'<') => angle += 1,
                Tok::Punct(b'>') => angle -= 1,
                Tok::Ident("for") if angle == 0 => after_for = true,
                Tok::Ident("where") if angle == 0 => break,
                Tok::Ident(name) if angle == 0 && !is_keyword(name) => {
                    if after_for {
                        return name.to_string();
                    }
                    if first.is_none() {
                        first = Some(name);
                        if is_trait {
                            // A trait's own name is its "type".
                            return name.to_string();
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        first.unwrap_or("").to_string()
    }

    /// Parses one `use` declaration (tokens `[start, end)`) into leaves,
    /// expanding a single level of `{ … }` groups and `as` aliases.
    fn parse_use(&self, start: usize, end: usize, tree: &mut ItemTree) {
        let mut prefix: Vec<String> = Vec::new();
        let mut j = start;
        while j < end {
            match self.toks[j].1 {
                Tok::Ident(seg) => {
                    prefix.push(seg.to_string());
                    j += 1;
                }
                Tok::Punct(b':') => j += 1,
                Tok::Punct(b'{') => {
                    // Group: split the inside on top-level commas.
                    let bpos = self.toks[j].0;
                    let close = self.matching(bpos, b'{', b'}').unwrap_or(self.code.len());
                    let mut k = j + 1;
                    let mut part: Vec<String> = Vec::new();
                    let mut depth = 0i32;
                    while k < self.toks.len() && self.toks[k].0 < close {
                        match self.toks[k].1 {
                            Tok::Punct(b'{') => depth += 1,
                            Tok::Punct(b'}') => depth -= 1,
                            Tok::Punct(b',') if depth == 0 => {
                                Self::push_use(&prefix, &part, tree);
                                part.clear();
                            }
                            Tok::Ident(seg) => part.push(seg.to_string()),
                            _ => {}
                        }
                        k += 1;
                    }
                    Self::push_use(&prefix, &part, tree);
                    return;
                }
                Tok::Punct(b'*') => return, // glob: nothing to bind
                _ => j += 1,
            }
        }
        Self::push_use(&prefix, &[], tree);
    }

    /// Records one use leaf: `prefix` + `part` segments, honouring a
    /// trailing `as <alias>` pair inside `part`.
    fn push_use(prefix: &[String], part: &[String], tree: &mut ItemTree) {
        let mut segs: Vec<String> = prefix.to_vec();
        let mut alias: Option<String> = None;
        let mut k = 0;
        while k < part.len() {
            if part[k] == "as" && k + 1 < part.len() {
                alias = Some(part[k + 1].clone());
                break;
            }
            segs.push(part[k].clone());
            k += 1;
        }
        // `use x::y as z;` without groups: the alias sits in `prefix`.
        if alias.is_none() {
            if let Some(p) = segs.iter().position(|s| s == "as") {
                alias = segs.get(p + 1).cloned();
                segs.truncate(p);
            }
        }
        let Some(last) = segs.last().cloned() else {
            return;
        };
        let leaf = alias.unwrap_or(last);
        if leaf == "self" {
            return;
        }
        tree.uses.push(UseItem {
            segments: segs,
            leaf,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fn_names(tree: &ItemTree) -> Vec<String> {
        tree.fns.iter().map(FnItem::display).collect()
    }

    #[test]
    fn free_and_impl_fns_with_bodies() {
        let src = "\
fn free() { body(); }\n\
struct S { f: u32 }\n\
impl S {\n    pub fn method(&self) -> u32 { self.f }\n}\n\
impl Clone for S {\n    fn clone(&self) -> S { S { f: 0 } }\n}\n";
        let tree = parse_items(src);
        assert_eq!(fn_names(&tree), vec!["free", "S::method", "S::clone"]);
        for f in &tree.fns {
            let (b, e) = f.body.expect("all fns have bodies");
            assert_eq!(&src[b..b + 1], "{");
            assert_eq!(&src[e - 1..e], "}");
        }
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let src = "impl<S: PageStore> SharedBufferPool<S> { fn go(&self) {} }\n";
        let tree = parse_items(src);
        assert_eq!(fn_names(&tree), vec!["SharedBufferPool::go"]);
    }

    #[test]
    fn mods_nest_and_trait_decls_have_no_body() {
        let src = "\
mod outer {\n    mod inner { fn deep() {} }\n    fn shallow() {}\n}\n\
trait T { fn decl(&self); fn with_default(&self) {} }\n";
        let tree = parse_items(src);
        assert_eq!(
            fn_names(&tree),
            vec!["deep", "shallow", "T::decl", "T::with_default"]
        );
        assert_eq!(tree.fns[0].mod_path, vec!["outer", "inner"]);
        assert!(tree.fns[2].body.is_none());
        assert!(tree.fns[3].body.is_some());
    }

    #[test]
    fn const_initializer_braces_do_not_derail() {
        let src = "const A: Foo = Foo { x: 1 };\nfn after() {}\n";
        let tree = parse_items(src);
        assert_eq!(fn_names(&tree), vec!["after"]);
    }

    #[test]
    fn fn_with_array_type_param_finds_its_body() {
        let src = "fn f(x: [u8; 4]) -> Result<(), E> { inner() }\n";
        let tree = parse_items(src);
        assert_eq!(tree.fns.len(), 1);
        assert!(tree.fns[0].body.is_some());
    }

    #[test]
    fn use_paths_flatten_groups_and_aliases() {
        let src = "\
use gauss_storage::sync::{LockRank, TrackedMutex};\n\
use crate::tree::GaussTree as Tree;\n\
use std::collections::BTreeMap;\n";
        let tree = parse_items(src);
        let leaves: Vec<&str> = tree.uses.iter().map(|u| u.leaf.as_str()).collect();
        assert_eq!(leaves, vec!["LockRank", "TrackedMutex", "Tree", "BTreeMap"]);
        assert_eq!(
            tree.uses[0].segments,
            vec!["gauss_storage", "sync", "LockRank"]
        );
        assert_eq!(
            tree.uses[1].segments,
            vec!["gauss_storage", "sync", "TrackedMutex"]
        );
        assert_eq!(tree.uses[2].segments, vec!["crate", "tree", "GaussTree"]);
        assert_eq!(
            tree.uses[3].segments,
            vec!["std", "collections", "BTreeMap"]
        );
    }
}
