//! The project rule set.
//!
//! Every rule reports [`Finding`]s against the blanked view produced by
//! [`crate::lexer`], so string/comment contents can never trip a rule. A
//! finding on line `L` is silenced by a
//! `// lint: allow(<rule>) -- <reason>` comment on `L`, or on a standalone
//! comment line `L-1` (see [`crate::lexer::Allow`]); the reason is
//! mandatory. The rules:
//!
//! | rule            | scope                              | what it rejects |
//! |-----------------|------------------------------------|-----------------|
//! | `no-panic`      | non-test lib code (all crates)     | `.unwrap()`, `.expect(…)`, `panic!`, `todo!`, `unimplemented!` |
//! | `raw-mutex`     | non-test first-party code          | `std::sync::Mutex`/`MutexGuard`/`Condvar` outside `storage/src/sync.rs` |
//! | `float-eq`      | `pfv` lib code                     | `==`/`!=` against a float literal (use `to_bits()` for bit identity) |
//! | `cast-truncation` | `pfv`/`storage`/`core` lib code  | bare `as u8/u16/u32/i8/i16/i32` narrowing (use `try_from`) and `as f32` rounding outside `pfv/src/quant.rs` (use the checked quantisation helpers) |
//! | `missing-docs`  | `pfv`/`storage`/`core` lib code    | undocumented `pub` items at module/impl scope |
//! | `forbid-unsafe` | every crate root                   | missing `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` |
//! | `bad-allow`     | everywhere                         | malformed `lint:` comments, unknown rule names in `allow(...)` |
//!
//! The flow-aware rules — `static-lock-order`, `guard-across-call`,
//! `durability-protocol`, `ignored-io-result` — live in
//! [`crate::analysis`]; their constants are declared here so
//! `allow(...)` validation and `--list-rules` see one namespace.

use crate::lexer::{blank, test_regions, Blanked};
use crate::walk::{FileKind, SourceFile};

/// Machine name of the panic-free-library rule.
pub const NO_PANIC: &str = "no-panic";
/// Machine name of the tracked-mutex rule.
pub const RAW_MUTEX: &str = "raw-mutex";
/// Machine name of the float bit-identity rule.
pub const FLOAT_EQ: &str = "float-eq";
/// Machine name of the narrowing-cast rule.
pub const CAST_TRUNCATION: &str = "cast-truncation";
/// Machine name of the public-docs rule.
pub const MISSING_DOCS: &str = "missing-docs";
/// Machine name of the crate-root `forbid(unsafe_code)` rule.
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
/// Machine name of the malformed-annotation rule.
pub const BAD_ALLOW: &str = "bad-allow";
/// Machine name of the call-graph lock-rank inversion rule.
pub const STATIC_LOCK_ORDER: &str = "static-lock-order";
/// Machine name of the guard-held-across-call rule.
pub const GUARD_ACROSS_CALL: &str = "guard-across-call";
/// Machine name of the commit-ordering rule for `tree.rs`/`bulk.rs` and
/// the forest manifest-commit path.
pub const DURABILITY_PROTOCOL: &str = "durability-protocol";
/// Machine name of the discarded-I/O-`Result` rule.
pub const IGNORED_IO_RESULT: &str = "ignored-io-result";

/// Every rule with a one-line description, for `--list-rules` and for
/// validating `allow(...)` annotations.
#[must_use]
pub fn all_rules() -> &'static [(&'static str, &'static str)] {
    &[
        (
            NO_PANIC,
            "non-test library code must not unwrap/expect/panic!/todo!/unimplemented!",
        ),
        (
            RAW_MUTEX,
            "std::sync::Mutex/MutexGuard/Condvar are only allowed in gauss_storage::sync \
             (use TrackedMutex everywhere else)",
        ),
        (
            FLOAT_EQ,
            "pfv kernel code must not compare floats with ==/!= against literals \
             (bit identity goes through to_bits())",
        ),
        (
            CAST_TRUNCATION,
            "page-id/byte-count code must not use bare narrowing `as` casts \
             (use try_from), and `as f32` quantisation belongs in pfv::quant's \
             checked helpers",
        ),
        (
            MISSING_DOCS,
            "public items in core/pfv/storage need doc comments",
        ),
        (
            FORBID_UNSAFE,
            "every crate root must carry #![forbid(unsafe_code)] (or deny, with a reason)",
        ),
        (
            BAD_ALLOW,
            "lint: comments must parse as allow(rule) -- reason",
        ),
        (
            STATIC_LOCK_ORDER,
            "no call path may acquire a LockRank lower than one already held \
             (reported with the full call chain)",
        ),
        (
            GUARD_ACROSS_CALL,
            "a lock guard must not stay live across a call that can re-acquire its \
             rank, or across PageStore I/O on the query path",
        ),
        (
            DURABILITY_PROTOCOL,
            "in tree.rs/bulk.rs/forest/mod.rs, meta-slot and manifest-slot writes \
             need a preceding data sync barrier and free_pending pages must not be \
             reused before the epoch commit",
        ),
        (
            IGNORED_IO_RESULT,
            "Results from gauss_storage I/O calls must not be discarded with \
             `let _ =` or drop(...)",
        ),
    ]
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub rel_path: String,
    /// 1-based line.
    pub line: usize,
    /// Machine rule name (one of the constants in this module).
    pub rule: &'static str,
    /// Human explanation.
    pub message: String,
    /// Call chain for call-graph findings (`caller -> … -> sink`), empty
    /// for purely local rules.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    chain: {}", self.chain.join(" -> "))?;
        }
        Ok(())
    }
}

/// Context handed to each rule for one file.
struct FileCx<'a> {
    file: &'a SourceFile,
    blanked: &'a Blanked,
    /// Byte ranges of `#[cfg(test)]`-gated items.
    test_spans: Vec<(usize, usize)>,
}

impl FileCx<'_> {
    fn in_test_region(&self, pos: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= pos && pos < e)
    }

    /// Pushes a finding unless an allow annotation covers its line.
    fn report(&self, out: &mut Vec<Finding>, rule: &'static str, pos: usize, message: String) {
        let line = self.blanked.line_of(pos);
        if self.blanked.is_allowed(rule, line) {
            return;
        }
        out.push(Finding {
            rel_path: self.file.rel_path.clone(),
            line,
            rule,
            message,
            chain: Vec::new(),
        });
    }
}

/// Iterates `(byte_offset, token)` over identifier/number tokens in
/// blanked code.
fn idents(code: &str) -> Vec<(usize, &str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((start, &code[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

fn prev_nonspace(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i > 0 {
        i -= 1;
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
    }
    None
}

fn next_nonspace(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

/// Lints one source file, returning all findings (already filtered through
/// allow annotations).
#[must_use]
pub fn lint_file(file: &SourceFile, src: &str) -> Vec<Finding> {
    let blanked = blank(src);
    let test_spans = test_regions(&blanked.code);
    lint_blanked(file, &blanked, &test_spans)
}

/// Token-level rules over an already-blanked view, so callers that also
/// run the flow analysis ([`crate::analysis`]) blank each file only once.
#[must_use]
pub fn lint_blanked(
    file: &SourceFile,
    blanked: &Blanked,
    test_spans: &[(usize, usize)],
) -> Vec<Finding> {
    let cx = FileCx {
        file,
        test_spans: test_spans.to_vec(),
        blanked,
    };
    let mut out = Vec::new();

    bad_allow_rule(&cx, &mut out);
    let toks = idents(&blanked.code);
    if file.is_lib() && file.kind != FileKind::Shim {
        no_panic_rule(&cx, &toks, &mut out);
    }
    if matches!(file.kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
        && file.rel_path != "crates/storage/src/sync.rs"
    {
        raw_mutex_rule(&cx, &toks, &mut out);
    }
    if file.is_lib() && file.crate_name == "pfv" {
        float_eq_rule(&cx, &mut out);
    }
    if file.is_lib() && matches!(file.crate_name.as_str(), "pfv" | "storage" | "core") {
        cast_truncation_rule(&cx, &toks, &mut out);
        missing_docs_rule(&cx, &toks, &mut out);
    }
    if is_crate_root(&file.rel_path) {
        forbid_unsafe_rule(&cx, &mut out);
    }
    out
}

/// Whether `rel` is a crate-root file that must carry the unsafe attribute.
fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    matches!(
        parts.as_slice(),
        ["crates", _, "src", "lib.rs" | "main.rs"]
            | ["shims", _, "src", "lib.rs"]
            | ["src", "lib.rs"]
    )
}

fn bad_allow_rule(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    for (line, msg) in &cx.blanked.malformed_allows {
        out.push(Finding {
            rel_path: cx.file.rel_path.clone(),
            line: *line,
            rule: BAD_ALLOW,
            message: msg.clone(),
            chain: Vec::new(),
        });
    }
    let known: Vec<&str> = all_rules().iter().map(|(n, _)| *n).collect();
    for allow in &cx.blanked.allows {
        for rule in &allow.rules {
            if !known.contains(&rule.as_str()) {
                out.push(Finding {
                    rel_path: cx.file.rel_path.clone(),
                    line: allow.line,
                    rule: BAD_ALLOW,
                    message: format!("allow names unknown rule {rule:?}"),
                    chain: Vec::new(),
                });
            }
        }
    }
}

fn no_panic_rule(cx: &FileCx<'_>, toks: &[(usize, &str)], out: &mut Vec<Finding>) {
    let bytes = cx.blanked.code.as_bytes();
    for &(pos, tok) in toks {
        if cx.in_test_region(pos) {
            continue;
        }
        let flagged = match tok {
            "unwrap" | "expect" => prev_nonspace(bytes, pos) == Some(b'.'),
            "panic" | "todo" | "unimplemented" => {
                next_nonspace(bytes, pos + tok.len()) == Some(b'!')
            }
            _ => false,
        };
        if flagged {
            cx.report(
                out,
                NO_PANIC,
                pos,
                format!(
                    "`{tok}` in library code: return a Result, use unwrap_or_else, or \
                     annotate `// lint: allow({NO_PANIC}) -- <why the invariant holds>`"
                ),
            );
        }
    }
}

fn raw_mutex_rule(cx: &FileCx<'_>, toks: &[(usize, &str)], out: &mut Vec<Finding>) {
    for &(pos, tok) in toks {
        if !matches!(tok, "Mutex" | "MutexGuard" | "Condvar") {
            continue;
        }
        if cx.in_test_region(pos) {
            continue;
        }
        cx.report(
            out,
            RAW_MUTEX,
            pos,
            format!(
                "raw `std::sync::{tok}` outside gauss_storage::sync: use TrackedMutex/\
                 TrackedCondvar so the lock-order detector sees this lock"
            ),
        );
    }
}

/// Is `tok` a float literal (`0.5`, `1e-9`, `2.0f64`)?
fn is_float_literal(tok: &str) -> bool {
    let b = tok.as_bytes();
    if b.is_empty() || !b[0].is_ascii_digit() {
        return false;
    }
    tok.contains('.')
        || tok.contains('e')
        || tok.contains('E')
        || tok.ends_with("f32")
        || tok.ends_with("f64")
}

fn float_eq_rule(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    let code = &cx.blanked.code;
    let bytes = code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let op = match (bytes[i], bytes[i + 1]) {
            (b'=', b'=') => "==",
            (b'!', b'=') => "!=",
            _ => continue,
        };
        // Exclude <=, >=, +=, ==-chains etc.
        if op == "=="
            && matches!(
                prev_nonspace(bytes, i),
                Some(
                    b'=' | b'!'
                        | b'<'
                        | b'>'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                )
            )
        {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        if cx.in_test_region(i) {
            continue;
        }
        // Neighbouring tokens: the identifier/number immediately before and
        // after the operator.
        let before = last_token_before(code, i);
        let after = first_token_after(code, i + 2);
        let floaty = |t: &str| {
            is_float_literal(t)
                || matches!(
                    t,
                    "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON" | "MAX" | "MIN"
                )
        };
        if before.as_deref().map(floaty).unwrap_or(false)
            || after.as_deref().map(floaty).unwrap_or(false)
        {
            cx.report(
                out,
                FLOAT_EQ,
                i,
                format!(
                    "float `{op}` comparison in pfv kernel code: use to_bits() for bit \
                     identity or an explicit tolerance"
                ),
            );
        }
    }
}

/// The full dotted numeric/identifier token ending just before byte `i`
/// (so `2.5` is one token, not `5`).
fn last_token_before(code: &str, i: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut end = i;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            start -= 1;
        } else {
            break;
        }
    }
    (start < end).then(|| code[start..end].trim_matches('.').to_string())
}

/// The dotted numeric/identifier token starting at or after byte `i`.
fn first_token_after(code: &str, i: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut start = i;
    while start < bytes.len() && bytes[start].is_ascii_whitespace() {
        start += 1;
    }
    // A leading unary minus still means the operand is a literal.
    if start < bytes.len() && bytes[start] == b'-' {
        start += 1;
        while start < bytes.len() && bytes[start].is_ascii_whitespace() {
            start += 1;
        }
    }
    let mut end = start;
    while end < bytes.len() {
        let b = bytes[end];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            end += 1;
        } else {
            break;
        }
    }
    (start < end).then(|| code[start..end].trim_matches('.').to_string())
}

fn cast_truncation_rule(cx: &FileCx<'_>, toks: &[(usize, &str)], out: &mut Vec<Finding>) {
    // `as f32` silently rounds an f64 payload; the sanctioned
    // quantisation sites are the checked helpers in `pfv::quant`
    // (validated result, outward hull correction), which the rule exempts
    // wholesale the way `raw-mutex` exempts `storage::sync`.
    let quant_module = cx.file.rel_path == "crates/pfv/src/quant.rs";
    for w in toks.windows(2) {
        let (pos, tok) = w[0];
        let (_, next) = w[1];
        if tok != "as" || cx.in_test_region(pos) {
            continue;
        }
        if matches!(next, "u8" | "u16" | "u32" | "i8" | "i16" | "i32") {
            cx.report(
                out,
                CAST_TRUNCATION,
                pos,
                format!(
                    "bare `as {next}` narrowing cast: use `{next}::try_from` (or annotate \
                     with the range invariant that makes truncation impossible)"
                ),
            );
        } else if next == "f32" && !quant_module {
            cx.report(
                out,
                CAST_TRUNCATION,
                pos,
                "bare `as f32` rounding cast: go through the checked quantisation \
                 helpers in `pfv::quant` (quantise_mu/quantise_sigma/to_f32_exact)"
                    .to_string(),
            );
        }
    }
}

fn forbid_unsafe_rule(cx: &FileCx<'_>, out: &mut Vec<Finding>) {
    let compact: String = cx
        .blanked
        .code
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if !compact.contains("#![forbid(unsafe_code)]") && !compact.contains("#![deny(unsafe_code)]") {
        cx.report(
            out,
            FORBID_UNSAFE,
            0,
            "crate root lacks #![forbid(unsafe_code)] (use deny + a lint allow if a shim \
             genuinely needs unsafe)"
                .to_string(),
        );
    }
}

/// Scope kinds for the missing-docs brace tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// File root or `mod x { … }`: `pub` items here need docs.
    Module,
    /// `impl … { … }`: `pub fn`/`pub const` here need docs.
    Impl,
    /// struct/enum/union/trait bodies: fields/variants, not checked.
    TypeBody,
    /// Function bodies, expressions: never checked.
    Body,
}

fn missing_docs_rule(cx: &FileCx<'_>, toks: &[(usize, &str)], out: &mut Vec<Finding>) {
    let code = &cx.blanked.code;
    let bytes = code.as_bytes();
    // Walk tokens and braces in tandem: token index advances over the byte
    // scan so keyword context decides each `{`'s scope kind.
    let mut scopes: Vec<Scope> = vec![Scope::Module];
    let mut recent: Vec<&str> = Vec::new(); // tokens since last `{` `}` `;`
    let mut tok_idx = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        // Consume any tokens that start at or before this byte.
        while tok_idx < toks.len() && toks[tok_idx].0 <= i {
            let (tpos, t) = toks[tok_idx];
            if tpos == i {
                handle_token(cx, toks, tok_idx, &scopes, &recent, out);
                recent.push(t);
                i += t.len();
                tok_idx += 1;
                continue;
            }
            tok_idx += 1;
        }
        if i >= bytes.len() {
            break;
        }
        match bytes[i] {
            b'{' => {
                let kind = scope_of(&recent);
                scopes.push(kind);
                recent.clear();
            }
            b'}' => {
                if scopes.len() > 1 {
                    scopes.pop();
                }
                recent.clear();
            }
            // `;` ends an item; `]` ends an attribute such as
            // `#[derive(Debug)]`, whose tokens must not hide the `pub`
            // that follows it from the first-token-of-header check.
            b';' | b']' => recent.clear(),
            _ => {}
        }
        i += 1;
    }
}

/// Decides what scope a `{` opens, from the tokens since the previous
/// `{`/`}`/`;` (the item header).
fn scope_of(recent: &[&str]) -> Scope {
    // `fn` wins first: `pub fn f() -> impl Iterator {` opens a function
    // body even though `impl` also appears in the header. Conversely
    // `impl Trait for Type {` contains `for` but must still rank as Impl,
    // so the generic body keywords come last.
    if recent.contains(&"fn") {
        return Scope::Body;
    }
    if recent.contains(&"impl") {
        return Scope::Impl;
    }
    if recent.contains(&"mod") {
        return Scope::Module;
    }
    if recent
        .iter()
        .any(|t| matches!(*t, "struct" | "enum" | "union" | "trait"))
    {
        return Scope::TypeBody;
    }
    // `if`/`match`/`for`/struct-literal/closure braces, const initializer
    // blocks: all bodies, never checked inside.
    Scope::Body
}

/// Checks one `pub` token for a preceding doc comment when it introduces a
/// checked item in a checked scope.
fn handle_token(
    cx: &FileCx<'_>,
    toks: &[(usize, &str)],
    tok_idx: usize,
    scopes: &[Scope],
    recent: &[&str],
    out: &mut Vec<Finding>,
) {
    let (pos, tok) = toks[tok_idx];
    if tok != "pub" || !matches!(scopes.last(), Some(Scope::Module | Scope::Impl)) {
        return;
    }
    // Only the first token of an item header can be `pub` — a `pub` after
    // e.g. `fn` belongs to a nested position we do not check.
    if !recent.is_empty() {
        return;
    }
    if cx.in_test_region(pos) {
        return;
    }
    let bytes = cx.blanked.code.as_bytes();
    // Restricted visibility — pub(crate), pub(super), pub(in …) — is not
    // exported API; rustc's missing_docs skips it and so do we.
    if next_nonspace(bytes, pos + 3) == Some(b'(') {
        return;
    }
    // The item keyword after `pub` (skipping `unsafe`, `async`, `const
    // fn`'s const, `extern`).
    let mut j = tok_idx + 1;
    let mut item_kw = None;
    let mut item_name = None;
    while j < toks.len() {
        let t = toks[j].1;
        match t {
            "unsafe" | "async" | "extern" => j += 1,
            "const" | "static" | "fn" | "struct" | "enum" | "union" | "trait" | "type" | "mod" => {
                // `pub const fn f()` — the const here is a qualifier.
                if t == "const" && j + 1 < toks.len() && toks[j + 1].1 == "fn" {
                    j += 1;
                    continue;
                }
                item_kw = Some(t);
                item_name = toks.get(j + 1).map(|&(_, n)| n);
                break;
            }
            // `pub use`, macro re-exports: not doc-checked.
            _ => break,
        }
    }
    let Some(kw) = item_kw else { return };
    let line = cx.blanked.line_of(pos);
    if has_doc_above(cx, line) {
        return;
    }
    cx.report(
        out,
        MISSING_DOCS,
        pos,
        format!(
            "public {kw} `{}` has no doc comment",
            item_name.unwrap_or("<unnamed>")
        ),
    );
}

/// Walks upward from `line - 1` over attribute and blank lines looking for
/// a doc comment attached to the item.
fn has_doc_above(cx: &FileCx<'_>, line: usize) -> bool {
    let mut l = line;
    while l > 1 {
        l -= 1;
        if cx.blanked.doc_lines[l] {
            return true;
        }
        if cx.blanked.code_lines[l] {
            // An attribute line still connects the doc above it; anything
            // else breaks the chain.
            let begin = cx.blanked.code.lines().nth(l - 1).map(str::trim_start);
            match begin {
                Some(s) if s.starts_with("#[") || s.starts_with("#!") || s.ends_with(']') => {}
                _ => return false,
            }
        }
        // Comment-only and blank lines: keep walking.
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::classify;

    fn lint_str(rel: &str, src: &str) -> Vec<Finding> {
        let (kind, crate_name) = classify(rel);
        let file = SourceFile {
            rel_path: rel.to_string(),
            abs_path: std::path::PathBuf::from(rel),
            kind,
            crate_name,
        };
        lint_file(&file, src)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_in_lib_code_flagged() {
        let f = lint_str("crates/core/src/x.rs", "fn f() { y.unwrap(); }\n");
        assert_eq!(rules_of(&f), vec![NO_PANIC]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_in_tests_and_bins_not_flagged() {
        assert!(lint_str("tests/x.rs", "fn f() { y.unwrap(); }\n").is_empty());
        assert!(lint_str("crates/bench/src/bin/b.rs", "fn main() { y.unwrap(); }\n").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn f() { y.unwrap(); }\n}\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let src = "fn f() { y.unwrap_or_else(Default::default); }\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_todo_unimplemented_flagged_with_allow_hatch() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { todo!(); }\n";
        let f = lint_str("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![NO_PANIC, NO_PANIC]);
        let src_allowed = "fn f() {\n    // lint: allow(no-panic) -- documented contract\n    panic!(\"boom\");\n}\n";
        assert!(lint_str("crates/core/src/x.rs", src_allowed).is_empty());
    }

    #[test]
    fn raw_mutex_flagged_outside_sync_module() {
        let src = "use std::sync::Mutex;\n";
        let f = lint_str("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![RAW_MUTEX]);
        assert!(lint_str("crates/storage/src/sync.rs", src).is_empty());
        // TrackedMutex is of course fine.
        assert!(lint_str(
            "crates/core/src/x.rs",
            "use gauss_storage::sync::TrackedMutex;\n"
        )
        .is_empty());
    }

    #[test]
    fn float_eq_flagged_only_in_pfv() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\n";
        let f = lint_str("crates/pfv/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![FLOAT_EQ]);
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
        // Integer comparisons in pfv are fine.
        assert!(lint_str("crates/pfv/src/x.rs", "fn g(n: usize) -> bool { n == 0 }\n").is_empty());
        // to_bits comparisons are fine.
        assert!(lint_str(
            "crates/pfv/src/x.rs",
            "fn h(x: f64, y: f64) -> bool { x.to_bits() == y.to_bits() }\n"
        )
        .is_empty());
    }

    #[test]
    fn float_eq_catches_ne_and_negative_literals() {
        let f = lint_str(
            "crates/pfv/src/x.rs",
            "fn f(x: f64) -> bool { x != -1.5 }\n",
        );
        assert_eq!(rules_of(&f), vec![FLOAT_EQ]);
    }

    #[test]
    fn cast_truncation_scope_and_allow() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        let f = lint_str("crates/storage/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![CAST_TRUNCATION]);
        // usize/u64 widening or platform casts are not flagged.
        assert!(lint_str(
            "crates/storage/src/x.rs",
            "fn g(x: u32) -> u64 { x as u64 }\nfn h(x: u32) -> usize { x as usize }\n"
        )
        .is_empty());
        // Out-of-scope crate.
        assert!(lint_str("crates/workloads/src/x.rs", src).is_empty());
    }

    #[test]
    fn cast_truncation_flags_f32_outside_quant() {
        let src = "fn f(x: f64) -> f32 { x as f32 }\n";
        for path in [
            "crates/pfv/src/batch.rs",
            "crates/core/src/x.rs",
            "crates/storage/src/x.rs",
        ] {
            let f = lint_str(path, src);
            assert_eq!(rules_of(&f), vec![CAST_TRUNCATION], "path {path}");
            assert!(f[0].message.contains("pfv::quant"));
        }
        // The checked helpers live in pfv::quant — the one sanctioned home
        // for the cast, exempted like raw-mutex exempts storage::sync.
        assert!(lint_str("crates/pfv/src/quant.rs", src).is_empty());
        // Widening f32 -> f64 is lossless and not flagged.
        assert!(lint_str(
            "crates/pfv/src/batch.rs",
            "fn g(x: f32) -> f64 { x as f64 }\n"
        )
        .is_empty());
        // Out-of-scope crates keep their casts.
        assert!(lint_str("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn missing_docs_on_pub_items() {
        let src = "pub fn undocumented() {}\n";
        let f = lint_str("crates/pfv/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![MISSING_DOCS]);
        let documented = "/// Does a thing.\npub fn documented() {}\n";
        assert!(lint_str("crates/pfv/src/x.rs", documented).is_empty());
        let attr_between = "/// Doc.\n#[derive(Debug)]\npub struct S;\n";
        assert!(lint_str("crates/pfv/src/x.rs", attr_between).is_empty());
        let crate_private = "pub(crate) fn internal() {}\n";
        assert!(lint_str("crates/pfv/src/x.rs", crate_private).is_empty());
    }

    #[test]
    fn missing_docs_checks_impl_methods_not_bodies() {
        let src = "\
/// Type docs.\npub struct S;\n\
impl S {\n    pub fn method(&self) {}\n}\n";
        let f = lint_str("crates/pfv/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![MISSING_DOCS]);
        assert!(f[0].message.contains("method"));
        // `pub` never appears inside fn bodies in practice; a struct
        // expression brace must not confuse the tracker.
        let nested = "/// D.\npub fn f() { let s = Foo { a: 1 }; g(s); }\n";
        assert!(lint_str("crates/pfv/src/x.rs", nested).is_empty());
    }

    #[test]
    fn missing_docs_skips_trait_bodies_and_out_of_scope_crates() {
        let src = "/// T.\npub trait T {\n    fn m(&self);\n}\n";
        assert!(lint_str("crates/pfv/src/x.rs", src).is_empty());
        assert!(lint_str("crates/workloads/src/x.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn forbid_unsafe_required_on_crate_roots() {
        let f = lint_str("crates/pfv/src/lib.rs", "//! Crate docs.\n");
        assert!(rules_of(&f).contains(&FORBID_UNSAFE));
        let ok = "//! Crate docs.\n#![forbid(unsafe_code)]\n";
        assert!(!rules_of(&lint_str("crates/pfv/src/lib.rs", ok)).contains(&FORBID_UNSAFE));
        let deny = "//! Crate docs.\n#![deny(unsafe_code)]\n";
        assert!(!rules_of(&lint_str("crates/pfv/src/lib.rs", deny)).contains(&FORBID_UNSAFE));
        // Non-root files are exempt.
        assert!(lint_str("crates/pfv/src/other.rs", "fn f() {}\n").is_empty());
    }

    #[test]
    fn bad_allow_reported() {
        let f = lint_str(
            "crates/core/src/x.rs",
            "// lint: allow(no-panic)\nfn f() { y.unwrap(); }\n",
        );
        assert!(rules_of(&f).contains(&BAD_ALLOW), "reason is mandatory");
        assert!(
            rules_of(&f).contains(&NO_PANIC),
            "malformed allow must not silence"
        );
        let unknown = lint_str(
            "crates/core/src/x.rs",
            "// lint: allow(no-such-rule) -- typo\nfn f() {}\n",
        );
        assert_eq!(rules_of(&unknown), vec![BAD_ALLOW]);
    }

    #[test]
    fn shims_only_checked_for_unsafe_attr() {
        let src = "pub fn f() { x.unwrap(); let m = Mutex::new(0); }\n";
        assert!(lint_str("shims/rand/src/helpers.rs", src).is_empty());
        let root = lint_str("shims/rand/src/lib.rs", src);
        assert_eq!(rules_of(&root), vec![FORBID_UNSAFE]);
    }
}
