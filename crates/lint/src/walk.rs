//! Workspace traversal and file classification.
//!
//! Rules apply to different slices of the tree: the panic and mutex rules
//! police first-party *library* code, the float rule only the `pfv` kernel
//! crate, and vendored shims are exempt from everything except the
//! `forbid-unsafe` crate-root check. This module walks the workspace once
//! and hands every `.rs` file to the rule engine with a [`FileKind`]
//! classification derived from its path.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What part of the workspace a file belongs to, by path convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code of a first-party crate (`crates/*/src`, root `src/`).
    Lib,
    /// Binary / bench code (`src/bin`, `main.rs`, `benches/`):
    /// first-party, but allowed to panic on bad input.
    Bin,
    /// Example programs (`examples/`): like binaries, but they demonstrate
    /// API usage, so the lock-protocol rules stay on.
    Example,
    /// Integration tests (root `tests/`, `crates/*/tests/`): relaxed rule
    /// set — no-panic off, but `ignored-io-result` stays on.
    Test,
    /// Vendored dependency shims (`shims/`): not first-party style-wise.
    Shim,
}

/// One workspace source file, classified.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (forward slashes).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Which rule scope the file falls into.
    pub kind: FileKind,
    /// Name of the owning crate directory (`pfv`, `storage`, `lint`, …);
    /// the umbrella crate at the root is `"."`.
    pub crate_name: String,
}

impl SourceFile {
    /// Whether this is non-test first-party library code — the scope of
    /// the strictest rules.
    #[must_use]
    pub fn is_lib(&self) -> bool {
        self.kind == FileKind::Lib
    }
}

/// Classifies `rel` (a `/`-separated path relative to the workspace root).
#[must_use]
pub fn classify(rel: &str) -> (FileKind, String) {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["shims", name, ..] => (*name).to_string(),
        _ => ".".to_string(),
    };
    let kind = if parts.first() == Some(&"shims") {
        FileKind::Shim
    } else if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"benches")
        || parts.windows(2).any(|w| w == ["src", "bin"])
        || parts.last() == Some(&"main.rs")
        || parts.last() == Some(&"build.rs")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    (kind, crate_name)
}

/// Directories never descended into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.') || name == "fixtures"
}

/// Collects every `.rs` file under `root`, classified, sorted by path.
///
/// `fixtures/` directories are skipped so the lint's own violation
/// fixtures do not fail the self-hosted run.
///
/// # Errors
/// Propagates I/O errors from directory traversal.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let (kind, crate_name) = classify(&rel);
                out.push(SourceFile {
                    rel_path: rel,
                    abs_path: path,
                    kind,
                    crate_name,
                });
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(
            classify("crates/pfv/src/gaussian.rs"),
            (FileKind::Lib, "pfv".to_string())
        );
        assert_eq!(
            classify("crates/storage/src/sync.rs").0,
            FileKind::Lib,
            "sync module is lib code"
        );
        assert_eq!(classify("crates/cli/src/main.rs").0, FileKind::Bin);
        assert_eq!(
            classify("crates/bench/src/bin/throughput.rs").0,
            FileKind::Bin
        );
        assert_eq!(
            classify("crates/bench/benches/microbench.rs").0,
            FileKind::Bin
        );
        assert_eq!(classify("examples/quickstart.rs").0, FileKind::Example);
        assert_eq!(classify("tests/concurrency.rs").0, FileKind::Test);
        assert_eq!(classify("crates/storage/tests/foo.rs").0, FileKind::Test);
        assert_eq!(
            classify("shims/rand/src/lib.rs"),
            (FileKind::Shim, "rand".to_string())
        );
        assert_eq!(classify("src/lib.rs"), (FileKind::Lib, ".".to_string()));
    }
}
