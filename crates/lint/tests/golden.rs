//! Golden-finding tests: each flow-aware rule against the fixture
//! workspace, asserting exact rule id, file, line, and chain rendering —
//! plus the cache and output-format acceptance criteria.

use std::path::{Path, PathBuf};

use gauss_lint::rules::{
    DURABILITY_PROTOCOL, GUARD_ACROSS_CALL, IGNORED_IO_RESULT, STATIC_LOCK_ORDER,
};
use gauss_lint::{output, run, run_with};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn fixture_findings() -> Vec<gauss_lint::rules::Finding> {
    run(&fixture_root()).expect("fixture readable")
}

#[test]
fn seeded_inversion_reported_with_full_call_chain() {
    let findings = fixture_findings();
    let slo: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == STATIC_LOCK_ORDER)
        .collect();
    assert_eq!(slo.len(), 1, "{slo:?}");
    let f = slo[0];
    assert_eq!(f.rel_path, "crates/storage/src/locks.rs");
    assert_eq!(f.line, 24, "anchored at the call that starts the bad path");
    assert_eq!(
        f.chain,
        vec![
            "Pool::shard_then_store",
            "Pool::refill_from_disk",
            "Pool::grab_store"
        ],
        "three-hop chain, end to end"
    );
    assert!(
        f.message.contains("`Pool::grab_store`")
            && f.message.contains("rank 0/Store")
            && f.message.contains("crates/storage/src/locks.rs:33"),
        "message names the sink and the acquisition site: {}",
        f.message
    );
    let text = f.to_string();
    assert!(
        text.contains(
            "chain: Pool::shard_then_store -> Pool::refill_from_disk -> Pool::grab_store"
        ),
        "text rendering carries the chain: {text}"
    );
}

#[test]
fn guard_across_call_equal_rank_and_query_path_io() {
    let findings = fixture_findings();
    let gac: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == GUARD_ACROSS_CALL)
        .collect();
    assert_eq!(gac.len(), 2, "{gac:?}");
    // Equal-rank re-acquisition through a call.
    let call = gac
        .iter()
        .find(|f| f.rel_path == "crates/storage/src/locks.rs")
        .expect("locks.rs finding");
    assert_eq!(call.line, 40);
    assert_eq!(call.chain, vec!["Pool::double_store", "Pool::store_total"]);
    assert!(call.message.contains("re-acquire the same rank"));
    // Guard across PageStore I/O on the query path.
    let io = gac
        .iter()
        .find(|f| f.rel_path == "crates/core/src/query.rs")
        .expect("query.rs finding");
    assert_eq!(io.line, 8);
    assert!(io.message.contains("read_page"), "{}", io.message);
}

#[test]
fn durability_protocol_violations_pinned() {
    let findings = fixture_findings();
    let dur: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == DURABILITY_PROTOCOL)
        .collect();
    assert_eq!(dur.len(), 2, "{dur:?}");
    assert!(dur.iter().any(|f| f.rel_path == "crates/core/src/tree.rs"
        && f.line == 10
        && f.message.contains("sync")));
    assert!(dur.iter().any(|f| f.rel_path == "crates/core/src/tree.rs"
        && f.line == 15
        && f.message.contains("free_pending.pop")));
}

#[test]
fn ignored_io_result_in_lib_and_relaxed_test_scope() {
    let findings = fixture_findings();
    let io: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == IGNORED_IO_RESULT)
        .collect();
    assert_eq!(io.len(), 2, "{io:?}");
    assert!(io
        .iter()
        .any(|f| f.rel_path == "crates/storage/src/lib.rs" && f.line == 14));
    // Root tests/ run the relaxed set: unwrap is fine, dropped I/O is not.
    assert!(io
        .iter()
        .any(|f| f.rel_path == "tests/smoke.rs" && f.line == 6));
    assert!(
        !findings
            .iter()
            .any(|f| f.rel_path == "tests/smoke.rs" && f.rule == "no-panic"),
        "no-panic stays off in test files"
    );
}

#[test]
fn json_and_sarif_outputs_carry_fixture_findings() {
    let findings = fixture_findings();
    let json = output::to_json(&findings);
    assert!(json.contains("\"version\":1"));
    assert!(json.contains("\"rule\":\"static-lock-order\""));
    assert!(json.contains("\"path\":\"crates/storage/src/locks.rs\""));
    assert!(json.contains("\"chain\":[\"Pool::shard_then_store\""));

    let sarif = output::to_sarif(&findings);
    // The SARIF 2.1.0 shape the CI annotation step consumes.
    assert!(sarif.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    assert!(sarif.contains("\"driver\":{\"name\":\"gauss-lint\""));
    assert!(sarif.contains("\"ruleId\":\"durability-protocol\""));
    assert!(sarif.contains("\"uri\":\"crates/storage/src/locks.rs\""));
    assert!(sarif.contains("\"startLine\":24"));
}

#[test]
fn warm_cache_relints_without_reparsing() {
    let dir = std::env::temp_dir().join("gauss-lint-golden-cache");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.join("cache.txt");
    let (cold_findings, cold) = run_with(&fixture_root(), &cache).expect("cold run");
    assert_eq!(cold.cached, 0);
    assert!(cold.parsed > 0);
    let (warm_findings, warm) = run_with(&fixture_root(), &cache).expect("warm run");
    assert_eq!(warm.parsed, 0, "warm run must not re-parse any file");
    assert_eq!(warm.cached, warm.files);
    assert_eq!(
        cold_findings, warm_findings,
        "cached facts reproduce identical findings (chains included)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn real_workspace_lock_facts_are_not_vacuous() {
    // Guards against the analysis silently seeing nothing: the real
    // buffer pool must yield lock facts at both ends of the hierarchy.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = gauss_lint::walk::find_root(here).expect("workspace root");
    let shared = root.join("crates/storage/src/shared.rs");
    let src = std::fs::read_to_string(&shared).expect("shared.rs readable");
    let (kind, crate_name) = gauss_lint::walk::classify("crates/storage/src/shared.rs");
    let file = gauss_lint::walk::SourceFile {
        rel_path: "crates/storage/src/shared.rs".to_string(),
        abs_path: shared,
        kind,
        crate_name,
    };
    let facts = gauss_lint::analysis::file_facts(&file, &src);
    let ranks: std::collections::BTreeSet<u8> = facts
        .fns
        .iter()
        .flat_map(|f| f.acquires.iter().map(|a| a.rank))
        .collect();
    assert!(
        ranks.contains(&0) && ranks.contains(&1),
        "shared.rs must show Store and Shard acquisitions, got {ranks:?}"
    );
    assert!(
        facts.fns.iter().any(|f| !f.calls.is_empty()),
        "call graph must have edges out of shared.rs"
    );
}
