//! Property tests for the lint lexer.
//!
//! The lexer underpins every rule, so its blanked view has to be
//! structurally faithful on arbitrary token soup: byte length and newline
//! positions must survive blanking exactly (rules map offsets to lines
//! through them), and no payload hidden inside any comment/literal
//! container may ever leak into the blanked code.

use gauss_lint::lexer::{blank, test_regions};
use proptest::prelude::*;

/// ASCII token soup the generator draws from: balanced and unbalanced
/// delimiters, raw-string openers, escapes, lifetimes, attributes.
const TOKENS: &[&str] = &[
    "fn f() {",
    "}",
    "\n",
    "// line comment with unwrap()\n",
    "/* block */",
    "/*",
    "*/",
    "\"str\"",
    "\"",
    "\\",
    "r#\"raw\"#",
    "r\"raw2\"",
    "b\"bytes\"",
    "br##\"rb\"##",
    "'a'",
    "'x",
    "<'a>",
    "b'q'",
    "b'\\''",
    "&'static str",
    "brush",
    "0b1010",
    "ident",
    "0.5",
    "==",
    ";",
    "#[cfg(test)]",
    "mod t {",
    "#",
];

/// Wraps `payload` in container number `kind`.
fn contain(kind: usize, hashes: usize, payload: &str) -> String {
    let h = "#".repeat(hashes);
    match kind {
        0 => format!("// {payload}\n"),
        1 => format!("/* {payload} */"),
        2 => format!("/* outer /* {payload} */ still */"),
        3 => format!("\"{payload}\""),
        4 => format!("\"esc \\\" {payload}\""),
        5 => format!("r{h}\"{payload}\"{h}"),
        6 => format!("b\"{payload}\""),
        7 => format!("br{h}\"{payload}\"{h}"),
        _ => format!("/// {payload}\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blanking_preserves_length_and_newlines(
        idxs in prop::collection::vec(0usize..TOKENS.len(), 0..40)
    ) {
        let src: String = idxs.iter().map(|&i| TOKENS[i]).collect();
        let b = blank(&src);
        prop_assert_eq!(b.code.len(), src.len(), "blanking must not shift offsets");
        for (i, (sb, cb)) in src.bytes().zip(b.code.bytes()).enumerate() {
            prop_assert_eq!(
                sb == b'\n',
                cb == b'\n',
                "newline structure diverged at byte {} of {:?}",
                i,
                &src
            );
        }
        prop_assert_eq!(b.line_count(), src.split('\n').count());
    }

    #[test]
    fn payloads_never_leak_from_containers(
        (kind, hashes) in (0usize..9, 0usize..4)
    ) {
        let src = format!(
            "fn lib() {{ head(); }}\nlet x = {};\nfn tail_marker() {{}}\n",
            contain(kind, hashes, "SECRET_panic_unwrap")
        );
        let b = blank(&src);
        prop_assert!(
            !b.code.contains("SECRET"),
            "container {} leaked payload into {:?}",
            kind,
            b.code
        );
        prop_assert!(b.code.contains("head();"), "code before survives");
        prop_assert!(b.code.contains("tail_marker"), "code after survives");
    }

    #[test]
    fn char_literal_quotes_never_swallow_code(
        (c, tail) in (0usize..4, 0usize..3)
    ) {
        let lit = ["'q'", "'\\n'", "'\\''", "'\"'"][c];
        let after = ["after();", "x == 0.5;", "let s = \"lit\";"][tail];
        let src = format!("fn f<'a>(v: &'a str) {{ let c = {lit}; {after} }}\n");
        let b = blank(&src);
        prop_assert!(b.code.contains("<'a>"), "lifetime survives in {:?}", b.code);
        // The first identifier of the trailing code must survive blanking
        // (a mis-closed char literal would swallow it).
        let word: String = after
            .chars()
            .take_while(|ch| ch.is_ascii_alphanumeric() || *ch == '_')
            .collect();
        prop_assert!(b.code.contains(&word), "{:?} lost in {:?}", word, b.code);
    }

    #[test]
    fn byte_literals_and_static_lifetimes_never_swallow_code(
        (lit, ctx) in (0usize..6, 0usize..3)
    ) {
        // The ambiguity zone: `b` prefixes, `'static` lifetimes that look
        // like unterminated char literals, and identifiers starting with
        // the raw/byte prefix letters.
        let lit = [
            "b'q'",
            "b'\\''",
            "b\"bytes with ' quote\"",
            "br#\"raw ' bytes\"#",
            "brush_ident",
            "0b1010",
        ][lit];
        let ctx = [
            "fn f(s: &'static str) -> u8",
            "fn f<'a>(s: &'a [u8]) -> u8",
            "fn f() -> u8",
        ][ctx];
        let src = format!("{ctx} {{ let v = {lit}; survivor_marker(); v }}\n");
        let b = blank(&src);
        prop_assert_eq!(b.code.len(), src.len());
        prop_assert!(
            b.code.contains("survivor_marker"),
            "literal {:?} swallowed trailing code in {:?}",
            lit,
            b.code
        );
        prop_assert!(
            b.code.contains("static") || !ctx.contains("static"),
            "'static lifetime must not be treated as a char literal: {:?}",
            b.code
        );
        // String/char payload bytes must be blanked, but identifiers and
        // numeric literals survive verbatim.
        if lit.contains('"') {
            prop_assert!(!b.code.contains("bytes"), "payload leaked: {:?}", b.code);
        } else {
            prop_assert!(b.code.contains(lit.trim_end()) || lit.starts_with("b'"),
                "non-string form {:?} mangled in {:?}", lit, b.code);
        }
    }

    #[test]
    fn cfg_test_gated_item_is_always_a_test_region(
        (before, gate) in (0usize..4, 0usize..2)
    ) {
        let mut src = String::new();
        for i in 0..before {
            src.push_str(&format!("fn lib{i}() {{ work(); }}\n"));
        }
        if gate == 0 {
            src.push_str("#[cfg(test)]\nfn helper() { probe.unwrap(); }\n");
        } else {
            src.push_str("#[cfg(test)]\nmod tests {\n    fn t() { probe.unwrap(); }\n}\n");
        }
        src.push_str("fn after() { more(); }\n");
        let b = blank(&src);
        let regions = test_regions(&b.code);
        prop_assert_eq!(regions.len(), 1);
        let probe = b.code.find("probe").expect("probe survives blanking");
        prop_assert!(
            regions[0].0 < probe && probe < regions[0].1,
            "probe at {} outside region {:?}",
            probe,
            regions[0]
        );
        let after = b.code.find("after").expect("after survives");
        prop_assert!(after > regions[0].1, "code after the item is not gated");
    }
}
