//! Vectorized batch evaluation of Lemma-1 densities over columnar leaves.
//!
//! The query hot path of the Gauss-tree spends most of its CPU time
//! evaluating the joint density `ln p(q|v)` (Lemma 1, see [`crate::combine`])
//! for every entry of every visited leaf. Doing that through per-entry
//! [`Pfv`] objects costs two pointer dereferences per entry (each `Pfv`
//! owns two separate boxed slices), a bounds-checked tuple load per
//! dimension, and a redundant `σv·σv` multiplication per dimension per
//! evaluation.
//!
//! [`ColumnarLeaf`] stores the same data struct-of-arrays: one contiguous
//! per-dimension column for the means, one for the sigmas, and one for the
//! **precomputed variances** `σv²`. Columns are padded to a multiple of
//! [`LANE_WIDTH`](crate::batch::LANE_WIDTH) entries with benign values so kernels can run fixed-width
//! blocks with no scalar tail. Construction additionally precomputes
//! `ln σv` per value and a conservative per-entry peak bound (the
//! log-normalisation constant `Σ −ln σv − d·ln √(2π)`, rounded outward) —
//! see [`ColumnarLeaf::ln_sigma_col`] and [`ColumnarLeaf::log_norm_col`].
//!
//! # The two kernel tiers
//!
//! * [`log_densities`](crate::batch::log_densities) — the **exact** batched kernel, bit-identical to the
//!   scalar path (contract below). This is the refinement tier: every
//!   density that reaches a query result went through it (or through its
//!   single-entry twin [`log_density_one`](crate::batch::log_density_one)).
//! * [`log_densities_upper`](crate::batch::log_densities_upper) — the **fast** tier: conservative per-entry
//!   *upper bounds* on the same densities, built from straight-line
//!   arithmetic ([`crate::fastlog::fast_ln`], reciprocal instead of
//!   `sqrt`+divide) that the auto-vectorizer can keep in SIMD registers.
//!   A bound may overshoot, but it never undershoots: an entry whose bound
//!   falls below the current candidate threshold provably cannot enter the
//!   result, so k-MLIQ can skip its exact evaluation (the paper's
//!   filter-refine design applied at entry granularity).
//!
//! # Bit-identity contract
//!
//! The batched exact kernel computes **bit-identical** results to the
//! scalar path `combine::log_joint(mode, v, q)` for every entry, including
//! NaN propagation and underflow to `-inf`:
//!
//! * the per-dimension term is the same expression tree as
//!   [`crate::gaussian::log_pdf`] (`-s.ln() - LN_SQRT_2PI - 0.5·z²` with
//!   `z = (μq − μv)/s`);
//! * the combined spread is built from the precomputed `σv²` column as
//!   `(σv² + σq²).sqrt()` — the identical multiply/add/sqrt sequence the
//!   scalar [`CombineMode::combine_sigma`] performs, merely with the
//!   `σv·σv` product hoisted to leaf-construction time;
//! * per-entry accumulation runs in dimension order starting from `0.0`,
//!   exactly like the scalar loop.
//!
//! This is also why the exact kernel keeps the per-entry `ln` and division:
//! rewriting `-ln √(σv²+σq²)` as `-½·ln(σv²+σq²)` or multiplying by a
//! precomputed reciprocal would be faster still but changes rounding, and
//! the equivalence tests (and the refinement algorithms' determinism
//! guarantees) demand exact agreement with the scalar path. Those faster
//! rewrites are exactly what the *fast tier* does — which is why it
//! produces bounds, not answers, and why the bit-identity contract lives
//! on the refine tier.

use crate::combine::CombineMode;
use crate::fastlog::{fast_ln, FAST_LN_ABS_ERROR};
use crate::vector::Pfv;
use crate::LN_SQRT_2PI;

/// Leaf columns are padded to a multiple of this many entries so the
/// kernels see fixed-width blocks (a full number of 512-bit lanes of f64).
pub const LANE_WIDTH: usize = 8;

/// Per-dimension outward rounding added to the precomputed peak bound
/// ([`ColumnarLeaf::log_norm_col`]): covers the at-most-few-ulp deviation
/// between `-0.5·ln(σ²)` over the stored (possibly rounded-up) variance
/// and the exact kernel's `-ln s` terms. `|ln σ| ≤ 21` for any admissible
/// σ, so true per-term rounding is `≲ 1e-14`; `1e-12` holds a 100×
/// margin.
pub const PEAK_SLACK_PER_DIM: f64 = 1e-12;

/// Relative slack of the fast-tier upper bound: the bound adds
/// `FAST_TIER_REL_SLACK × Σ|per-dim terms|` on top of the approximate
/// sum. The fast and exact tiers differ by a handful of roundings per
/// term (reciprocal-vs-sqrt, changed association), each `≤ 2⁻⁵²`
/// relative, so `1e-12` exceeds the worst accumulated deviation by more
/// than three orders of magnitude.
pub const FAST_TIER_REL_SLACK: f64 = 1e-12;

/// A struct-of-arrays view of a leaf's probabilistic feature vectors.
///
/// Layout is dimension-major with a padded stride: column `d` of the means
/// occupies `mu[d·stride .. d·stride + len]` where
/// `stride = len.next_multiple_of(LANE_WIDTH)`; the `len..stride` tail of
/// every column holds benign padding (`μ = 0`, `σ = σ² = 1`) that kernels
/// may read but whose results callers must ignore. The `var` column caches
/// `σv²` for the [`CombineMode::Convolution`] spread; the raw `sigma`
/// column serves [`CombineMode::AdditiveSigma`]; `ln_sigma` and the
/// per-entry `log_norm` peak bound serve the fast tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarLeaf {
    len: usize,
    dims: usize,
    stride: usize,
    mu: Box<[f64]>,
    sigma: Box<[f64]>,
    var: Box<[f64]>,
    ln_sigma: Box<[f64]>,
    log_norm: Box<[f64]>,
}

impl ColumnarLeaf {
    /// Transposes `vs` into columnar form, padding each column to a
    /// [`LANE_WIDTH`] multiple and precomputing `σv²`, `ln σv` and the
    /// per-entry peak bound.
    ///
    /// # Panics
    /// Panics if any pfv's dimensionality differs from `dims`.
    #[must_use]
    pub fn from_pfvs<'a>(dims: usize, vs: impl ExactSizeIterator<Item = &'a Pfv>) -> Self {
        let len = vs.len();
        let stride = len.next_multiple_of(LANE_WIDTH);
        let mut mu = vec![0.0f64; dims * stride].into_boxed_slice();
        let mut sigma = vec![1.0f64; dims * stride].into_boxed_slice();
        let mut var = vec![1.0f64; dims * stride].into_boxed_slice();
        let mut ln_sigma = vec![0.0f64; dims * stride].into_boxed_slice();
        let mut log_norm = vec![f64::NEG_INFINITY; stride].into_boxed_slice();
        #[allow(clippy::cast_precision_loss)] // dims is a small page fan-in
        let norm_base = dims as f64 * (PEAK_SLACK_PER_DIM - LN_SQRT_2PI);
        for (e, v) in vs.enumerate() {
            assert_eq!(v.dims(), dims, "dimensionality mismatch in leaf");
            let mut norm = norm_base;
            for (d, (&m, &s)) in v.means().iter().zip(v.sigmas().iter()).enumerate() {
                mu[d * stride + e] = m;
                sigma[d * stride + e] = s;
                var[d * stride + e] = s * s;
                let ls = s.ln();
                ln_sigma[d * stride + e] = ls;
                norm -= ls;
            }
            log_norm[e] = norm;
        }
        Self {
            len,
            dims,
            stride,
            mu,
            sigma,
            var,
            ln_sigma,
            log_norm,
        }
    }

    /// Number of entries in the leaf.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the leaf holds no entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the stored pfv.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Column length including the lane padding (a [`LANE_WIDTH`]
    /// multiple) — the size fast-tier scratch buffers must have.
    #[inline]
    #[must_use]
    pub fn padded_len(&self) -> usize {
        self.stride
    }

    /// The contiguous mean column of dimension `d` (one value per entry,
    /// padding excluded).
    #[inline]
    #[must_use]
    pub fn mu_col(&self, d: usize) -> &[f64] {
        &self.mu[d * self.stride..d * self.stride + self.len]
    }

    /// The contiguous sigma column of dimension `d` (padding excluded).
    #[inline]
    #[must_use]
    pub fn sigma_col(&self, d: usize) -> &[f64] {
        &self.sigma[d * self.stride..d * self.stride + self.len]
    }

    /// The contiguous precomputed `σ²` column of dimension `d` (padding
    /// excluded).
    #[inline]
    #[must_use]
    pub fn var_col(&self, d: usize) -> &[f64] {
        &self.var[d * self.stride..d * self.stride + self.len]
    }

    /// The contiguous precomputed `ln σ` column of dimension `d` (padding
    /// excluded). Computed with `f64::ln` at construction.
    #[inline]
    #[must_use]
    pub fn ln_sigma_col(&self, d: usize) -> &[f64] {
        &self.ln_sigma[d * self.stride..d * self.stride + self.len]
    }

    /// Per-entry conservative **peak bound**: index `e` holds
    /// `Σ_d −ln σv − d·ln √(2π) + d·`[`PEAK_SLACK_PER_DIM`] — an upper
    /// bound on `ln p(q|v)` for *any* query (the combined spread can only
    /// exceed σv, under either [`CombineMode`]). Query-independent, so a
    /// single comparison screens an entry before any kernel work.
    /// Padding lanes hold `-inf` (an absent entry can never qualify).
    #[inline]
    #[must_use]
    pub fn log_norm_col(&self) -> &[f64] {
        &self.log_norm[..self.len]
    }

    fn mu_padded(&self, d: usize) -> &[f64] {
        &self.mu[d * self.stride..(d + 1) * self.stride]
    }

    fn sigma_padded(&self, d: usize) -> &[f64] {
        &self.sigma[d * self.stride..(d + 1) * self.stride]
    }

    fn var_padded(&self, d: usize) -> &[f64] {
        &self.var[d * self.stride..(d + 1) * self.stride]
    }

    /// Reassembles entry `e` as a [`Pfv`] (diagnostics / round-trip tests;
    /// the hot path never calls this).
    ///
    /// # Panics
    /// Panics if `e >= self.len()`.
    #[must_use]
    pub fn pfv(&self, e: usize) -> Pfv {
        assert!(e < self.len, "entry index out of range");
        let means: Vec<f64> = (0..self.dims)
            .map(|d| self.mu[d * self.stride + e])
            .collect();
        let sigmas: Vec<f64> = (0..self.dims)
            .map(|d| self.sigma[d * self.stride + e])
            .collect();
        // lint: allow(no-panic) -- the columnar leaf was built from Pfvs validated at insertion
        Pfv::new(means, sigmas).expect("columnar leaf holds valid pfv")
    }
}

/// Evaluates `ln p(q|v)` (Lemma 1) for **every** entry of `leaf` in one
/// sweep, writing entry `e`'s joint log density to `out[e]`.
///
/// Bit-identical to calling [`crate::combine::log_joint`] per entry — see
/// the [module docs](self) for the exact contract.
///
/// # Panics
/// Panics if `q.dims() != leaf.dims()` or `out.len() != leaf.len()`.
pub fn log_densities(mode: CombineMode, q: &Pfv, leaf: &ColumnarLeaf, out: &mut [f64]) {
    assert_eq!(q.dims(), leaf.dims(), "dimensionality mismatch");
    assert_eq!(out.len(), leaf.len(), "output buffer length mismatch");
    out.fill(0.0);
    for d in 0..leaf.dims() {
        let (mq, sq) = q.component(d);
        let mu = leaf.mu_col(d);
        match mode {
            CombineMode::Convolution => {
                let sq2 = sq * sq;
                let var = leaf.var_col(d);
                for ((o, &m), &va) in out.iter_mut().zip(mu).zip(var) {
                    let s = (va + sq2).sqrt();
                    let z = (mq - m) / s;
                    *o += -s.ln() - LN_SQRT_2PI - 0.5 * z * z;
                }
            }
            CombineMode::AdditiveSigma => {
                let sigma = leaf.sigma_col(d);
                for ((o, &m), &sv) in out.iter_mut().zip(mu).zip(sigma) {
                    let s = sv + sq;
                    let z = (mq - m) / s;
                    *o += -s.ln() - LN_SQRT_2PI - 0.5 * z * z;
                }
            }
        }
    }
}

/// Evaluates `ln p(q|v)` for the single entry `e` of `leaf`, bit-identical
/// to `out[e]` after [`log_densities`] — and therefore to the scalar path.
/// This is the refine-tier kernel: k-MLIQ calls it for exactly the entries
/// whose fast-tier bound survives the candidate threshold.
///
/// # Panics
/// Panics if `q.dims() != leaf.dims()` or `e >= leaf.len()`.
#[must_use]
pub fn log_density_one(mode: CombineMode, q: &Pfv, leaf: &ColumnarLeaf, e: usize) -> f64 {
    assert_eq!(q.dims(), leaf.dims(), "dimensionality mismatch");
    assert!(e < leaf.len(), "entry index out of range");
    let mut acc = 0.0;
    for d in 0..leaf.dims() {
        let (mq, sq) = q.component(d);
        let m = leaf.mu_col(d)[e];
        match mode {
            CombineMode::Convolution => {
                let sq2 = sq * sq;
                let va = leaf.var_col(d)[e];
                let s = (va + sq2).sqrt();
                let z = (mq - m) / s;
                acc += -s.ln() - LN_SQRT_2PI - 0.5 * z * z;
            }
            CombineMode::AdditiveSigma => {
                let sv = leaf.sigma_col(d)[e];
                let s = sv + sq;
                let z = (mq - m) / s;
                acc += -s.ln() - LN_SQRT_2PI - 0.5 * z * z;
            }
        }
    }
    acc
}

/// Reusable scratch for [`log_densities_upper`] (one per query loop; the
/// buffers grow to the largest leaf seen and are then reused).
#[derive(Debug, Clone, Default)]
pub struct FastScratch {
    acc: Vec<f64>,
    mag: Vec<f64>,
}

impl FastScratch {
    /// Empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bounds computed by the last [`log_densities_upper`] call:
    /// index `e < leaf.len()` holds a value `hi` with the guarantee
    /// `!(hi < exact)` — either a finite conservative upper bound on the
    /// exact log density, or NaN when the magnitudes overflowed (NaN
    /// compares false, so a `hi < threshold` screen never skips such an
    /// entry). Padding lanes hold meaningless values.
    #[must_use]
    pub fn upper(&self) -> &[f64] {
        &self.acc
    }
}

/// The fast tier: computes, for every entry of `leaf`, a **conservative
/// upper bound** on `ln p(q|v)` — never below the exact kernel's value —
/// using straight-line vectorisable arithmetic.
///
/// Per dimension the bound evaluates the same mathematical term as the
/// exact kernel but with `-½·fast_ln(σv²+σq²)` in place of
/// `-ln √(σv²+σq²)` and a reciprocal multiply in place of the division
/// (for [`CombineMode::AdditiveSigma`], `fast_ln(σv+σq)` in place of
/// `ln`). Conservativeness comes from three mechanisms, each of which can
/// only *raise* the bound or disable the screen:
///
/// * an additive `dims ×` [`FAST_LN_ABS_ERROR`] term covers the pinned
///   polynomial error of every [`fast_ln`] call;
/// * a relative [`FAST_TIER_REL_SLACK`] `× Σ|terms|` term covers the
///   few-ulp rounding divergence between the two expression trees
///   (reciprocal vs sqrt-divide, different association), with orders of
///   magnitude of margin;
/// * overflow safety: the `ln` argument is clamped to `f64::MAX` (the
///   exact term would be `-inf`, so a finite bound is conservative), a
///   `z²` that overflows to `+inf` drives the magnitude accumulator to
///   `+inf` and the final bound to NaN — and NaN fails every
///   `hi < threshold` comparison, so the entry is refined exactly rather
///   than skipped. Underflow in the reciprocal path only shrinks `z²`,
///   which raises the bound.
///
/// Results land in `scratch` (see [`FastScratch::upper`]); the scratch is
/// resized to [`ColumnarLeaf::padded_len`] and the kernel runs over full
/// padded lanes, so the entry-inner loop has no tail.
///
/// # Panics
/// Panics if `q.dims() != leaf.dims()`.
pub fn log_densities_upper(mode: CombineMode, q: &Pfv, leaf: &ColumnarLeaf, out: &mut FastScratch) {
    assert_eq!(q.dims(), leaf.dims(), "dimensionality mismatch");
    let stride = leaf.padded_len();
    out.acc.clear();
    out.acc.resize(stride, 0.0);
    out.mag.clear();
    out.mag.resize(stride, 0.0);
    for d in 0..leaf.dims() {
        let (mq, sq) = q.component(d);
        let mu = leaf.mu_padded(d);
        match mode {
            CombineMode::Convolution => {
                let sq2 = sq * sq;
                let var = leaf.var_padded(d);
                for ((a, g), (&m, &va)) in out
                    .acc
                    .iter_mut()
                    .zip(out.mag.iter_mut())
                    .zip(mu.iter().zip(var))
                {
                    let t = (va + sq2).min(f64::MAX);
                    let l = 0.5 * fast_ln(t) + LN_SQRT_2PI;
                    let u = 1.0 / t;
                    let dm = mq - m;
                    let z2h = 0.5 * ((dm * u) * dm);
                    *a -= l + z2h;
                    *g += l.abs() + z2h;
                }
            }
            CombineMode::AdditiveSigma => {
                let sigma = leaf.sigma_padded(d);
                for ((a, g), (&m, &sv)) in out
                    .acc
                    .iter_mut()
                    .zip(out.mag.iter_mut())
                    .zip(mu.iter().zip(sigma))
                {
                    let t = (sv + sq).min(f64::MAX);
                    let l = fast_ln(t) + LN_SQRT_2PI;
                    let u = 1.0 / t;
                    let zq = (mq - m) * u;
                    let z2h = 0.5 * (zq * zq);
                    *a -= l + z2h;
                    *g += l.abs() + z2h;
                }
            }
        }
    }
    #[allow(clippy::cast_precision_loss)] // dims is a small page fan-in
    let abs_slack = leaf.dims() as f64 * FAST_LN_ABS_ERROR;
    for (a, &g) in out.acc.iter_mut().zip(out.mag.iter()) {
        *a += abs_slack + FAST_TIER_REL_SLACK * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine;

    fn sample_leaf(dims: usize, n: usize, seed: u64) -> (Vec<Pfv>, ColumnarLeaf) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let vs: Vec<Pfv> = (0..n)
            .map(|_| {
                let means: Vec<f64> = (0..dims).map(|_| next() * 20.0 - 10.0).collect();
                let sigmas: Vec<f64> = (0..dims).map(|_| 0.01 + next()).collect();
                Pfv::new(means, sigmas).unwrap()
            })
            .collect();
        let leaf = ColumnarLeaf::from_pfvs(dims, vs.iter());
        (vs, leaf)
    }

    #[test]
    fn columns_are_a_transpose() {
        let (vs, leaf) = sample_leaf(4, 7, 99);
        assert_eq!(leaf.len(), 7);
        assert_eq!(leaf.dims(), 4);
        for (e, v) in vs.iter().enumerate() {
            for d in 0..4 {
                assert_eq!(leaf.mu_col(d)[e], v.means()[d]);
                assert_eq!(leaf.sigma_col(d)[e], v.sigmas()[d]);
                assert_eq!(leaf.var_col(d)[e], v.sigmas()[d] * v.sigmas()[d]);
                assert_eq!(leaf.ln_sigma_col(d)[e], v.sigmas()[d].ln());
            }
            assert_eq!(leaf.pfv(e), *v);
        }
    }

    #[test]
    fn columns_are_padded_to_lane_multiples() {
        for n in [0usize, 1, 7, 8, 9, 48] {
            let (_, leaf) = sample_leaf(3, n, 17);
            assert_eq!(leaf.padded_len() % LANE_WIDTH, 0);
            assert!(leaf.padded_len() >= n);
            assert!(leaf.padded_len() < n + LANE_WIDTH);
            // Unpadded accessors never expose padding lanes.
            for d in 0..3 {
                assert_eq!(leaf.mu_col(d).len(), n);
                assert_eq!(leaf.sigma_col(d).len(), n);
                assert_eq!(leaf.var_col(d).len(), n);
                assert_eq!(leaf.ln_sigma_col(d).len(), n);
            }
            assert_eq!(leaf.log_norm_col().len(), n);
        }
    }

    #[test]
    fn log_norm_bounds_every_density() {
        let (vs, leaf) = sample_leaf(6, 33, 321);
        let q = Pfv::new(vec![0.25; 6], vec![0.15; 6]).unwrap();
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            for (e, v) in vs.iter().enumerate() {
                let exact = combine::log_joint(mode, v, &q);
                assert!(
                    leaf.log_norm_col()[e] >= exact,
                    "peak bound below density for entry {e} ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn batched_is_bit_identical_to_scalar() {
        let (vs, leaf) = sample_leaf(10, 48, 2024);
        let q = Pfv::new(vec![0.5; 10], vec![0.2; 10]).unwrap();
        let mut out = vec![f64::NAN; leaf.len()];
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            log_densities(mode, &q, &leaf, &mut out);
            for (v, &got) in vs.iter().zip(out.iter()) {
                let want = combine::log_joint(mode, v, &q);
                assert_eq!(got.to_bits(), want.to_bits(), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn single_entry_kernel_is_bit_identical_to_batch() {
        // Leaf sizes chosen to exercise non-trivial padding tails.
        for n in [1usize, 5, 8, 21, 48] {
            let (_, leaf) = sample_leaf(7, n, 1000 + n as u64);
            let q = Pfv::new(vec![0.1; 7], vec![0.3; 7]).unwrap();
            let mut out = vec![f64::NAN; leaf.len()];
            for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
                log_densities(mode, &q, &leaf, &mut out);
                for (e, &want) in out.iter().enumerate() {
                    let got = log_density_one(mode, &q, &leaf, e);
                    assert_eq!(got.to_bits(), want.to_bits(), "entry {e} mode {mode:?}");
                }
            }
        }
    }

    #[test]
    fn fast_tier_never_undershoots_the_exact_density() {
        for (dims, n, seed) in [(2usize, 13usize, 5u64), (10, 48, 2024), (27, 30, 77)] {
            let (_, leaf) = sample_leaf(dims, n, seed);
            let mut exact = vec![0.0; leaf.len()];
            let mut scratch = FastScratch::new();
            for qseed in 0..8u64 {
                let (qs, _) = sample_leaf(dims, 1, 9000 + qseed);
                let q = &qs[0];
                for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
                    log_densities(mode, q, &leaf, &mut exact);
                    log_densities_upper(mode, q, &leaf, &mut scratch);
                    assert_eq!(scratch.upper().len(), leaf.padded_len());
                    for (e, &want) in exact.iter().enumerate() {
                        let hi = scratch.upper()[e];
                        // The screening guarantee: `hi < want` must never
                        // hold (NaN bounds pass vacuously).
                        assert!(
                            hi.is_nan() || hi >= want,
                            "fast bound {hi} under exact {want} (entry {e}, {mode:?}, d={dims})"
                        );
                        // And the bound is tight enough to be useful.
                        if hi.is_finite() && want.is_finite() {
                            assert!(hi - want < 1e-6 * (1.0 + want.abs()));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fast_tier_is_safe_under_underflow_and_overflow() {
        // A query astronomically far away: exact densities are -inf; the
        // fast bound must not compare below them (NaN or any value is
        // fine — `!(hi < -inf)` always holds; this documents no panic and
        // no bogus finite "skip" path).
        let (_, leaf) = sample_leaf(3, 9, 7);
        let q = Pfv::new(vec![1e200; 3], vec![0.1; 3]).unwrap();
        let mut scratch = FastScratch::new();
        let mut exact = vec![0.0; leaf.len()];
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            log_densities(mode, &q, &leaf, &mut exact);
            log_densities_upper(mode, &q, &leaf, &mut scratch);
            for (e, &want) in exact.iter().enumerate() {
                assert_eq!(want, f64::NEG_INFINITY);
                let hi = scratch.upper()[e];
                assert!(hi.is_nan() || hi >= want, "entry {e} mode {mode:?}");
            }
        }
    }

    #[test]
    fn padding_lanes_do_not_contribute() {
        // Two leaves sharing a 5-entry prefix, one with 3 extra entries:
        // the shared entries' exact densities and fast bounds must be
        // bit-identical, i.e. results depend only on the entry, never on
        // the padding or on neighbours.
        let (vs, _) = sample_leaf(4, 8, 4242);
        let short = ColumnarLeaf::from_pfvs(4, vs[..5].iter());
        let long = ColumnarLeaf::from_pfvs(4, vs.iter());
        let q = Pfv::new(vec![0.4; 4], vec![0.2; 4]).unwrap();
        let mut out_s = vec![0.0; 5];
        let mut out_l = vec![0.0; 8];
        let (mut fs, mut fl) = (FastScratch::new(), FastScratch::new());
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            log_densities(mode, &q, &short, &mut out_s);
            log_densities(mode, &q, &long, &mut out_l);
            log_densities_upper(mode, &q, &short, &mut fs);
            log_densities_upper(mode, &q, &long, &mut fl);
            for e in 0..5 {
                assert_eq!(out_s[e].to_bits(), out_l[e].to_bits());
                assert_eq!(fs.upper()[e].to_bits(), fl.upper()[e].to_bits());
            }
        }
    }

    #[test]
    fn underflow_maps_to_neg_infinity_like_scalar() {
        // A query astronomically far from every entry: z² overflows and the
        // density underflows to -inf, exactly as in the scalar path.
        let (vs, leaf) = sample_leaf(3, 5, 7);
        let q = Pfv::new(vec![1e200; 3], vec![0.1; 3]).unwrap();
        let mut out = vec![0.0; leaf.len()];
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
        for (v, &got) in vs.iter().zip(out.iter()) {
            let want = combine::log_joint(CombineMode::Convolution, v, &q);
            assert_eq!(got.to_bits(), want.to_bits());
            assert_eq!(got, f64::NEG_INFINITY);
        }
    }

    #[test]
    fn empty_leaf_is_fine() {
        let leaf = ColumnarLeaf::from_pfvs(2, std::iter::empty::<&Pfv>());
        assert!(leaf.is_empty());
        assert_eq!(leaf.padded_len(), 0);
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        let mut out: Vec<f64> = Vec::new();
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
        let mut scratch = FastScratch::new();
        log_densities_upper(CombineMode::Convolution, &q, &leaf, &mut scratch);
        assert!(scratch.upper().is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_query_dims() {
        let (_, leaf) = sample_leaf(3, 4, 1);
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        let mut out = vec![0.0; 4];
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn rejects_short_output() {
        let (_, leaf) = sample_leaf(2, 4, 1);
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        let mut out = vec![0.0; 3];
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
    }
}
