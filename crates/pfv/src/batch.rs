//! Vectorized batch evaluation of Lemma-1 densities over columnar leaves.
//!
//! The query hot path of the Gauss-tree spends most of its CPU time
//! evaluating the joint density `ln p(q|v)` (Lemma 1, see [`crate::combine`])
//! for every entry of every visited leaf. Doing that through per-entry
//! [`Pfv`] objects costs two pointer dereferences per entry (each `Pfv`
//! owns two separate boxed slices), a bounds-checked tuple load per
//! dimension, and a redundant `σv·σv` multiplication per dimension per
//! evaluation.
//!
//! [`ColumnarLeaf`] stores the same data struct-of-arrays: one contiguous
//! per-dimension column for the means, one for the sigmas, and one for the
//! **precomputed variances** `σv²`. [`log_densities`](crate::batch::log_densities) then evaluates a whole
//! leaf against one query with a dimension-outer / entry-inner loop whose
//! inner body reads three contiguous streams — the layout the
//! auto-vectorizer and the prefetcher both want.
//!
//! # Bit-identity contract
//!
//! The batched kernel computes **bit-identical** results to the scalar path
//! `combine::log_joint(mode, v, q)` for every entry, including NaN
//! propagation and underflow to `-inf`:
//!
//! * the per-dimension term is the same expression tree as
//!   [`crate::gaussian::log_pdf`] (`-s.ln() - LN_SQRT_2PI - 0.5·z²` with
//!   `z = (μq − μv)/s`);
//! * the combined spread is built from the precomputed `σv²` column as
//!   `(σv² + σq²).sqrt()` — the identical multiply/add/sqrt sequence the
//!   scalar [`CombineMode::combine_sigma`] performs, merely with the
//!   `σv·σv` product hoisted to leaf-construction time;
//! * per-entry accumulation runs in dimension order starting from `0.0`,
//!   exactly like the scalar loop.
//!
//! This is also why the kernel keeps the per-entry `ln` and division:
//! rewriting `-ln √(σv²+σq²)` as `-½·ln(σv²+σq²)` or multiplying by a
//! precomputed reciprocal would be faster still but changes rounding, and
//! the equivalence tests (and the refinement algorithms' determinism
//! guarantees) demand exact agreement with the scalar path. The measured
//! win comes from the memory layout, the hoisted products and the removed
//! per-entry call overhead — `kernel_bench` quantifies it.

use crate::combine::CombineMode;
use crate::vector::Pfv;
use crate::LN_SQRT_2PI;

/// A struct-of-arrays view of a leaf's probabilistic feature vectors.
///
/// Layout is dimension-major: column `d` of the means occupies
/// `mu[d·len .. (d+1)·len]`, so evaluating dimension `d` for all entries
/// streams one contiguous slice per column. The `var` column caches
/// `σv²` for the [`CombineMode::Convolution`] spread; the raw `sigma`
/// column serves [`CombineMode::AdditiveSigma`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarLeaf {
    len: usize,
    dims: usize,
    mu: Box<[f64]>,
    sigma: Box<[f64]>,
    var: Box<[f64]>,
}

impl ColumnarLeaf {
    /// Transposes `vs` into columnar form.
    ///
    /// # Panics
    /// Panics if any pfv's dimensionality differs from `dims`.
    #[must_use]
    pub fn from_pfvs<'a>(dims: usize, vs: impl ExactSizeIterator<Item = &'a Pfv>) -> Self {
        let len = vs.len();
        let mut mu = vec![0.0f64; dims * len].into_boxed_slice();
        let mut sigma = vec![0.0f64; dims * len].into_boxed_slice();
        let mut var = vec![0.0f64; dims * len].into_boxed_slice();
        for (e, v) in vs.enumerate() {
            assert_eq!(v.dims(), dims, "dimensionality mismatch in leaf");
            for (d, (&m, &s)) in v.means().iter().zip(v.sigmas().iter()).enumerate() {
                mu[d * len + e] = m;
                sigma[d * len + e] = s;
                var[d * len + e] = s * s;
            }
        }
        Self {
            len,
            dims,
            mu,
            sigma,
            var,
        }
    }

    /// Number of entries in the leaf.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the leaf holds no entries.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the stored pfv.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The contiguous mean column of dimension `d` (one value per entry).
    #[inline]
    #[must_use]
    pub fn mu_col(&self, d: usize) -> &[f64] {
        &self.mu[d * self.len..(d + 1) * self.len]
    }

    /// The contiguous sigma column of dimension `d`.
    #[inline]
    #[must_use]
    pub fn sigma_col(&self, d: usize) -> &[f64] {
        &self.sigma[d * self.len..(d + 1) * self.len]
    }

    /// The contiguous precomputed `σ²` column of dimension `d`.
    #[inline]
    #[must_use]
    pub fn var_col(&self, d: usize) -> &[f64] {
        &self.var[d * self.len..(d + 1) * self.len]
    }

    /// Reassembles entry `e` as a [`Pfv`] (diagnostics / round-trip tests;
    /// the hot path never calls this).
    ///
    /// # Panics
    /// Panics if `e >= self.len()`.
    #[must_use]
    pub fn pfv(&self, e: usize) -> Pfv {
        assert!(e < self.len, "entry index out of range");
        let means: Vec<f64> = (0..self.dims).map(|d| self.mu[d * self.len + e]).collect();
        let sigmas: Vec<f64> = (0..self.dims)
            .map(|d| self.sigma[d * self.len + e])
            .collect();
        // lint: allow(no-panic) -- the columnar leaf was built from Pfvs validated at insertion
        Pfv::new(means, sigmas).expect("columnar leaf holds valid pfv")
    }
}

/// Evaluates `ln p(q|v)` (Lemma 1) for **every** entry of `leaf` in one
/// sweep, writing entry `e`'s joint log density to `out[e]`.
///
/// Bit-identical to calling [`crate::combine::log_joint`] per entry — see
/// the [module docs](self) for the exact contract.
///
/// # Panics
/// Panics if `q.dims() != leaf.dims()` or `out.len() != leaf.len()`.
pub fn log_densities(mode: CombineMode, q: &Pfv, leaf: &ColumnarLeaf, out: &mut [f64]) {
    assert_eq!(q.dims(), leaf.dims(), "dimensionality mismatch");
    assert_eq!(out.len(), leaf.len(), "output buffer length mismatch");
    out.fill(0.0);
    for d in 0..leaf.dims() {
        let (mq, sq) = q.component(d);
        let mu = leaf.mu_col(d);
        match mode {
            CombineMode::Convolution => {
                let sq2 = sq * sq;
                let var = leaf.var_col(d);
                for ((o, &m), &va) in out.iter_mut().zip(mu).zip(var) {
                    let s = (va + sq2).sqrt();
                    let z = (mq - m) / s;
                    *o += -s.ln() - LN_SQRT_2PI - 0.5 * z * z;
                }
            }
            CombineMode::AdditiveSigma => {
                let sigma = leaf.sigma_col(d);
                for ((o, &m), &sv) in out.iter_mut().zip(mu).zip(sigma) {
                    let s = sv + sq;
                    let z = (mq - m) / s;
                    *o += -s.ln() - LN_SQRT_2PI - 0.5 * z * z;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine;

    fn sample_leaf(dims: usize, n: usize, seed: u64) -> (Vec<Pfv>, ColumnarLeaf) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let vs: Vec<Pfv> = (0..n)
            .map(|_| {
                let means: Vec<f64> = (0..dims).map(|_| next() * 20.0 - 10.0).collect();
                let sigmas: Vec<f64> = (0..dims).map(|_| 0.01 + next()).collect();
                Pfv::new(means, sigmas).unwrap()
            })
            .collect();
        let leaf = ColumnarLeaf::from_pfvs(dims, vs.iter());
        (vs, leaf)
    }

    #[test]
    fn columns_are_a_transpose() {
        let (vs, leaf) = sample_leaf(4, 7, 99);
        assert_eq!(leaf.len(), 7);
        assert_eq!(leaf.dims(), 4);
        for (e, v) in vs.iter().enumerate() {
            for d in 0..4 {
                assert_eq!(leaf.mu_col(d)[e], v.means()[d]);
                assert_eq!(leaf.sigma_col(d)[e], v.sigmas()[d]);
                assert_eq!(leaf.var_col(d)[e], v.sigmas()[d] * v.sigmas()[d]);
            }
            assert_eq!(leaf.pfv(e), *v);
        }
    }

    #[test]
    fn batched_is_bit_identical_to_scalar() {
        let (vs, leaf) = sample_leaf(10, 48, 2024);
        let q = Pfv::new(vec![0.5; 10], vec![0.2; 10]).unwrap();
        let mut out = vec![f64::NAN; leaf.len()];
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            log_densities(mode, &q, &leaf, &mut out);
            for (v, &got) in vs.iter().zip(out.iter()) {
                let want = combine::log_joint(mode, v, &q);
                assert_eq!(got.to_bits(), want.to_bits(), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn underflow_maps_to_neg_infinity_like_scalar() {
        // A query astronomically far from every entry: z² overflows and the
        // density underflows to -inf, exactly as in the scalar path.
        let (vs, leaf) = sample_leaf(3, 5, 7);
        let q = Pfv::new(vec![1e200; 3], vec![0.1; 3]).unwrap();
        let mut out = vec![0.0; leaf.len()];
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
        for (v, &got) in vs.iter().zip(out.iter()) {
            let want = combine::log_joint(CombineMode::Convolution, v, &q);
            assert_eq!(got.to_bits(), want.to_bits());
            assert_eq!(got, f64::NEG_INFINITY);
        }
    }

    #[test]
    fn empty_leaf_is_fine() {
        let leaf = ColumnarLeaf::from_pfvs(2, std::iter::empty::<&Pfv>());
        assert!(leaf.is_empty());
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        let mut out: Vec<f64> = Vec::new();
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_query_dims() {
        let (_, leaf) = sample_leaf(3, 4, 1);
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        let mut out = vec![0.0; 4];
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
    }

    #[test]
    #[should_panic(expected = "output buffer")]
    fn rejects_short_output() {
        let (_, leaf) = sample_leaf(2, 4, 1);
        let q = Pfv::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap();
        let mut out = vec![0.0; 3];
        log_densities(CombineMode::Convolution, &q, &leaf, &mut out);
    }
}
