//! Bayesian identification probabilities (paper §3/§4).
//!
//! Given a query pfv `q` and a database `DB = {v₁ … vₙ}` of pfv, the
//! probability that `q` and `v` describe the same real-world object — under
//! the condition that `q` matches *some* database object and with uniform
//! priors `P(v)` — is
//!
//! ```text
//! P(v|q) = p(q|v) / Σ_{w ∈ DB} p(q|w)
//! ```
//!
//! The densities `p(q|v)` come from Lemma 1 (`combine`). The posterior sum
//! over all retrieved objects never exceeds 1 (Property 1 of §4), equals
//! `1/n` in the limit of total ignorance (Property 3), and tends to 0 for
//! disjoint Gaussians (Property 4). These properties are exercised in the
//! unit tests below.

use crate::combine::{log_joint, CombineMode};
use crate::logsum::log_sum_exp;
use crate::vector::Pfv;

/// The posterior of one database object for a given query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Index of the object in the database slice passed in.
    pub index: usize,
    /// `ln p(q|v)` — the relative (unnormalised) log density.
    pub log_density: f64,
    /// `P(v|q)` — the normalised identification probability.
    pub probability: f64,
}

/// Computes `P(vᵢ|q)` for every object of `db`.
///
/// Runs the §4 "general solution": one pass for the densities, one log-sum-exp
/// for the denominator. `O(n·d)` time, `O(n)` space.
///
/// # Panics
/// Panics if any object's dimensionality differs from the query's.
#[must_use]
pub fn posteriors(mode: CombineMode, db: &[Pfv], q: &Pfv) -> Vec<Posterior> {
    let log_densities: Vec<f64> = db.iter().map(|v| log_joint(mode, v, q)).collect();
    let log_denominator = log_sum_exp(&log_densities);
    log_densities
        .into_iter()
        .enumerate()
        .map(|(index, log_density)| Posterior {
            index,
            log_density,
            probability: if log_denominator == f64::NEG_INFINITY {
                0.0
            } else {
                (log_density - log_denominator).exp()
            },
        })
        .collect()
}

/// Posterior of a single object given a precomputed log denominator.
#[inline]
#[must_use]
pub fn posterior(log_density: f64, log_denominator: f64) -> f64 {
    if log_denominator == f64::NEG_INFINITY {
        0.0
    } else {
        (log_density - log_denominator).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db3() -> Vec<Pfv> {
        vec![
            Pfv::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap(),
            Pfv::new(vec![5.0, 5.0], vec![0.5, 0.5]).unwrap(),
            Pfv::new(vec![-5.0, 5.0], vec![0.5, 0.5]).unwrap(),
        ]
    }

    #[test]
    fn posteriors_sum_to_one() {
        // Property 1: Σ P(v|q) == 1 over the whole database.
        let db = db3();
        let q = Pfv::new(vec![0.2, -0.1], vec![0.3, 0.3]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        let total: f64 = ps.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn close_match_dominates() {
        let db = db3();
        let q = Pfv::new(vec![0.1, 0.0], vec![0.2, 0.2]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        assert!(ps[0].probability > 0.999);
    }

    #[test]
    fn total_ignorance_tends_to_uniform() {
        // Property 3: σq → ∞ ⇒ P(v|q) → 1/n.
        let db = db3();
        let q = Pfv::new(vec![0.0, 0.0], vec![1e6, 1e6]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        for p in &ps {
            assert!(
                (p.probability - 1.0 / 3.0).abs() < 1e-3,
                "expected ~1/3, got {}",
                p.probability
            );
        }
    }

    #[test]
    fn uncertain_database_object_tends_to_uniform_too() {
        // Property 3 also holds when the *database* objects are uncertain.
        let db = vec![
            Pfv::new(vec![0.0], vec![1e6]).unwrap(),
            Pfv::new(vec![100.0], vec![1e6]).unwrap(),
        ];
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        assert!((ps[0].probability - 0.5).abs() < 1e-3);
    }

    #[test]
    fn disjoint_gaussians_probability_near_zero() {
        // Property 4.
        let db = vec![
            Pfv::new(vec![0.0], vec![0.1]).unwrap(),
            Pfv::new(vec![100.0], vec![0.1]).unwrap(),
        ];
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        assert!(ps[1].probability < 1e-100);
    }

    #[test]
    fn empty_database_yields_no_posteriors() {
        let q = Pfv::new(vec![0.0], vec![0.1]).unwrap();
        assert!(posteriors(CombineMode::Convolution, &[], &q).is_empty());
    }

    #[test]
    fn ranking_by_probability_equals_ranking_by_density() {
        // The denominator is shared, so the orderings must agree — this is
        // why k-MLIQ only needs relative densities (paper §5.2.1).
        let db = db3();
        let q = Pfv::new(vec![1.0, 2.0], vec![0.4, 0.4]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        let mut by_density: Vec<usize> = (0..ps.len()).collect();
        by_density.sort_by(|&a, &b| ps[b].log_density.total_cmp(&ps[a].log_density));
        let mut by_prob: Vec<usize> = (0..ps.len()).collect();
        by_prob.sort_by(|&a, &b| ps[b].probability.total_cmp(&ps[a].probability));
        assert_eq!(by_density, by_prob);
    }

    #[test]
    fn high_dimensional_posteriors_remain_normalised() {
        // 27 dims like data set 1: linear-space densities would underflow.
        let d = 27;
        let db: Vec<Pfv> = (0..10)
            .map(|i| {
                let means = vec![i as f64; d];
                Pfv::new(means, vec![0.01; d]).unwrap()
            })
            .collect();
        let q = Pfv::new(vec![3.0; d], vec![0.01; d]).unwrap();
        let ps = posteriors(CombineMode::Convolution, &db, &q);
        let total: f64 = ps.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(ps[3].probability > 0.999_999);
    }
}
