//! Lemma 1 — the joint probability of two probabilistic features.
//!
//! For a database feature `v = (μv, σv)` and a query feature `q = (μq, σq)`
//! the probability density that both observations stem from the *same* true
//! value is
//!
//! ```text
//! p(q|v) = ∫ N_{μv,σv}(x) · N_{μq,σq}(x) dx
//! ```
//!
//! The paper states the result as `N_{μv, σv+σq}(μq)`, but its pdf notation
//! is ambiguous about σ vs σ². The exact value of this integral is a
//! Gaussian in `μq − μv` with **variance** `σv² + σq²`:
//!
//! ```text
//! ∫ N_{μv,σv}(x)·N_{μq,σq}(x) dx = N(μv, √(σv²+σq²))(μq)
//! ```
//!
//! (the convolution of the two Gaussians evaluated at the mean difference).
//! We support both readings via [`CombineMode`]:
//!
//! * [`CombineMode::Convolution`] — the mathematically exact combination
//!   (default);
//! * [`CombineMode::AdditiveSigma`] — the literal formula printed in the
//!   paper, which adds standard deviations.
//!
//! Both are monotone in σv for fixed σq, which is all the Gauss-tree's
//! conservative bounds require (see `hull`), so correctness of the index is
//! unaffected by the choice; only the absolute probability values differ.
//! The `ablation_combine` benchmark quantifies the difference.

use crate::vector::Pfv;

/// How the uncertainties of query and database object are combined when
/// evaluating Lemma 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombineMode {
    /// Exact product-integral: combined spread `√(σv² + σq²)`.
    #[default]
    Convolution,
    /// Paper-literal: combined spread `σv + σq`.
    AdditiveSigma,
}

impl CombineMode {
    /// Combined standard deviation of a database σ and a query σ.
    #[inline]
    #[must_use]
    pub fn combine_sigma(self, sigma_v: f64, sigma_q: f64) -> f64 {
        match self {
            CombineMode::Convolution => (sigma_v * sigma_v + sigma_q * sigma_q).sqrt(),
            CombineMode::AdditiveSigma => sigma_v + sigma_q,
        }
    }
}

/// `ln p(qᵢ|vᵢ)` for one probabilistic feature (Lemma 1).
#[inline]
#[must_use]
pub fn log_joint_1d(mode: CombineMode, mu_v: f64, sigma_v: f64, mu_q: f64, sigma_q: f64) -> f64 {
    let s = mode.combine_sigma(sigma_v, sigma_q);
    crate::gaussian::log_pdf(mu_v, s, mu_q)
}

/// Linear-space `p(qᵢ|vᵢ)` for one feature.
#[inline]
#[must_use]
pub fn joint_1d(mode: CombineMode, mu_v: f64, sigma_v: f64, mu_q: f64, sigma_q: f64) -> f64 {
    log_joint_1d(mode, mu_v, sigma_v, mu_q, sigma_q).exp()
}

/// `ln p(q|v) = Σᵢ ln p(qᵢ|vᵢ)` — the multivariate joint log density of a
/// query pfv and a database pfv.
///
/// # Panics
/// Panics if dimensionalities differ.
#[must_use]
pub fn log_joint(mode: CombineMode, v: &Pfv, q: &Pfv) -> f64 {
    assert_eq!(v.dims(), q.dims(), "dimensionality mismatch");
    let mut acc = 0.0;
    for i in 0..v.dims() {
        let (mv, sv) = v.component(i);
        let (mq, sq) = q.component(i);
        acc += log_joint_1d(mode, mv, sv, mq, sq);
    }
    acc
}

/// Linear-space `p(q|v)`. Underflows for high dimensionality; prefer
/// [`log_joint`].
#[must_use]
pub fn joint(mode: CombineMode, v: &Pfv, q: &Pfv) -> f64 {
    log_joint(mode, v, q).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::integrate_adaptive;

    /// The defining integral of Lemma 1, evaluated numerically.
    fn numeric_joint(mu_v: f64, sigma_v: f64, mu_q: f64, sigma_q: f64) -> f64 {
        let lo = (mu_v - 10.0 * sigma_v).min(mu_q - 10.0 * sigma_q);
        let hi = (mu_v + 10.0 * sigma_v).max(mu_q + 10.0 * sigma_q);
        integrate_adaptive(
            |x| crate::gaussian::pdf(mu_v, sigma_v, x) * crate::gaussian::pdf(mu_q, sigma_q, x),
            lo,
            hi,
            1e-12,
        )
    }

    #[test]
    fn convolution_matches_defining_integral() {
        for &(mv, sv, mq, sq) in &[
            (0.0, 1.0, 0.0, 1.0),
            (0.0, 1.0, 2.0, 0.5),
            (3.0, 0.2, 3.1, 0.9),
            (-5.0, 4.0, 5.0, 4.0),
            (0.0, 0.05, 0.2, 0.01),
        ] {
            let exact = joint_1d(CombineMode::Convolution, mv, sv, mq, sq);
            let numeric = numeric_joint(mv, sv, mq, sq);
            assert!(
                (exact - numeric).abs() <= 1e-8 * numeric.max(1e-30),
                "Lemma 1 mismatch at ({mv},{sv},{mq},{sq}): exact={exact}, numeric={numeric}"
            );
        }
    }

    #[test]
    fn additive_mode_differs_but_is_close_for_small_sigma() {
        // When one σ dominates, both modes approach each other.
        let a = joint_1d(CombineMode::Convolution, 0.0, 1.0, 0.5, 1e-6);
        let b = joint_1d(CombineMode::AdditiveSigma, 0.0, 1.0, 0.5, 1e-6);
        assert!((a - b).abs() < 1e-5 * a);
        // With comparable σ they differ measurably.
        let a = joint_1d(CombineMode::Convolution, 0.0, 1.0, 0.5, 1.0);
        let b = joint_1d(CombineMode::AdditiveSigma, 0.0, 1.0, 0.5, 1.0);
        assert!((a - b).abs() > 1e-3 * a);
    }

    #[test]
    fn joint_is_symmetric_in_query_and_object() {
        // p(q|v) == p(v|q) by symmetry of the defining integral.
        let v = Pfv::new(vec![1.0, 2.0], vec![0.3, 0.4]).unwrap();
        let q = Pfv::new(vec![1.5, 1.0], vec![0.7, 0.2]).unwrap();
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            assert!((log_joint(mode, &v, &q) - log_joint(mode, &q, &v)).abs() < 1e-12);
        }
    }

    #[test]
    fn joint_decreases_with_increasing_uncertainty_at_match() {
        // Property 2 of §4: with μq == μv, increasing σ lowers the density.
        let mut prev = f64::INFINITY;
        for i in 1..20 {
            let s = i as f64 * 0.1;
            let p = joint_1d(CombineMode::Convolution, 0.0, s, 0.0, 0.1);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn joint_increases_with_uncertainty_when_disjoint() {
        // Property 4 of §4: for quite-disjoint Gaussians the density slightly
        // increases with σ (the object can no longer be excluded).
        let far = 10.0;
        let p_small = joint_1d(CombineMode::Convolution, 0.0, 0.1, far, 0.1);
        let p_large = joint_1d(CombineMode::Convolution, 0.0, 2.0, far, 0.1);
        assert!(p_large > p_small);
    }

    #[test]
    fn multivariate_is_product_of_univariate() {
        let v = Pfv::new(vec![0.0, 1.0, 2.0], vec![0.5, 0.6, 0.7]).unwrap();
        let q = Pfv::new(vec![0.1, 0.9, 2.2], vec![0.2, 0.3, 0.4]).unwrap();
        let want: f64 = (0..3)
            .map(|i| {
                let (mv, sv) = v.component(i);
                let (mq, sq) = q.component(i);
                log_joint_1d(CombineMode::Convolution, mv, sv, mq, sq)
            })
            .sum();
        assert!((log_joint(CombineMode::Convolution, &v, &q) - want).abs() < 1e-14);
    }

    #[test]
    fn high_dimensional_joint_stays_finite_in_log_space() {
        let d = 100;
        let v = Pfv::new(vec![0.0; d], vec![1e-4; d]).unwrap();
        let q = Pfv::new(vec![0.0; d], vec![1e-4; d]).unwrap();
        let l = log_joint(CombineMode::Convolution, &v, &q);
        assert!(l.is_finite());
        assert!(l > 500.0, "narrow match should have large log density");
        // linear space would overflow to inf:
        assert!(l.exp().is_infinite());
    }
}
