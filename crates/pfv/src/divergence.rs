//! Divergences and similarity coefficients between probabilistic feature
//! vectors.
//!
//! The Lemma-1 joint density is the paper's similarity primitive, but
//! uncertain-data applications routinely need the classic information-
//! theoretic measures between the underlying diagonal Gaussians too. All of
//! them have closed forms for diagonal covariances and are exercised by the
//! unit tests against their defining properties.

use crate::vector::Pfv;

/// Kullback–Leibler divergence `KL(p ‖ q)` between the diagonal Gaussians
/// of two pfv, in nats.
///
/// Closed form per dimension:
/// `ln(σq/σp) + (σp² + (μp−μq)²)/(2σq²) − ½`.
///
/// # Panics
/// Panics on dimensionality mismatch.
#[must_use]
pub fn kl_divergence(p: &Pfv, q: &Pfv) -> f64 {
    assert_eq!(p.dims(), q.dims(), "dimensionality mismatch");
    let mut acc = 0.0;
    for i in 0..p.dims() {
        let (mp, sp) = p.component(i);
        let (mq, sq) = q.component(i);
        let var_q = sq * sq;
        acc += (sq / sp).ln() + (sp * sp + (mp - mq) * (mp - mq)) / (2.0 * var_q) - 0.5;
    }
    acc
}

/// Symmetrised KL divergence `½(KL(p‖q) + KL(q‖p))`.
#[must_use]
pub fn symmetric_kl(p: &Pfv, q: &Pfv) -> f64 {
    0.5 * (kl_divergence(p, q) + kl_divergence(q, p))
}

/// Bhattacharyya distance between the diagonal Gaussians of two pfv.
///
/// Per dimension:
/// `¼·(μp−μq)²/(σp²+σq²) + ½·ln((σp²+σq²)/(2σpσq))`.
///
/// # Panics
/// Panics on dimensionality mismatch.
#[must_use]
pub fn bhattacharyya_distance(p: &Pfv, q: &Pfv) -> f64 {
    assert_eq!(p.dims(), q.dims(), "dimensionality mismatch");
    let mut acc = 0.0;
    for i in 0..p.dims() {
        let (mp, sp) = p.component(i);
        let (mq, sq) = q.component(i);
        let var_sum = sp * sp + sq * sq;
        acc += 0.25 * (mp - mq) * (mp - mq) / var_sum + 0.5 * (var_sum / (2.0 * sp * sq)).ln();
    }
    acc
}

/// Bhattacharyya coefficient `BC = exp(−D_B) ∈ (0, 1]` — 1 iff the
/// distributions coincide.
#[must_use]
pub fn bhattacharyya_coefficient(p: &Pfv, q: &Pfv) -> f64 {
    (-bhattacharyya_distance(p, q)).exp()
}

/// Mahalanobis distance of an exact point `x` from the pfv's distribution:
/// `√(Σᵢ (xᵢ−μᵢ)²/σᵢ²)`.
///
/// # Panics
/// Panics on dimensionality mismatch.
#[must_use]
pub fn mahalanobis(p: &Pfv, x: &[f64]) -> f64 {
    assert_eq!(p.dims(), x.len(), "dimensionality mismatch");
    let mut acc = 0.0;
    for (i, xi) in x.iter().enumerate() {
        let (m, s) = p.component(i);
        let z = (xi - m) / s;
        acc += z * z;
    }
    acc.sqrt()
}

/// Hellinger distance `√(1 − BC) ∈ [0, 1)` — a proper metric on the
/// distributions.
#[must_use]
pub fn hellinger(p: &Pfv, q: &Pfv) -> f64 {
    (1.0 - bhattacharyya_coefficient(p, q)).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::integrate_adaptive;

    fn p1(m: f64, s: f64) -> Pfv {
        Pfv::new(vec![m], vec![s]).unwrap()
    }

    #[test]
    fn kl_is_zero_iff_equal() {
        let a = Pfv::new(vec![1.0, -2.0], vec![0.5, 1.5]).unwrap();
        assert!(kl_divergence(&a, &a).abs() < 1e-14);
        let b = Pfv::new(vec![1.1, -2.0], vec![0.5, 1.5]).unwrap();
        assert!(kl_divergence(&a, &b) > 0.0);
        assert!(kl_divergence(&b, &a) > 0.0);
    }

    #[test]
    fn kl_matches_numeric_integral() {
        // KL(p||q) = ∫ p ln(p/q)
        let (mp, sp, mq, sq) = (0.0, 1.0, 0.7, 1.8);
        let closed = kl_divergence(&p1(mp, sp), &p1(mq, sq));
        let numeric = integrate_adaptive(
            |x| {
                let lp = crate::gaussian::log_pdf(mp, sp, x);
                let lq = crate::gaussian::log_pdf(mq, sq, x);
                lp.exp() * (lp - lq)
            },
            -12.0,
            12.0,
            1e-11,
        );
        assert!((closed - numeric).abs() < 1e-8, "{closed} vs {numeric}");
    }

    #[test]
    fn kl_is_asymmetric_but_symmetric_kl_is_not() {
        let a = p1(0.0, 0.2);
        let b = p1(1.0, 2.0);
        assert!((kl_divergence(&a, &b) - kl_divergence(&b, &a)).abs() > 0.1);
        assert!((symmetric_kl(&a, &b) - symmetric_kl(&b, &a)).abs() < 1e-14);
    }

    #[test]
    fn bhattacharyya_coefficient_matches_numeric_integral() {
        // BC = ∫ √(p·q)
        let (mp, sp, mq, sq) = (0.0, 0.6, 1.2, 1.1);
        let closed = bhattacharyya_coefficient(&p1(mp, sp), &p1(mq, sq));
        let numeric = integrate_adaptive(
            |x| {
                (0.5 * (crate::gaussian::log_pdf(mp, sp, x) + crate::gaussian::log_pdf(mq, sq, x)))
                    .exp()
            },
            -15.0,
            15.0,
            1e-11,
        );
        assert!((closed - numeric).abs() < 1e-8, "{closed} vs {numeric}");
    }

    #[test]
    fn bc_bounds_and_identity() {
        let a = Pfv::new(vec![3.0, 4.0], vec![0.7, 0.3]).unwrap();
        assert!((bhattacharyya_coefficient(&a, &a) - 1.0).abs() < 1e-14);
        // Far-apart distributions: BC underflows to 0 in f64 — still a
        // valid lower bound of the mathematical value.
        let far = Pfv::new(vec![300.0, 4.0], vec![0.7, 0.3]).unwrap();
        let bc = bhattacharyya_coefficient(&a, &far);
        assert!((0.0..1e-10).contains(&bc));
    }

    #[test]
    fn hellinger_is_metric_like() {
        let a = p1(0.0, 1.0);
        let b = p1(0.5, 1.0);
        let c = p1(1.0, 1.0);
        assert_eq!(hellinger(&a, &a), 0.0);
        let (ab, bc, ac) = (hellinger(&a, &b), hellinger(&b, &c), hellinger(&a, &c));
        assert!((ab - hellinger(&b, &a)).abs() < 1e-14, "symmetry");
        assert!(ac <= ab + bc + 1e-12, "triangle inequality");
        assert!(hellinger(&a, &p1(1e6, 1.0)) <= 1.0);
    }

    #[test]
    fn mahalanobis_basics() {
        let p = Pfv::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap();
        assert_eq!(mahalanobis(&p, &[0.0, 0.0]), 0.0);
        assert!((mahalanobis(&p, &[1.0, 0.0]) - 1.0).abs() < 1e-14);
        assert!((mahalanobis(&p, &[0.0, 2.0]) - 1.0).abs() < 1e-14);
        assert!((mahalanobis(&p, &[1.0, 2.0]) - 2f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn multivariate_is_sum_of_univariate() {
        let a = Pfv::new(vec![0.0, 1.0], vec![0.5, 0.8]).unwrap();
        let b = Pfv::new(vec![0.3, 0.7], vec![0.6, 1.0]).unwrap();
        let want = kl_divergence(&p1(0.0, 0.5), &p1(0.3, 0.6))
            + kl_divergence(&p1(1.0, 0.8), &p1(0.7, 1.0));
        assert!((kl_divergence(&a, &b) - want).abs() < 1e-12);
    }
}
