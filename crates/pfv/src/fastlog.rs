//! A vectorisable natural-logarithm approximation for the fast density
//! tier.
//!
//! The conservative bounds kernel in [`crate::batch`] needs one `ln` per
//! dimension per entry. `f64::ln` is correctly rounded but compiles to a
//! library call, which blocks auto-vectorisation of the dimension-outer
//! loop. [`fast_ln`](crate::fastlog::fast_ln) replaces it with straight-line arithmetic — exponent
//! extraction through the IEEE-754 bit pattern plus a short `atanh` series
//! on the reduced mantissa — so the compiler can keep the entry-inner loop
//! in SIMD registers.
//!
//! The approximation is **not** a drop-in replacement for `f64::ln`: it is
//! only valid for positive *normal* finite inputs, and it is off by up to
//! [`FAST_LN_ABS_ERROR`](crate::fastlog::FAST_LN_ABS_ERROR) absolutely. Callers that need conservative bounds
//! (the fast tier) widen their result by that pinned constant; callers that
//! need exact densities keep using `f64::ln` on the refine tier.

/// `ln 2`, used to fold the extracted binary exponent back in.
const LN_2: f64 = core::f64::consts::LN_2;

/// `√2` — the mantissa split point that centres the series argument
/// around 1 (reduced mantissa in `[√0.5, √2)` keeps `|t| ≤ 0.1716`).
const SQRT_2: f64 = core::f64::consts::SQRT_2;

/// Pinned absolute error bound of [`fast_ln`] over positive normal
/// inputs: `|fast_ln(x) − ln(x)| ≤ FAST_LN_ABS_ERROR`.
///
/// The truncation error of the 7-term `atanh` series at `|t| ≤ 0.1716`
/// is below `5e-13`; rounding of the reduction and evaluation adds a few
/// ulps of the `|e|·ln 2` term (at most `|e| = 1074`, so `< 2e-13`).
/// `2e-11` holds those with two orders of magnitude of margin, and the
/// test below enforces it empirically across the full exponent range.
pub const FAST_LN_ABS_ERROR: f64 = 2e-11;

/// Approximates `ln(x)` for a positive **normal** finite `x` with
/// straight-line arithmetic (no calls, no table loads), accurate to
/// [`FAST_LN_ABS_ERROR`].
///
/// Out-of-domain inputs (zero, subnormal, negative, infinite, NaN) return
/// an unspecified finite-or-not value — callers clamp first. The fast
/// density tier clamps its argument into `[f64::MIN_POSITIVE, f64::MAX]`,
/// which is exactly this domain.
#[inline]
#[must_use]
pub fn fast_ln(x: f64) -> f64 {
    let bits = x.to_bits();
    // lint: allow(cast-truncation) -- biased exponent is 11 bits, fits i64 exactly
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    // Re-bias the mantissa into [1, 2).
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Centre around 1: m ∈ [√0.5, √2) ⇒ |t| ≤ (√2−1)/(√2+1) ≈ 0.1716.
    if m > SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    // ln m = 2·atanh(t) with t = (m−1)/(m+1); odd series in t.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let p = 1.0 / 13.0;
    let p = p * t2 + 1.0 / 11.0;
    let p = p * t2 + 1.0 / 9.0;
    let p = p * t2 + 1.0 / 7.0;
    let p = p * t2 + 1.0 / 5.0;
    let p = p * t2 + 1.0 / 3.0;
    let p = p * t2 + 1.0;
    #[allow(clippy::cast_precision_loss)] // |e| ≤ 1074 is exactly representable
    let e_f = e as f64;
    2.0 * t * p + e_f * LN_2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(x: f64) {
        let got = fast_ln(x);
        let want = x.ln();
        assert!(
            (got - want).abs() <= FAST_LN_ABS_ERROR,
            "fast_ln({x}) = {got}, ln = {want}, diff = {}",
            (got - want).abs()
        );
    }

    #[test]
    fn matches_ln_on_handpicked_points() {
        for x in [
            1.0,
            2.0,
            0.5,
            SQRT_2,
            SQRT_2 * (1.0 + 1e-15),
            1.0 - 1e-15,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            1e300,
            std::f64::consts::E,
            std::f64::consts::PI,
            1e-18, // smallest variance the density kernel can see (MIN_SIGMA²)
        ] {
            assert_close(x);
        }
    }

    #[test]
    fn matches_ln_across_the_exponent_range() {
        // Deterministic xorshift sweep: mantissas × the full normal
        // exponent range.
        let mut state = 0x1CDE_2006_u64 | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20_000 {
            let r = next();
            // Normal exponent in [1, 0x7fe], random 52-bit mantissa.
            let exp = 1 + (r % 0x7fe);
            let mant = next() & 0x000f_ffff_ffff_ffff;
            let x = f64::from_bits((exp << 52) | mant);
            assert_close(x);
        }
    }

    #[test]
    fn exact_powers_of_two_are_tight() {
        for e in -1000i32..=1000 {
            assert_close(2f64.powi(e));
        }
    }
}
