//! Univariate Gaussian probability density functions.
//!
//! Definition 1 of the paper models each probabilistic feature by
//! `N_{μ,σ}(x) = 1/(√(2π)·σ) · exp(−(x−μ)² / (2σ²))`, parameterised by the
//! **standard deviation** σ (not the variance). The standard-deviation
//! parameterisation matters: Lemma 2's interior maximiser `σmax = μ̌ − x` is
//! only stationary under this parameterisation (see `hull`).

use crate::{LN_SQRT_2PI, MIN_SIGMA};

/// A univariate Gaussian `N(μ, σ)` with standard deviation `σ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mu: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian, clamping `sigma` to [`MIN_SIGMA`].
    ///
    /// # Panics
    /// Panics if `mu` or `sigma` is not finite, or if `sigma` is negative.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "Gaussian mean must be finite, got {mu}");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "Gaussian sigma must be finite and non-negative, got {sigma}"
        );
        Self {
            mu,
            sigma: sigma.max(MIN_SIGMA),
        }
    }

    /// The mean μ.
    #[inline]
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The standard deviation σ.
    #[inline]
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Probability density at `x`.
    #[inline]
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        pdf(self.mu, self.sigma, x)
    }

    /// Natural logarithm of the density at `x`.
    #[inline]
    #[must_use]
    pub fn log_pdf(&self, x: f64) -> f64 {
        log_pdf(self.mu, self.sigma, x)
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    #[must_use]
    pub fn cdf(&self, x: f64) -> f64 {
        crate::phi::phi((x - self.mu) / self.sigma)
    }

    /// The central interval `[μ − z·σ, μ + z·σ]` containing probability mass
    /// `coverage` (e.g. `0.95` → `z ≈ 1.96`).
    ///
    /// This is exactly the 95 %-quantile interval the paper uses to build the
    /// hyper-rectangle approximations stored in the X-tree baseline.
    #[must_use]
    pub fn central_interval(&self, coverage: f64) -> (f64, f64) {
        assert!(
            (0.0..1.0).contains(&coverage),
            "coverage must be in [0,1), got {coverage}"
        );
        let z = crate::phi::phi_inv(0.5 + coverage / 2.0);
        (self.mu - z * self.sigma, self.mu + z * self.sigma)
    }
}

/// `N_{μ,σ}(x)` in linear space.
#[inline]
#[must_use]
pub fn pdf(mu: f64, sigma: f64, x: f64) -> f64 {
    log_pdf(mu, sigma, x).exp()
}

/// `ln N_{μ,σ}(x) = −ln σ − ln √(2π) − (x−μ)²/(2σ²)`.
#[inline]
#[must_use]
pub fn log_pdf(mu: f64, sigma: f64, x: f64) -> f64 {
    debug_assert!(sigma > 0.0, "sigma must be positive");
    let z = (x - mu) / sigma;
    -sigma.ln() - LN_SQRT_2PI - 0.5 * z * z
}

/// Log-density of the *peak* of `N(μ, σ)`, i.e. `ln N_{μ,σ}(μ)`.
#[inline]
#[must_use]
pub fn log_peak(sigma: f64) -> f64 {
    -sigma.ln() - LN_SQRT_2PI
}

#[cfg(test)]
mod tests {
    use super::*;

    const STD_NORMAL_PEAK: f64 = 0.398_942_280_401_432_7; // 1/√(2π)

    #[test]
    fn standard_normal_peak() {
        assert!((pdf(0.0, 1.0, 0.0) - STD_NORMAL_PEAK).abs() < 1e-15);
        assert!((log_peak(1.0).exp() - STD_NORMAL_PEAK).abs() < 1e-15);
    }

    #[test]
    fn pdf_matches_log_pdf() {
        for &(mu, sigma, x) in &[
            (0.0, 1.0, 0.5),
            (3.5, 0.7, 3.9),
            (-2.0, 10.0, 25.0),
            (1e3, 1e-3, 1e3 + 5e-3),
        ] {
            let lin = pdf(mu, sigma, x);
            let log = log_pdf(mu, sigma, x).exp();
            assert!(
                (lin - log).abs() <= 1e-12 * lin.max(1.0),
                "mismatch at ({mu},{sigma},{x}): {lin} vs {log}"
            );
        }
    }

    #[test]
    fn symmetry_of_observation_and_mean() {
        // N_{x,σ}(μ) == N_{μ,σ}(x) — the symmetry §3 of the paper relies on.
        let (a, b, s) = (1.3, 4.2, 0.8);
        assert!((pdf(a, s, b) - pdf(b, s, a)).abs() < 1e-16);
    }

    #[test]
    fn density_decreases_away_from_mean() {
        let g = Gaussian::new(2.0, 0.5);
        let mut prev = g.pdf(2.0);
        for i in 1..50 {
            let x = 2.0 + i as f64 * 0.1;
            let cur = g.pdf(x);
            assert!(cur < prev, "pdf must strictly decrease right of the mean");
            prev = cur;
        }
    }

    #[test]
    fn sigma_is_clamped() {
        let g = Gaussian::new(0.0, 0.0);
        assert_eq!(g.sigma(), crate::MIN_SIGMA);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_mean() {
        let _ = Gaussian::new(f64::NAN, 1.0);
    }

    #[test]
    fn central_interval_95() {
        let g = Gaussian::new(10.0, 2.0);
        let (lo, hi) = g.central_interval(0.95);
        // z(0.975) = 1.959964...
        assert!((lo - (10.0 - 1.959_964 * 2.0)).abs() < 1e-3);
        assert!((hi - (10.0 + 1.959_964 * 2.0)).abs() < 1e-3);
        // The mass inside really is 95 %.
        let mass = g.cdf(hi) - g.cdf(lo);
        assert!((mass - 0.95).abs() < 1e-6);
    }

    #[test]
    fn very_narrow_gaussian_has_huge_log_peak() {
        // In linear space this would overflow; in log space it is fine.
        let lp = log_pdf(0.0, 1e-300, 0.0);
        assert!(lp > 600.0);
        assert!(lp.is_finite());
    }
}
