//! Conservative bounds over rectangles of the `(μ, σ)` parameter space.
//!
//! A Gauss-tree node stores, per probabilistic feature, a *minimum bounding
//! rectangle* `[μ̌, μ̂] × [σ̌, σ̂]` of the parameters of all Gaussians in its
//! subtree. Query processing needs
//!
//! * `N̂(x) = max { N_{μ,σ}(x) : μ∈[μ̌,μ̂], σ∈[σ̌,σ̂] }` — Lemma 2, an exact
//!   piecewise closed form with seven cases;
//! * `Ň(x) = min { … }` — Lemma 3, the minimum over the four corners;
//! * `∫ N̂(x) dx` — the access-probability proxy minimised by the split
//!   strategy (paper §5.3), for which we derive the closed form
//!
//!   ```text
//!   ∫ N̂ = 1 + (μ̂−μ̌)/(√(2π)·σ̌) + 2·ln(σ̂/σ̌)/√(2πe)
//!   ```
//!
//!   (cases I+III+V+VII integrate to exactly 2·Φ(0) = 1; case IV is a
//!   constant strip; cases II/VI integrate the ridge `1/(√(2πe)(μ̌−x))`).
//!
//! For a probabilistic *query* `q = (μq, σq)` the bounds are evaluated after
//! substituting the Lemma-1 combined σ: the node's σ-interval `[σ̌, σ̂]` maps
//! to `[c(σ̌,σq), c(σ̂,σq)]`, which is again an interval because every
//! [`CombineMode`] is monotone in σv. Evaluating the hull over the mapped
//! rectangle at `x = μq` is therefore a conservative bound on `p(q|v)` for
//! every pfv `v` in the node.

use crate::combine::CombineMode;
use crate::gaussian::{log_pdf, log_peak};
use crate::phi::PhiImpl;
use crate::vector::Pfv;
use crate::{INV_SQRT_2PI_E, LN_SQRT_2PI, MIN_SIGMA};

/// Parameter-space bounds of one probabilistic feature:
/// `μ ∈ [mu_lo, mu_hi]`, `σ ∈ [sigma_lo, sigma_hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimBounds {
    /// Lower bound μ̌ of the feature value.
    pub mu_lo: f64,
    /// Upper bound μ̂ of the feature value.
    pub mu_hi: f64,
    /// Lower bound σ̌ of the uncertainty.
    pub sigma_lo: f64,
    /// Upper bound σ̂ of the uncertainty.
    pub sigma_hi: f64,
}

impl DimBounds {
    /// Bounds covering exactly one parameter point.
    #[must_use]
    pub fn point(mu: f64, sigma: f64) -> Self {
        let sigma = sigma.max(MIN_SIGMA);
        Self {
            mu_lo: mu,
            mu_hi: mu,
            sigma_lo: sigma,
            sigma_hi: sigma,
        }
    }

    /// Explicit bounds.
    ///
    /// # Panics
    /// Panics if any bound is non-finite, reversed, or `sigma_lo <= 0` after
    /// clamping.
    #[must_use]
    pub fn new(mu_lo: f64, mu_hi: f64, sigma_lo: f64, sigma_hi: f64) -> Self {
        assert!(
            mu_lo.is_finite() && mu_hi.is_finite() && sigma_lo.is_finite() && sigma_hi.is_finite(),
            "bounds must be finite"
        );
        assert!(mu_lo <= mu_hi, "reversed mu bounds: {mu_lo} > {mu_hi}");
        assert!(
            sigma_lo <= sigma_hi,
            "reversed sigma bounds: {sigma_lo} > {sigma_hi}"
        );
        Self {
            mu_lo,
            mu_hi,
            sigma_lo: sigma_lo.max(MIN_SIGMA),
            sigma_hi: sigma_hi.max(MIN_SIGMA),
        }
    }

    /// Smallest bounds containing both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        Self {
            mu_lo: self.mu_lo.min(other.mu_lo),
            mu_hi: self.mu_hi.max(other.mu_hi),
            sigma_lo: self.sigma_lo.min(other.sigma_lo),
            sigma_hi: self.sigma_hi.max(other.sigma_hi),
        }
    }

    /// Extends the bounds to contain the parameter point `(μ, σ)`.
    pub fn extend(&mut self, mu: f64, sigma: f64) {
        self.mu_lo = self.mu_lo.min(mu);
        self.mu_hi = self.mu_hi.max(mu);
        self.sigma_lo = self.sigma_lo.min(sigma.max(MIN_SIGMA));
        self.sigma_hi = self.sigma_hi.max(sigma);
    }

    /// Whether the parameter point `(μ, σ)` lies inside.
    #[must_use]
    pub fn contains(&self, mu: f64, sigma: f64) -> bool {
        self.mu_lo <= mu && mu <= self.mu_hi && self.sigma_lo <= sigma && sigma <= self.sigma_hi
    }

    /// Whether `other` lies entirely inside `self`.
    #[must_use]
    pub fn contains_bounds(&self, other: &Self) -> bool {
        self.mu_lo <= other.mu_lo
            && other.mu_hi <= self.mu_hi
            && self.sigma_lo <= other.sigma_lo
            && other.sigma_hi <= self.sigma_hi
    }

    /// Lemma 2: `ln N̂(x)` — the log of the conservative upper bound.
    ///
    /// Case numbering follows the paper:
    /// (I) far left, (II) left ridge, (III) left Gaussian shoulder,
    /// (IV) plateau, (V) right shoulder, (VI) right ridge, (VII) far right.
    #[must_use]
    pub fn log_upper(&self, x: f64) -> f64 {
        if x < self.mu_lo {
            let dist = self.mu_lo - x;
            if dist >= self.sigma_hi {
                // (I): maximiser at (μ̌, σ̂)
                log_pdf(self.mu_lo, self.sigma_hi, x)
            } else if dist >= self.sigma_lo {
                // (II): interior maximiser σ = μ̌ − x;
                // N_{μ̌, μ̌−x}(x) = 1/(√(2πe)·(μ̌−x))
                INV_SQRT_2PI_E.ln() - dist.ln()
            } else {
                // (III): maximiser at (μ̌, σ̌)
                log_pdf(self.mu_lo, self.sigma_lo, x)
            }
        } else if x <= self.mu_hi {
            // (IV): peak of the narrowest Gaussian centred at x
            log_peak(self.sigma_lo)
        } else {
            let dist = x - self.mu_hi;
            if dist >= self.sigma_hi {
                // (VII)
                log_pdf(self.mu_hi, self.sigma_hi, x)
            } else if dist >= self.sigma_lo {
                // (VI)
                INV_SQRT_2PI_E.ln() - dist.ln()
            } else {
                // (V)
                log_pdf(self.mu_hi, self.sigma_lo, x)
            }
        }
    }

    /// Lemma 2 in linear space: `N̂(x)`.
    #[inline]
    #[must_use]
    pub fn upper(&self, x: f64) -> f64 {
        self.log_upper(x).exp()
    }

    /// Lemma 3: `ln Ň(x)` — the log of the conservative lower bound,
    /// the minimum over the four corner Gaussians.
    #[must_use]
    pub fn log_lower(&self, x: f64) -> f64 {
        let a = log_pdf(self.mu_lo, self.sigma_lo, x);
        let b = log_pdf(self.mu_lo, self.sigma_hi, x);
        let c = log_pdf(self.mu_hi, self.sigma_lo, x);
        let d = log_pdf(self.mu_hi, self.sigma_hi, x);
        a.min(b).min(c).min(d)
    }

    /// Lemma 3 in linear space: `Ň(x)`.
    #[inline]
    #[must_use]
    pub fn lower(&self, x: f64) -> f64 {
        self.log_lower(x).exp()
    }

    /// Maps the σ-interval through Lemma 1 for a probabilistic query with
    /// uncertainty `sigma_q`, producing the bounds against which the hull is
    /// evaluated at `x = μq` (paper §5.2: `N̂_{μ̌,μ̂,σ̌+σq,σ̂+σq}(μq)`).
    #[must_use]
    pub fn with_query_sigma(&self, sigma_q: f64, mode: CombineMode) -> Self {
        Self {
            mu_lo: self.mu_lo,
            mu_hi: self.mu_hi,
            sigma_lo: mode.combine_sigma(self.sigma_lo, sigma_q),
            sigma_hi: mode.combine_sigma(self.sigma_hi, sigma_q),
        }
    }

    /// Closed-form `∫_{−∞}^{+∞} N̂(x) dx` (see module docs).
    ///
    /// Always ≥ 1; equal to 1 only in the degenerate point-rectangle case.
    #[must_use]
    pub fn hull_integral(&self) -> f64 {
        let plateau =
            (self.mu_hi - self.mu_lo) / ((2.0 * std::f64::consts::PI).sqrt() * self.sigma_lo);
        let ridge = 2.0 * (self.sigma_hi / self.sigma_lo).ln() * INV_SQRT_2PI_E;
        1.0 + plateau + ridge
    }

    /// `∫ N̂` evaluated piecewise with a selectable Φ implementation — used
    /// by the `ablation_phi` benchmark to reproduce the paper's degree-5
    /// sigmoid-polynomial integration and compare it against the closed form.
    #[must_use]
    pub fn hull_integral_with_phi(&self, phi: PhiImpl) -> f64 {
        // (I): ∫_{-∞}^{μ̌−σ̂} N_{μ̌,σ̂} = Φ(−1)
        let far = phi.eval(-1.0);
        // (III): ∫_{μ̌−σ̌}^{μ̌} N_{μ̌,σ̌} = Φ(0) − Φ(−1)
        let shoulder = phi.eval(0.0) - phi.eval(-1.0);
        // (II): ln(σ̂/σ̌)/√(2πe)
        let ridge = (self.sigma_hi / self.sigma_lo).ln() * INV_SQRT_2PI_E;
        // (IV): (μ̂−μ̌)/(√(2π)σ̌)
        let plateau = (self.mu_hi - self.mu_lo) * (-(self.sigma_lo.ln()) - LN_SQRT_2PI).exp();
        2.0 * (far + shoulder + ridge) + plateau
    }

    /// Width of the μ interval.
    #[inline]
    #[must_use]
    pub fn mu_extent(&self) -> f64 {
        self.mu_hi - self.mu_lo
    }

    /// Width of the σ interval.
    #[inline]
    #[must_use]
    pub fn sigma_extent(&self) -> f64 {
        self.sigma_hi - self.sigma_lo
    }
}

/// Multidimensional parameter-space rectangle: one [`DimBounds`] per feature.
///
/// This is exactly the "entry of a non-leaf node" of Definition 4 — a
/// minimum bounding rectangle of dimensionality `2d`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRect {
    dims: Box<[DimBounds]>,
}

impl ParamRect {
    /// A rectangle covering a single pfv.
    #[must_use]
    pub fn from_pfv(v: &Pfv) -> Self {
        let dims = (0..v.dims())
            .map(|i| {
                let (m, s) = v.component(i);
                DimBounds::point(m, s)
            })
            .collect();
        Self { dims }
    }

    /// Builds a rectangle from explicit per-dimension bounds.
    ///
    /// # Panics
    /// Panics on empty input.
    #[must_use]
    pub fn from_dims(dims: Vec<DimBounds>) -> Self {
        assert!(!dims.is_empty(), "a ParamRect needs at least one dimension");
        Self {
            dims: dims.into_boxed_slice(),
        }
    }

    /// Smallest rectangle covering a set of pfv.
    ///
    /// # Panics
    /// Panics if `vs` is empty or dimensionalities differ.
    #[must_use]
    pub fn covering<'a>(mut vs: impl Iterator<Item = &'a Pfv>) -> Self {
        // lint: allow(no-panic) -- documented # Panics contract: covering() requires a non-empty iterator
        let first = vs.next().expect("covering() needs at least one pfv");
        let mut rect = Self::from_pfv(first);
        for v in vs {
            rect.extend_pfv(v);
        }
        rect
    }

    /// Dimensionality `d`.
    #[inline]
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension bounds.
    #[inline]
    #[must_use]
    pub fn dim(&self, i: usize) -> &DimBounds {
        &self.dims[i]
    }

    /// All per-dimension bounds.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[DimBounds] {
        &self.dims
    }

    /// Extends the rectangle to contain `v`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn extend_pfv(&mut self, v: &Pfv) {
        assert_eq!(v.dims(), self.dims(), "dimensionality mismatch");
        for i in 0..v.dims() {
            let (m, s) = v.component(i);
            self.dims[i].extend(m, s);
        }
    }

    /// Extends the rectangle to contain another rectangle.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn extend_rect(&mut self, other: &ParamRect) {
        assert_eq!(other.dims(), self.dims(), "dimensionality mismatch");
        for i in 0..self.dims.len() {
            self.dims[i] = self.dims[i].union(&other.dims[i]);
        }
    }

    /// Whether `v`'s parameters lie inside the rectangle.
    #[must_use]
    pub fn contains_pfv(&self, v: &Pfv) -> bool {
        v.dims() == self.dims()
            && (0..v.dims()).all(|i| {
                let (m, s) = v.component(i);
                self.dims[i].contains(m, s)
            })
    }

    /// Whether `other` lies entirely inside `self`.
    #[must_use]
    pub fn contains_rect(&self, other: &ParamRect) -> bool {
        other.dims() == self.dims()
            && (0..self.dims()).all(|i| self.dims[i].contains_bounds(&other.dims[i]))
    }

    /// `ln N̂(q)` — the multivariate conservative upper bound on
    /// `ln p(q|v)` for every pfv `v` inside the rectangle: the sum over
    /// dimensions of per-dimension hulls evaluated at `μq,i` with Lemma-1
    /// adjusted σ bounds (paper §5.2, priority definition).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn log_upper_for_query(&self, q: &Pfv, mode: CombineMode) -> f64 {
        assert_eq!(q.dims(), self.dims(), "dimensionality mismatch");
        let mut acc = 0.0;
        for i in 0..self.dims.len() {
            let (mq, sq) = q.component(i);
            acc += self.dims[i].with_query_sigma(sq, mode).log_upper(mq);
        }
        acc
    }

    /// `ln Ň(q)` — the multivariate conservative lower bound (Lemma 3
    /// per dimension, Lemma-1 adjusted).
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn log_lower_for_query(&self, q: &Pfv, mode: CombineMode) -> f64 {
        assert_eq!(q.dims(), self.dims(), "dimensionality mismatch");
        let mut acc = 0.0;
        for i in 0..self.dims.len() {
            let (mq, sq) = q.component(i);
            acc += self.dims[i].with_query_sigma(sq, mode).log_lower(mq);
        }
        acc
    }

    /// Both conservative bounds `(ln N̂(q), ln Ň(q))` in one sweep.
    ///
    /// Best-first expansion needs the upper *and* lower bound of every
    /// child ([`ParamRect::log_upper_for_query`] drives the priority queue,
    /// [`ParamRect::log_lower_for_query`] the §5.2.2 denominator bounds);
    /// computing them separately maps the σ-interval through Lemma 1 twice
    /// per dimension. This fused form does it once, and is bit-identical to
    /// the two separate calls — each bound accumulates the exact same
    /// per-dimension terms in the same order.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    #[must_use]
    pub fn log_bounds_for_query(&self, q: &Pfv, mode: CombineMode) -> (f64, f64) {
        assert_eq!(q.dims(), self.dims(), "dimensionality mismatch");
        let mut up = 0.0;
        let mut lo = 0.0;
        for i in 0..self.dims.len() {
            let (mq, sq) = q.component(i);
            let b = self.dims[i].with_query_sigma(sq, mode);
            up += b.log_upper(mq);
            lo += b.log_lower(mq);
        }
        (up, lo)
    }

    /// Log of the product of per-dimension hull integrals — the node's
    /// access-probability proxy minimised by the Gauss-tree split strategy.
    ///
    /// Splitting compares `exp(cost_A) + exp(cost_B)` between tentative
    /// splits; each per-dimension integral is ≥ 1 so the log is ≥ 0.
    #[must_use]
    pub fn log_access_cost(&self) -> f64 {
        self.dims.iter().map(|d| d.hull_integral().ln()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::pdf;
    use crate::quadrature::integrate_adaptive;

    fn example_bounds() -> DimBounds {
        // Figure 2 of the paper: μ ∈ [3.0, 4.0], σ ∈ [0.6, 0.9].
        DimBounds::new(3.0, 4.0, 0.6, 0.9)
    }

    /// Brute-force maximum over a grid of (μ, σ) inside the rectangle.
    fn grid_max(b: &DimBounds, x: f64) -> f64 {
        let mut best = f64::NEG_INFINITY;
        let n = 200;
        for i in 0..=n {
            let mu = b.mu_lo + (b.mu_hi - b.mu_lo) * i as f64 / n as f64;
            for j in 0..=n {
                let s = b.sigma_lo + (b.sigma_hi - b.sigma_lo) * j as f64 / n as f64;
                best = best.max(pdf(mu, s, x));
            }
        }
        best
    }

    fn grid_min(b: &DimBounds, x: f64) -> f64 {
        let mut best = f64::INFINITY;
        let n = 200;
        for i in 0..=n {
            let mu = b.mu_lo + (b.mu_hi - b.mu_lo) * i as f64 / n as f64;
            for j in 0..=n {
                let s = b.sigma_lo + (b.sigma_hi - b.sigma_lo) * j as f64 / n as f64;
                best = best.min(pdf(mu, s, x));
            }
        }
        best
    }

    #[test]
    fn upper_matches_grid_maximum_in_all_seven_cases() {
        let b = example_bounds();
        // Pick x values landing in each of the seven cases.
        let xs = [
            b.mu_lo - 2.0 * b.sigma_hi, // (I)
            b.mu_lo - 0.75,             // (II): dist 0.75 ∈ [0.6, 0.9]
            b.mu_lo - 0.3,              // (III)
            3.5,                        // (IV)
            b.mu_hi + 0.3,              // (V)
            b.mu_hi + 0.75,             // (VI)
            b.mu_hi + 2.0 * b.sigma_hi, // (VII)
        ];
        for &x in &xs {
            let hull = b.upper(x);
            let grid = grid_max(&b, x);
            assert!(
                hull >= grid - 1e-12,
                "hull must dominate grid max at x={x}: {hull} < {grid}"
            );
            assert!(
                hull <= grid * 1.001 + 1e-12,
                "hull should be tight at x={x}: {hull} vs {grid}"
            );
        }
    }

    #[test]
    fn lower_matches_grid_minimum() {
        let b = example_bounds();
        for i in -30..=30 {
            let x = 3.5 + i as f64 * 0.2;
            let hull = b.lower(x);
            let grid = grid_min(&b, x);
            assert!(
                hull <= grid + 1e-12,
                "lower bound must underestimate at x={x}: {hull} > {grid}"
            );
            assert!(
                hull >= grid * 0.999 - 1e-12,
                "lower bound should be tight at x={x}"
            );
        }
    }

    #[test]
    fn bounds_sandwich_every_member_gaussian() {
        let b = example_bounds();
        for &(mu, sigma) in &[(3.0, 0.6), (4.0, 0.9), (3.5, 0.7), (3.9, 0.6), (3.2, 0.85)] {
            assert!(b.contains(mu, sigma));
            for i in -40..=40 {
                let x = 3.5 + i as f64 * 0.15;
                let p = pdf(mu, sigma, x);
                assert!(b.upper(x) >= p - 1e-15, "upper violated at x={x}");
                assert!(b.lower(x) <= p + 1e-15, "lower violated at x={x}");
            }
        }
    }

    #[test]
    fn hull_is_continuous_across_case_boundaries() {
        let b = example_bounds();
        let boundaries = [
            b.mu_lo - b.sigma_hi,
            b.mu_lo - b.sigma_lo,
            b.mu_lo,
            b.mu_hi,
            b.mu_hi + b.sigma_lo,
            b.mu_hi + b.sigma_hi,
        ];
        for &x in &boundaries {
            let left = b.upper(x - 1e-9);
            let right = b.upper(x + 1e-9);
            assert!(
                (left - right).abs() < 1e-6 * left.max(right),
                "discontinuity at case boundary x={x}: {left} vs {right}"
            );
        }
    }

    #[test]
    fn closed_form_integral_matches_quadrature() {
        for b in [
            example_bounds(),
            DimBounds::new(0.0, 0.0, 1.0, 1.0),
            DimBounds::new(-2.0, 7.0, 0.1, 3.0),
            DimBounds::new(5.0, 5.5, 0.01, 0.02),
        ] {
            let lo = b.mu_lo - 15.0 * b.sigma_hi;
            let hi = b.mu_hi + 15.0 * b.sigma_hi;
            let numeric = integrate_adaptive(|x| b.upper(x), lo, hi, 1e-10);
            let closed = b.hull_integral();
            assert!(
                (numeric - closed).abs() < 1e-6 * closed,
                "integral mismatch for {b:?}: numeric={numeric}, closed={closed}"
            );
        }
    }

    #[test]
    fn point_rectangle_integral_is_one() {
        let b = DimBounds::point(2.0, 0.5);
        assert!((b.hull_integral() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integral_grows_with_extents() {
        let base = DimBounds::new(0.0, 1.0, 0.5, 1.0);
        let wider_mu = DimBounds::new(0.0, 2.0, 0.5, 1.0);
        let wider_sigma = DimBounds::new(0.0, 1.0, 0.5, 2.0);
        assert!(wider_mu.hull_integral() > base.hull_integral());
        assert!(wider_sigma.hull_integral() > base.hull_integral());
    }

    #[test]
    fn phi_variants_agree_on_integral() {
        let b = example_bounds();
        let erf = b.hull_integral_with_phi(PhiImpl::Erf);
        let poly = b.hull_integral_with_phi(PhiImpl::Poly5);
        let closed = b.hull_integral();
        assert!((erf - closed).abs() < 1e-5 * closed);
        assert!((poly - closed).abs() < 1e-5 * closed);
    }

    #[test]
    fn query_adjustment_is_conservative() {
        // For any member (μv, σv) and query (μq, σq), the adjusted hull at μq
        // must dominate the Lemma-1 joint density.
        let b = example_bounds();
        let mode = CombineMode::Convolution;
        for &(mv, sv) in &[(3.0, 0.6), (3.7, 0.8), (4.0, 0.9)] {
            for &(mq, sq) in &[(3.5, 0.1), (2.0, 0.5), (5.5, 2.0), (3.0, 0.0)] {
                let joint = crate::combine::log_joint_1d(mode, mv, sv, mq, sq);
                let hull = b.with_query_sigma(sq, mode).log_upper(mq);
                assert!(
                    hull >= joint - 1e-12,
                    "hull not conservative: v=({mv},{sv}), q=({mq},{sq}): {hull} < {joint}"
                );
                let low = b.with_query_sigma(sq, mode).log_lower(mq);
                assert!(
                    low <= joint + 1e-12,
                    "lower bound not conservative: {low} > {joint}"
                );
            }
        }
    }

    #[test]
    fn union_and_extend_agree() {
        let a = DimBounds::point(1.0, 0.5);
        let b = DimBounds::point(3.0, 0.2);
        let u = a.union(&b);
        let mut e = a;
        e.extend(3.0, 0.2);
        assert_eq!(u, e);
        assert!(u.contains(1.0, 0.5) && u.contains(3.0, 0.2));
        assert_eq!(u.mu_extent(), 2.0);
    }

    #[test]
    fn param_rect_covering_contains_all() {
        let vs = vec![
            Pfv::new(vec![0.0, 10.0], vec![0.1, 1.0]).unwrap(),
            Pfv::new(vec![5.0, 8.0], vec![0.3, 0.5]).unwrap(),
            Pfv::new(vec![2.0, 12.0], vec![0.2, 2.0]).unwrap(),
        ];
        let rect = ParamRect::covering(vs.iter());
        for v in &vs {
            assert!(rect.contains_pfv(v));
        }
        assert_eq!(rect.dim(0).mu_lo, 0.0);
        assert_eq!(rect.dim(0).mu_hi, 5.0);
        assert_eq!(rect.dim(1).sigma_hi, 2.0);
    }

    #[test]
    fn multivariate_bounds_sandwich_joint_density() {
        let vs = vec![
            Pfv::new(vec![0.0, 10.0], vec![0.1, 1.0]).unwrap(),
            Pfv::new(vec![5.0, 8.0], vec![0.3, 0.5]).unwrap(),
        ];
        let rect = ParamRect::covering(vs.iter());
        let q = Pfv::new(vec![1.0, 9.0], vec![0.2, 0.4]).unwrap();
        let mode = CombineMode::Convolution;
        let up = rect.log_upper_for_query(&q, mode);
        let lo = rect.log_lower_for_query(&q, mode);
        for v in &vs {
            let j = crate::combine::log_joint(mode, v, &q);
            assert!(up >= j - 1e-12, "upper {up} < joint {j}");
            assert!(lo <= j + 1e-12, "lower {lo} > joint {j}");
        }
    }

    #[test]
    fn fused_bounds_are_bit_identical_to_separate_calls() {
        let vs = [
            Pfv::new(vec![0.0, 10.0], vec![0.1, 1.0]).unwrap(),
            Pfv::new(vec![5.0, 8.0], vec![0.3, 0.5]).unwrap(),
        ];
        let rect = ParamRect::covering(vs.iter());
        for mode in [CombineMode::Convolution, CombineMode::AdditiveSigma] {
            for &(m0, m1, s0, s1) in &[
                (1.0, 9.0, 0.2, 0.4),
                (-100.0, 100.0, 0.01, 5.0),
                (3.0, 9.5, 1e-9, 0.1),
            ] {
                let q = Pfv::new(vec![m0, m1], vec![s0, s1]).unwrap();
                let (up, lo) = rect.log_bounds_for_query(&q, mode);
                assert_eq!(up.to_bits(), rect.log_upper_for_query(&q, mode).to_bits());
                assert_eq!(lo.to_bits(), rect.log_lower_for_query(&q, mode).to_bits());
            }
        }
    }

    #[test]
    fn log_access_cost_is_nonnegative_and_monotone() {
        let small = ParamRect::from_dims(vec![DimBounds::new(0.0, 1.0, 0.5, 0.6)]);
        let large = ParamRect::from_dims(vec![DimBounds::new(0.0, 4.0, 0.5, 2.0)]);
        assert!(small.log_access_cost() >= 0.0);
        assert!(large.log_access_cost() > small.log_access_cost());
    }

    #[test]
    fn contains_rect_partial_order() {
        let outer = ParamRect::from_dims(vec![DimBounds::new(0.0, 10.0, 0.1, 5.0)]);
        let inner = ParamRect::from_dims(vec![DimBounds::new(2.0, 3.0, 0.5, 1.0)]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    #[should_panic(expected = "reversed")]
    fn rejects_reversed_mu() {
        let _ = DimBounds::new(2.0, 1.0, 0.1, 0.2);
    }

    #[test]
    fn case_ii_ridge_value_matches_formula() {
        // N_{μ̌, μ̌−x}(x) = 1/(√(2πe)(μ̌−x))
        let b = example_bounds();
        let x = b.mu_lo - 0.75;
        let want = INV_SQRT_2PI_E / 0.75;
        assert!((b.upper(x) - want).abs() < 1e-12);
    }

    #[test]
    fn plateau_value_is_peak_of_narrowest_gaussian() {
        let b = example_bounds();
        let want = pdf(3.5, b.sigma_lo, 3.5);
        assert!((b.upper(3.5) - want).abs() < 1e-15);
        assert!((b.upper(3.0) - want).abs() < 1e-15);
        assert!((b.upper(4.0) - want).abs() < 1e-15);
    }
}
