//! Probabilistic feature vectors (pfv) and the Gaussian uncertainty model.
//!
//! This crate implements the mathematical substrate of
//! *"The Gauss-Tree: Efficient Object Identification in Databases of
//! Probabilistic Feature Vectors"* (Böhm, Pryakhin, Schubert — ICDE 2006):
//!
//! * [`Pfv`] — a feature vector where every feature value `μᵢ` carries an
//!   uncertainty `σᵢ`, so the (unknown) true value is modelled by the
//!   univariate Gaussian `N(μᵢ, σᵢ)` (Definition 1 of the paper);
//! * [`combine`] — Lemma 1: the joint probability density that a query pfv
//!   and a database pfv describe the same true object;
//! * [`bayes`] — the Bayesian normalisation `P(v|q) = p(q|v) / Σ_w p(q|w)`
//!   that turns relative densities into identification probabilities;
//! * [`hull`] — Lemmas 2 and 3: conservative upper and lower bounds on all
//!   Gaussians whose parameters lie inside a rectangle of the `(μ, σ)`
//!   parameter space, plus the closed-form hull integral that drives the
//!   Gauss-tree split strategy;
//! * [`phi`] — the Gaussian CDF both as a high-accuracy `erf`-based
//!   implementation and as the degree-5 polynomial sigmoid approximation the
//!   paper mentions in §5.3;
//! * [`logsum`] — numerically robust log-space accumulation (products of 27
//!   univariate densities overflow/underflow `f64` in linear space);
//! * [`batch`] — struct-of-arrays leaf columns ([`ColumnarLeaf`]) and the
//!   vectorized Lemma-1 kernels: the exact batch kernel
//!   [`batch::log_densities`] (bit-identical to the scalar path — the
//!   *refine* tier) and the conservative-bounds kernel
//!   [`batch::log_densities_upper`] (the *fast* tier, built on
//!   [`fastlog`]);
//! * [`quant`] — checked `f64 → f32` quantisation for compressed leaves
//!   and the outward-rounded hull correction that keeps pruning over
//!   quantised parameters conservative.
//!
//! All probability-density computations are performed in **log space**; the
//! linear-space entry points are thin wrappers provided for convenience and
//! for small dimensionalities.

#![forbid(unsafe_code)]

/// Columnar leaf layout with batched density kernels.
pub mod batch;
/// Bayes-rule posteriors over candidate result sets.
pub mod bayes;
/// Combining per-dimension bounds into pfv scores.
pub mod combine;
/// Distributional distance measures between Gaussians.
pub mod divergence;
/// Vectorisable `ln` approximation for the fast density tier.
pub mod fastlog;
/// Univariate Gaussian parameters and densities.
pub mod gaussian;
/// Piecewise hull bounds on the Gaussian density term.
pub mod hull;
/// Anchored log-sum-exp accumulation.
pub mod logsum;
/// The standard normal CDF and related special functions.
pub mod phi;
/// Numeric integration fallbacks for validation.
pub mod quadrature;
/// Checked f32 quantisation with outward-rounded hull correction.
pub mod quant;
/// Probabilistic feature vectors (vectors of Gaussians).
pub mod vector;

pub use batch::{ColumnarLeaf, FastScratch};
pub use bayes::{posterior, posteriors, Posterior};
pub use combine::CombineMode;
pub use gaussian::Gaussian;
pub use hull::{DimBounds, ParamRect};
pub use logsum::{log_add_exp, log_sum_exp, LogSumAcc, ScaledSum};
pub use vector::{Pfv, PfvError};

/// Smallest admissible standard deviation.
///
/// The model breaks down for `σ = 0` (a Dirac spike has unbounded density);
/// every constructor clamps σ to this floor. The floor is far below any
/// uncertainty produced by a physical sensor, so clamping does not affect
/// realistic workloads.
pub const MIN_SIGMA: f64 = 1e-9;

/// `ln √(2π)` — the normalisation constant of the Gaussian log-density.
pub const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// `1 / √(2πe)` — the peak density of the Lemma-2 case (II)/(VI) ridge,
/// i.e. `N_{μ̌, μ̌−x}(x) = 1 / (√(2πe) · (μ̌−x))`.
pub const INV_SQRT_2PI_E: f64 = 0.241_970_724_519_143_37;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        let ln_sqrt_2pi = (2.0 * std::f64::consts::PI).sqrt().ln();
        assert!((LN_SQRT_2PI - ln_sqrt_2pi).abs() < 1e-15);
        let inv = 1.0 / (2.0 * std::f64::consts::PI * std::f64::consts::E).sqrt();
        assert!((INV_SQRT_2PI_E - inv).abs() < 1e-15);
    }
}
