//! Log-space summation utilities.
//!
//! Identification probabilities are ratios of sums of densities whose log
//! values span hundreds of nats for realistic dimensionalities. Three tools
//! keep this numerically safe:
//!
//! * [`log_sum_exp`] — one-shot `ln Σ exp(lᵢ)` over a slice;
//! * [`LogSumAcc`] — streaming log-sum-exp accumulator (add-only), used by
//!   the sequential-scan query processors;
//! * [`ScaledSum`] — an add/subtract accumulator of `exp(l − anchor)` terms
//!   with Kahan compensation, used by the Gauss-tree's TIQ/MLIQ refinement
//!   where node bounds are *removed* from the running denominator when a
//!   node is expanded (Figure 5 of the paper).

/// `ln(exp(a) + exp(b))` for two log values.
#[must_use]
pub fn log_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if lo == f64::NEG_INFINITY {
        hi
    } else {
        hi + (lo - hi).exp().ln_1p()
    }
}

/// `ln Σᵢ exp(lᵢ)` with the usual max-shift trick.
///
/// Returns `-∞` for an empty slice (the sum of zero densities).
#[must_use]
pub fn log_sum_exp(log_terms: &[f64]) -> f64 {
    let m = log_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = log_terms.iter().map(|&l| (l - m).exp()).sum();
    m + sum.ln()
}

/// Streaming add-only log-sum-exp accumulator.
///
/// Maintains the running sum as `(max, Σ exp(lᵢ − max))`, rescaling whenever
/// a new maximum arrives.
#[derive(Debug, Clone, Default)]
pub struct LogSumAcc {
    max: Option<f64>,
    scaled_sum: f64,
}

impl LogSumAcc {
    /// Creates an empty accumulator (`value() == -∞`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term with log value `l`.
    pub fn add(&mut self, l: f64) {
        if l == f64::NEG_INFINITY {
            return;
        }
        match self.max {
            None => {
                self.max = Some(l);
                self.scaled_sum = 1.0;
            }
            Some(m) if l <= m => {
                self.scaled_sum += (l - m).exp();
            }
            Some(m) => {
                // New maximum: rescale the accumulated sum.
                self.scaled_sum = self.scaled_sum * (m - l).exp() + 1.0;
                self.max = Some(l);
            }
        }
    }

    /// Number-of-terms-weighted add: `count · exp(l)`.
    pub fn add_scaled(&mut self, l: f64, count: f64) {
        if count <= 0.0 {
            return;
        }
        self.add(l + count.ln());
    }

    /// Current `ln Σ exp(lᵢ)`.
    #[must_use]
    pub fn value(&self) -> f64 {
        match self.max {
            None => f64::NEG_INFINITY,
            Some(m) => m + self.scaled_sum.ln(),
        }
    }

    /// Whether any term has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.max.is_none()
    }
}

/// Add/subtract accumulator of densities `exp(l − anchor)` with
/// Neumaier (Kahan–Babuška) compensation.
///
/// The Gauss-tree query refinement (paper §5.2.2/§5.2.3, Figure 5) keeps a
/// running lower/upper bound on the Bayes denominator: when a node is popped
/// from the priority queue its bound contribution is *subtracted* and its
/// children's contributions are *added*. Pure log-space accumulators cannot
/// subtract, so we fix a log-space `anchor` per query (typically the root's
/// upper bound, the largest value we will ever see) and accumulate scaled
/// linear terms, which keeps every addend in a sane range. The Neumaier
/// variant also compensates when a large term cancels against a small
/// running sum, which plain Kahan does not.
#[derive(Debug, Clone)]
pub struct ScaledSum {
    anchor: f64,
    sum: f64,
    comp: f64, // Neumaier compensation, added at read time
    /// Monotone `Σ |termᵢ|` over every add/sub ever applied — the scale of
    /// the worst-case accumulation error (compensated summation is accurate
    /// to `O(ε · Σ|tᵢ|)`, not `O(ε · |Σ tᵢ|)`).
    mag: f64,
    /// Terms added minus terms removed. When zero, the true sum is exactly
    /// zero no matter what residue cancellation left behind.
    outstanding: i64,
}

impl ScaledSum {
    /// Conservative coefficient for the compensated-summation error bound
    /// `|computed − exact| ≤ ERR_COEFF · Σ|tᵢ|`.
    const ERR_COEFF: f64 = 4.0 * f64::EPSILON;

    /// Creates an empty accumulator anchored at log value `anchor`.
    ///
    /// Terms with log value near `anchor` map to `exp(0) = 1`; terms hundreds
    /// of nats below map to harmless zeros.
    #[must_use]
    pub fn new(anchor: f64) -> Self {
        assert!(anchor.is_finite(), "anchor must be finite, got {anchor}");
        Self {
            anchor,
            sum: 0.0,
            comp: 0.0,
            mag: 0.0,
            outstanding: 0,
        }
    }

    /// The anchor this accumulator scales against.
    #[must_use]
    pub fn anchor(&self) -> f64 {
        self.anchor
    }

    fn kahan_add(&mut self, term: f64) {
        let t = self.sum + term;
        if self.sum.abs() >= term.abs() {
            self.comp += (self.sum - t) + term;
        } else {
            self.comp += (term - t) + self.sum;
        }
        self.sum = t;
    }

    /// Adds `count · exp(l)` (log value `l`, multiplicity `count`).
    pub fn add(&mut self, l: f64, count: f64) {
        // lint: allow(float-eq) -- exact sentinel (-inf = empty term) and exact zero count
        if l == f64::NEG_INFINITY || count == 0.0 {
            return;
        }
        let term = count * (l - self.anchor).exp();
        self.mag += term.abs();
        self.outstanding += 1;
        self.kahan_add(term);
    }

    /// Subtracts `count · exp(l)`.
    pub fn sub(&mut self, l: f64, count: f64) {
        // lint: allow(float-eq) -- exact sentinel (-inf = empty term) and exact zero count
        if l == f64::NEG_INFINITY || count == 0.0 {
            return;
        }
        let term = count * (l - self.anchor).exp();
        self.mag += term.abs();
        self.outstanding -= 1;
        self.kahan_add(-term);
    }

    /// The scaled linear sum `Σ ± countᵢ·exp(lᵢ − anchor)`, clamped at zero
    /// (cancellation can leave a tiny negative residue).
    #[must_use]
    pub fn scaled_value(&self) -> f64 {
        (self.sum + self.comp).max(0.0)
    }

    /// The sum as a log value `ln Σ` (or `-∞` if the sum is ≤ 0).
    #[must_use]
    pub fn log_value(&self) -> f64 {
        let s = self.scaled_value();
        // lint: allow(float-eq) -- scaled_value clamps at exactly 0.0; this tests the clamp
        if s == 0.0 {
            f64::NEG_INFINITY
        } else {
            self.anchor + s.ln()
        }
    }

    /// Guaranteed *upper* bound on the true sum, as a log value.
    ///
    /// Inflates the computed sum by the worst-case accumulation error
    /// `ERR_COEFF · Σ|tᵢ|`. Without this, a large term added and later
    /// subtracted can cancel the running sum to (or below) zero while
    /// outstanding terms still hold real mass — the raw value would then
    /// *understate* an upper bound, which is unsound for interval queries.
    /// Exactly `-∞` when no terms are outstanding: the true sum is zero.
    #[must_use]
    pub fn log_value_upper(&self) -> f64 {
        if self.outstanding == 0 {
            return f64::NEG_INFINITY;
        }
        let s = (self.sum + self.comp + Self::ERR_COEFF * self.mag).max(0.0);
        // lint: allow(float-eq) -- the max(0.0) clamp yields exactly 0.0
        if s == 0.0 {
            f64::NEG_INFINITY
        } else {
            self.anchor + s.ln()
        }
    }

    /// Guaranteed *lower* bound on the true sum, as a log value — the
    /// deflated counterpart of [`ScaledSum::log_value_upper`].
    #[must_use]
    pub fn log_value_lower(&self) -> f64 {
        if self.outstanding == 0 {
            return f64::NEG_INFINITY;
        }
        let s = (self.sum + self.comp - Self::ERR_COEFF * self.mag).max(0.0);
        // lint: allow(float-eq) -- the max(0.0) clamp yields exactly 0.0
        if s == 0.0 {
            f64::NEG_INFINITY
        } else {
            self.anchor + s.ln()
        }
    }

    /// Moves the accumulator to a new anchor, rescaling the running sum.
    ///
    /// Used by query processing when a term would overflow the current
    /// scale (`l − anchor > ~700`).
    pub fn reanchor(&mut self, new_anchor: f64) {
        assert!(new_anchor.is_finite(), "anchor must be finite");
        let factor = (self.anchor - new_anchor).exp();
        self.sum *= factor;
        self.comp *= factor;
        self.mag *= factor;
        self.anchor = new_anchor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_add_exp_matches_batch() {
        assert!((log_add_exp(0.0, 0.0) - 2.0f64.ln()).abs() < 1e-15);
        assert_eq!(log_add_exp(f64::NEG_INFINITY, -3.0), -3.0);
        assert_eq!(log_add_exp(-3.0, f64::NEG_INFINITY), -3.0);
        assert!((log_add_exp(-1000.0, -1001.0) - log_sum_exp(&[-1000.0, -1001.0])).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_basic() {
        let got = log_sum_exp(&[0.0, 0.0]);
        assert!((got - 2.0_f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_handles_huge_spread() {
        // exp(-1000) + exp(-2000) ≈ exp(-1000)
        let got = log_sum_exp(&[-1000.0, -2000.0]);
        assert!((got - (-1000.0)).abs() < 1e-12);
        // and huge positive values too
        let got = log_sum_exp(&[1000.0, 1000.0]);
        assert!((got - (1000.0 + 2.0_f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn streaming_matches_batch() {
        let terms = [-3.0, 0.5, -700.0, 2.0, 2.0, -1.0];
        let mut acc = LogSumAcc::new();
        for &t in &terms {
            acc.add(t);
        }
        assert!((acc.value() - log_sum_exp(&terms)).abs() < 1e-12);
    }

    #[test]
    fn streaming_order_independent() {
        let mut fwd = LogSumAcc::new();
        let mut rev = LogSumAcc::new();
        let terms = [-5.0, 3.0, 1.0, -200.0, 7.5];
        for &t in &terms {
            fwd.add(t);
        }
        for &t in terms.iter().rev() {
            rev.add(t);
        }
        assert!((fwd.value() - rev.value()).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_multiplicity() {
        let mut a = LogSumAcc::new();
        a.add_scaled(-2.0, 5.0);
        let mut b = LogSumAcc::new();
        for _ in 0..5 {
            b.add(-2.0);
        }
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn neg_infinity_terms_are_ignored() {
        let mut acc = LogSumAcc::new();
        acc.add(f64::NEG_INFINITY);
        assert!(acc.is_empty());
        acc.add(1.0);
        acc.add(f64::NEG_INFINITY);
        assert!((acc.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn scaled_sum_add_then_sub_cancels() {
        let mut s = ScaledSum::new(-100.0);
        s.add(-101.0, 3.0);
        s.add(-105.0, 1.0);
        s.sub(-101.0, 3.0);
        let want = (-105.0f64 - (-100.0)).exp();
        assert!((s.scaled_value() - want).abs() < 1e-15);
    }

    #[test]
    fn scaled_sum_log_value_round_trip() {
        let mut s = ScaledSum::new(0.0);
        s.add(0.0, 1.0);
        s.add(1.0f64.ln(), 1.0); // another exp(0)=1
        assert!((s.log_value() - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn scaled_sum_negative_residue_clamped() {
        let mut s = ScaledSum::new(0.0);
        s.add(-1.0, 1.0);
        s.sub(-1.0, 1.0);
        s.sub(-30.0, 1e-6);
        assert_eq!(s.scaled_value(), 0.0);
        assert_eq!(s.log_value(), f64::NEG_INFINITY);
    }

    #[test]
    fn reanchor_preserves_log_value() {
        let mut s = ScaledSum::new(-50.0);
        s.add(-52.0, 2.0);
        s.add(-60.0, 1.0);
        let before = s.log_value();
        s.reanchor(-55.0);
        assert!((s.log_value() - before).abs() < 1e-12);
        assert_eq!(s.anchor(), -55.0);
        // Further adds keep working at the new scale.
        s.add(-55.0, 1.0);
        assert!(s.log_value() > before);
    }

    #[test]
    fn kahan_compensation_beats_naive_in_mixed_magnitudes() {
        // Add one big and many tiny values, then remove the big one; the
        // tiny values should survive with good relative accuracy.
        let mut s = ScaledSum::new(0.0);
        s.add(0.0, 1e8);
        let tiny = (-20.0f64).exp();
        for _ in 0..1000 {
            s.add(-20.0, 1.0);
        }
        s.sub(0.0, 1e8);
        let want = 1000.0 * tiny;
        let got = s.scaled_value();
        assert!((got - want).abs() < 1e-6 * want, "got {got}, want {want}");
    }
}
